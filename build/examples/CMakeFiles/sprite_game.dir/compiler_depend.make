# Empty compiler generated dependencies file for sprite_game.
# This may be replaced when dependencies are built.
