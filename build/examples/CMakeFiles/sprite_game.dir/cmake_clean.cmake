file(REMOVE_RECURSE
  "CMakeFiles/sprite_game.dir/sprite_game.cpp.o"
  "CMakeFiles/sprite_game.dir/sprite_game.cpp.o.d"
  "sprite_game"
  "sprite_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sprite_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
