# Empty compiler generated dependencies file for hud_game.
# This may be replaced when dependencies are built.
