file(REMOVE_RECURSE
  "CMakeFiles/hud_game.dir/hud_game.cpp.o"
  "CMakeFiles/hud_game.dir/hud_game.cpp.o.d"
  "hud_game"
  "hud_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hud_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
