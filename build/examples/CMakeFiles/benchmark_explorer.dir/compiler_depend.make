# Empty compiler generated dependencies file for benchmark_explorer.
# This may be replaced when dependencies are built.
