# Empty dependencies file for bench_table1_casuistry.
# This may be replaced when dependencies are built.
