file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_casuistry.dir/bench_table1_casuistry.cpp.o"
  "CMakeFiles/bench_table1_casuistry.dir/bench_table1_casuistry.cpp.o.d"
  "bench_table1_casuistry"
  "bench_table1_casuistry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_casuistry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
