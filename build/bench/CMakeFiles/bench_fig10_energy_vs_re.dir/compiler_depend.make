# Empty compiler generated dependencies file for bench_fig10_energy_vs_re.
# This may be replaced when dependencies are built.
