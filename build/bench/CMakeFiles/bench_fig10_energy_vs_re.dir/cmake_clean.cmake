file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_energy_vs_re.dir/bench_fig10_energy_vs_re.cpp.o"
  "CMakeFiles/bench_fig10_energy_vs_re.dir/bench_fig10_energy_vs_re.cpp.o.d"
  "bench_fig10_energy_vs_re"
  "bench_fig10_energy_vs_re.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_energy_vs_re.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
