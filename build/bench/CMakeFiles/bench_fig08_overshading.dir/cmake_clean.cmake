file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_overshading.dir/bench_fig08_overshading.cpp.o"
  "CMakeFiles/bench_fig08_overshading.dir/bench_fig08_overshading.cpp.o.d"
  "bench_fig08_overshading"
  "bench_fig08_overshading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_overshading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
