# Empty dependencies file for bench_fig07_time.
# This may be replaced when dependencies are built.
