# Empty compiler generated dependencies file for bench_fig11_time_vs_re.
# This may be replaced when dependencies are built.
