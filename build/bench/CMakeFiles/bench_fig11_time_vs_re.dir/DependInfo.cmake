
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig11_time_vs_re.cpp" "bench/CMakeFiles/bench_fig11_time_vs_re.dir/bench_fig11_time_vs_re.cpp.o" "gcc" "bench/CMakeFiles/bench_fig11_time_vs_re.dir/bench_fig11_time_vs_re.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/evrsim_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/evrsim_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/evrsim_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/evr/CMakeFiles/evrsim_evr.dir/DependInfo.cmake"
  "/root/repo/build/src/re/CMakeFiles/evrsim_re.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/evrsim_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/scene/CMakeFiles/evrsim_scene.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/evrsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/evrsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
