file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_time_vs_re.dir/bench_fig11_time_vs_re.cpp.o"
  "CMakeFiles/bench_fig11_time_vs_re.dir/bench_fig11_time_vs_re.cpp.o.d"
  "bench_fig11_time_vs_re"
  "bench_fig11_time_vs_re.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_time_vs_re.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
