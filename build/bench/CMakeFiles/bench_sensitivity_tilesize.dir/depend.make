# Empty dependencies file for bench_sensitivity_tilesize.
# This may be replaced when dependencies are built.
