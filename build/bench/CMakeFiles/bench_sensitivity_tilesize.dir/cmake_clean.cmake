file(REMOVE_RECURSE
  "CMakeFiles/bench_sensitivity_tilesize.dir/bench_sensitivity_tilesize.cpp.o"
  "CMakeFiles/bench_sensitivity_tilesize.dir/bench_sensitivity_tilesize.cpp.o.d"
  "bench_sensitivity_tilesize"
  "bench_sensitivity_tilesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sensitivity_tilesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
