# Empty dependencies file for bench_fig09_redundant_tiles.
# This may be replaced when dependencies are built.
