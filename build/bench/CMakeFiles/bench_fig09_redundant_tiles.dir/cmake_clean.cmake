file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_redundant_tiles.dir/bench_fig09_redundant_tiles.cpp.o"
  "CMakeFiles/bench_fig09_redundant_tiles.dir/bench_fig09_redundant_tiles.cpp.o.d"
  "bench_fig09_redundant_tiles"
  "bench_fig09_redundant_tiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_redundant_tiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
