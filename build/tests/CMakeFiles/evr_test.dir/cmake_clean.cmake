file(REMOVE_RECURSE
  "CMakeFiles/evr_test.dir/evr_test.cpp.o"
  "CMakeFiles/evr_test.dir/evr_test.cpp.o.d"
  "evr_test"
  "evr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
