# Empty compiler generated dependencies file for evr_test.
# This may be replaced when dependencies are built.
