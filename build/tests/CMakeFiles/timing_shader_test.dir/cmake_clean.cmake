file(REMOVE_RECURSE
  "CMakeFiles/timing_shader_test.dir/timing_shader_test.cpp.o"
  "CMakeFiles/timing_shader_test.dir/timing_shader_test.cpp.o.d"
  "timing_shader_test"
  "timing_shader_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_shader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
