# Empty compiler generated dependencies file for timing_shader_test.
# This may be replaced when dependencies are built.
