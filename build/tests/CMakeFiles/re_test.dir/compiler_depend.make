# Empty compiler generated dependencies file for re_test.
# This may be replaced when dependencies are built.
