# Empty compiler generated dependencies file for correctness_test.
# This may be replaced when dependencies are built.
