file(REMOVE_RECURSE
  "CMakeFiles/rasterizer_test.dir/rasterizer_test.cpp.o"
  "CMakeFiles/rasterizer_test.dir/rasterizer_test.cpp.o.d"
  "rasterizer_test"
  "rasterizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rasterizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
