# Empty compiler generated dependencies file for rasterizer_test.
# This may be replaced when dependencies are built.
