file(REMOVE_RECURSE
  "CMakeFiles/raster_pipeline_test.dir/raster_pipeline_test.cpp.o"
  "CMakeFiles/raster_pipeline_test.dir/raster_pipeline_test.cpp.o.d"
  "raster_pipeline_test"
  "raster_pipeline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raster_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
