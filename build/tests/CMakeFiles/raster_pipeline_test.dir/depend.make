# Empty dependencies file for raster_pipeline_test.
# This may be replaced when dependencies are built.
