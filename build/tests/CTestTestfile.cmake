# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;13;evrsim_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(mem_test "/root/repo/build/tests/mem_test")
set_tests_properties(mem_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;14;evrsim_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(energy_test "/root/repo/build/tests/energy_test")
set_tests_properties(energy_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;15;evrsim_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(scene_test "/root/repo/build/tests/scene_test")
set_tests_properties(scene_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;16;evrsim_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(rasterizer_test "/root/repo/build/tests/rasterizer_test")
set_tests_properties(rasterizer_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;17;evrsim_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(geometry_test "/root/repo/build/tests/geometry_test")
set_tests_properties(geometry_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;18;evrsim_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(raster_pipeline_test "/root/repo/build/tests/raster_pipeline_test")
set_tests_properties(raster_pipeline_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;19;evrsim_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(re_test "/root/repo/build/tests/re_test")
set_tests_properties(re_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;20;evrsim_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(evr_test "/root/repo/build/tests/evr_test")
set_tests_properties(evr_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;21;evrsim_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(driver_test "/root/repo/build/tests/driver_test")
set_tests_properties(driver_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;22;evrsim_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workloads_test "/root/repo/build/tests/workloads_test")
set_tests_properties(workloads_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;23;evrsim_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(correctness_test "/root/repo/build/tests/correctness_test")
set_tests_properties(correctness_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;24;evrsim_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(timing_shader_test "/root/repo/build/tests/timing_shader_test")
set_tests_properties(timing_shader_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;25;evrsim_add_test;/root/repo/tests/CMakeLists.txt;0;")
