file(REMOVE_RECURSE
  "libevrsim_workloads.a"
)
