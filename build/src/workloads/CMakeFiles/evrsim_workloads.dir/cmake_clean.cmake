file(REMOVE_RECURSE
  "CMakeFiles/evrsim_workloads.dir/elements.cpp.o"
  "CMakeFiles/evrsim_workloads.dir/elements.cpp.o.d"
  "CMakeFiles/evrsim_workloads.dir/registry.cpp.o"
  "CMakeFiles/evrsim_workloads.dir/registry.cpp.o.d"
  "CMakeFiles/evrsim_workloads.dir/suite.cpp.o"
  "CMakeFiles/evrsim_workloads.dir/suite.cpp.o.d"
  "libevrsim_workloads.a"
  "libevrsim_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evrsim_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
