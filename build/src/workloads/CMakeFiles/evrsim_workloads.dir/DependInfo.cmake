
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/elements.cpp" "src/workloads/CMakeFiles/evrsim_workloads.dir/elements.cpp.o" "gcc" "src/workloads/CMakeFiles/evrsim_workloads.dir/elements.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/workloads/CMakeFiles/evrsim_workloads.dir/registry.cpp.o" "gcc" "src/workloads/CMakeFiles/evrsim_workloads.dir/registry.cpp.o.d"
  "/root/repo/src/workloads/suite.cpp" "src/workloads/CMakeFiles/evrsim_workloads.dir/suite.cpp.o" "gcc" "src/workloads/CMakeFiles/evrsim_workloads.dir/suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/evrsim_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/evrsim_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/evr/CMakeFiles/evrsim_evr.dir/DependInfo.cmake"
  "/root/repo/build/src/re/CMakeFiles/evrsim_re.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/evrsim_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/scene/CMakeFiles/evrsim_scene.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/evrsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/evrsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
