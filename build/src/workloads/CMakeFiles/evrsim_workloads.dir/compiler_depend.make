# Empty compiler generated dependencies file for evrsim_workloads.
# This may be replaced when dependencies are built.
