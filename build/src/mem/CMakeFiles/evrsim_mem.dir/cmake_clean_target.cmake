file(REMOVE_RECURSE
  "libevrsim_mem.a"
)
