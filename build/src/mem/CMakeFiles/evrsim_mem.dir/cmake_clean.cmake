file(REMOVE_RECURSE
  "CMakeFiles/evrsim_mem.dir/cache.cpp.o"
  "CMakeFiles/evrsim_mem.dir/cache.cpp.o.d"
  "CMakeFiles/evrsim_mem.dir/dram.cpp.o"
  "CMakeFiles/evrsim_mem.dir/dram.cpp.o.d"
  "CMakeFiles/evrsim_mem.dir/memory_system.cpp.o"
  "CMakeFiles/evrsim_mem.dir/memory_system.cpp.o.d"
  "libevrsim_mem.a"
  "libevrsim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evrsim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
