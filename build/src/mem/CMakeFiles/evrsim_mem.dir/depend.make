# Empty dependencies file for evrsim_mem.
# This may be replaced when dependencies are built.
