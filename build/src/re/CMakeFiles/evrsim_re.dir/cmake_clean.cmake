file(REMOVE_RECURSE
  "CMakeFiles/evrsim_re.dir/rendering_elimination.cpp.o"
  "CMakeFiles/evrsim_re.dir/rendering_elimination.cpp.o.d"
  "CMakeFiles/evrsim_re.dir/signature_buffer.cpp.o"
  "CMakeFiles/evrsim_re.dir/signature_buffer.cpp.o.d"
  "libevrsim_re.a"
  "libevrsim_re.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evrsim_re.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
