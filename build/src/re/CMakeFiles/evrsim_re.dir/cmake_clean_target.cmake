file(REMOVE_RECURSE
  "libevrsim_re.a"
)
