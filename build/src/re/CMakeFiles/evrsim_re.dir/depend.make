# Empty dependencies file for evrsim_re.
# This may be replaced when dependencies are built.
