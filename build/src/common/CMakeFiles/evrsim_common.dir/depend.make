# Empty dependencies file for evrsim_common.
# This may be replaced when dependencies are built.
