file(REMOVE_RECURSE
  "libevrsim_common.a"
)
