file(REMOVE_RECURSE
  "CMakeFiles/evrsim_common.dir/crc32.cpp.o"
  "CMakeFiles/evrsim_common.dir/crc32.cpp.o.d"
  "CMakeFiles/evrsim_common.dir/log.cpp.o"
  "CMakeFiles/evrsim_common.dir/log.cpp.o.d"
  "CMakeFiles/evrsim_common.dir/mat4.cpp.o"
  "CMakeFiles/evrsim_common.dir/mat4.cpp.o.d"
  "CMakeFiles/evrsim_common.dir/rng.cpp.o"
  "CMakeFiles/evrsim_common.dir/rng.cpp.o.d"
  "libevrsim_common.a"
  "libevrsim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evrsim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
