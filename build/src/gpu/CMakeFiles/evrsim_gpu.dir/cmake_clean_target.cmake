file(REMOVE_RECURSE
  "libevrsim_gpu.a"
)
