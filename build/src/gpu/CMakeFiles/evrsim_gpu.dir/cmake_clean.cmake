file(REMOVE_RECURSE
  "CMakeFiles/evrsim_gpu.dir/framebuffer.cpp.o"
  "CMakeFiles/evrsim_gpu.dir/framebuffer.cpp.o.d"
  "CMakeFiles/evrsim_gpu.dir/geometry_pipeline.cpp.o"
  "CMakeFiles/evrsim_gpu.dir/geometry_pipeline.cpp.o.d"
  "CMakeFiles/evrsim_gpu.dir/gpu_stats.cpp.o"
  "CMakeFiles/evrsim_gpu.dir/gpu_stats.cpp.o.d"
  "CMakeFiles/evrsim_gpu.dir/parameter_buffer.cpp.o"
  "CMakeFiles/evrsim_gpu.dir/parameter_buffer.cpp.o.d"
  "CMakeFiles/evrsim_gpu.dir/raster_pipeline.cpp.o"
  "CMakeFiles/evrsim_gpu.dir/raster_pipeline.cpp.o.d"
  "CMakeFiles/evrsim_gpu.dir/rasterizer.cpp.o"
  "CMakeFiles/evrsim_gpu.dir/rasterizer.cpp.o.d"
  "CMakeFiles/evrsim_gpu.dir/shader.cpp.o"
  "CMakeFiles/evrsim_gpu.dir/shader.cpp.o.d"
  "CMakeFiles/evrsim_gpu.dir/timing_model.cpp.o"
  "CMakeFiles/evrsim_gpu.dir/timing_model.cpp.o.d"
  "libevrsim_gpu.a"
  "libevrsim_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evrsim_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
