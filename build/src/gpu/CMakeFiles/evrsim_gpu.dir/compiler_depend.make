# Empty compiler generated dependencies file for evrsim_gpu.
# This may be replaced when dependencies are built.
