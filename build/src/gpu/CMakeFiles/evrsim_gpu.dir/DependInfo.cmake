
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/framebuffer.cpp" "src/gpu/CMakeFiles/evrsim_gpu.dir/framebuffer.cpp.o" "gcc" "src/gpu/CMakeFiles/evrsim_gpu.dir/framebuffer.cpp.o.d"
  "/root/repo/src/gpu/geometry_pipeline.cpp" "src/gpu/CMakeFiles/evrsim_gpu.dir/geometry_pipeline.cpp.o" "gcc" "src/gpu/CMakeFiles/evrsim_gpu.dir/geometry_pipeline.cpp.o.d"
  "/root/repo/src/gpu/gpu_stats.cpp" "src/gpu/CMakeFiles/evrsim_gpu.dir/gpu_stats.cpp.o" "gcc" "src/gpu/CMakeFiles/evrsim_gpu.dir/gpu_stats.cpp.o.d"
  "/root/repo/src/gpu/parameter_buffer.cpp" "src/gpu/CMakeFiles/evrsim_gpu.dir/parameter_buffer.cpp.o" "gcc" "src/gpu/CMakeFiles/evrsim_gpu.dir/parameter_buffer.cpp.o.d"
  "/root/repo/src/gpu/raster_pipeline.cpp" "src/gpu/CMakeFiles/evrsim_gpu.dir/raster_pipeline.cpp.o" "gcc" "src/gpu/CMakeFiles/evrsim_gpu.dir/raster_pipeline.cpp.o.d"
  "/root/repo/src/gpu/rasterizer.cpp" "src/gpu/CMakeFiles/evrsim_gpu.dir/rasterizer.cpp.o" "gcc" "src/gpu/CMakeFiles/evrsim_gpu.dir/rasterizer.cpp.o.d"
  "/root/repo/src/gpu/shader.cpp" "src/gpu/CMakeFiles/evrsim_gpu.dir/shader.cpp.o" "gcc" "src/gpu/CMakeFiles/evrsim_gpu.dir/shader.cpp.o.d"
  "/root/repo/src/gpu/timing_model.cpp" "src/gpu/CMakeFiles/evrsim_gpu.dir/timing_model.cpp.o" "gcc" "src/gpu/CMakeFiles/evrsim_gpu.dir/timing_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/evrsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/evrsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/scene/CMakeFiles/evrsim_scene.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
