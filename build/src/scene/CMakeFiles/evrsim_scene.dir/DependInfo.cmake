
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scene/animation.cpp" "src/scene/CMakeFiles/evrsim_scene.dir/animation.cpp.o" "gcc" "src/scene/CMakeFiles/evrsim_scene.dir/animation.cpp.o.d"
  "/root/repo/src/scene/camera.cpp" "src/scene/CMakeFiles/evrsim_scene.dir/camera.cpp.o" "gcc" "src/scene/CMakeFiles/evrsim_scene.dir/camera.cpp.o.d"
  "/root/repo/src/scene/mesh.cpp" "src/scene/CMakeFiles/evrsim_scene.dir/mesh.cpp.o" "gcc" "src/scene/CMakeFiles/evrsim_scene.dir/mesh.cpp.o.d"
  "/root/repo/src/scene/texture.cpp" "src/scene/CMakeFiles/evrsim_scene.dir/texture.cpp.o" "gcc" "src/scene/CMakeFiles/evrsim_scene.dir/texture.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/evrsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/evrsim_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
