file(REMOVE_RECURSE
  "CMakeFiles/evrsim_scene.dir/animation.cpp.o"
  "CMakeFiles/evrsim_scene.dir/animation.cpp.o.d"
  "CMakeFiles/evrsim_scene.dir/camera.cpp.o"
  "CMakeFiles/evrsim_scene.dir/camera.cpp.o.d"
  "CMakeFiles/evrsim_scene.dir/mesh.cpp.o"
  "CMakeFiles/evrsim_scene.dir/mesh.cpp.o.d"
  "CMakeFiles/evrsim_scene.dir/texture.cpp.o"
  "CMakeFiles/evrsim_scene.dir/texture.cpp.o.d"
  "libevrsim_scene.a"
  "libevrsim_scene.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evrsim_scene.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
