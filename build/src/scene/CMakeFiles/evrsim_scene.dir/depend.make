# Empty dependencies file for evrsim_scene.
# This may be replaced when dependencies are built.
