file(REMOVE_RECURSE
  "libevrsim_scene.a"
)
