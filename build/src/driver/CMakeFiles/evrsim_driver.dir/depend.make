# Empty dependencies file for evrsim_driver.
# This may be replaced when dependencies are built.
