file(REMOVE_RECURSE
  "CMakeFiles/evrsim_driver.dir/experiment.cpp.o"
  "CMakeFiles/evrsim_driver.dir/experiment.cpp.o.d"
  "CMakeFiles/evrsim_driver.dir/gpu_simulator.cpp.o"
  "CMakeFiles/evrsim_driver.dir/gpu_simulator.cpp.o.d"
  "CMakeFiles/evrsim_driver.dir/json.cpp.o"
  "CMakeFiles/evrsim_driver.dir/json.cpp.o.d"
  "CMakeFiles/evrsim_driver.dir/report.cpp.o"
  "CMakeFiles/evrsim_driver.dir/report.cpp.o.d"
  "CMakeFiles/evrsim_driver.dir/run_result.cpp.o"
  "CMakeFiles/evrsim_driver.dir/run_result.cpp.o.d"
  "libevrsim_driver.a"
  "libevrsim_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evrsim_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
