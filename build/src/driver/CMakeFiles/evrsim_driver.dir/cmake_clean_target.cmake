file(REMOVE_RECURSE
  "libevrsim_driver.a"
)
