# Empty compiler generated dependencies file for evrsim_evr.
# This may be replaced when dependencies are built.
