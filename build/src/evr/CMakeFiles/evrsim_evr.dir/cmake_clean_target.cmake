file(REMOVE_RECURSE
  "libevrsim_evr.a"
)
