
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/evr/evr.cpp" "src/evr/CMakeFiles/evrsim_evr.dir/evr.cpp.o" "gcc" "src/evr/CMakeFiles/evrsim_evr.dir/evr.cpp.o.d"
  "/root/repo/src/evr/fvp_table.cpp" "src/evr/CMakeFiles/evrsim_evr.dir/fvp_table.cpp.o" "gcc" "src/evr/CMakeFiles/evrsim_evr.dir/fvp_table.cpp.o.d"
  "/root/repo/src/evr/layer_buffer.cpp" "src/evr/CMakeFiles/evrsim_evr.dir/layer_buffer.cpp.o" "gcc" "src/evr/CMakeFiles/evrsim_evr.dir/layer_buffer.cpp.o.d"
  "/root/repo/src/evr/layer_generator_table.cpp" "src/evr/CMakeFiles/evrsim_evr.dir/layer_generator_table.cpp.o" "gcc" "src/evr/CMakeFiles/evrsim_evr.dir/layer_generator_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpu/CMakeFiles/evrsim_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/scene/CMakeFiles/evrsim_scene.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/evrsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/evrsim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
