file(REMOVE_RECURSE
  "CMakeFiles/evrsim_evr.dir/evr.cpp.o"
  "CMakeFiles/evrsim_evr.dir/evr.cpp.o.d"
  "CMakeFiles/evrsim_evr.dir/fvp_table.cpp.o"
  "CMakeFiles/evrsim_evr.dir/fvp_table.cpp.o.d"
  "CMakeFiles/evrsim_evr.dir/layer_buffer.cpp.o"
  "CMakeFiles/evrsim_evr.dir/layer_buffer.cpp.o.d"
  "CMakeFiles/evrsim_evr.dir/layer_generator_table.cpp.o"
  "CMakeFiles/evrsim_evr.dir/layer_generator_table.cpp.o.d"
  "libevrsim_evr.a"
  "libevrsim_evr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evrsim_evr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
