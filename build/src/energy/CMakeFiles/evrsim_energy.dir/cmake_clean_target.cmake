file(REMOVE_RECURSE
  "libevrsim_energy.a"
)
