file(REMOVE_RECURSE
  "CMakeFiles/evrsim_energy.dir/energy_model.cpp.o"
  "CMakeFiles/evrsim_energy.dir/energy_model.cpp.o.d"
  "libevrsim_energy.a"
  "libevrsim_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evrsim_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
