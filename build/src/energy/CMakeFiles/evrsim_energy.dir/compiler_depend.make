# Empty compiler generated dependencies file for evrsim_energy.
# This may be replaced when dependencies are built.
