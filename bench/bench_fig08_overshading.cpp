/**
 * @file
 * Figure 8: shaded fragments per pixel for the six 3D benchmarks —
 * Baseline vs EVR (reordering via the FVP prediction) vs an Oracle
 * whose Z Buffer is preloaded with the tile's final depth values.
 */
#include <cstdio>

#include "bench_common.hpp"

using namespace evrsim;
using namespace evrsim::bench;

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv);
    printBenchHeader("Figure 8",
                     "shaded fragments per pixel: Baseline / EVR reorder / "
                     "Oracle (3D benchmarks)",
                     ctx.params);

    for (const std::string &alias : workloads::aliases3D()) {
        ctx.need(alias, SimConfig::baseline(ctx.gpu()));
        ctx.need(alias, SimConfig::evrReorderOnly(ctx.gpu()));
        ctx.need(alias, SimConfig::oracleZ(ctx.gpu()));
    }
    ctx.prefetch();

    ReportTable table({"bench", "baseline", "EVR", "oracle", "EVR-red.",
                       "oracle-red."});
    std::vector<double> base_v, evr_v, oracle_v;

    for (const std::string &alias : ctx.aliases()) {
        RunResult base = ctx.runner.run(alias, SimConfig::baseline(ctx.gpu()));
        RunResult evr =
            ctx.runner.run(alias, SimConfig::evrReorderOnly(ctx.gpu()));
        RunResult oracle = ctx.runner.run(alias, SimConfig::oracleZ(ctx.gpu()));

        double b = base.shadedPerPixel();
        double e = evr.shadedPerPixel();
        double o = oracle.shadedPerPixel();
        base_v.push_back(b);
        evr_v.push_back(e);
        oracle_v.push_back(o);

        table.addRow({alias, fmt(b), fmt(e), fmt(o), fmtPct(1.0 - e / b),
                      fmtPct(1.0 - o / b)});
    }

    table.print();
    std::printf("\naverage shaded fragments/pixel: baseline %.2f, EVR %.2f, "
                "oracle %.2f\n",
                mean(base_v), mean(evr_v), mean(oracle_v));
    std::printf("average overshading reduction: EVR %.0f%%, oracle %.0f%%\n",
                (1.0 - mean(evr_v) / mean(base_v)) * 100.0,
                (1.0 - mean(oracle_v) / mean(base_v)) * 100.0);
    printPaperShape(
        "paper reports ~20% fewer shaded fragments with EVR, close to "
        "(but not reaching) the oracle; the gap comes from prediction "
        "granularity (primitive vs fragment) and one-frame staleness");
    return ctx.exitCode();
}
