/**
 * @file
 * Ablation: how much each half of EVR contributes — Algorithm 1
 * reordering alone (no RE), signature filtering alone (RE + filter, no
 * reorder), and the full technique — relative to baseline and RE.
 * The paper evaluates the two optimizations together; this bench
 * separates the design choices DESIGN.md calls out.
 */
#include <cstdio>

#include "bench_common.hpp"

using namespace evrsim;
using namespace evrsim::bench;

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv);
    printBenchHeader("Ablation",
                     "cycles normalized to baseline: RE / reorder-only / "
                     "filter-only / full EVR",
                     ctx.params);

    ctx.needForAllWorkloads(
        {SimConfig::baseline(ctx.gpu()),
         SimConfig::renderingElimination(ctx.gpu()),
         SimConfig::evrReorderOnly(ctx.gpu()),
         SimConfig::evrFilterOnly(ctx.gpu()), SimConfig::evr(ctx.gpu()),
         SimConfig::zPrepass(ctx.gpu())});
    ctx.prefetch();

    ReportTable table({"bench", "RE", "reorder", "filter", "full-EVR",
                       "z-prepass"});
    std::vector<double> re_v, ro_v, fo_v, full_v, zp_v;

    for (const std::string &alias : ctx.aliases()) {
        RunResult base = ctx.runner.run(alias, SimConfig::baseline(ctx.gpu()));
        RunResult re =
            ctx.runner.run(alias, SimConfig::renderingElimination(ctx.gpu()));
        RunResult ro =
            ctx.runner.run(alias, SimConfig::evrReorderOnly(ctx.gpu()));
        RunResult fo =
            ctx.runner.run(alias, SimConfig::evrFilterOnly(ctx.gpu()));
        RunResult full = ctx.runner.run(alias, SimConfig::evr(ctx.gpu()));
        RunResult zp = ctx.runner.run(alias, SimConfig::zPrepass(ctx.gpu()));

        double b = static_cast<double>(base.totalCycles());
        re_v.push_back(re.totalCycles() / b);
        ro_v.push_back(ro.totalCycles() / b);
        fo_v.push_back(fo.totalCycles() / b);
        full_v.push_back(full.totalCycles() / b);
        zp_v.push_back(zp.totalCycles() / b);

        table.addRow({alias, fmt(re_v.back()), fmt(ro_v.back()),
                      fmt(fo_v.back()), fmt(full_v.back()),
                      fmt(zp_v.back())});
    }

    table.print();
    std::printf("\naverages: RE %.2f, reorder-only %.2f, filter-only %.2f, "
                "full EVR %.2f, z-prepass %.2f\n",
                mean(re_v), mean(ro_v), mean(fo_v), mean(full_v),
                mean(zp_v));
    printPaperShape(
        "expected: reordering alone helps 3D (overshading) but cannot "
        "skip tiles; filtering alone recovers RE's losses on hidden "
        "motion; the full technique dominates both (the two halves "
        "address disjoint waste); the real Z-Prepass pays its extra "
        "pass — the paper's argument for EVR needing no prepass");
    return ctx.exitCode();
}
