/**
 * @file
 * Shared plumbing for the per-figure bench binaries.
 *
 * Every binary resolves the same environment-driven parameters
 * (EVRSIM_FULL / EVRSIM_FRAMES / EVRSIM_NO_CACHE / EVRSIM_CACHE_DIR),
 * builds an ExperimentRunner over the Table III workload registry, and
 * shares simulation results through the on-disk cache, so running all
 * benches simulates each (workload, config) pair exactly once.
 */
#ifndef EVRSIM_BENCH_BENCH_COMMON_HPP
#define EVRSIM_BENCH_BENCH_COMMON_HPP

#include "driver/experiment.hpp"
#include "driver/report.hpp"
#include "workloads/registry.hpp"

namespace evrsim {
namespace bench {

/** Runner + params bundle every bench binary starts from. */
struct BenchContext {
    BenchParams params;
    ExperimentRunner runner;

    BenchContext()
        : params(benchParamsFromEnv()),
          runner(workloads::factory(), params)
    {
    }

    GpuConfig gpu() const { return params.gpuConfig(); }
};

} // namespace bench
} // namespace evrsim

#endif // EVRSIM_BENCH_BENCH_COMMON_HPP
