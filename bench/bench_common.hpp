/**
 * @file
 * Shared plumbing for the per-figure bench binaries.
 *
 * Every binary resolves the same environment-driven parameters
 * (EVRSIM_FULL / EVRSIM_FRAMES / EVRSIM_NO_CACHE / EVRSIM_CACHE_DIR /
 * EVRSIM_JOBS), builds an ExperimentRunner over the Table III workload
 * registry, and shares simulation results through the on-disk cache, so
 * running all benches simulates each (workload, config) pair exactly
 * once.
 *
 * Binaries declare every run they will need up front (need()), then
 * prefetch() executes the whole batch on the parallel scheduler before
 * any table is printed; the subsequent run() calls inside the table
 * loops are all memo hits. prefetch() also prints the binary's sweep
 * throughput summary (sims/s, frames/s, parallel speedup).
 *
 * Process isolation (EVRSIM_ISOLATE=process): the same binary doubles
 * as its own worker. The supervisor re-execs it with a hidden
 * `--evrsim-worker=<job key>` flag; the re-execed copy resolves the
 * identical deterministic plan, finds the request whose cache-entry
 * key matches, simulates just that job in-process, frames the result
 * back on the response pipe, and exits — it never touches the cache,
 * the journal, or the scheduler (the parent owns those).
 */
#ifndef EVRSIM_BENCH_BENCH_COMMON_HPP
#define EVRSIM_BENCH_BENCH_COMMON_HPP

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/crash_handler.hpp"
#include "common/log.hpp"
#include "common/shutdown.hpp"
#include "common/trace.hpp"
#include "driver/experiment.hpp"
#include "driver/report.hpp"
#include "driver/supervisor.hpp"
#include "workloads/registry.hpp"

namespace evrsim {
namespace bench {

/** Runner + params bundle every bench binary starts from. */
struct BenchContext {
    /** Job key from --evrsim-worker=<key>; empty in the parent. Must
     *  precede params: worker mode overrides the sweep-owning knobs. */
    std::string worker_job;
    BenchParams params;
    ExperimentRunner runner;
    std::vector<RunRequest> plan;
    BatchOutcome outcome; ///< filled by prefetch()

    BenchContext() : BenchContext(0, nullptr) {}

    BenchContext(int argc, char **argv)
        : worker_job(workerJobArg(argc, argv)),
          params(resolveParams(!worker_job.empty())),
          runner(workloads::factory(), params)
    {
        setLogLevel(params.log_level);
        installTracing(!worker_job.empty());
        // A sweep that crashes hours in should at least say which
        // (workload, config, frame, tile) it was simulating.
        installCrashHandler();
        // Ctrl-C / SIGTERM drains the sweep instead of killing it:
        // running jobs finish, queued ones are shed (Cancelled), the
        // journal and telemetry artifacts flush, and exitCode() maps to
        // 130/143. Workers keep the default disposition so the
        // supervisor sees a genuine signal death.
        if (worker_job.empty())
            installShutdownHandler();
        if (worker_job.empty() && params.isolate == IsolateMode::Process)
            installProcessLauncher();
    }

    GpuConfig gpu() const { return params.gpuConfig(); }

    /** Declare one run of this binary's sweep. */
    void
    need(const std::string &alias, const SimConfig &config)
    {
        plan.push_back({alias, config});
    }

    /** Declare @p configs for every Table III workload. */
    void
    needForAllWorkloads(const std::vector<SimConfig> &configs)
    {
        for (const std::string &alias : workloads::allAliases())
            for (const SimConfig &config : configs)
                need(alias, config);
    }

    /**
     * Execute every declared run on the EVRSIM_JOBS-wide scheduler and
     * print the sweep throughput summary. Later run() calls for the
     * declared triples return instantly from the in-memory memo.
     *
     * Runs that fail permanently (after quarantine/retry) are reported
     * and excluded from aliases(); the binary still prints its tables
     * from the surviving runs and returns exitCode() != 0.
     *
     * In worker mode this never returns: the one job named on the
     * command line is simulated and the process exits.
     */
    void
    prefetch()
    {
        if (!worker_job.empty())
            runWorkerAndExit();
        outcome = runner.runAllChecked(plan);
        printSweepSummary(runner);
        printFailureReport(outcome);

        // Observability artifacts: summary.json next to the journal (or
        // at EVRSIM_SUMMARY), metrics.json/metrics.prom in the metrics
        // dir, and the trace file (also flushed at exit; flushing here
        // too makes the sweep's spans durable before the tables print).
        std::string summary = summaryPath();
        if (!summary.empty())
            if (Status s = writeSweepSummaryJson(runner, outcome, summary);
                !s.ok())
                warn("could not write %s: %s", summary.c_str(),
                     s.message().c_str());
        if (Status s = runner.writeMetricsArtifacts(); !s.ok())
            warn("could not write metrics artifacts: %s",
                 s.message().c_str());
        if (traceActive())
            if (Status s = traceWrite(); !s.ok())
                warn("could not write trace: %s", s.message().c_str());
    }

    /** Where summary.json goes; empty = disabled. */
    std::string
    summaryPath() const
    {
        if (!params.write_summary)
            return {};
        if (!params.summary_path.empty())
            return params.summary_path;
        if (!params.use_cache)
            return {};
        return params.cache_dir + "/summary.json";
    }

    /** True when every declared run for @p alias succeeded. */
    bool
    ok(const std::string &alias) const
    {
        for (const RunFailure &f : outcome.failures)
            if (f.alias == alias)
                return false;
        return true;
    }

    /**
     * The planned workload aliases, in first-declared order without
     * duplicates, minus any with a failed run — the alias list the
     * binary's table loops should iterate.
     */
    std::vector<std::string>
    aliases() const
    {
        std::vector<std::string> out;
        for (const RunRequest &r : plan) {
            if (std::find(out.begin(), out.end(), r.alias) != out.end())
                continue;
            if (ok(r.alias))
                out.push_back(r.alias);
        }
        return out;
    }

    /** Process exit status: 0 on a clean sweep, 1 if any run failed;
     *  128+signal (130/143) after a cooperative shutdown, like a
     *  conventionally signal-terminated process — except the journal
     *  and telemetry artifacts made it out first. */
    int
    exitCode() const
    {
        return shutdownExitCode(outcome.ok() ? 0 : 1);
    }

  private:
    static std::string
    workerJobArg(int argc, char **argv)
    {
        const std::string prefix = "--evrsim-worker=";
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i] ? argv[i] : "";
            if (arg.compare(0, prefix.size(), prefix) == 0)
                return arg.substr(prefix.size());
        }
        return {};
    }

    static BenchParams
    resolveParams(bool as_worker)
    {
        BenchParams p = benchParamsFromEnv();
        if (as_worker) {
            // The parent owns the cache, the journal, the scheduler and
            // the retry policy; the worker is one bare attempt. It also
            // owns none of the sweep telemetry: no heartbeat, no
            // metrics/summary artifacts (the parent's accounting covers
            // the whole sweep).
            p.use_cache = false;
            p.resume = false;
            p.isolate = IsolateMode::Off; // no nested forking
            p.jobs = 1;
            p.heartbeat_ms = 0;
            p.metrics_dir.clear();
            p.write_summary = false;
        }
        return p;
    }

    /**
     * Arm the tracer from EVRSIM_TRACE (a bad spec is fatal, like any
     * other knob). Workers inherit the parent's environment, so in
     * worker mode the output path gets a `.worker-<pid>` suffix —
     * per-process trace files instead of every worker clobbering the
     * parent's.
     */
    void
    installTracing(bool as_worker)
    {
        Result<TraceConfig> cfg = traceConfigFromEnv();
        if (!cfg.ok())
            fatal("%s", cfg.status().message().c_str());
        if (!cfg.value().enabled())
            return;
        TraceConfig tc = cfg.value();
        if (as_worker)
            tc.path += ".worker-" + std::to_string(::getpid());
        traceConfigure(tc);
    }

    void
    installProcessLauncher()
    {
        std::string self = selfExecutablePath();
        if (self.empty()) {
            warn("EVRSIM_ISOLATE=process: cannot resolve "
                 "/proc/self/exe; jobs run in-process");
            return;
        }
        WorkerLimits limits;
        limits.mem_mb = params.job_mem_mb;
        limits.timeout_ms = params.job_timeout_ms;
        limits.grace_ms = defaultGraceMs(params.job_timeout_ms);
        runner.setWorkerLauncher(
            [self, limits](const std::string &, const SimConfig &,
                           const std::string &key) {
                WorkerOutcome o = superviseWorker(
                    {self, "--evrsim-worker=" + key}, limits);
                return WorkerAttempt{o.status, o.result, o.worker_died};
            });
    }

    /**
     * Injected worker faults, keyed by the job key so the *same* jobs
     * die on every attempt (and get crash-quarantined) while every
     * other job never does — which is what lets tests assert that
     * survivors of a faulted isolated sweep are byte-identical to a
     * fault-free run.
     */
    static void
    maybeInjectWorkerFault(const std::string &job)
    {
        FaultInjector inj(FaultInjector::planFromEnv());
        std::uint64_t key = fnv1a64(job);
        if (inj.shouldFailAt(FaultSite::WorkerCrash, key))
            std::raise(SIGSEGV);
        if (inj.shouldFailAt(FaultSite::WorkerHang, key))
            for (;;)
                std::this_thread::sleep_for(std::chrono::seconds(3600));
    }

    [[noreturn]] void
    runWorkerAndExit()
    {
        for (const RunRequest &r : plan) {
            if (runner.jobKey(r.alias, r.config) != worker_job)
                continue;
            maybeInjectWorkerFault(worker_job);
            Result<RunResult> attempt =
                runner.trySimulate(r.alias, r.config);
            // A failed attempt is still a *clean* worker exit: the
            // status rides the response, ErrorCode intact, so the
            // parent can distinguish "the job failed" from "the
            // worker died".
            bool wrote =
                writeWorkerResponse(kWorkerResponseFd, attempt);
            std::exit(wrote ? 0 : 1);
        }
        std::fprintf(stderr, "evrsim worker: no declared job matches "
                             "key '%s'\n",
                     worker_job.c_str());
        std::exit(2);
    }
};

} // namespace bench
} // namespace evrsim

#endif // EVRSIM_BENCH_BENCH_COMMON_HPP
