/**
 * @file
 * Shared plumbing for the per-figure bench binaries.
 *
 * Every binary resolves the same environment-driven parameters
 * (EVRSIM_FULL / EVRSIM_FRAMES / EVRSIM_NO_CACHE / EVRSIM_CACHE_DIR /
 * EVRSIM_JOBS), builds an ExperimentRunner over the Table III workload
 * registry, and shares simulation results through the on-disk cache, so
 * running all benches simulates each (workload, config) pair exactly
 * once.
 *
 * Binaries declare every run they will need up front (need()), then
 * prefetch() executes the whole batch on the parallel scheduler before
 * any table is printed; the subsequent run() calls inside the table
 * loops are all memo hits. prefetch() also prints the binary's sweep
 * throughput summary (sims/s, frames/s, parallel speedup).
 */
#ifndef EVRSIM_BENCH_BENCH_COMMON_HPP
#define EVRSIM_BENCH_BENCH_COMMON_HPP

#include <algorithm>
#include <vector>

#include "common/crash_handler.hpp"
#include "driver/experiment.hpp"
#include "driver/report.hpp"
#include "workloads/registry.hpp"

namespace evrsim {
namespace bench {

/** Runner + params bundle every bench binary starts from. */
struct BenchContext {
    BenchParams params;
    ExperimentRunner runner;
    std::vector<RunRequest> plan;
    BatchOutcome outcome; ///< filled by prefetch()

    BenchContext()
        : params(benchParamsFromEnv()),
          runner(workloads::factory(), params)
    {
        // A sweep that crashes hours in should at least say which
        // (workload, config, frame, tile) it was simulating.
        installCrashHandler();
    }

    GpuConfig gpu() const { return params.gpuConfig(); }

    /** Declare one run of this binary's sweep. */
    void
    need(const std::string &alias, const SimConfig &config)
    {
        plan.push_back({alias, config});
    }

    /** Declare @p configs for every Table III workload. */
    void
    needForAllWorkloads(const std::vector<SimConfig> &configs)
    {
        for (const std::string &alias : workloads::allAliases())
            for (const SimConfig &config : configs)
                need(alias, config);
    }

    /**
     * Execute every declared run on the EVRSIM_JOBS-wide scheduler and
     * print the sweep throughput summary. Later run() calls for the
     * declared triples return instantly from the in-memory memo.
     *
     * Runs that fail permanently (after quarantine/retry) are reported
     * and excluded from aliases(); the binary still prints its tables
     * from the surviving runs and returns exitCode() != 0.
     */
    void
    prefetch()
    {
        outcome = runner.runAllChecked(plan);
        printSweepSummary(runner);
        printFailureReport(outcome);
    }

    /** True when every declared run for @p alias succeeded. */
    bool
    ok(const std::string &alias) const
    {
        for (const RunFailure &f : outcome.failures)
            if (f.alias == alias)
                return false;
        return true;
    }

    /**
     * The planned workload aliases, in first-declared order without
     * duplicates, minus any with a failed run — the alias list the
     * binary's table loops should iterate.
     */
    std::vector<std::string>
    aliases() const
    {
        std::vector<std::string> out;
        for (const RunRequest &r : plan) {
            if (std::find(out.begin(), out.end(), r.alias) != out.end())
                continue;
            if (ok(r.alias))
                out.push_back(r.alias);
        }
        return out;
    }

    /** Process exit status: 0 on a clean sweep, 1 if any run failed. */
    int
    exitCode() const
    {
        return outcome.ok() ? 0 : 1;
    }
};

} // namespace bench
} // namespace evrsim

#endif // EVRSIM_BENCH_BENCH_COMMON_HPP
