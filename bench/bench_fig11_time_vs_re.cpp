/**
 * @file
 * Figure 11: execution time of RE and EVR normalized to the baseline
 * GPU, split into Geometry and Raster pipeline cycles — including the
 * geometry-side comparison between RE (pays signature combines for all
 * primitives) and EVR (skips combines for predicted-occluded ones but
 * pays LGT/FVP lookups).
 */
#include <cstdio>

#include "bench_common.hpp"

using namespace evrsim;
using namespace evrsim::bench;

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv);
    printBenchHeader("Figure 11",
                     "execution time of RE and EVR normalized to baseline",
                     ctx.params);

    ctx.needForAllWorkloads({SimConfig::baseline(ctx.gpu()),
                             SimConfig::renderingElimination(ctx.gpu()),
                             SimConfig::evr(ctx.gpu())});
    ctx.prefetch();

    ReportTable table({"bench", "RE", "RE-geom", "EVR", "EVR-geom",
                       "geom-delta"});
    std::vector<double> re_v, evr_v, geom_delta_v;

    for (const std::string &alias : ctx.aliases()) {
        RunResult base = ctx.runner.run(alias, SimConfig::baseline(ctx.gpu()));
        RunResult re =
            ctx.runner.run(alias, SimConfig::renderingElimination(ctx.gpu()));
        RunResult evr = ctx.runner.run(alias, SimConfig::evr(ctx.gpu()));

        double base_total = static_cast<double>(base.totalCycles());
        double re_ratio = re.totalCycles() / base_total;
        double evr_ratio = evr.totalCycles() / base_total;
        double re_geom = re.totals.geometry_cycles / base_total;
        double evr_geom = evr.totals.geometry_cycles / base_total;
        // Geometry-cycles change of EVR relative to RE (paper: -4% avg).
        double geom_delta =
            (static_cast<double>(evr.totals.geometry_cycles) -
             re.totals.geometry_cycles) /
            re.totals.geometry_cycles;

        re_v.push_back(re_ratio);
        evr_v.push_back(evr_ratio);
        geom_delta_v.push_back(geom_delta);

        table.addRow({alias, fmt(re_ratio), fmt(re_geom), fmt(evr_ratio),
                      fmt(evr_geom), fmtPct(geom_delta)});
    }

    table.print();
    std::printf("\naverages: RE %.2f, EVR %.2f of baseline time; EVR "
                "geometry cycles %.1f%% vs RE's\n",
                mean(re_v), mean(evr_v), mean(geom_delta_v) * 100.0);
    printPaperShape(
        "paper: EVR is faster than RE everywhere; skipping signature "
        "combines for occluded primitives reduces EVR's geometry time "
        "~4% below RE's (except hop, whose few primitives concentrate "
        "in few tiles); RE alone can lose time on low-redundancy 3D "
        "benchmarks (300/mst) where EVR still wins via reordering");
    return ctx.exitCode();
}
