/**
 * @file
 * Figure 6: energy consumption of the full EVR proposal normalized to
 * the baseline GPU, per benchmark, with the paper's overhead breakdown
 * (layer-identifier Parameter Buffer writes, EVR hardware, RE LUTs).
 */
#include <cstdio>

#include "bench_common.hpp"

using namespace evrsim;
using namespace evrsim::bench;

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv);
    printBenchHeader("Figure 6",
                     "GPU+memory energy of EVR normalized to baseline",
                     ctx.params);

    ctx.needForAllWorkloads(
        {SimConfig::baseline(ctx.gpu()), SimConfig::evr(ctx.gpu())});
    ctx.prefetch();

    ReportTable table({"bench", "EVR/base", "layer-wr", "EVR-hw", "RE-hw",
                       "bar"});
    std::vector<double> ratios;

    for (const std::string &alias : ctx.aliases()) {
        RunResult base = ctx.runner.run(alias, SimConfig::baseline(ctx.gpu()));
        RunResult evr = ctx.runner.run(alias, SimConfig::evr(ctx.gpu()));

        double base_total = base.totalEnergyNj();
        double ratio = evr.totalEnergyNj() / base_total;
        ratios.push_back(ratio);

        table.addRow({alias, fmt(ratio),
                      fmtPct(evr.energy.layer_writes_nj / base_total, 2),
                      fmtPct(evr.energy.evr_hardware_nj / base_total, 2),
                      fmtPct(evr.energy.re_hardware_nj / base_total, 2),
                      bar(ratio, 1.0)});
    }

    table.print();
    double avg = mean(ratios);
    std::printf("\naverage normalized energy: %.2f  (energy saving %.0f%%)\n",
                avg, (1.0 - avg) * 100.0);
    printPaperShape(
        "paper reports 43% average energy saving, savings in every "
        "benchmark (max >80% for cde/dpe); overheads: ~2.1% layer "
        "writes, ~1.2% EVR+RE hardware");
    return ctx.exitCode();
}
