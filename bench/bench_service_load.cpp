/**
 * @file
 * Load-test bench for the resident sweep service.
 *
 * Hammers an in-process daemon with concurrent clients and verifies the
 * service's robustness properties under load, printing throughput as it
 * goes:
 *
 *  1. cold cache — many concurrent small requests over few unique
 *     (workload, config) pairs: single-flight means each unique pair
 *     simulates exactly once no matter how many clients race for it;
 *  2. warm cache — N concurrent clients (default 64) each requesting
 *     every pair: zero new simulations, verified via the
 *     evrsim_runs_total{outcome} metrics counters, and every reply
 *     byte-identical;
 *  3. daemon kill — a forked daemon is SIGKILLed mid-sweep, restarted
 *     on the same cache directory, and a client attaches by request
 *     id: the recovered reply is byte-identical to the uninterrupted
 *     one;
 *  4. sharded fleet — the daemon runs with a two-shard worker fleet
 *     (this binary doubles as the shard program via --evrsim-shard),
 *     the full sweep is served through the shards, every reply is
 *     byte-identical to the single-process golden run, and a quiet
 *     fleet touches none of the failure machinery;
 *  5. remote TCP fleet — the control plane listens on loopback and two
 *     forked copies of this binary dial in as remote shards
 *     (--evrsim-remote-shard); the sweep is byte-identical again, a
 *     quiet fleet touches none of the fencing machinery, and the
 *     observability plane holds up under load: the drained control
 *     plane leaves one merged Chrome trace whose shard spans stitch
 *     under the dispatch spans by shared trace ids, and the exported
 *     metrics.json/metrics.prom artifacts self-parse with the fleet
 *     counters and the per-shard folded series present.
 *
 * Flags: --clients=N (default 64), --requests=M per client in the cold
 * phase (default 2). The ctest entry runs a scaled-down configuration;
 * the defaults are the standalone load test.
 */
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <fstream>

#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "driver/json.hpp"
#include "driver/supervisor.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "service/fleet.hpp"
#include "service/tcp_transport.hpp"
#include "workloads/registry.hpp"

namespace {

using namespace evrsim;

int g_failures = 0;

void
check(bool ok, const char *what)
{
    if (ok) {
        std::printf("  PASS  %s\n", what);
    } else {
        std::printf("  FAIL  %s\n", what);
        ++g_failures;
    }
}

BenchParams
loadParams(const std::string &cache_dir)
{
    BenchParams p;
    p.width = 160;
    p.height = 96;
    p.frames = 1;
    p.warmup = 0;
    p.use_cache = true;
    p.cache_dir = cache_dir;
    p.jobs = 1;
    p.heartbeat_ms = 0;
    p.write_summary = false;
    p.log_level = LogLevel::Quiet;
    // Enables the per-run evrsim_runs_total{outcome} counters the
    // single-flight verification below reads.
    p.metrics_dir = cache_dir;
    return p;
}

ServiceConfig
loadServiceConfig(const std::string &socket_path)
{
    ServiceConfig sc;
    sc.socket_path = socket_path;
    sc.queue_max = 100000; // the bench measures dedup, not shedding
    sc.client_quota = 100000;
    sc.poll_ms = 50;
    return sc;
}

ClientOptions
loadClient(const std::string &socket_path, const std::string &who)
{
    ClientOptions o;
    o.socket_path = socket_path;
    o.client_id = who;
    o.retries = 5;
    o.backoff_base_ms = 20;
    o.backoff_cap_ms = 500;
    o.poll_ms = 50;
    return o;
}

double
runsTotal(const char *outcome)
{
    Result<double> v =
        metricsValue("evrsim_runs_total", {{"outcome", outcome}});
    return v.ok() ? v.value() : 0.0;
}

/** Parse @p path as JSON; a null-typed Json on any failure. */
Json
parseJsonFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in.good())
        return Json();
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    Result<Json> doc = Json::tryParse(text);
    return doc.ok() ? doc.value() : Json();
}

} // namespace

int
main(int argc, char **argv)
{
    // When the fleet phase re-execs this binary as a worker shard, run
    // the shard loop instead of the bench (mirrors evrsim-daemon).
    std::string shard_params;
    int shard_index = shardFlagFromArgv(argc, argv, shard_params);
    if (shard_index >= 0)
        runShardAndExit(shard_index, workloads::factory(), BenchParams{},
                        shard_params);
    std::string remote_plane = remoteShardFlagFromArgv(argc, argv);
    if (!remote_plane.empty())
        runRemoteShardAndExit(remote_plane, workloads::factory(),
                              BenchParams{});

    int clients = 64;
    int requests = 2;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i] ? argv[i] : "";
        if (arg.rfind("--clients=", 0) == 0)
            clients = std::atoi(arg.c_str() + 10);
        else if (arg.rfind("--requests=", 0) == 0)
            requests = std::atoi(arg.c_str() + 11);
        else {
            std::fprintf(stderr,
                         "usage: bench_service_load [--clients=N] "
                         "[--requests=M]\n");
            return 2;
        }
    }
    if (clients < 1 || requests < 1)
        fatal("--clients and --requests must be >= 1");

    char tmpl[] = "/tmp/evrloadXXXXXX";
    char *dir = ::mkdtemp(tmpl);
    if (!dir)
        fatal("mkdtemp: %s", std::strerror(errno));
    std::string cache = dir;
    std::string sock = cache + "/s.sock";

    // Few unique pairs, many requests: the whole point is contention.
    std::vector<ClientRunSpec> pairs;
    const std::vector<std::string> &aliases = workloads::allAliases();
    for (std::size_t i = 0; i < 2 && i < aliases.size(); ++i)
        for (const char *config : {"baseline", "evr"})
            pairs.push_back({aliases[i], config});

    metricsReset();
    std::printf("service load: %d client(s), %d request(s) each, "
                "%zu unique (workload, config) pair(s)\n",
                clients, requests, pairs.size());

    std::map<std::string, std::string> golden; // pair -> result bytes
    {
        SweepService service(workloads::factory(), loadParams(cache),
                             loadServiceConfig(sock));
        if (Status s = service.start(); !s.ok())
            fatal("%s", s.message().c_str());

        // --- Phase 1: cold cache, many small concurrent requests ---
        auto t0 = std::chrono::steady_clock::now();
        std::atomic<int> request_failures{0};
        std::vector<std::thread> threads;
        for (int c = 0; c < clients; ++c)
            threads.emplace_back([&, c] {
                ServiceClient cl(
                    loadClient(sock, "load-" + std::to_string(c)));
                for (int r = 0; r < requests; ++r) {
                    const ClientRunSpec &pair =
                        pairs[static_cast<std::size_t>(c * requests + r) %
                              pairs.size()];
                    Result<SweepReply> reply = cl.runSweep(
                        "cold-" + std::to_string(c) + "-" +
                            std::to_string(r),
                        {pair});
                    if (!reply.ok() || reply.value().runs.size() != 1 ||
                        !reply.value().runs[0].status.ok())
                        request_failures.fetch_add(1);
                }
            });
        for (std::thread &t : threads)
            t.join();
        double cold_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
        int total_requests = clients * requests;
        std::printf("cold:  %d request(s) in %.2fs (%.0f req/s), "
                    "simulated=%.0f disk=%.0f memo=%.0f\n",
                    total_requests, cold_s, total_requests / cold_s,
                    runsTotal("simulated"), runsTotal("disk"),
                    runsTotal("memo"));
        check(request_failures.load() == 0, "cold: every request served");
        check(service.runner().sweepStats().simulated == pairs.size(),
              "cold: each unique pair simulated exactly once "
              "(single-flight)");

        // Golden copies for the byte-identity checks below.
        ServiceClient gold(loadClient(sock, "golden"));
        Result<SweepReply> gr = gold.runSweep("golden-all", pairs);
        if (!gr.ok())
            fatal("golden request failed: %s",
                  gr.status().message().c_str());
        for (const ClientRunOutcome &run : gr.value().runs)
            golden[run.workload + "/" + run.config] = run.result_json;

        // --- Phase 2: warm cache, N concurrent full requests ---
        double simulated_before = runsTotal("simulated");
        t0 = std::chrono::steady_clock::now();
        std::atomic<int> warm_failures{0};
        std::atomic<int> byte_mismatches{0};
        threads.clear();
        for (int c = 0; c < clients; ++c)
            threads.emplace_back([&, c] {
                ServiceClient cl(
                    loadClient(sock, "warm-" + std::to_string(c)));
                Result<SweepReply> reply = cl.runSweep(
                    "warm-" + std::to_string(c), pairs);
                if (!reply.ok() ||
                    reply.value().runs.size() != pairs.size()) {
                    warm_failures.fetch_add(1);
                    return;
                }
                for (const ClientRunOutcome &run : reply.value().runs)
                    if (!run.status.ok() ||
                        run.result_json !=
                            golden[run.workload + "/" + run.config])
                        byte_mismatches.fetch_add(1);
            });
        for (std::thread &t : threads)
            t.join();
        double warm_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
        std::printf("warm:  %d request(s) x %zu run(s) in %.2fs "
                    "(%.0f run/s), memo=%.0f\n",
                    clients, pairs.size(), warm_s,
                    clients * pairs.size() / warm_s, runsTotal("memo"));
        check(warm_failures.load() == 0, "warm: every request served");
        check(byte_mismatches.load() == 0,
              "warm: every reply byte-identical to the golden run");
        check(runsTotal("simulated") == simulated_before,
              "warm: zero new simulations across concurrent clients "
              "(metrics counters)");
        service.drain();
    }

    // --- Phase 3: daemon killed mid-sweep, restart, attach ---
#ifdef EVRSIM_SANITIZED
    std::printf("kill:  skipped under sanitizers (fork + threads)\n");
#else
    {
        char tmpl2[] = "/tmp/evrloadXXXXXX";
        char *dir2 = ::mkdtemp(tmpl2);
        if (!dir2)
            fatal("mkdtemp: %s", std::strerror(errno));
        std::string cache2 = dir2;
        std::string sock2 = cache2 + "/s.sock";

        std::fflush(stdout); // the child inherits the stdio buffer
        pid_t pid = ::fork();
        if (pid < 0)
            fatal("fork: %s", std::strerror(errno));
        if (pid == 0) {
            ::alarm(120);
            BenchParams p = loadParams(cache2);
            p.resume = true;
            SweepService daemon(workloads::factory(), p,
                                loadServiceConfig(sock2));
            if (!daemon.start().ok())
                ::_exit(3);
            for (;;)
                ::pause();
        }
        for (int waited = 0;
             waited < 10000 && ::access(sock2.c_str(), F_OK) != 0;
             waited += 20)
            std::this_thread::sleep_for(std::chrono::milliseconds(20));

        ClientOptions o = loadClient(sock2, "victim");
        o.retries = 0;
        std::atomic<bool> fired{false};
        ServiceClient victim(o);
        (void)victim.runSweep("load-kill", pairs, [&](const Json &) {
            if (!fired.exchange(true))
                ::kill(pid, SIGKILL);
        });
        int wstatus = 0;
        ::waitpid(pid, &wstatus, 0);
        check(WIFSIGNALED(wstatus) && WTERMSIG(wstatus) == SIGKILL,
              "kill: daemon died by SIGKILL mid-sweep");

        BenchParams p = loadParams(cache2);
        p.resume = true;
        SweepService restarted(workloads::factory(), p,
                               loadServiceConfig(sock2));
        if (Status s = restarted.start(); !s.ok())
            fatal("restart: %s", s.message().c_str());
        ServiceClient again(loadClient(sock2, "victim"));
        Result<SweepReply> recovered = again.attach("load-kill");
        check(recovered.ok(), "kill: reconnect by request id served");
        if (recovered.ok()) {
            bool identical =
                recovered.value().runs.size() == pairs.size();
            for (const ClientRunOutcome &run : recovered.value().runs)
                identical =
                    identical && run.status.ok() &&
                    run.result_json ==
                        golden[run.workload + "/" + run.config];
            check(identical, "kill: recovered reply byte-identical to "
                             "the uninterrupted run");
        }
        restarted.drain();
        std::error_code ec;
        std::filesystem::remove_all(cache2, ec);
    }
#endif

    // --- Phase 4: sharded worker fleet, quiet run ---
#ifdef EVRSIM_SANITIZED
    std::printf("fleet: skipped under sanitizers (fork + threads)\n");
#else
    {
        char tmpl3[] = "/tmp/evrloadXXXXXX";
        char *dir3 = ::mkdtemp(tmpl3);
        if (!dir3)
            fatal("mkdtemp: %s", std::strerror(errno));
        std::string cache3 = dir3;
        std::string sock3 = cache3 + "/s.sock";

        ServiceConfig sc = loadServiceConfig(sock3);
        sc.fleet.shards = 2;
        sc.fleet.shard_argv = {selfExecutablePath()};
        if (sc.fleet.shard_argv[0].empty())
            fatal("fleet: cannot resolve own executable path");

        SweepService fleet_svc(workloads::factory(), loadParams(cache3),
                               sc);
        if (Status s = fleet_svc.start(); !s.ok())
            fatal("fleet: %s", s.message().c_str());

        auto t0 = std::chrono::steady_clock::now();
        ServiceClient cl(loadClient(sock3, "fleet"));
        Result<SweepReply> reply = cl.runSweep("fleet-all", pairs);
        double fleet_s = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
        check(reply.ok() && reply.value().runs.size() == pairs.size(),
              "fleet: sharded sweep served");
        if (reply.ok() && reply.value().runs.size() == pairs.size()) {
            bool identical = true;
            for (const ClientRunOutcome &run : reply.value().runs)
                identical =
                    identical && run.status.ok() &&
                    run.result_json ==
                        golden[run.workload + "/" + run.config];
            check(identical, "fleet: every reply byte-identical to the "
                             "single-process golden run");
        }
        const ShardFleet *fl = fleet_svc.fleet();
        check(fl != nullptr, "fleet: daemon actually ran sharded");
        if (fl) {
            ShardFleet::Stats st = fl->stats();
            std::printf("fleet: %zu run(s) over %d shard(s) in %.2fs "
                        "(%.0f run/s), dispatched=%llu completed=%llu\n",
                        pairs.size(), sc.fleet.shards, fleet_s,
                        pairs.size() / fleet_s,
                        static_cast<unsigned long long>(st.dispatched),
                        static_cast<unsigned long long>(st.completed));
            check(st.completed >= pairs.size(),
                  "fleet: every run completed through the fleet");
            check(st.restarts == 0 && st.breaker_opens == 0 &&
                      st.degraded == 0 && st.wire_errors == 0,
                  "fleet: quiet run touched no failure machinery");
        }
        fleet_svc.drain();
        std::error_code ec3;
        std::filesystem::remove_all(cache3, ec3);
    }

    // --- Phase 5: remote TCP fleet over loopback, quiet run ---
    {
        char tmpl4[] = "/tmp/evrloadXXXXXX";
        char *dir4 = ::mkdtemp(tmpl4);
        if (!dir4)
            fatal("mkdtemp: %s", std::strerror(errno));
        std::string cache4 = dir4;
        std::string sock4 = cache4 + "/s.sock";

        ServiceConfig sc = loadServiceConfig(sock4);
        sc.fleet.shards = 2;
        sc.fleet.listen = "127.0.0.1:0"; // slots filled by dial-in
        std::string self = selfExecutablePath();
        if (self.empty())
            fatal("remote: cannot resolve own executable path");

        // Trace the whole remote leg: the dial-in shards inherit
        // EVRSIM_TRACE and ship their spans back on result frames; the
        // control plane stitches them into one merged file at drain.
        ::setenv("EVRSIM_TRACE", "driver,worker", 1);
        std::string trace_path = cache4 + "/remote_trace.json";
        TraceConfig tcfg;
        tcfg.mask = (1u << static_cast<unsigned>(TraceCat::Driver)) |
                    (1u << static_cast<unsigned>(TraceCat::Worker));
        tcfg.path = trace_path;
        traceConfigure(tcfg);

        SweepService remote_svc(workloads::factory(), loadParams(cache4),
                                sc);
        if (Status s = remote_svc.start(); !s.ok())
            fatal("remote: %s", s.message().c_str());
        const ShardFleet *fl = remote_svc.fleet();
        if (!fl || fl->listenAddress().empty())
            fatal("remote: control plane is not listening");
        std::string addr = fl->listenAddress();

        std::vector<pid_t> kids;
        std::string flag = "--evrsim-remote-shard=" + addr;
        for (int i = 0; i < sc.fleet.shards; ++i) {
            pid_t pid = ::fork();
            if (pid == 0) {
                ::execl(self.c_str(), self.c_str(), flag.c_str(),
                        static_cast<char *>(nullptr));
                _exit(127);
            }
            if (pid > 0)
                kids.push_back(pid);
        }

        auto reg_deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(15);
        while (fl->stats().registrations <
                   static_cast<std::uint64_t>(sc.fleet.shards) &&
               std::chrono::steady_clock::now() < reg_deadline)
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        check(fl->stats().registrations ==
                  static_cast<std::uint64_t>(sc.fleet.shards),
              "remote: both shards dialed in and registered");

        auto t0 = std::chrono::steady_clock::now();
        ServiceClient cl(loadClient(sock4, "remote"));
        Result<SweepReply> reply = cl.runSweep("remote-all", pairs);
        double remote_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
        check(reply.ok() && reply.value().runs.size() == pairs.size(),
              "remote: sweep served through the TCP fleet");
        if (reply.ok() && reply.value().runs.size() == pairs.size()) {
            bool identical = true;
            for (const ClientRunOutcome &run : reply.value().runs)
                identical =
                    identical && run.status.ok() &&
                    run.result_json ==
                        golden[run.workload + "/" + run.config];
            check(identical, "remote: every reply byte-identical to "
                             "the single-process golden run");
        }
        ShardFleet::Stats st = fl->stats();
        std::printf("remote: %zu run(s) over %d TCP shard(s) in %.2fs "
                    "(%.0f run/s), dispatched=%llu completed=%llu\n",
                    pairs.size(), sc.fleet.shards, remote_s,
                    pairs.size() / remote_s,
                    static_cast<unsigned long long>(st.dispatched),
                    static_cast<unsigned long long>(st.completed));
        check(st.completed >= pairs.size(),
              "remote: every run completed through the fleet");
        check(st.fences == 0 && st.reconnects == 0 &&
                  st.partitions == 0 && st.stale_epochs == 0 &&
                  st.failovers == 0 && st.degraded == 0,
              "remote: quiet run touched no fencing machinery");

        // Aggregated metrics artifacts before teardown: the merged
        // registry (daemon counters + per-shard folded series) must
        // export as self-parsing metrics.json/metrics.prom.
        if (Status s = remote_svc.runner().writeMetricsArtifacts();
            !s.ok())
            fatal("remote: %s", s.message().c_str());

        remote_svc.drain(); // also flushes the merged trace
        for (pid_t pid : kids) {
            ::kill(pid, SIGTERM);
            int ws = 0;
            while (::waitpid(pid, &ws, 0) < 0 && errno == EINTR) {
            }
        }
        ::unsetenv("EVRSIM_TRACE");

        // One merged Chrome trace: shard spans adopted into synthetic
        // pid lanes, stitched to the dispatch spans by shared ids.
        Json trace_doc = parseJsonFile(trace_path);
        const Json *tev = trace_doc.find("traceEvents");
        check(tev && tev->type() == Json::Type::Array && tev->size() > 0,
              "remote: merged trace file exists and parses");
        if (tev && tev->type() == Json::Type::Array) {
            std::map<std::string, bool> dispatch_ids;
            int shard_spans = 0, stitched = 0;
            for (std::size_t i = 0; i < tev->size(); ++i) {
                const Json &e = tev->at(i);
                const Json *args = e.find("args");
                std::string tid_hex =
                    args ? args->get("trace_id", Json("")).asString()
                         : "";
                if (tid_hex.empty())
                    continue;
                std::string name = e.get("name", Json("")).asString();
                if (name == "fleet-dispatch")
                    dispatch_ids[tid_hex] = true;
                else if (e.get("pid", Json(0.0)).asDouble() >= 1000000 &&
                         name == "shard-run")
                    ++shard_spans;
            }
            for (std::size_t i = 0; i < tev->size(); ++i) {
                const Json &e = tev->at(i);
                if (e.get("pid", Json(0.0)).asDouble() < 1000000 ||
                    e.get("name", Json("")).asString() != "shard-run")
                    continue;
                const Json *args = e.find("args");
                if (args && dispatch_ids.count(args->get(
                                "trace_id", Json("")).asString()))
                    ++stitched;
            }
            std::printf("remote: trace events=%zu dispatch ids=%zu "
                        "shard spans=%d stitched=%d\n",
                        tev->size(), dispatch_ids.size(), shard_spans,
                        stitched);
            check(!dispatch_ids.empty() && shard_spans > 0,
                  "remote: trace has dispatch spans and adopted shard "
                  "spans");
            check(stitched == shard_spans && stitched > 0,
                  "remote: every shard span stitches to a dispatch "
                  "span by trace id");
        }

        // Aggregated metrics artifacts self-parse and carry both the
        // control plane's counters and the shard-folded series.
        Json mjson = parseJsonFile(cache4 + "/metrics.json");
        const Json *metrics = mjson.find("metrics");
        bool saw_fleet = false, saw_shard_label = false;
        if (metrics && metrics->type() == Json::Type::Array) {
            for (std::size_t i = 0; i < metrics->size(); ++i) {
                const Json &m = metrics->at(i);
                if (m.get("name", Json("")).asString() ==
                    "evrsim_fleet_dispatched_total")
                    saw_fleet = true;
                const Json *labels = m.find("labels");
                if (labels && labels->find("shard"))
                    saw_shard_label = true;
            }
        }
        check(metrics && metrics->type() == Json::Type::Array,
              "remote: metrics.json exists and parses");
        check(saw_fleet,
              "remote: merged metrics carry the fleet counters");
        check(saw_shard_label,
              "remote: merged metrics carry shard-labeled folded "
              "series");
        std::ifstream prom(cache4 + "/metrics.prom");
        std::string prom_text((std::istreambuf_iterator<char>(prom)),
                              std::istreambuf_iterator<char>());
        check(prom_text.find("# TYPE evrsim_fleet_dispatched_total "
                             "counter") != std::string::npos,
              "remote: metrics.prom exists with typed fleet counters");

        std::error_code ec4;
        std::filesystem::remove_all(cache4, ec4);
    }
#endif

    std::error_code ec;
    std::filesystem::remove_all(cache, ec);
    std::printf("service load: %s\n",
                g_failures == 0 ? "all checks passed" : "FAILURES");
    return g_failures == 0 ? 0 : 1;
}
