/**
 * @file
 * Figure 9: percentage of tiles detected as equal to the previous frame
 * — baseline Rendering Elimination, the EVR-aided version, and an
 * oracle that counts every tile whose pixels truly did not change.
 */
#include <cstdio>

#include "bench_common.hpp"

using namespace evrsim;
using namespace evrsim::bench;

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv);
    printBenchHeader("Figure 9",
                     "redundant (equal) tiles detected: RE / EVR / oracle",
                     ctx.params);

    ctx.needForAllWorkloads({SimConfig::renderingElimination(ctx.gpu()),
                             SimConfig::evr(ctx.gpu()),
                             SimConfig::baseline(ctx.gpu())});
    ctx.prefetch();

    ReportTable table({"bench", "RE", "EVR", "oracle", "EVR-RE", "bar(EVR)"});
    std::vector<double> re_v, evr_v, oracle_v;

    for (const std::string &alias : ctx.aliases()) {
        RunResult re =
            ctx.runner.run(alias, SimConfig::renderingElimination(ctx.gpu()));
        RunResult evr = ctx.runner.run(alias, SimConfig::evr(ctx.gpu()));
        // The ground-truth equal-tile count is measured on the baseline
        // run (it renders everything and compares against the previous
        // frame's pixels).
        RunResult base = ctx.runner.run(alias, SimConfig::baseline(ctx.gpu()));

        double r = re.tilesSkippedRatio();
        double e = evr.tilesSkippedRatio();
        double o = base.tilesEqualOracleRatio();
        re_v.push_back(r);
        evr_v.push_back(e);
        oracle_v.push_back(o);

        table.addRow({alias, fmtPct(r), fmtPct(e), fmtPct(o),
                      fmtPct(e - r), bar(e, 1.0)});
    }

    table.print();
    std::printf("\naverages: RE %.1f%%, EVR %.1f%%, oracle %.1f%% "
                "(EVR detects %.1f%% more tiles than RE)\n",
                mean(re_v) * 100.0, mean(evr_v) * 100.0,
                mean(oracle_v) * 100.0, (mean(evr_v) - mean(re_v)) * 100.0);
    printPaperShape(
        "paper: EVR skips 54% of tiles on average, ~5% more than RE; "
        "largest gains where hidden geometry moves under covers "
        "(300/mst HUDs, wmw/hay menus, >10% extra there); oracle above "
        "both everywhere");
    return ctx.exitCode();
}
