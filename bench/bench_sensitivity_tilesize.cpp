/**
 * @file
 * Sensitivity study (beyond the paper): how the tile size — the paper
 * fixes 16x16, which also sizes the LGT/FVP Table (one entry per tile)
 * and the Layer Buffer — trades off EVR's effectiveness.
 *
 * Smaller tiles give the FVP finer granularity (more primitives are
 * "entirely behind" a tile's farthest visible point) but multiply the
 * binning work and table sizes; larger tiles dilute both RE and EVR
 * because one changing primitive dirties a bigger screen area.
 */
#include <cstdio>

#include "bench_common.hpp"

using namespace evrsim;
using namespace evrsim::bench;

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv);
    printBenchHeader("Sensitivity",
                     "EVR vs tile size (paper fixes 16x16)", ctx.params);

    const int kTileSizes[] = {8, 16, 32};
    // One high-redundancy 2D, one popup 2D, one 3D-with-HUD benchmark.
    const char *kAliases[] = {"ccs", "wmw", "300"};

    for (const char *alias : kAliases) {
        ctx.need(alias, SimConfig::baseline(ctx.gpu()));
        for (int ts : kTileSizes) {
            GpuConfig gpu = ctx.gpu();
            gpu.tile_size = ts;
            ctx.need(alias, SimConfig::evr(gpu));
        }
    }
    ctx.prefetch();

    ReportTable table({"bench", "tile", "skip%", "cycles/base16",
                       "fvp-entries"});

    for (const std::string &alias : ctx.aliases()) {
        // Reference: baseline at the paper's 16x16.
        RunResult base16 =
            ctx.runner.run(alias, SimConfig::baseline(ctx.gpu()));
        double ref = static_cast<double>(base16.totalCycles());

        for (int ts : kTileSizes) {
            GpuConfig gpu = ctx.gpu();
            gpu.tile_size = ts;
            RunResult evr = ctx.runner.run(alias, SimConfig::evr(gpu));
            table.addRow({alias, std::to_string(ts) + "x" +
                                     std::to_string(ts),
                          fmtPct(evr.tilesSkippedRatio()),
                          fmt(evr.totalCycles() / ref),
                          std::to_string(gpu.tileCount())});
        }
    }

    table.print();
    printPaperShape(
        "16x16 balances skip granularity against FVP Table size and "
        "binning cost; 8x8 skips a larger screen fraction at 4x the "
        "table entries, 32x32 loses skips because any change dirties "
        "4x the area — consistent with the paper's choice");
    return ctx.exitCode();
}
