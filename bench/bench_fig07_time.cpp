/**
 * @file
 * Figure 7: execution time of the full EVR proposal normalized to the
 * baseline GPU, split into Geometry and Raster pipeline cycles.
 */
#include <cstdio>

#include "bench_common.hpp"

using namespace evrsim;
using namespace evrsim::bench;

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv);
    printBenchHeader("Figure 7",
                     "execution time of EVR normalized to baseline "
                     "(geometry/raster split)",
                     ctx.params);

    ctx.needForAllWorkloads(
        {SimConfig::baseline(ctx.gpu()), SimConfig::evr(ctx.gpu())});
    ctx.prefetch();

    ReportTable table(
        {"bench", "EVR/base", "geom", "raster", "geom-share", "bar"});
    std::vector<double> ratios;

    for (const std::string &alias : ctx.aliases()) {
        RunResult base = ctx.runner.run(alias, SimConfig::baseline(ctx.gpu()));
        RunResult evr = ctx.runner.run(alias, SimConfig::evr(ctx.gpu()));

        double base_total = static_cast<double>(base.totalCycles());
        double geom = evr.totals.geometry_cycles / base_total;
        double raster = evr.totals.raster_cycles / base_total;
        double ratio = geom + raster;
        ratios.push_back(ratio);

        table.addRow({alias, fmt(ratio), fmt(geom), fmt(raster),
                      fmtPct(geom / ratio), bar(ratio, 1.0)});
    }

    table.print();
    double avg = mean(ratios);
    std::printf("\naverage normalized time: %.2f  (speed-up %.0f%% time "
                "reduction)\n",
                avg, (1.0 - avg) * 100.0);
    printPaperShape(
        "paper reports 39% average execution-time reduction, gains in "
        "every benchmark (max >70% for ccs/cde/dpe); geometry overhead "
        "of signatures ~0.5% of total");
    return ctx.exitCode();
}
