/**
 * @file
 * Table I: the visibility casuistry of primitives across consecutive
 * frames, measured per (primitive, tile) pair on rendered tiles.
 * "Frame i" visibility is the FVP-based prediction (resolved from the
 * previous frame), "frame i+1" is the rendered ground truth — scenario
 * C (occluded -> occluded) is the case EVR's signature filtering
 * exploits; scenario D (occluded -> visible) is the safety-critical
 * misprediction that must never corrupt output.
 */
#include <cstdio>

#include "bench_common.hpp"

using namespace evrsim;
using namespace evrsim::bench;

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv);
    printBenchHeader("Table I",
                     "visibility casuistry across frames (per prim-tile "
                     "pair, EVR prediction vs rendered ground truth)",
                     ctx.params);

    ctx.needForAllWorkloads({SimConfig::evrReorderOnly(ctx.gpu())});
    ctx.prefetch();

    ReportTable table({"bench", "A vis->vis", "B vis->occ", "C occ->occ",
                       "D occ->vis", "pred-precision"});

    std::uint64_t grand[4] = {0, 0, 0, 0};

    for (const std::string &alias : ctx.aliases()) {
        // Reorder-only: every tile renders, so ground truth exists for
        // every pair (RE-skipped tiles have no per-frame ground truth).
        RunResult r =
            ctx.runner.run(alias, SimConfig::evrReorderOnly(ctx.gpu()));

        std::uint64_t total = 0;
        for (int s = 0; s < 4; ++s) {
            total += r.totals.casuistry[s];
            grand[s] += r.totals.casuistry[s];
        }
        if (total == 0)
            total = 1;

        std::uint64_t pred_occl = r.totals.pred_occluded_correct +
                                  r.totals.pred_occluded_wrong;
        double precision =
            pred_occl == 0 ? 1.0
                           : static_cast<double>(
                                 r.totals.pred_occluded_correct) /
                                 pred_occl;

        table.addRow(
            {alias,
             fmtPct(static_cast<double>(r.totals.casuistry[0]) / total),
             fmtPct(static_cast<double>(r.totals.casuistry[1]) / total),
             fmtPct(static_cast<double>(r.totals.casuistry[2]) / total),
             fmtPct(static_cast<double>(r.totals.casuistry[3]) / total),
             fmtPct(precision)});
    }

    table.print();

    std::uint64_t g = grand[0] + grand[1] + grand[2] + grand[3];
    if (g == 0)
        g = 1;
    std::printf("\nsuite totals: A %.1f%%  B %.1f%%  C %.1f%%  D %.1f%%\n",
                100.0 * grand[0] / g, 100.0 * grand[1] / g,
                100.0 * grand[2] / g, 100.0 * grand[3] / g);
    printPaperShape(
        "scenario C is the RE improvement (hidden primitives whose "
        "changes are ignored); scenario D must be rare and is rendered "
        "safely (signature mismatch or poisoning forces a re-render)");
    return ctx.exitCode();
}
