/**
 * @file
 * Table II: dump the modelled GPU parameters, then microbenchmark the
 * hardware structures the paper adds (Layer Generator Table, FVP Table,
 * Layer Buffer, Signature Buffer / CRC combine) and the hot simulator
 * paths, using google-benchmark.
 */
#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/crc32.hpp"
#include "evr/evr.hpp"
#include "gpu/gpu_config.hpp"
#include "gpu/rasterizer.hpp"
#include "mem/memory_system.hpp"
#include "re/signature_buffer.hpp"

using namespace evrsim;

namespace {

void
dumpTableII()
{
    GpuConfig gpu;
    const MemorySystemConfig &m = gpu.mem;
    std::printf("================ Table II: GPU simulation parameters "
                "================\n");
    std::printf("Tech specs            %.0f MHz\n", gpu.clock_mhz);
    std::printf("Screen resolution     %dx%d\n", gpu.screen_width,
                gpu.screen_height);
    std::printf("Tile size             %dx%d pixels (%d tiles)\n",
                gpu.tile_size, gpu.tile_size, gpu.tileCount());
    std::printf("Main memory           %llu-%llu cycles, %u B/cycle\n",
                static_cast<unsigned long long>(m.dram.row_hit_latency),
                static_cast<unsigned long long>(m.dram.row_miss_latency),
                m.dram.bytes_per_cycle);
    auto cache_line = [](const char *name, const CacheConfig &c,
                         unsigned count) {
        std::printf("%-21s %u B/line, %u-way, %u KB x%u, %llu cycle(s)\n",
                    name, c.line_bytes, c.ways, c.size_bytes / 1024, count,
                    static_cast<unsigned long long>(c.hit_latency));
    };
    cache_line("Vertex cache", m.vertex_cache, 1);
    cache_line("Texture caches", m.texture_cache, m.num_texture_caches);
    cache_line("Tile cache", m.tile_cache, 1);
    cache_line("L2 cache", m.l2_cache, 1);
    std::printf("Primitive assembly    %.0f triangle/cycle\n",
                gpu.assembly_tris_per_cycle);
    std::printf("Rasterizer            %.0f attributes/cycle\n",
                gpu.raster_attrs_per_cycle);
    std::printf("Vertex processors     %d\n", gpu.vertex_processors);
    std::printf("Fragment processors   %d\n", gpu.fragment_processors);
    std::printf("Layer Generator Table %d entries, 3 bytes/entry\n",
                gpu.tileCount());
    std::printf("FVP Table             %d entries, 4 bytes/entry\n",
                gpu.tileCount());
    std::printf("Layer Buffer          %d bytes (16x16 x 2B)\n",
                gpu.tile_size * gpu.tile_size * 2);
    std::printf("=================================================="
                "================\n\n");
}

// --- Microbenchmarks of the added hardware structures -------------------

void
BM_LgtAssign(benchmark::State &state)
{
    LayerGeneratorTable lgt(3600);
    lgt.frameStart();
    std::uint32_t cmd = 0;
    int tile = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(lgt.assign(tile, cmd, (cmd & 3) == 0));
        tile = (tile + 7) % 3600;
        ++cmd;
    }
}
BENCHMARK(BM_LgtAssign);

void
BM_FvpPredict(benchmark::State &state)
{
    FvpTable fvp(3600);
    for (int t = 0; t < 3600; ++t) {
        if (t & 1)
            fvp.storeWoz(t, 0.5f);
        else
            fvp.storeNwoz(t, 3);
    }
    int tile = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            fvp.predictOccluded(tile, true, 0.75f, 2));
        tile = (tile + 13) % 3600;
    }
}
BENCHMARK(BM_FvpPredict);

void
BM_LayerBufferTileSweep(benchmark::State &state)
{
    LayerBuffer lb(256);
    lb.tileStart(16, 16);
    for (int y = 0; y < 16; ++y)
        for (int x = 0; x < 16; ++x)
            lb.opaqueWrite(x, y, static_cast<std::uint16_t>(1 + (x & 3)),
                           false);
    for (auto _ : state)
        benchmark::DoNotOptimize(lb.computeLFar());
}
BENCHMARK(BM_LayerBufferTileSweep);

void
BM_SignatureCombine(benchmark::State &state)
{
    SignatureBuffer sb(3600);
    std::uint32_t crc = 0x12345678;
    int tile = 0;
    for (auto _ : state) {
        sb.combine(tile, crc, 128);
        crc = crc * 1664525u + 1013904223u;
        tile = (tile + 11) % 3600;
    }
}
BENCHMARK(BM_SignatureCombine);

void
BM_Crc32PrimitiveAttrs(benchmark::State &state)
{
    unsigned char attrs[128];
    for (int i = 0; i < 128; ++i)
        attrs[i] = static_cast<unsigned char>(i * 7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(Crc32::of(attrs, sizeof(attrs)));
        attrs[0]++;
    }
}
BENCHMARK(BM_Crc32PrimitiveAttrs);

void
BM_CacheAccess(benchmark::State &state)
{
    DramModel dram;
    SetAssocCache cache({"bench", 8 * 1024, 64, 2, 1}, &dram);
    Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cache.access(addr, 4, false, TrafficClass::Texture));
        addr = (addr + 68) % (16 * 1024);
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_RasterizeTileSizedTriangle(benchmark::State &state)
{
    ShadedPrimitive prim;
    prim.v[0] = {{0, 0}, 0.5f, 1.0f, {1, 0, 0, 1}, {0, 0}};
    prim.v[1] = {{16, 0}, 0.5f, 1.0f, {0, 1, 0, 1}, {1, 0}};
    prim.v[2] = {{0, 16}, 0.5f, 1.0f, {0, 0, 1, 1}, {0, 1}};
    RectI tile{0, 0, 16, 16};
    FrameStats stats;
    for (auto _ : state) {
        float acc = 0;
        Rasterizer::rasterize(prim, tile, stats, [&](const Fragment &f) {
            acc += f.depth;
        });
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_RasterizeTileSizedTriangle);

} // namespace

int
main(int argc, char **argv)
{
    dumpTableII();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
