/**
 * @file
 * Headline summary: the section-VII numbers the paper leads with,
 * measured across the whole suite —
 *   39% execution-time reduction, 43% energy reduction, 20% overshading
 *   reduction (3D), 54% of tiles skipped (+5% over RE), and the
 *   2.1% / 1.2% / 0.5% overheads.
 */
#include <cstdio>

#include "bench_common.hpp"

using namespace evrsim;
using namespace evrsim::bench;

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv);
    printBenchHeader("Summary",
                     "headline paper claims vs measured (whole suite)",
                     ctx.params);

    ctx.needForAllWorkloads({SimConfig::baseline(ctx.gpu()),
                             SimConfig::renderingElimination(ctx.gpu()),
                             SimConfig::evr(ctx.gpu())});
    for (const std::string &alias : workloads::allAliases())
        if (workloads::infoFor(alias).is_3d)
            ctx.need(alias, SimConfig::evrReorderOnly(ctx.gpu()));
    ctx.prefetch();

    std::vector<double> time_ratio, energy_ratio, re_skip, evr_skip,
        layer_overhead, hw_overhead, geom_sig_share;
    std::vector<double> overshade_base, overshade_evr;

    for (const std::string &alias : ctx.aliases()) {
        RunResult base = ctx.runner.run(alias, SimConfig::baseline(ctx.gpu()));
        RunResult re =
            ctx.runner.run(alias, SimConfig::renderingElimination(ctx.gpu()));
        RunResult evr = ctx.runner.run(alias, SimConfig::evr(ctx.gpu()));

        time_ratio.push_back(static_cast<double>(evr.totalCycles()) /
                             base.totalCycles());
        energy_ratio.push_back(evr.totalEnergyNj() / base.totalEnergyNj());
        re_skip.push_back(re.tilesSkippedRatio());
        evr_skip.push_back(evr.tilesSkippedRatio());
        layer_overhead.push_back(evr.energy.layer_writes_nj /
                                 base.totalEnergyNj());
        hw_overhead.push_back((evr.energy.evr_hardware_nj +
                               evr.energy.re_hardware_nj) /
                              base.totalEnergyNj());

        if (workloads::infoFor(alias).is_3d) {
            RunResult ro =
                ctx.runner.run(alias, SimConfig::evrReorderOnly(ctx.gpu()));
            overshade_base.push_back(base.shadedPerPixel());
            overshade_evr.push_back(ro.shadedPerPixel());
        }
    }

    ReportTable table({"metric", "paper", "measured"});
    table.addRow({"execution-time reduction", "39%",
                  fmtPct(1.0 - mean(time_ratio))});
    table.addRow({"energy reduction", "43%",
                  fmtPct(1.0 - mean(energy_ratio))});
    table.addRow({"overshading reduction (3D)", "20%",
                  fmtPct(1.0 - mean(overshade_evr) / mean(overshade_base))});
    table.addRow({"tiles skipped by EVR", "54%", fmtPct(mean(evr_skip))});
    table.addRow({"extra tiles vs RE", "+5%",
                  "+" + fmtPct(mean(evr_skip) - mean(re_skip))});
    table.addRow({"layer-write energy overhead", "2.1%",
                  fmtPct(mean(layer_overhead))});
    table.addRow({"added-hardware energy overhead", "1.2%",
                  fmtPct(mean(hw_overhead))});
    table.print();

    printPaperShape(
        "absolute numbers depend on the synthetic workload mix and the "
        "analytic timing/energy substitutes; the qualitative claims — "
        "EVR wins everywhere, overheads ~1-2%, EVR > RE on tiles — are "
        "the reproduction target (see EXPERIMENTS.md)");
    return ctx.exitCode();
}
