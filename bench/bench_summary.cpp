/**
 * @file
 * Headline summary: the section-VII numbers the paper leads with,
 * measured across the whole suite —
 *   39% execution-time reduction, 43% energy reduction, 20% overshading
 *   reduction (3D), 54% of tiles skipped (+5% over RE), and the
 *   2.1% / 1.2% / 0.5% overheads.
 *
 * Secondary mode, --bench-speed[=<path>]: measure the simulator's own
 * raw throughput (no result cache, direct GpuSimulator runs) in two
 * legs — the scalar reference raster path and the SoA/SIMD fast path —
 * and emit BENCH_speed.json with sims/s, frames/s and per-stage wall
 * time from the tracer's span totals. With
 * --bench-speed-baseline=<path> the optimized leg's sims/s is gated
 * against the checked-in floor (fail if it regresses more than 25%),
 * which is what the `speed` ctest label runs.
 */
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "bench_common.hpp"
#include "common/atomic_file.hpp"
#include "driver/gpu_simulator.hpp"
#include "driver/json.hpp"
#include "gpu/raster_kernels.hpp"

using namespace evrsim;
using namespace evrsim::bench;

namespace {

/** One measured throughput leg of --bench-speed. */
struct SpeedLeg {
    double wall_ms = 0.0;
    int sims = 0;
    int frames = 0; ///< every rendered frame, warm-up included
    std::vector<TraceTotal> stages;

    double
    simsPerS() const
    {
        return wall_ms > 0.0 ? sims / (wall_ms / 1000.0) : 0.0;
    }
    double
    framesPerS() const
    {
        return wall_ms > 0.0 ? frames / (wall_ms / 1000.0) : 0.0;
    }
};

const char *
simdLevelName(SimdLevel level)
{
    switch (level) {
      case SimdLevel::Scalar:
        return "scalar";
      case SimdLevel::Avx2:
        return "avx2";
      case SimdLevel::Neon:
        return "neon";
    }
    return "?";
}

/**
 * Render every Table III workload under the baseline and EVR configs
 * (the Figure 7 sim set), timed end to end — workload construction and
 * mesh/texture upload included, exactly like a cacheless fig07 sweep.
 * @p scalar selects the scalar leg: reference rasterizer + scalar
 * kernels + serial tiles; otherwise the production path (best SIMD
 * level, EVRSIM_TILE_JOBS honoured).
 */
SpeedLeg
runSpeedLeg(const BenchParams &params, bool scalar)
{
    forceSimdLevel(scalar ? SimdLevel::Scalar : bestSimdLevel());
    traceTotalsEnable((1u << static_cast<unsigned>(TraceCat::Stage)) |
                      (1u << static_cast<unsigned>(TraceCat::Frame)));

    GpuConfig gpu = params.gpuConfig();
    const SimConfig configs[] = {SimConfig::baseline(gpu),
                                 SimConfig::evr(gpu)};
    SpeedLeg leg;
    WorkloadFactory make = workloads::factory();
    auto start = std::chrono::steady_clock::now();
    for (const std::string &alias : workloads::allAliases()) {
        for (const SimConfig &config : configs) {
            std::unique_ptr<Workload> workload =
                make(alias, params.width, params.height);
            if (!workload)
                fatal("--bench-speed: unknown workload '%s'",
                      alias.c_str());
            GpuSimulator sim(config);
            sim.setReferenceRaster(scalar);
            if (!scalar && params.tile_jobs > 1)
                sim.setTileExecution(nullptr, params.tile_jobs);
            workload->setup(sim);
            for (int f = 0; f < params.warmup + params.frames; ++f) {
                sim.renderFrame(workload->frame(f));
                ++leg.frames;
            }
            ++leg.sims;
        }
    }
    leg.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    leg.stages = traceTotals();
    traceTotalsEnable(0);
    return leg;
}

Json
legJson(const SpeedLeg &leg)
{
    Json j = Json::object();
    j.set("wall_ms", leg.wall_ms);
    j.set("sims", leg.sims);
    j.set("frames", leg.frames);
    j.set("sims_per_s", leg.simsPerS());
    j.set("frames_per_s", leg.framesPerS());
    Json stages = Json::object();
    for (const TraceTotal &t : leg.stages) {
        if (std::strcmp(t.cat, "stage") != 0)
            continue;
        Json s = Json::object();
        s.set("wall_ms", static_cast<double>(t.total_ns) / 1e6);
        s.set("spans", t.count);
        stages.set(t.name, std::move(s));
    }
    j.set("stage_ms", std::move(stages));
    return j;
}

/** Keys any consumer of BENCH_speed.json may rely on. */
Status
validateSpeedJson(const Json &doc)
{
    for (const char *key : {"schema", "legs", "speedup_frames_per_s"})
        if (!doc.find(key))
            return Status::dataLoss(std::string("missing key '") + key +
                                    "'");
    for (const char *leg : {"scalar", "optimized"}) {
        const Json *l = doc.at("legs").find(leg);
        if (!l)
            return Status::dataLoss(std::string("missing leg '") + leg +
                                    "'");
        for (const char *key :
             {"wall_ms", "sims_per_s", "frames_per_s", "stage_ms"})
            if (!l->find(key))
                return Status::dataLoss(std::string("leg '") + leg +
                                        "' missing key '" + key + "'");
    }
    return {};
}

int
runBenchSpeed(const std::string &out_path, const std::string &baseline_path)
{
    BenchParams params = benchParamsFromEnv();
    setLogLevel(params.log_level);
    installCrashHandler();

    std::printf("== bench-speed: %d workload(s) x {baseline, evr}, "
                "%dx%d, %d+%d frames, tile_jobs=%d ==\n",
                static_cast<int>(workloads::allAliases().size()),
                params.width, params.height, params.warmup, params.frames,
                params.tile_jobs);

    SpeedLeg scalar = runSpeedLeg(params, true);
    SpeedLeg fast = runSpeedLeg(params, false);
    SimdLevel fast_level = bestSimdLevel();
    forceSimdLevel(fast_level); // leave the process on the default path

    double speedup = scalar.framesPerS() > 0.0
                         ? fast.framesPerS() / scalar.framesPerS()
                         : 0.0;

    // The checked-in baseline carries the pre-optimization binary's
    // numbers on the same sim set, so the emitted file records the perf
    // trajectory — not just the in-binary scalar/fast ratio (the header
    // inlining that rode along with this work speeds the scalar
    // reference leg up too, so the in-binary ratio understates it).
    Json baseline_json;
    bool have_baseline = false;
    if (!baseline_path.empty()) {
        std::ifstream bin(baseline_path);
        if (!bin) {
            std::fprintf(stderr, "bench-speed: cannot read baseline %s\n",
                         baseline_path.c_str());
            return 1;
        }
        std::stringstream bbuf;
        bbuf << bin.rdbuf();
        Result<Json> base = Json::tryParse(bbuf.str());
        if (!base.ok()) {
            std::fprintf(stderr, "bench-speed: baseline %s: %s\n",
                         baseline_path.c_str(),
                         base.status().message().c_str());
            return 1;
        }
        baseline_json = base.value();
        have_baseline = true;
    }

    Json doc = Json::object();
    doc.set("schema", "evrsim-bench-speed-v1");
    doc.set("width", params.width);
    doc.set("height", params.height);
    doc.set("warmup", params.warmup);
    doc.set("frames_per_sim", params.frames);
    doc.set("tile_jobs", params.tile_jobs);
    doc.set("simd", simdLevelName(fast_level));
    Json legs = Json::object();
    legs.set("scalar", legJson(scalar));
    legs.set("optimized", legJson(fast));
    doc.set("legs", std::move(legs));
    doc.set("speedup_frames_per_s", speedup);
    if (have_baseline) {
        if (const Json *seed = baseline_json.find("seed")) {
            Json traj = Json::object();
            traj.set("source", baseline_path);
            double seed_fps = seed->at("frames_per_s").asDouble();
            traj.set("seed_frames_per_s", seed_fps);
            traj.set("speedup_vs_seed_frames_per_s",
                     seed_fps > 0.0 ? fast.framesPerS() / seed_fps : 0.0);
            doc.set("trajectory", std::move(traj));
        }
    }

    std::string text = doc.dump(2) + "\n";
    if (Status s = atomicWriteFile(out_path, text); !s.ok())
        fatal("--bench-speed: cannot write %s: %s", out_path.c_str(),
              s.message().c_str());

    // Re-read through the parser so a malformed emission fails here,
    // not in whatever consumes the file later.
    std::ifstream in(out_path);
    std::stringstream buf;
    buf << in.rdbuf();
    Result<Json> parsed = Json::tryParse(buf.str());
    Status valid =
        parsed.ok() ? validateSpeedJson(parsed.value()) : parsed.status();
    if (!valid.ok()) {
        std::fprintf(stderr, "bench-speed: %s is malformed: %s\n",
                     out_path.c_str(), valid.message().c_str());
        return 1;
    }

    std::printf("scalar:    %7.2f frames/s  %6.3f sims/s  (%.0f ms)\n",
                scalar.framesPerS(), scalar.simsPerS(), scalar.wall_ms);
    std::printf("optimized: %7.2f frames/s  %6.3f sims/s  (%.0f ms, "
                "simd=%s)\n",
                fast.framesPerS(), fast.simsPerS(), fast.wall_ms,
                simdLevelName(fast_level));
    std::printf("speedup:   %.2fx frames/s vs the scalar reference path\n",
                speedup);
    if (const Json *t = doc.find("trajectory"))
        std::printf("trajectory: %.2fx frames/s vs the seed binary "
                    "(%.2f frames/s, %s)\n",
                    t->at("speedup_vs_seed_frames_per_s").asDouble(),
                    t->at("seed_frames_per_s").asDouble(),
                    baseline_path.c_str());
    std::printf("wrote %s\n", out_path.c_str());

    if (have_baseline) {
        const Json *floor = baseline_json.find("floor_sims_per_s");
        if (!floor) {
            std::fprintf(stderr, "bench-speed: baseline %s has no "
                                 "floor_sims_per_s\n",
                         baseline_path.c_str());
            return 1;
        }
        // sims/s scales with frames-per-sim, so the floor only means
        // something at the configuration it was calibrated for.
        if (const Json *fc = baseline_json.find("floor_config")) {
            if (fc->at("frames_per_sim").asI64() != params.frames ||
                fc->at("warmup").asI64() != params.warmup) {
                std::printf("baseline floor: calibrated for %lld+%lld "
                            "frames, this run is %d+%d — gate skipped\n",
                            static_cast<long long>(
                                fc->at("warmup").asI64()),
                            static_cast<long long>(
                                fc->at("frames_per_sim").asI64()),
                            params.warmup, params.frames);
                return 0;
            }
        }
        double limit = floor->asDouble() * 0.75;
        std::printf("baseline floor: %.3f sims/s (gate at %.3f)\n",
                    floor->asDouble(), limit);
        if (fast.simsPerS() < limit) {
            std::fprintf(stderr,
                         "bench-speed: sims/s regressed >25%%: measured "
                         "%.3f < gate %.3f (floor %.3f from %s)\n",
                         fast.simsPerS(), limit, floor->asDouble(),
                         baseline_path.c_str());
            return 1;
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // --bench-speed mode: raw throughput measurement, no result cache.
    std::string speed_out, speed_baseline;
    bool speed_mode = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i] ? argv[i] : "";
        if (arg == "--bench-speed") {
            speed_mode = true;
            speed_out = "BENCH_speed.json";
        } else if (arg.rfind("--bench-speed=", 0) == 0) {
            speed_mode = true;
            speed_out = arg.substr(std::strlen("--bench-speed="));
        } else if (arg.rfind("--bench-speed-baseline=", 0) == 0) {
            speed_baseline =
                arg.substr(std::strlen("--bench-speed-baseline="));
        }
    }
    if (speed_mode)
        return runBenchSpeed(speed_out, speed_baseline);

    BenchContext ctx(argc, argv);
    printBenchHeader("Summary",
                     "headline paper claims vs measured (whole suite)",
                     ctx.params);

    ctx.needForAllWorkloads({SimConfig::baseline(ctx.gpu()),
                             SimConfig::renderingElimination(ctx.gpu()),
                             SimConfig::evr(ctx.gpu())});
    for (const std::string &alias : workloads::allAliases())
        if (workloads::infoFor(alias).is_3d)
            ctx.need(alias, SimConfig::evrReorderOnly(ctx.gpu()));
    ctx.prefetch();

    std::vector<double> time_ratio, energy_ratio, re_skip, evr_skip,
        layer_overhead, hw_overhead, geom_sig_share;
    std::vector<double> overshade_base, overshade_evr;

    for (const std::string &alias : ctx.aliases()) {
        RunResult base = ctx.runner.run(alias, SimConfig::baseline(ctx.gpu()));
        RunResult re =
            ctx.runner.run(alias, SimConfig::renderingElimination(ctx.gpu()));
        RunResult evr = ctx.runner.run(alias, SimConfig::evr(ctx.gpu()));

        time_ratio.push_back(static_cast<double>(evr.totalCycles()) /
                             base.totalCycles());
        energy_ratio.push_back(evr.totalEnergyNj() / base.totalEnergyNj());
        re_skip.push_back(re.tilesSkippedRatio());
        evr_skip.push_back(evr.tilesSkippedRatio());
        layer_overhead.push_back(evr.energy.layer_writes_nj /
                                 base.totalEnergyNj());
        hw_overhead.push_back((evr.energy.evr_hardware_nj +
                               evr.energy.re_hardware_nj) /
                              base.totalEnergyNj());

        if (workloads::infoFor(alias).is_3d) {
            RunResult ro =
                ctx.runner.run(alias, SimConfig::evrReorderOnly(ctx.gpu()));
            overshade_base.push_back(base.shadedPerPixel());
            overshade_evr.push_back(ro.shadedPerPixel());
        }
    }

    ReportTable table({"metric", "paper", "measured"});
    table.addRow({"execution-time reduction", "39%",
                  fmtPct(1.0 - mean(time_ratio))});
    table.addRow({"energy reduction", "43%",
                  fmtPct(1.0 - mean(energy_ratio))});
    table.addRow({"overshading reduction (3D)", "20%",
                  fmtPct(1.0 - mean(overshade_evr) / mean(overshade_base))});
    table.addRow({"tiles skipped by EVR", "54%", fmtPct(mean(evr_skip))});
    table.addRow({"extra tiles vs RE", "+5%",
                  "+" + fmtPct(mean(evr_skip) - mean(re_skip))});
    table.addRow({"layer-write energy overhead", "2.1%",
                  fmtPct(mean(layer_overhead))});
    table.addRow({"added-hardware energy overhead", "1.2%",
                  fmtPct(mean(hw_overhead))});
    table.print();

    printPaperShape(
        "absolute numbers depend on the synthetic workload mix and the "
        "analytic timing/energy substitutes; the qualitative claims — "
        "EVR wins everywhere, overheads ~1-2%, EVR > RE on tiles — are "
        "the reproduction target (see EXPERIMENTS.md)");
    return ctx.exitCode();
}
