/**
 * @file
 * Figure 10: energy consumption of EVR normalized to baseline Rendering
 * Elimination, with the EVR-specific overheads grouped.
 */
#include <cstdio>

#include "bench_common.hpp"

using namespace evrsim;
using namespace evrsim::bench;

int
main(int argc, char **argv)
{
    BenchContext ctx(argc, argv);
    printBenchHeader("Figure 10", "energy of EVR normalized to RE",
                     ctx.params);

    ctx.needForAllWorkloads({SimConfig::renderingElimination(ctx.gpu()),
                             SimConfig::evr(ctx.gpu())});
    ctx.prefetch();

    ReportTable table({"bench", "EVR/RE", "EVR-overheads", "bar"});
    std::vector<double> ratios;

    for (const std::string &alias : ctx.aliases()) {
        RunResult re =
            ctx.runner.run(alias, SimConfig::renderingElimination(ctx.gpu()));
        RunResult evr = ctx.runner.run(alias, SimConfig::evr(ctx.gpu()));

        double re_total = re.totalEnergyNj();
        double ratio = evr.totalEnergyNj() / re_total;
        double overhead = (evr.energy.evr_hardware_nj +
                           evr.energy.layer_writes_nj) /
                          re_total;
        ratios.push_back(ratio);
        table.addRow({alias, fmt(ratio), fmtPct(overhead, 2),
                      bar(ratio, 1.0)});
    }

    table.print();
    double avg = mean(ratios);
    std::printf("\naverage EVR energy relative to RE: %.2f (%.0f%% saving "
                "over RE)\n",
                avg, (1.0 - avg) * 100.0);
    printPaperShape(
        "paper reports ~10% average energy reduction over baseline RE; "
        "EVR's extra structures (LGT/Layer Buffer/FVP Table, layer "
        "writes) cost ~1-2%, more than offset by extra skipped tiles "
        "and Early-Z improvements");
    return ctx.exitCode();
}
