/**
 * @file
 * Client library for the resident sweep service.
 *
 * ServiceClient speaks the service_protocol.hpp wire format and owns
 * the whole client-side reliability policy so callers don't have to:
 *
 *  - connect with bounded retries and capped, jittered backoff (a
 *    daemon that is still starting, restarting after a crash, or
 *    shedding load with ResourceExhausted is retried; an invalid
 *    request is not);
 *  - an overall per-call deadline (DeadlineExceeded when it passes,
 *    however far the request got);
 *  - reconnect-and-resubmit on a mid-stream connection loss, reusing
 *    the *same request id* — request ids are idempotent at the daemon
 *    (results come from the memo, the journal and the result cache),
 *    so a resubmitted sweep is served byte-identically, not re-run.
 *
 * The reply keeps each run's result both decoded (RunResult) and as
 * the exact JSON text the daemon sent (`result_json`), so callers can
 * verify byte-identity across daemon crashes and restarts.
 */
#ifndef EVRSIM_SERVICE_CLIENT_HPP
#define EVRSIM_SERVICE_CLIENT_HPP

#include <functional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "driver/json.hpp"
#include "driver/run_result.hpp"

namespace evrsim {

/** Client-side reliability knobs. */
struct ClientOptions {
    std::string socket_path;
    /** Client id sent with every request (per-client quota key). */
    std::string client_id = "evrsim-client";
    /** Overall per-call deadline in ms; 0 = none. */
    int deadline_ms = 0;
    /** Retry attempts after the first (connects, shed requests, lost
     *  connections all draw from the same budget). */
    int retries = 5;
    /** First backoff in ms. Later naps use decorrelated jitter —
     *  uniform in [base, min(cap, 3 * previous)), drawn from a stream
     *  seeded by the request id — so retry storms de-synchronize
     *  deterministically. */
    int backoff_base_ms = 50;
    int backoff_cap_ms = 2000;
    /** Read poll granularity in ms (also the deadline check cadence). */
    int poll_ms = 100;
    /** Per-attempt connect deadline in ms (nonblocking connect +
     *  poll, common/net.hpp), additionally capped by whatever is left
     *  of deadline_ms. Bounds the hang when the daemon's accept loop
     *  is wedged or its listen backlog is full. */
    int connect_timeout_ms = 2000;
};

/** One run of a sweep request. */
struct ClientRunSpec {
    std::string workload;
    std::string config; ///< wire config name (knownConfigNames())
};

/** One run's outcome as the daemon reported it. */
struct ClientRunOutcome {
    std::string workload;
    std::string config;
    Status status; ///< Ok => result/result_json are valid
    RunResult result;
    /** Exact serialized RunResult document from the wire (the
     *  deterministic toJson(false) form) for byte-identity checks. */
    std::string result_json;
};

/** Final reply of one sweep call. */
struct SweepReply {
    std::vector<ClientRunOutcome> runs; ///< request order
    double elapsed_s = 0.0; ///< daemon-side wall clock of the request
    int connect_attempts = 0; ///< connect(2) calls made
    int resubmits = 0; ///< times the request was re-sent after a loss
};

/** Called once per daemon progress record (heartbeat semantics). */
using ProgressFn = std::function<void(const Json &progress)>;

/** A connected-per-call client of one daemon socket. */
class ServiceClient
{
  public:
    explicit ServiceClient(ClientOptions opts) : opts_(std::move(opts)) {}

    /**
     * Submit sweep @p runs under idempotent request id @p id and block
     * for the final reply, retrying per the options. @p progress (may
     * be empty) observes streamed progress records.
     */
    Result<SweepReply> runSweep(const std::string &id,
                                const std::vector<ClientRunSpec> &runs,
                                const ProgressFn &progress = {});

    /**
     * Re-run a request the daemon already knows (journaled or live) by
     * bare id — the reconnect path after a daemon crash, when the
     * client no longer holds the spec. NotFound when the daemon has no
     * record of @p id.
     */
    Result<SweepReply> attach(const std::string &id,
                              const ProgressFn &progress = {});

    /** One liveness probe (single attempt, no retries): the pong
     *  payload, e.g. {"type":"pong","draining":false}. */
    Result<Json> ping();

    /**
     * One introspection probe (single attempt, no retries): the
     * daemon's status payload — service counters plus, when a fleet is
     * on, per-shard topology and the evrsim_fleet_* counter block.
     * @p include_events also returns the lifecycle event ring.
     */
    Result<Json> status(bool include_events = false);

    const ClientOptions &options() const { return opts_; }

  private:
    /** Shared submit/stream/retry loop; empty @p runs means attach. */
    Result<SweepReply> execute(const std::string &id,
                               const std::vector<ClientRunSpec> &runs,
                               const ProgressFn &progress);

    /** One bounded connect attempt: at most @p deadline_ms before
     *  giving up with DeadlineExceeded/Unavailable. */
    Result<int> connectOnce(int deadline_ms);

    ClientOptions opts_;
};

} // namespace evrsim

#endif // EVRSIM_SERVICE_CLIENT_HPP
