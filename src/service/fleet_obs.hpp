/**
 * @file
 * Fleet-wide observability plumbing: the pieces that turn per-process
 * traces and metrics into one stitched, fleet-level view.
 *
 *  - Trace shipping: TraceShippedEvent <-> compact JSON wire form, so
 *    a shard can attach one run's spans to its result frame and the
 *    control plane can adopt them into the merged Chrome trace
 *    (common/trace.hpp traceCollect / traceIngestRemote).
 *  - ShardMetricsFolder: folds shard metrics-registry snapshots
 *    (metricsToJson() documents piggybacked on pong and result frames)
 *    into the local registry under a shard="<slot>" label. Counters
 *    and histograms fold as deltas against the last snapshot seen from
 *    that shard incarnation, so a restarted shard's counters
 *    accumulate in the aggregate instead of double-counting or
 *    resetting; gauges overwrite.
 *  - FleetEventRing: a bounded ring of structured fleet lifecycle
 *    events (restart, fence, breaker open/close, failover,
 *    registration), optionally persisted as JSONL, surfaced by the
 *    daemon's `status` endpoint.
 *
 * This header lives in service/ (not common/) because it speaks
 * driver/json.hpp, which common/ must not depend on.
 */
#ifndef EVRSIM_SERVICE_FLEET_OBS_HPP
#define EVRSIM_SERVICE_FLEET_OBS_HPP

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/trace.hpp"
#include "driver/json.hpp"

namespace evrsim {

/**
 * Serialize shipped trace events as a compact JSON array (short keys,
 * defaults omitted) for piggybacking on a result frame.
 */
Json traceEventsToWire(const std::vector<TraceShippedEvent> &events);

/** Parse the wire form back; malformed entries are skipped. */
std::vector<TraceShippedEvent> traceEventsFromWire(const Json &wire);

/**
 * Fold shard metrics-registry snapshots into the local registry.
 * Thread-safe; the fleet calls fold() from transport reader threads
 * and onShardUp() from the monitor/maintenance paths.
 */
class ShardMetricsFolder
{
  public:
    /**
     * A new incarnation of @p slot is up: forget its last-seen
     * snapshot so the fresh process's counters fold in from zero
     * (accumulating on top of what previous incarnations contributed).
     */
    void onShardUp(int slot);

    /**
     * Fold one metricsToJson() document from @p slot into the local
     * registry, adding a shard="<slot>" label to every series.
     * Documents that do not look like a snapshot are ignored.
     */
    void fold(int slot, const Json &snapshot);

  private:
    struct LastSeen {
        double value = 0;
        std::vector<std::uint64_t> counts;
        double sum = 0;
        std::uint64_t count = 0;
    };

    std::mutex mu_;
    /** (slot, name, labels) -> last folded snapshot values. */
    std::map<std::string, LastSeen> last_;
    /** slot -> last folded top-level type_conflicts value. */
    std::map<int, std::uint64_t> last_conflicts_;
};

/** One structured fleet lifecycle event. */
struct FleetEvent {
    std::uint64_t seq = 0;  ///< monotone per control plane
    std::int64_t ts_ms = 0; ///< wall clock, unix milliseconds
    std::string type;       ///< "restart", "fence", "breaker-open", ...
    int shard = -1;         ///< slot index; -1 for fleet-wide events
    std::string detail;     ///< free-form context ("pong deadline", ...)
};

/**
 * Bounded ring of fleet lifecycle events, optionally mirrored to a
 * JSONL file (one event object per line, append-only) so the history
 * survives the daemon. Thread-safe.
 */
class FleetEventRing
{
  public:
    explicit FleetEventRing(std::size_t capacity = 256);

    /** Mirror subsequent events to @p path ("" disables persistence). */
    void setPersistPath(const std::string &path);

    void record(const char *type, int shard, const std::string &detail);

    /** Oldest-first snapshot of the retained events. */
    std::vector<FleetEvent> snapshot() const;

    /** The snapshot as a JSON array of event objects. */
    Json toJson() const;

  private:
    mutable std::mutex mu_;
    std::size_t capacity_;
    std::deque<FleetEvent> ring_;
    std::uint64_t next_seq_ = 1;
    std::string persist_path_;
};

/** An event as its JSONL / status-endpoint object form. */
Json fleetEventToJson(const FleetEvent &event);

} // namespace evrsim

#endif // EVRSIM_SERVICE_FLEET_OBS_HPP
