/**
 * @file
 * Write-ahead request journal for the sweep service.
 *
 * The sweep journal (driver/sweep_journal.hpp) makes *job* progress
 * durable; this journal makes *request identity* durable. Each admitted
 * request is appended before its first job starts (`request` record,
 * spec embedded) and again when its final reply is sent (`done`
 * record). A SIGKILLed daemon restarts, replays both journals, and a
 * client that reconnects with its request id — or a bare `attach` — is
 * served the byte-identical reply: the spec comes from this journal,
 * and every run the crashed daemon completed comes from the sweep
 * journal or the result cache instead of re-simulating.
 *
 * Records use the same one-line CRC32-envelope framing and
 * single-write(2)+fsync append discipline as the sweep journal, so a
 * record torn by the crash itself is detected and dropped on replay.
 */
#ifndef EVRSIM_SERVICE_REQUEST_JOURNAL_HPP
#define EVRSIM_SERVICE_REQUEST_JOURNAL_HPP

#include <map>
#include <mutex>
#include <set>
#include <string>

#include "common/status.hpp"
#include "driver/json.hpp"

namespace evrsim {

/** Request journal schema version (envelope field). */
constexpr int kRequestJournalVersion = 1;

/** Append-side and replay-side of the service request journal. */
class RequestJournal
{
  public:
    /** Everything a replay learned. */
    struct Replay {
        /** Last spec per request id: {client, runs:[...]} documents. */
        std::map<std::string, Json> specs;
        /** Request ids whose final reply was sent before the crash. */
        std::set<std::string> done;
        std::size_t records = 0;    ///< well-formed records read
        std::size_t damaged = 0;    ///< torn/corrupt lines dropped
        std::size_t duplicates = 0; ///< re-admissions of a known id
    };

    RequestJournal() = default;
    ~RequestJournal();

    RequestJournal(const RequestJournal &) = delete;
    RequestJournal &operator=(const RequestJournal &) = delete;

    /** Open @p path for appending (created + directory-fsynced). */
    Status open(const std::string &path);

    bool isOpen() const { return fd_ >= 0; }

    /** Fold a journal into per-id specs and the done set; a missing
     *  file is an empty Replay. */
    static Result<Replay> replay(const std::string &path);

    /** Append one admission record; @p spec is {client, runs:[...]}. */
    void recordRequest(const std::string &id, const Json &spec);

    /** Append one completion record. */
    void recordDone(const std::string &id);

  private:
    void append(Json payload);

    int fd_ = -1;
    std::string path_;
    std::mutex mu_;
};

} // namespace evrsim

#endif // EVRSIM_SERVICE_REQUEST_JOURNAL_HPP
