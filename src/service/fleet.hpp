/**
 * @file
 * Self-healing sharded worker fleet for the sweep service.
 *
 * PR 7 made the daemon resident, but every simulation still executed
 * inside the daemon process: one runaway run was a whole-service blast
 * radius. The fleet splits that domain — the daemon becomes a control
 * plane (cache, journals, memo, retry policy, admission) and N
 * persistent shard processes (EVRSIM_SHARDS) do the actual simulating.
 * Each run is routed by content-key hash to its primary shard over the
 * same checksummed-envelope line protocol the cache, journal and
 * worker pipe already use (driver/envelope.hpp): requests go down the
 * shard's stdin, framed responses come back on fd 3.
 *
 * Health model, per shard:
 *  - periodic ping with a hard pong deadline;
 *  - a consecutive-failure circuit breaker (closed -> open on the Nth
 *    consecutive failure -> half-open probe after restart -> closed on
 *    the first success), so a flapping shard stops receiving work
 *    instead of timing out every run routed to it;
 *  - automatic restart with capped + deterministically jittered
 *    backoff (a fleet of shards killed together does not restart in
 *    lockstep);
 *  - failover: a dead or open shard's runs re-route to the next shard
 *    in ring order, and when the whole fleet is unhealthy the run
 *    degrades to in-daemon execution — counted, never dropped.
 *
 * Shards are one bare attempt per run, exactly like PR 4's isolate
 * workers: no cache, no journal, no retry — the daemon owns those, so
 * a shard death is always recoverable state-free. Results are
 * byte-identical wherever they execute (the simulation is
 * deterministic), which is what the chaos soak asserts end to end.
 *
 * Everything here is observable: evrsim_fleet_* counters (restarts,
 * breaker opens, failovers, degraded runs, wire errors, ping timeouts)
 * plus an evrsim_fleet_shards gauge.
 */
#ifndef EVRSIM_SERVICE_FLEET_HPP
#define EVRSIM_SERVICE_FLEET_HPP

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "driver/experiment.hpp"
#include "driver/workload.hpp"

namespace evrsim {

/** Envelope schema of the parent<->shard line protocol. */
constexpr int kShardProtocolVersion = 1;

/** Fleet knobs. Tests set these directly; the daemon binary resolves
 *  EVRSIM_SHARDS and fills shard_argv with its own executable. */
struct FleetConfig {
    /** Worker-shard process count; 0 disables the fleet. */
    int shards = 0;
    /** Base argv of a shard process (argv[0] = program path); the
     *  fleet appends --evrsim-shard=<i> and --evrsim-shard-params=. */
    std::vector<std::string> shard_argv;
    /** Simulation-relevant BenchParams subset forwarded to each shard
     *  (shardParamsJson()); filled from the service params when empty. */
    std::string shard_params_json;
    int ping_interval_ms = 500;  ///< cadence of liveness pings
    int ping_deadline_ms = 2000; ///< pong deadline = one health failure
    /** Consecutive failures that open a shard's circuit breaker. */
    int breaker_threshold = 3;
    int restart_backoff_base_ms = 100;
    int restart_backoff_cap_ms = 5000;
    /** Per-dispatch deadline: a run whose response never arrives (a
     *  dropped wire line, a fully wedged shard) fails over after this
     *  long instead of waiting forever. */
    int run_deadline_ms = 120000;
    int poll_ms = 50; ///< monitor/reader wakeup cadence
};

/** A fleet is on when it has both a width and a program to exec. */
inline bool
fleetEnabled(const FleetConfig &c)
{
    return c.shards > 0 && !c.shard_argv.empty();
}

/** Circuit breaker state (DESIGN.md §14). */
enum class BreakerState { Closed, Open, HalfOpen };

/** Stable name for logs/tests ("closed"). */
const char *breakerStateName(BreakerState s);

/**
 * Pure consecutive-failure circuit breaker, factored out of the fleet
 * so the transition table is unit-testable without processes. Not
 * thread-safe; the fleet guards each instance with its own mutex.
 */
struct CircuitBreaker {
    BreakerState state = BreakerState::Closed;
    int threshold = 3;
    int consecutive_failures = 0;

    /** One failure. True when this call *transitioned* to Open (a
     *  half-open probe failure reopens immediately; closed opens at
     *  the threshold). */
    bool recordFailure();

    /** One success: close and forget the failure streak. */
    void recordSuccess();

    /** The guarded resource was replaced (shard restarted): admit one
     *  probe stream. */
    void onRestart();

    /** Hard-open regardless of the streak (the shard died). True on
     *  transition. */
    bool forceOpen();

    /** Whether new work may be routed here (Closed or HalfOpen). */
    bool
    admits() const
    {
        return state != BreakerState::Open;
    }
};

/**
 * Deterministic capped + jittered restart delay for @p restarts-th
 * restart of shard @p shard_index: exponential from the base, capped,
 * with the upper half jittered by a mix64 stream of (shard, restart)
 * so simultaneous deaths de-synchronize reproducibly.
 */
int restartBackoffMs(const FleetConfig &c, int shard_index, int restarts);

/** Primary shard for a content key: fnv1a64(key) % shards. */
int shardIndexForKey(const std::string &key, int shards);

/** The control-plane side: supervises the shard processes. */
class ShardFleet
{
  public:
    /** Monotonic fleet accounting (also evrsim_fleet_* counters). */
    struct Stats {
        std::uint64_t dispatched = 0; ///< execute() calls
        std::uint64_t completed = 0;  ///< runs that returned a verdict
        std::uint64_t failovers = 0;  ///< completions off the primary
        std::uint64_t restarts = 0;   ///< shard processes respawned
        std::uint64_t breaker_opens = 0;
        std::uint64_t degraded = 0; ///< in-daemon fallback executions
        std::uint64_t wire_errors = 0;   ///< damaged response lines
        std::uint64_t ping_timeouts = 0; ///< pongs past the deadline
        std::uint64_t stray_responses = 0; ///< no waiter (wire-dup)
    };

    /** In-daemon fallback when no shard is healthy. */
    using DegradedRunFn = std::function<Result<RunResult>(
        const std::string &alias, const SimConfig &config)>;

    ShardFleet(const FleetConfig &config, DegradedRunFn degraded);

    /** stop()s if running. */
    ~ShardFleet();

    ShardFleet(const ShardFleet &) = delete;
    ShardFleet &operator=(const ShardFleet &) = delete;

    /** Spawn the shards and the health monitor. InvalidArgument when
     *  the config is not fleetEnabled(). */
    Status start();

    /** Close every shard's stdin (clean EOF exit), SIGKILL stragglers,
     *  join every thread. Idempotent. */
    void stop();

    /**
     * Execute one run on the fleet: dispatch to the key's primary
     * shard, failing over around the ring on death/timeout, degrading
     * to the in-daemon fallback when no shard admits work. The
     * returned attempt mirrors the supervisor contract: worker_died
     * only when every shard AND the fallback were unavailable.
     */
    WorkerAttempt execute(const std::string &alias,
                          const SimConfig &config,
                          const std::string &key);

    Stats stats() const;

    /** Breaker state of shard @p index (tests/telemetry). */
    BreakerState breakerState(int index) const;

    const FleetConfig &config() const { return config_; }

  private:
    /** One pending dispatch, keyed by wire seq. */
    struct Waiter {
        std::mutex mu;
        std::condition_variable cv;
        bool done = false;
        WorkerAttempt attempt;
        int shard = -1; ///< dispatch target (failover bookkeeping)
    };

    struct Shard {
        int index = 0;
        pid_t pid = -1;
        int in_fd = -1;  ///< parent writes requests (shard stdin)
        int out_fd = -1; ///< parent reads responses (shard fd 3)
        std::thread reader;
        /** Serializes writes to in_fd AND its close, so a dispatch
         *  can never write through a recycled descriptor. */
        std::mutex write_mu;
        // Everything below is guarded by the fleet mu_.
        bool alive = false;
        bool needs_reap = false;
        CircuitBreaker breaker;
        int restarts = 0;
        std::chrono::steady_clock::time_point restart_at{};
        bool ping_outstanding = false;
        std::chrono::steady_clock::time_point ping_sent{};
        std::chrono::steady_clock::time_point last_ping{};
    };

    Status spawnShard(Shard &s);
    void monitorLoop();
    void readerLoop(Shard &s, int out_fd);

    /** Reader/write-failure path: mark dead, open the breaker, fail
     *  the shard's in-flight waiters with Unavailable. */
    void handleShardDown(Shard &s, const char *why);

    /** Health failure (ping timeout, wire damage, run deadline);
     *  SIGKILLs the shard when the breaker opens. */
    void recordShardFailure(Shard &s, const char *why);

    /** Pong/result received: close the breaker. */
    void markShardHealthy(Shard &s);

    bool writeToShard(Shard &s, Json payload);

    FleetConfig config_;
    DegradedRunFn degraded_;
    std::vector<std::unique_ptr<Shard>> shards_;

    mutable std::mutex mu_; ///< shard health + stats
    Stats stats_;

    std::mutex waiters_mu_;
    std::map<std::uint64_t, std::shared_ptr<Waiter>> waiters_;

    std::atomic<std::uint64_t> seq_{1};
    std::atomic<bool> stopping_{false};
    std::thread monitor_;
    bool started_ = false;
};

// --- shard-process side ---------------------------------------------

/** Serialize the simulation-relevant subset of @p params (dimensions,
 *  frames, warmup, tile jobs, timeout, validation, log level) for the
 *  --evrsim-shard-params argv flag. */
std::string shardParamsJson(const BenchParams &params);

/** Overlay a shardParamsJson() document onto @p params. */
Status applyShardParams(const std::string &text, BenchParams &params);

/**
 * Detect shard mode in an embedding binary's argv: the shard index
 * from --evrsim-shard=<i> (else -1), with any --evrsim-shard-params=
 * payload copied to @p params_json. Call before normal flag parsing,
 * like the --evrsim-worker-run probe.
 */
int shardFlagFromArgv(int argc, char **argv, std::string &params_json);

/**
 * Serve as shard @p shard_index until stdin EOF, then exit: parse the
 * params overlay, force the bare-attempt worker philosophy (no cache,
 * no journal, no isolation, quiet), answer pings, execute runs on a
 * dedicated thread (the reader stays responsive to pings mid-run),
 * and frame every response through the chaos injector's wire sites.
 */
[[noreturn]] void runShardAndExit(int shard_index,
                                  WorkloadFactory factory,
                                  BenchParams params,
                                  const std::string &params_json);

} // namespace evrsim

#endif // EVRSIM_SERVICE_FLEET_HPP
