/**
 * @file
 * Self-healing sharded worker fleet for the sweep service.
 *
 * PR 7 made the daemon resident, but every simulation still executed
 * inside the daemon process: one runaway run was a whole-service blast
 * radius. The fleet splits that domain — the daemon becomes a control
 * plane (cache, journals, memo, retry policy, admission) and N
 * persistent shard processes (EVRSIM_SHARDS) do the actual simulating.
 * Each run is routed by content-key hash to its primary shard over the
 * same checksummed-envelope line protocol the cache, journal and
 * worker pipe already use (driver/envelope.hpp): requests go down the
 * shard's stdin, framed responses come back on fd 3.
 *
 * Health model, per shard:
 *  - periodic ping with a hard pong deadline;
 *  - a consecutive-failure circuit breaker (closed -> open on the Nth
 *    consecutive failure -> half-open probe after restart -> closed on
 *    the first success), so a flapping shard stops receiving work
 *    instead of timing out every run routed to it;
 *  - automatic restart with capped + deterministically jittered
 *    backoff (a fleet of shards killed together does not restart in
 *    lockstep);
 *  - failover: a dead or open shard's runs re-route to the next shard
 *    in ring order, and when the whole fleet is unhealthy the run
 *    degrades to in-daemon execution — counted, never dropped.
 *
 * Shards are one bare attempt per run, exactly like PR 4's isolate
 * workers: no cache, no journal, no retry — the daemon owns those, so
 * a shard death is always recoverable state-free. Results are
 * byte-identical wherever they execute (the simulation is
 * deterministic), which is what the chaos soak asserts end to end.
 *
 * Everything here is observable: evrsim_fleet_* counters (restarts,
 * breaker opens, failovers, degraded runs, wire errors, ping timeouts,
 * fences, reconnects, partitions, stale epochs, registrations)
 * plus an evrsim_fleet_shards gauge.
 *
 * PR 9 splits the fleet along a ShardTransport seam: the fleet keeps
 * everything about *policy* (routing, breakers, pings, failover,
 * degradation, waiter bookkeeping) while a transport owns everything
 * about *endpoints* (spawning or accepting them, framing bytes to
 * them, detecting their loss). Two transports exist:
 *
 *  - PipeShardTransport (in fleet.cpp): PR 8's fork/exec children on
 *    stdin/fd-3 pipes, with reap + jittered-backoff respawn.
 *  - TcpShardTransport (tcp_transport.hpp): remote shards dial in
 *    over TCP (EVRSIM_FLEET_LISTEN), register with a hello/welcome
 *    handshake, and hold a slot under an epoch lease. A shard that
 *    misses its lease (EVRSIM_LEASE_MS, riding the ping machinery
 *    with a hard deadline) is *fenced*: its connection is condemned,
 *    its in-flight runs fail over exactly once, and any frame or
 *    reconnect carrying the old epoch is rejected — a partition can
 *    never yield two owners of one content-key range or a duplicate
 *    seq stream.
 */
#ifndef EVRSIM_SERVICE_FLEET_HPP
#define EVRSIM_SERVICE_FLEET_HPP

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "driver/experiment.hpp"
#include "driver/json.hpp"
#include "driver/workload.hpp"
#include "service/fleet_obs.hpp"

namespace evrsim {

/** Envelope schema of the parent<->shard line protocol. */
constexpr int kShardProtocolVersion = 1;

/** Fleet knobs. Tests set these directly; the daemon binary resolves
 *  EVRSIM_SHARDS and fills shard_argv with its own executable. */
struct FleetConfig {
    /** Worker-shard process count; 0 disables the fleet. */
    int shards = 0;
    /** Base argv of a shard process (argv[0] = program path); the
     *  fleet appends --evrsim-shard=<i> and --evrsim-shard-params=. */
    std::vector<std::string> shard_argv;
    /** Simulation-relevant BenchParams subset forwarded to each shard
     *  (shardParamsJson()); filled from the service params when empty. */
    std::string shard_params_json;
    /** Non-empty ("host:port", port 0 = kernel-assigned) selects the
     *  TCP transport: remote shards dial in and register instead of
     *  being fork/exec'd. EVRSIM_FLEET_LISTEN. */
    std::string listen;
    /** TCP lease: a registered shard whose pong misses this hard
     *  deadline is fenced (condemned + failed over), not merely
     *  struck. EVRSIM_LEASE_MS. */
    int lease_ms = 5000;
    int ping_interval_ms = 500;  ///< cadence of liveness pings
    int ping_deadline_ms = 2000; ///< pong deadline = one health failure
    /** Consecutive failures that open a shard's circuit breaker. */
    int breaker_threshold = 3;
    int restart_backoff_base_ms = 100;
    int restart_backoff_cap_ms = 5000;
    /** Per-dispatch deadline: a run whose response never arrives (a
     *  dropped wire line, a fully wedged shard) fails over after this
     *  long instead of waiting forever. */
    int run_deadline_ms = 120000;
    int poll_ms = 50; ///< monitor/reader wakeup cadence
    /** JSONL mirror of the fleet lifecycle event ring (restart, fence,
     *  breaker transitions, failover, registration); empty disables
     *  persistence (the in-memory ring stays on). EVRSIM_FLEET_EVENTS. */
    std::string events_path;
};

/** A fleet is on when it has a width and either a program to exec
 *  (pipe transport) or an address to listen on (TCP transport). */
inline bool
fleetEnabled(const FleetConfig &c)
{
    return c.shards > 0 && (!c.shard_argv.empty() || !c.listen.empty());
}

/** Whether the config selects the TCP (remote-shard) transport. */
inline bool
fleetListens(const FleetConfig &c)
{
    return !c.listen.empty();
}

/** Circuit breaker state (DESIGN.md §14). */
enum class BreakerState { Closed, Open, HalfOpen };

/** Stable name for logs/tests ("closed"). */
const char *breakerStateName(BreakerState s);

/**
 * Pure consecutive-failure circuit breaker, factored out of the fleet
 * so the transition table is unit-testable without processes. Not
 * thread-safe; the fleet guards each instance with its own mutex.
 */
struct CircuitBreaker {
    BreakerState state = BreakerState::Closed;
    int threshold = 3;
    int consecutive_failures = 0;

    /** One failure. True when this call *transitioned* to Open (a
     *  half-open probe failure reopens immediately; closed opens at
     *  the threshold). */
    bool recordFailure();

    /** One success: close and forget the failure streak. */
    void recordSuccess();

    /** The guarded resource was replaced (shard restarted): admit one
     *  probe stream. */
    void onRestart();

    /** Hard-open regardless of the streak (the shard died). True on
     *  transition. */
    bool forceOpen();

    /** Whether new work may be routed here (Closed or HalfOpen). */
    bool
    admits() const
    {
        return state != BreakerState::Open;
    }
};

/**
 * Deterministic capped + jittered restart delay for @p restarts-th
 * restart of shard @p shard_index: exponential from the base, capped,
 * with the upper half jittered by a mix64 stream of (shard, restart)
 * so simultaneous deaths de-synchronize reproducibly.
 */
int restartBackoffMs(const FleetConfig &c, int shard_index, int restarts);

/** Primary shard for a content key: fnv1a64(key) % shards. */
int shardIndexForKey(const std::string &key, int shards);

// --- transport seam -------------------------------------------------

/**
 * Endpoint-lifecycle accounting a transport keeps for itself; the
 * fleet merges it into ShardFleet::Stats. The pipe transport only
 * moves `restarts`; the TCP transport moves the rest.
 */
struct TransportStats {
    std::uint64_t restarts = 0; ///< endpoints respawned (pipe)
    std::uint64_t fences = 0;   ///< live connections condemned (TCP)
    std::uint64_t reconnects = 0; ///< re-registrations beyond a
                                  ///< slot's first (TCP)
    std::uint64_t partitions = 0; ///< net-partition blackholes engaged
    std::uint64_t stale_epochs = 0; ///< frames/hellos with an old
                                    ///< epoch, rejected (TCP)
    std::uint64_t registrations = 0; ///< hellos admitted (TCP)
    std::uint64_t shed_registrations = 0; ///< hellos rejected:
                                          ///< draining/full/version
};

/**
 * Callbacks a transport raises into the fleet. All may be invoked
 * from transport-owned threads; the fleet's handlers are thread-safe
 * and must not call back into the transport while holding locks the
 * transport's stop() path could need.
 */
struct TransportHooks {
    /** A well-framed, epoch-valid message arrived from @p slot. */
    std::function<void(int slot, const Json &msg)> on_frame;
    /** Slot @p slot gained a live endpoint (spawn, respawn, or an
     *  admitted registration). */
    std::function<void(int slot)> on_up;
    /** Slot @p slot lost its endpoint (EOF, reset, condemned). */
    std::function<void(int slot, const std::string &why)> on_down;
    /** A health strike against a live endpoint (damaged frame). */
    std::function<void(int slot, const std::string &why)> on_strike;
};

/**
 * How the fleet reaches its shards. A transport owns endpoint
 * lifetime (processes or sockets), framing, and loss detection; the
 * fleet owns routing, health policy, and failover. Implementations:
 * the in-process pipe transport (fleet.cpp) and TcpShardTransport
 * (tcp_transport.hpp).
 */
class ShardTransport
{
  public:
    virtual ~ShardTransport() = default;

    /** Transport name for logs ("pipe", "tcp"). */
    virtual const char *name() const = 0;

    /** Bring up endpoints (or start listening for them). */
    virtual Status start(TransportHooks hooks) = 0;

    /** Tear down every endpoint and join every thread. Idempotent. */
    virtual void stop() = 0;

    /**
     * Frame @p payload to slot @p slot's endpoint. False when the
     * endpoint is gone or the write failed (the caller fails over);
     * a chaos-dropped or blackholed frame still reports true — the
     * run deadline is the detector for silence.
     */
    virtual bool writeFrame(int slot, Json payload) = 0;

    /**
     * Terminate slot @p slot's current endpoint (SIGKILL the child /
     * fence the connection). The endpoint's reader observes the loss
     * and raises on_down as usual.
     */
    virtual void condemn(int slot, const std::string &why) = 0;

    /** Periodic upkeep from the fleet's monitor thread (reap +
     *  respawn for pipes; nothing for TCP — its acceptor is a
     *  thread). */
    virtual void maintain() = 0;

    /** Stop admitting new registrations (drain). Pipe: no-op. */
    virtual void setDraining(bool draining) { (void)draining; }

    /** Resolved listen address ("127.0.0.1:43211") for transports
     *  that listen; empty otherwise. */
    virtual std::string listenAddress() const { return {}; }

    /** Epoch of slot @p slot's current endpoint (TCP lease epoch; 0
     *  for transports without epochs). Introspection only. */
    virtual std::uint64_t
    slotEpoch(int slot) const
    {
        (void)slot;
        return 0;
    }

    virtual TransportStats stats() const = 0;
};

/** The PR 8 fork/exec pipe transport (defined in fleet.cpp). */
std::unique_ptr<ShardTransport>
makePipeShardTransport(const FleetConfig &config);

/** The control-plane side: supervises the shard processes. */
class ShardFleet
{
  public:
    /** Monotonic fleet accounting (also evrsim_fleet_* counters). */
    struct Stats {
        std::uint64_t dispatched = 0; ///< execute() calls
        std::uint64_t completed = 0;  ///< runs that returned a verdict
        std::uint64_t failovers = 0;  ///< completions off the primary
        std::uint64_t restarts = 0;   ///< shard processes respawned
        std::uint64_t breaker_opens = 0;
        std::uint64_t degraded = 0; ///< in-daemon fallback executions
        std::uint64_t wire_errors = 0;   ///< damaged response lines
        std::uint64_t ping_timeouts = 0; ///< pongs past the deadline
        std::uint64_t stray_responses = 0; ///< no waiter (wire-dup)
        // Transport-side accounting, merged in stats():
        std::uint64_t fences = 0;     ///< lease losses condemned (TCP)
        std::uint64_t reconnects = 0; ///< slot re-registrations (TCP)
        std::uint64_t partitions = 0; ///< net-partition blackholes
        std::uint64_t stale_epochs = 0;  ///< old-epoch frames dropped
        std::uint64_t registrations = 0; ///< hellos admitted (TCP)
        std::uint64_t shed_registrations = 0; ///< hellos rejected
    };

    /** In-daemon fallback when no shard is healthy. */
    using DegradedRunFn = std::function<Result<RunResult>(
        const std::string &alias, const SimConfig &config)>;

    ShardFleet(const FleetConfig &config, DegradedRunFn degraded);

    /** stop()s if running. */
    ~ShardFleet();

    ShardFleet(const ShardFleet &) = delete;
    ShardFleet &operator=(const ShardFleet &) = delete;

    /** Spawn the shards and the health monitor. InvalidArgument when
     *  the config is not fleetEnabled(). */
    Status start();

    /** Close every shard's stdin (clean EOF exit), SIGKILL stragglers,
     *  join every thread. Idempotent. */
    void stop();

    /**
     * Execute one run on the fleet: dispatch to the key's primary
     * shard, failing over around the ring on death/timeout, degrading
     * to the in-daemon fallback when no shard admits work. The
     * returned attempt mirrors the supervisor contract: worker_died
     * only when every shard AND the fallback were unavailable.
     */
    WorkerAttempt execute(const std::string &alias,
                          const SimConfig &config,
                          const std::string &key);

    Stats stats() const;

    /**
     * Fleet topology as JSON for the daemon's `status` endpoint:
     * transport kind, resolved listen address, per-shard state (slot,
     * alive, breaker, epoch, lease age, inflight, restarts, last
     * error) and the full stats counter block.
     */
    Json statusJson() const;

    /** The lifecycle event ring as a JSON array (oldest first). */
    Json eventsJson() const;

    /** Breaker state of shard @p index (tests/telemetry). */
    BreakerState breakerState(int index) const;

    const FleetConfig &config() const { return config_; }

    /** Resolved transport listen address (TCP transport; empty for
     *  pipes). Lets tests bind port 0 and discover the real port. */
    std::string listenAddress() const;

    /** Shed new shard registrations (daemon drain). */
    void setRegistrationDraining(bool draining);

  private:
    /** One pending dispatch, keyed by wire seq. */
    struct Waiter {
        std::mutex mu;
        std::condition_variable cv;
        bool done = false;
        WorkerAttempt attempt;
        int shard = -1; ///< dispatch target (failover bookkeeping)
        /** Dispatch-span start (traceNowNs()); shipped shard events
         *  rebase onto this so they nest inside the dispatch span. */
        std::uint64_t dispatch_start_ns = 0;
    };

    /** Per-slot health policy state, all guarded by the fleet mu_.
     *  The endpoint itself (process/socket) lives in the transport. */
    struct Shard {
        int index = 0;
        bool alive = false;
        CircuitBreaker breaker;
        bool ping_outstanding = false;
        std::chrono::steady_clock::time_point ping_sent{};
        std::chrono::steady_clock::time_point last_ping{};
        // Introspection state for statusJson().
        bool seen_up = false; ///< distinguishes first up from restarts
        std::uint64_t restarts = 0; ///< ups beyond the first
        std::chrono::steady_clock::time_point last_frame{};
        std::string last_error;
    };

    void monitorLoop();

    // Transport hook handlers.
    void handleFrame(int slot, const Json &msg);
    void handleUp(int slot);

    /** Endpoint-loss path: mark dead, open the breaker, fail the
     *  shard's in-flight waiters with Unavailable. */
    void handleShardDown(Shard &s, const std::string &why);

    /** Health failure (ping timeout, wire damage, run deadline);
     *  condemns the shard's endpoint when the breaker opens. */
    void recordShardFailure(Shard &s, const std::string &why);

    /** Fence: condemn the endpoint now and fail over its in-flight
     *  runs (TCP lease miss — harder than a strike). */
    void fenceShard(Shard &s, const std::string &why);

    /** Pong/result received: close the breaker. */
    void markShardHealthy(Shard &s);

    FleetConfig config_;
    DegradedRunFn degraded_;
    std::unique_ptr<ShardTransport> transport_;
    std::vector<std::unique_ptr<Shard>> shards_;

    ShardMetricsFolder folder_; ///< shard snapshot aggregation
    FleetEventRing events_;     ///< lifecycle event ring (+ JSONL)

    mutable std::mutex mu_; ///< shard health + stats
    Stats stats_;

    mutable std::mutex waiters_mu_;
    std::map<std::uint64_t, std::shared_ptr<Waiter>> waiters_;

    std::atomic<std::uint64_t> seq_{1};
    /** Folded into every minted trace id so sequential fleet
     *  instances in one process never collide (set in the ctor). */
    std::uint64_t trace_nonce_ = 0;
    std::atomic<bool> stopping_{false};
    std::thread monitor_;
    bool started_ = false;
};

/** Every Stats counter as a JSON object, key-per-field. The status
 *  endpoint embeds this; tests compare it number-for-number against
 *  the evrsim_fleet_* metrics. */
Json fleetStatsToJson(const ShardFleet::Stats &stats);

// --- shard-process side ---------------------------------------------

/** Serialize the simulation-relevant subset of @p params (dimensions,
 *  frames, warmup, tile jobs, timeout, validation, log level) for the
 *  --evrsim-shard-params argv flag. */
std::string shardParamsJson(const BenchParams &params);

/** Overlay a shardParamsJson() document onto @p params. */
Status applyShardParams(const std::string &text, BenchParams &params);

/**
 * Detect shard mode in an embedding binary's argv: the shard index
 * from --evrsim-shard=<i> (else -1), with any --evrsim-shard-params=
 * payload copied to @p params_json. Call before normal flag parsing,
 * like the --evrsim-worker-run probe.
 */
int shardFlagFromArgv(int argc, char **argv, std::string &params_json);

/** Force the bare-attempt worker philosophy onto shard params: no
 *  cache, no journal, no isolation, one job, quiet telemetry. Shared
 *  by the pipe and remote serve loops. */
void applyShardRuntimePolicy(BenchParams &params);

/** The "obs_dir" field of a shardParamsJson() document (the daemon's
 *  metrics-or-cache directory); empty when absent or unparseable. */
std::string shardObsDirFromParams(const std::string &params_json);

/**
 * Arm shard-side observability after the runtime policy: route metric
 * recording into the in-process registry (snapshots ship to the
 * control plane; the daemon alone writes artifacts) and, when
 * EVRSIM_TRACE is set, re-point the trace file at
 * <obs_dir>/shard-<slot>.trace.json so shard traces land slot-tagged
 * under the daemon's directory instead of orphaned beside nothing.
 */
void configureShardObservability(int slot, const std::string &obs_dir,
                                 BenchParams &params);

/** Attach the shard's metrics-registry snapshot to an outbound frame
 *  as "mx" (no-op while the registry is empty). */
void attachShardMetricsSnapshot(Json &payload);

/** The {trace_id, parent_span} a run frame carries ("trace"/"span"
 *  16-hex-digit strings); zero ids when the frame has none. */
TraceContext traceContextFromFrame(const Json &msg);

/** Execute one shard run request (@p workload under @p config) and
 *  build the framed "result" payload for @p seq. */
Json shardRunResponse(ExperimentRunner &runner,
                      const BenchParams &params, std::uint64_t seq,
                      const std::string &workload,
                      const std::string &config);

/**
 * shardRunResponse() wrapped in the fleet observability contract: the
 * run executes under @p ctx as the ambient trace context inside a
 * worker-category "shard-run" span, the events it recorded ship on
 * the response as "trace" (wire form, timestamps rebased to the run
 * start), and the metrics-registry snapshot rides along as "mx".
 */
Json shardExecuteRun(ExperimentRunner &runner, const BenchParams &params,
                     std::uint64_t seq, const std::string &workload,
                     const std::string &config, const TraceContext &ctx);

/**
 * Serve as shard @p shard_index until stdin EOF, then exit: parse the
 * params overlay, force the bare-attempt worker philosophy (no cache,
 * no journal, no isolation, quiet), answer pings, execute runs on a
 * dedicated thread (the reader stays responsive to pings mid-run),
 * and frame every response through the chaos injector's wire sites.
 */
[[noreturn]] void runShardAndExit(int shard_index,
                                  WorkloadFactory factory,
                                  BenchParams params,
                                  const std::string &params_json);

} // namespace evrsim

#endif // EVRSIM_SERVICE_FLEET_HPP
