/**
 * @file
 * TCP shard transport implementation: the control-plane listener +
 * registration/lease machinery on one side, the remote shard's
 * dial/register/serve loop on the other (tcp_transport.hpp).
 */
#include "service/tcp_transport.hpp"

#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "common/chaos.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/net.hpp"
#include "common/shutdown.hpp"
#include "driver/envelope.hpp"
#include "service/service_protocol.hpp"

namespace evrsim {

namespace {

using Clock = std::chrono::steady_clock;

/** I/O budget for one framed write or one handshake read. */
constexpr int kIoDeadlineMs = 5000;

/** Frame @p payload (already epoch-stamped) as one enveloped line. */
std::string
frameLine(Json payload)
{
    std::string line =
        wrapEnvelope(std::move(payload), kShardProtocolVersion).dump(0);
    line += '\n';
    return line;
}

enum class NetSend {
    Sent,             ///< the frame went out whole
    Swallowed,        ///< blackholed (partition active or started)
    PartitionStarted, ///< this draw opened a partition window
    Torn,             ///< connection shut down (net-reset or a failed
                      ///< write) — the frame is gone and so is the fd
};

/**
 * One framed write through the network chaos sites. Draw order:
 * partition (blackhole window), delay (held frame), reset (half the
 * frame then a shutdown, modelling an RST mid-frame). A real write
 * failure also tears the connection so the owning reader observes the
 * loss promptly.
 */
NetSend
netChaosSend(int fd, const std::string &line, ChaosInjector &chaos,
             Clock::time_point &partition_until)
{
    if (chaos.enabled()) {
        Clock::time_point now = Clock::now();
        if (now < partition_until)
            return NetSend::Swallowed;
        if (chaos.shouldFire(ChaosSite::NetPartition)) {
            partition_until =
                now + std::chrono::milliseconds(kChaosPartitionMs);
            return NetSend::PartitionStarted;
        }
        if (chaos.shouldFire(ChaosSite::NetDelay))
            std::this_thread::sleep_for(
                std::chrono::milliseconds(kChaosNetDelayMs));
        if (chaos.shouldFire(ChaosSite::NetReset) && line.size() > 1) {
            sendAllDeadline(fd, line.data(), line.size() / 2,
                            kIoDeadlineMs);
            ::shutdown(fd, SHUT_RDWR);
            return NetSend::Torn;
        }
    }
    if (!sendAllDeadline(fd, line.data(), line.size(), kIoDeadlineMs)
             .ok()) {
        ::shutdown(fd, SHUT_RDWR);
        return NetSend::Torn;
    }
    return NetSend::Sent;
}

// --- control-plane side ---------------------------------------------

class TcpShardTransport final : public ShardTransport
{
  public:
    explicit TcpShardTransport(FleetConfig config)
        : config_(std::move(config))
    {
    }

    ~TcpShardTransport() override { stop(); }

    const char *name() const override { return "tcp"; }

    Status
    start(TransportHooks hooks) override
    {
        hooks_ = std::move(hooks);
        stopping_.store(false);
        draining_.store(false);
        eps_.clear();
        for (int i = 0; i < config_.shards; ++i) {
            auto e = std::make_unique<Endpoint>();
            e->index = i;
            eps_.push_back(std::move(e));
        }
        Result<int> lfd = tcpListen(config_.listen, 16);
        if (!lfd.ok())
            return lfd.status().withContext("fleet listen");
        listen_fd_ = lfd.value();
        listen_addr_ = evrsim::listenAddress(listen_fd_);
        inform("fleet: listening for remote shards on %s",
               listen_addr_.c_str());

        // Materialize the remote-fleet counters at zero so a quiet
        // fleet *asserts* quiet (a missing counter and a zero counter
        // must be distinguishable in metrics.json).
        metricsCounterAdd("evrsim_fleet_fences_total", 0.0);
        metricsCounterAdd("evrsim_fleet_reconnects_total", 0.0);
        metricsCounterAdd("evrsim_fleet_partitions_total", 0.0);
        metricsCounterAdd("evrsim_fleet_stale_epochs_total", 0.0);
        metricsCounterAdd("evrsim_fleet_registrations_total", 0.0);
        metricsCounterAdd("evrsim_fleet_shed_registrations_total", 0.0);

        started_ = true;
        acceptor_ = std::thread([this] { acceptorLoop(); });
        return {};
    }

    void
    stop() override
    {
        if (!started_)
            return;
        stopping_.store(true);
        if (acceptor_.joinable())
            acceptor_.join();
        for (auto &e : eps_) {
            std::lock_guard<std::mutex> lock(e->mu);
            if (e->fd >= 0)
                ::shutdown(e->fd, SHUT_RDWR);
        }
        for (auto &e : eps_) {
            if (e->reader.joinable())
                e->reader.join();
        }
        if (listen_fd_ >= 0) {
            ::close(listen_fd_);
            listen_fd_ = -1;
        }
        started_ = false;
    }

    bool
    writeFrame(int slot, Json payload) override
    {
        Endpoint &e = *eps_[static_cast<std::size_t>(slot)];
        std::lock_guard<std::mutex> lock(e.mu);
        if (e.fd < 0)
            return false;
        payload.set("epoch", e.epoch);
        NetSend sent = netChaosSend(e.fd, frameLine(std::move(payload)),
                                    chaos_, e.partition_until);
        if (sent == NetSend::PartitionStarted) {
            bump(&TransportStats::partitions,
                 "evrsim_fleet_partitions_total");
            warn("fleet: chaos partitioned shard %d for %d ms",
                 e.index, kChaosPartitionMs);
        }
        // A swallowed frame still reports success: silence is the
        // run-deadline/lease machinery's job to detect, exactly like
        // wire-drop on the pipes.
        return sent != NetSend::Torn;
    }

    void
    condemn(int slot, const std::string &why) override
    {
        Endpoint &e = *eps_[static_cast<std::size_t>(slot)];
        bool fenced = false;
        {
            std::lock_guard<std::mutex> lock(e.mu);
            if (e.fd >= 0) {
                // shutdown, not close: the reader owns the close, and
                // a torn-down socket wakes it with EOF instead of
                // racing it on a recycled descriptor.
                ::shutdown(e.fd, SHUT_RDWR);
                fenced = true;
            }
        }
        if (fenced) {
            bump(&TransportStats::fences, "evrsim_fleet_fences_total");
            warn("fleet: shard %d connection fenced (%s)", slot,
                 why.c_str());
        }
    }

    void
    maintain() override
    {
        // Nothing periodic: admission is the acceptor thread's job
        // and loss detection is each connection reader's.
    }

    void setDraining(bool draining) override
    {
        draining_.store(draining);
    }

    std::string listenAddress() const override { return listen_addr_; }

    std::uint64_t
    slotEpoch(int slot) const override
    {
        if (slot < 0 || static_cast<std::size_t>(slot) >= eps_.size())
            return 0;
        Endpoint &e = *eps_[static_cast<std::size_t>(slot)];
        std::lock_guard<std::mutex> lock(e.mu);
        return e.epoch;
    }

    TransportStats
    stats() const override
    {
        std::lock_guard<std::mutex> lock(stats_mu_);
        return stats_;
    }

  private:
    struct Endpoint {
        int index = 0;
        /** Guards fd, epoch and the partition window: the write path,
         *  condemn and teardown all serialize here. */
        std::mutex mu;
        int fd = -1;
        std::uint64_t epoch = 0;
        Clock::time_point partition_until{};
        std::thread reader;
        std::uint64_t admissions = 0;
    };

    void
    bump(std::uint64_t TransportStats::*field, const char *metric)
    {
        {
            std::lock_guard<std::mutex> lock(stats_mu_);
            ++(stats_.*field);
        }
        metricsCounterAdd(metric, 1.0);
    }

    void
    reject(int fd, const char *reason)
    {
        Json r = Json::object();
        r.set("type", "reject");
        r.set("reason", reason);
        std::string line = frameLine(std::move(r));
        sendAllDeadline(fd, line.data(), line.size(), kIoDeadlineMs);
        ::close(fd);
    }

    void
    acceptorLoop()
    {
        while (!stopping_.load()) {
            Result<int> conn = acceptDeadline(listen_fd_, 200);
            if (!conn.ok()) {
                if (conn.status().code() == ErrorCode::Cancelled)
                    return;
                continue; // timeout or transient accept error
            }
            handshake(conn.value());
        }
    }

    /**
     * Serial registration handshake: read the hello (bounded), admit
     * into the first free slot under a fresh epoch, or reject. Serial
     * on purpose — admission is rare and a half-open registrant must
     * not be able to wedge the fleet for longer than one handshake
     * deadline.
     */
    void
    handshake(int fd)
    {
        MessageReader reader(fd);
        Result<Json> msg = reader.next(kIoDeadlineMs);
        if (!msg.ok()) {
            ::close(fd);
            return;
        }
        const Json *type = msg.value().find("type");
        if (!type || type->type() != Json::Type::String ||
            type->asString() != "hello") {
            ::close(fd);
            return;
        }
        if (draining_.load() || stopping_.load()) {
            bump(&TransportStats::shed_registrations,
                 "evrsim_fleet_shed_registrations_total");
            reject(fd, "draining");
            return;
        }
        std::uint64_t version = 0, prev_epoch = 0;
        if (const Json *f = msg.value().find("version");
            f && f->type() == Json::Type::Number)
            version = f->asU64();
        if (const Json *f = msg.value().find("prev_epoch");
            f && f->type() == Json::Type::Number)
            prev_epoch = f->asU64();
        if (version !=
            static_cast<std::uint64_t>(kShardProtocolVersion)) {
            bump(&TransportStats::shed_registrations,
                 "evrsim_fleet_shed_registrations_total");
            reject(fd, "bad-version");
            return;
        }
        if (prev_epoch != 0) {
            // Leases are never resumed: whatever epoch this shard
            // once held is dead (its runs already failed over). It
            // must re-register with a clean hello for a fresh epoch —
            // the fencing invariant that makes a healed partition
            // safe.
            bump(&TransportStats::stale_epochs,
                 "evrsim_fleet_stale_epochs_total");
            reject(fd, "stale-epoch");
            return;
        }

        Endpoint *slot = nullptr;
        for (auto &e : eps_) {
            bool free;
            {
                std::lock_guard<std::mutex> lock(e->mu);
                free = e->fd < 0;
            }
            if (!free)
                continue;
            // The previous tenant's reader has observed the teardown
            // (fd is -1 only after its close); join it before the
            // slot's thread handle is reused.
            if (e->reader.joinable())
                e->reader.join();
            slot = e.get();
            break;
        }
        if (!slot) {
            bump(&TransportStats::shed_registrations,
                 "evrsim_fleet_shed_registrations_total");
            reject(fd, "fleet-full");
            return;
        }

        const std::uint64_t epoch = epoch_counter_.fetch_add(1) + 1;
        Json welcome = Json::object();
        welcome.set("type", "welcome");
        welcome.set("slot", slot->index);
        welcome.set("epoch", epoch);
        welcome.set("lease_ms", config_.lease_ms);
        welcome.set("params", config_.shard_params_json);
        std::string line = frameLine(std::move(welcome));
        // The handshake itself is chaos-free: registration must
        // converge even mid-storm, or a fenced fleet could never
        // refill.
        if (!sendAllDeadline(fd, line.data(), line.size(),
                             kIoDeadlineMs)
                 .ok()) {
            ::close(fd);
            return;
        }

        std::uint64_t admissions;
        {
            std::lock_guard<std::mutex> lock(slot->mu);
            slot->fd = fd;
            slot->epoch = epoch;
            slot->partition_until = {};
            admissions = ++slot->admissions;
        }
        bump(&TransportStats::registrations,
             "evrsim_fleet_registrations_total");
        if (admissions > 1)
            bump(&TransportStats::reconnects,
                 "evrsim_fleet_reconnects_total");
        inform("fleet: remote shard registered into slot %d "
               "(epoch %llu%s)",
               slot->index, static_cast<unsigned long long>(epoch),
               admissions > 1 ? ", reconnect" : "");
        slot->reader = std::thread([this, slot, fd, epoch] {
            readerLoop(*slot, fd, epoch);
        });
        if (hooks_.on_up)
            hooks_.on_up(slot->index);
    }

    void
    readerLoop(Endpoint &e, int fd, std::uint64_t epoch)
    {
        MessageReader reader(fd);
        std::string why = "connection closed";
        for (;;) {
            Result<Json> msg = reader.next(config_.poll_ms);
            if (!msg.ok()) {
                if (msg.status().code() ==
                    ErrorCode::DeadlineExceeded) {
                    if (stopping_.load()) {
                        why = "transport stopped";
                        break;
                    }
                    continue;
                }
                if (msg.status().code() == ErrorCode::DataLoss) {
                    if (hooks_.on_strike)
                        hooks_.on_strike(e.index,
                                         "damaged response frame");
                    continue;
                }
                why = msg.status().message();
                break;
            }
            std::uint64_t frame_epoch = 0;
            if (const Json *f = msg.value().find("epoch");
                f && f->type() == Json::Type::Number)
                frame_epoch = f->asU64();
            if (frame_epoch != epoch) {
                // A frame from a past life (a response crossing a
                // reconnect, a zombie answering after its fence):
                // dropped, counted — never matched to a waiter, so a
                // completion can never be duplicated across epochs.
                bump(&TransportStats::stale_epochs,
                     "evrsim_fleet_stale_epochs_total");
                continue;
            }
            if (hooks_.on_frame)
                hooks_.on_frame(e.index, msg.value());
        }
        {
            std::lock_guard<std::mutex> lock(e.mu);
            if (e.fd == fd) {
                ::close(fd);
                e.fd = -1;
            }
        }
        if (hooks_.on_down)
            hooks_.on_down(e.index, why);
    }

    FleetConfig config_;
    TransportHooks hooks_;
    ChaosInjector chaos_{ChaosInjector::planFromEnv()};
    int listen_fd_ = -1;
    std::string listen_addr_;
    std::thread acceptor_;
    std::vector<std::unique_ptr<Endpoint>> eps_;
    std::atomic<std::uint64_t> epoch_counter_{0};
    std::atomic<bool> stopping_{false};
    std::atomic<bool> draining_{false};
    mutable std::mutex stats_mu_;
    TransportStats stats_;
    bool started_ = false;
};

} // namespace

std::unique_ptr<ShardTransport>
makeTcpShardTransport(const FleetConfig &config)
{
    return std::make_unique<TcpShardTransport>(config);
}

// --- remote shard side ----------------------------------------------

std::string
remoteShardFlagFromArgv(int argc, char **argv)
{
    const std::string prefix = "--evrsim-remote-shard=";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i] ? argv[i] : "";
        if (arg.compare(0, prefix.size(), prefix) == 0)
            return arg.substr(prefix.size());
    }
    return {};
}

namespace {

/** One queued run inside a remote shard, tagged with the epoch it
 *  arrived under (its response must carry the same epoch). */
struct RemoteRun {
    std::uint64_t seq = 0;
    std::uint64_t epoch = 0;
    std::string workload;
    std::string config;
    TraceContext ctx; ///< propagated trace context (zero = none)
};

/** The connection the worker thread responds through; reconnects swap
 *  the fd underneath it. */
struct RemoteConn {
    std::mutex mu;
    int fd = -1;
    Clock::time_point partition_until{};
};

} // namespace

void
runRemoteShardAndExit(const std::string &host_port,
                      WorkloadFactory factory, BenchParams params)
{
    ignoreSigpipe();
    installShutdownHandler();
    ChaosInjector chaos(ChaosInjector::planFromEnv());

    RemoteConn conn;
    std::mutex q_mu;
    std::condition_variable q_cv;
    std::deque<RemoteRun> queue;
    bool closed = false;

    // Responses pass the wire sites first (corrupt/drop/dup, exactly
    // like a pipe shard) and then the net sites; a torn write just
    // shuts the socket down — the serve loop notices and re-dials.
    auto respond = [&](Json payload) {
        std::string line = frameLine(std::move(payload));
        if (chaos.enabled()) {
            line = applyWireChaos(chaos, line);
            if (line.empty())
                return; // wire-drop
        }
        std::lock_guard<std::mutex> lock(conn.mu);
        if (conn.fd < 0)
            return;
        netChaosSend(conn.fd, line, chaos, conn.partition_until);
    };

    std::unique_ptr<ExperimentRunner> runner;
    std::thread worker;
    std::uint64_t prev_epoch = 0;
    int backoff_ms = 100;

    while (!shutdownRequested()) {
        Result<int> dial = tcpConnect(host_port, kIoDeadlineMs);
        if (!dial.ok()) {
            if (!interruptibleSleepMs(backoff_ms))
                break;
            backoff_ms = std::min(backoff_ms * 2, 2000);
            continue;
        }
        int fd = dial.value();

        Json hello = Json::object();
        hello.set("type", "hello");
        hello.set("version", kShardProtocolVersion);
        hello.set("schema", kRemoteShardSchema);
        hello.set("capacity", 1);
        hello.set("prev_epoch", prev_epoch);
        std::string hello_line = frameLine(std::move(hello));
        // Registration frames skip chaos: a fenced shard must always
        // be able to re-register, or the fleet could never heal.
        if (!sendAllDeadline(fd, hello_line.data(), hello_line.size(),
                             kIoDeadlineMs)
                 .ok()) {
            ::close(fd);
            if (!interruptibleSleepMs(backoff_ms))
                break;
            continue;
        }

        // The same MessageReader must carry from handshake into the
        // serve loop: it buffers, and a frame pipelined right behind
        // the welcome would be lost to a fresh reader.
        MessageReader reader(fd);
        Result<Json> first = reader.next(kIoDeadlineMs);
        if (!first.ok()) {
            ::close(fd);
            if (!interruptibleSleepMs(backoff_ms))
                break;
            continue;
        }
        const Json *type = first.value().find("type");
        std::string type_s =
            type && type->type() == Json::Type::String
                ? type->asString()
                : "";
        if (type_s == "reject") {
            std::string reason =
                first.value().get("reason", Json("")).asString();
            ::close(fd);
            if (reason == "stale-epoch") {
                // Expected after any disconnect: the old lease is
                // dead. Drop it and re-dial immediately for a fresh
                // epoch.
                prev_epoch = 0;
                continue;
            }
            inform("remote shard: registration rejected (%s)",
                   reason.c_str());
            if (!interruptibleSleepMs(backoff_ms))
                break;
            backoff_ms = std::min(backoff_ms * 2, 2000);
            continue;
        }
        if (type_s != "welcome") {
            ::close(fd);
            if (!interruptibleSleepMs(backoff_ms))
                break;
            continue;
        }

        std::uint64_t epoch =
            first.value().get("epoch", Json(0)).asU64();
        if (!runner) {
            std::string overlay =
                first.value().get("params", Json("")).asString();
            if (!overlay.empty()) {
                if (Status s = applyShardParams(overlay, params);
                    !s.ok()) {
                    std::fprintf(stderr, "evrsim remote shard: %s\n",
                                 s.message().c_str());
                    std::exit(2);
                }
            }
            applyShardRuntimePolicy(params);
            // The welcome names our slot: route the trace spill file
            // and the metrics-recording flag the same way a pipe
            // shard does. obs_dir rides the params overlay.
            int slot = static_cast<int>(
                first.value().get("slot", Json(0)).asDouble());
            configureShardObservability(
                slot, shardObsDirFromParams(overlay), params);
            setLogLevel(params.log_level);
            runner =
                std::make_unique<ExperimentRunner>(factory, params);
            worker = std::thread([&] {
                for (;;) {
                    RemoteRun run;
                    {
                        std::unique_lock<std::mutex> lk(q_mu);
                        q_cv.wait(lk, [&] {
                            return closed || !queue.empty();
                        });
                        if (queue.empty())
                            return;
                        run = std::move(queue.front());
                        queue.pop_front();
                    }
                    if (chaos.shouldFire(ChaosSite::WorkerKill9))
                        ::raise(SIGKILL);
                    Json payload = shardExecuteRun(
                        *runner, params, run.seq, run.workload,
                        run.config, run.ctx);
                    payload.set("epoch", run.epoch);
                    respond(std::move(payload));
                }
            });
        }
        backoff_ms = 100;
        {
            std::lock_guard<std::mutex> lock(conn.mu);
            conn.fd = fd;
            conn.partition_until = {};
        }
        inform("remote shard: registered with %s (epoch %llu)",
               host_port.c_str(),
               static_cast<unsigned long long>(epoch));

        for (;;) {
            if (shutdownRequested())
                break;
            Result<Json> msg = reader.next(250);
            if (!msg.ok()) {
                if (msg.status().code() == ErrorCode::DeadlineExceeded)
                    continue;
                if (msg.status().code() == ErrorCode::DataLoss)
                    continue; // damaged inbound frame: skip
                break;        // EOF / reset: re-register
            }
            if (chaos.shouldFire(ChaosSite::WorkerStall))
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(kChaosStallMs));
            if (chaos.shouldFire(ChaosSite::NetReconnectStorm))
                break; // voluntary drop + immediate re-dial
            if (msg.value().get("epoch", Json(0)).asU64() != epoch)
                continue; // a frame from a lease this shard lost
            const Json *t = msg.value().find("type");
            if (!t || t->type() != Json::Type::String)
                continue;
            if (t->asString() == "ping") {
                Json pong = Json::object();
                pong.set("type", "pong");
                pong.set("seq", msg.value().get("seq", Json(0)));
                pong.set("epoch", epoch);
                attachShardMetricsSnapshot(pong);
                respond(std::move(pong));
                continue;
            }
            if (t->asString() != "run")
                continue;
            RemoteRun run;
            run.epoch = epoch;
            if (const Json *f = msg.value().find("seq");
                f && f->type() == Json::Type::Number)
                run.seq = f->asU64();
            if (const Json *f = msg.value().find("workload");
                f && f->type() == Json::Type::String)
                run.workload = f->asString();
            if (const Json *f = msg.value().find("config");
                f && f->type() == Json::Type::String)
                run.config = f->asString();
            run.ctx = traceContextFromFrame(msg.value());
            {
                std::lock_guard<std::mutex> lock(q_mu);
                queue.push_back(std::move(run));
            }
            q_cv.notify_one();
        }

        {
            std::lock_guard<std::mutex> lock(conn.mu);
            if (conn.fd == fd)
                conn.fd = -1;
        }
        ::close(fd);
        // Deliberately present the dead epoch in the next hello. The
        // control plane must reject it (stale-epoch) before the fresh
        // re-registration — the fencing contract, exercised on every
        // single reconnect rather than trusted.
        prev_epoch = epoch;
    }

    {
        std::lock_guard<std::mutex> lock(q_mu);
        closed = true;
    }
    q_cv.notify_all();
    if (worker.joinable())
        worker.join();
    std::exit(shutdownExitCode(0));
}

} // namespace evrsim
