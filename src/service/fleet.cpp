/**
 * @file
 * ShardFleet implementation: control-plane policy (routing, breakers,
 * pings, failover) on one side, the pipe transport and the shard
 * process's serve loop on the other. The TCP transport lives in
 * tcp_transport.cpp behind the same ShardTransport seam.
 */
#include "service/fleet.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <string.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>

#include "common/chaos.hpp"
#include "common/fault_injector.hpp" // mix64, fnv1a64
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/net.hpp"
#include "driver/envelope.hpp"
#include "driver/supervisor.hpp" // kWorkerResponseFd
#include "service/service_protocol.hpp"
#include "service/tcp_transport.hpp"

namespace evrsim {

// The shard pipe rides the exact service line framing (MessageReader
// validates against kServiceProtocolVersion), so the two schemas must
// move together.
static_assert(kShardProtocolVersion == kServiceProtocolVersion,
              "shard pipe framing reuses the service envelope schema");

namespace {

using Clock = std::chrono::steady_clock;

/** Synthetic pid base for adopted shard trace lanes: far above any
 *  real pid so merged traces never collide with the daemon's own. */
constexpr int kShardTraceLaneBase = 1000000;

/** 53-bit mantissa draw in [0, 1) from one mixed word. */
double
unitDraw(std::uint64_t mixed)
{
    return static_cast<double>(mixed >> 11) * 0x1.0p-53;
}

/**
 * Frame @p payload as one enveloped line and write it whole to @p fd.
 * When @p chaos is given (shard side) the line passes through the wire
 * chaos sites first; a dropped line still reports success — that is
 * the point of the drop site.
 */
bool
writeFramedLine(int fd, Json payload, ChaosInjector *chaos)
{
    std::string line =
        wrapEnvelope(std::move(payload), kShardProtocolVersion).dump(0);
    line += '\n';
    if (chaos && chaos->enabled())
        line = applyWireChaos(*chaos, line);
    std::size_t off = 0;
    while (off < line.size()) {
        ssize_t n = ::write(fd, line.data() + off, line.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

const char *
breakerStateName(BreakerState s)
{
    switch (s) {
      case BreakerState::Closed:
        return "closed";
      case BreakerState::Open:
        return "open";
      case BreakerState::HalfOpen:
        return "half-open";
    }
    return "unknown";
}

bool
CircuitBreaker::recordFailure()
{
    ++consecutive_failures;
    if (state == BreakerState::Open)
        return false;
    // A half-open probe failure reopens immediately; a closed breaker
    // opens once the consecutive streak reaches the threshold.
    if (state == BreakerState::HalfOpen ||
        consecutive_failures >= std::max(threshold, 1)) {
        state = BreakerState::Open;
        return true;
    }
    return false;
}

void
CircuitBreaker::recordSuccess()
{
    consecutive_failures = 0;
    state = BreakerState::Closed;
}

void
CircuitBreaker::onRestart()
{
    consecutive_failures = 0;
    if (state == BreakerState::Open)
        state = BreakerState::HalfOpen;
}

bool
CircuitBreaker::forceOpen()
{
    if (state == BreakerState::Open)
        return false;
    state = BreakerState::Open;
    return true;
}

int
restartBackoffMs(const FleetConfig &c, int shard_index, int restarts)
{
    const long long base = std::max(c.restart_backoff_base_ms, 1);
    const long long cap =
        std::max<long long>(c.restart_backoff_cap_ms, base);
    const long long window =
        std::min(base << std::min(std::max(restarts, 0), 16), cap);
    // Deterministic jitter over the upper half of the window: shards
    // killed together restart spread out, and the same (shard,
    // restart) pair always picks the same delay.
    std::uint64_t m =
        mix64((static_cast<std::uint64_t>(shard_index) << 32) ^
              static_cast<std::uint64_t>(restarts) ^
              0x7f1e9ab3c44d1057ull);
    long long lo = window / 2;
    return static_cast<int>(
        lo + static_cast<long long>(unitDraw(m) *
                                    static_cast<double>(window - lo)));
}

int
shardIndexForKey(const std::string &key, int shards)
{
    if (shards <= 1)
        return 0;
    return static_cast<int>(fnv1a64(key) %
                            static_cast<std::uint64_t>(shards));
}

// --- pipe transport -------------------------------------------------

namespace {

/**
 * PR 8's fork/exec transport: each slot is a supervised child wired
 * over stdin (requests) and fd 3 (responses), reaped and respawned
 * with capped jittered backoff from maintain().
 */
class PipeShardTransport final : public ShardTransport
{
  public:
    explicit PipeShardTransport(FleetConfig config)
        : config_(std::move(config))
    {
    }

    ~PipeShardTransport() override { stop(); }

    const char *name() const override { return "pipe"; }

    Status
    start(TransportHooks hooks) override
    {
        hooks_ = std::move(hooks);
        stopping_.store(false);
        eps_.clear();
        for (int i = 0; i < config_.shards; ++i) {
            auto e = std::make_unique<Endpoint>();
            e->index = i;
            eps_.push_back(std::move(e));
        }
        for (auto &e : eps_) {
            if (Status st = spawn(*e); !st.ok()) {
                // maintain() keeps retrying on the backoff schedule; a
                // fleet that cannot spawn anything degrades per-run.
                warn("fleet: shard %d spawn failed: %s", e->index,
                     st.message().c_str());
                std::lock_guard<std::mutex> lock(mu_);
                e->restart_at =
                    Clock::now() +
                    std::chrono::milliseconds(restartBackoffMs(
                        config_, e->index, e->restarts));
            } else if (hooks_.on_up) {
                hooks_.on_up(e->index);
            }
        }
        started_ = true;
        return {};
    }

    void
    stop() override
    {
        if (!started_)
            return;
        stopping_.store(true);
        // EOF every shard's stdin: a healthy shard drains and exits 0.
        for (auto &e : eps_) {
            std::lock_guard<std::mutex> wl(e->write_mu);
            if (e->in_fd >= 0) {
                ::close(e->in_fd);
                e->in_fd = -1;
            }
        }
        // Bounded wait for clean exits, then SIGKILL the stragglers.
        Clock::time_point deadline =
            Clock::now() + std::chrono::milliseconds(2000);
        for (auto &e : eps_) {
            pid_t pid;
            {
                std::lock_guard<std::mutex> lock(mu_);
                pid = e->pid;
            }
            if (pid <= 0)
                continue;
            for (;;) {
                int wstatus = 0;
                pid_t r = ::waitpid(pid, &wstatus, WNOHANG);
                if (r == pid || (r < 0 && errno == ECHILD))
                    break;
                if (Clock::now() >= deadline) {
                    ::kill(pid, SIGKILL);
                    while (::waitpid(pid, &wstatus, 0) < 0 &&
                           errno == EINTR) {
                    }
                    break;
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(10));
            }
            std::lock_guard<std::mutex> lock(mu_);
            e->pid = -1;
        }
        for (auto &e : eps_) {
            if (e->reader.joinable())
                e->reader.join();
            if (e->out_fd >= 0) {
                ::close(e->out_fd);
                e->out_fd = -1;
            }
        }
        started_ = false;
    }

    bool
    writeFrame(int slot, Json payload) override
    {
        Endpoint &e = *eps_[static_cast<std::size_t>(slot)];
        std::lock_guard<std::mutex> lock(e.write_mu);
        if (e.in_fd < 0)
            return false;
        return writeFramedLine(e.in_fd, std::move(payload), nullptr);
    }

    void
    condemn(int slot, const std::string &why) override
    {
        (void)why;
        Endpoint &e = *eps_[static_cast<std::size_t>(slot)];
        pid_t pid = -1;
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (e.alive && e.pid > 0)
                pid = e.pid;
        }
        if (pid > 0)
            ::kill(pid, SIGKILL);
    }

    void
    maintain() override
    {
        for (auto &ep : eps_) {
            Endpoint &e = *ep;

            // Reap a dead shard once its reader has drained, then put
            // it on the restart schedule.
            bool reap = false;
            {
                std::lock_guard<std::mutex> lock(mu_);
                reap = e.needs_reap;
            }
            if (reap) {
                int wstatus = 0;
                pid_t r = ::waitpid(e.pid, &wstatus, WNOHANG);
                if (r == e.pid || (r < 0 && errno == ECHILD)) {
                    if (e.reader.joinable())
                        e.reader.join();
                    {
                        std::lock_guard<std::mutex> wl(e.write_mu);
                        if (e.in_fd >= 0) {
                            ::close(e.in_fd);
                            e.in_fd = -1;
                        }
                    }
                    if (e.out_fd >= 0) {
                        ::close(e.out_fd);
                        e.out_fd = -1;
                    }
                    std::lock_guard<std::mutex> lock(mu_);
                    e.needs_reap = false;
                    e.pid = -1;
                    e.restart_at =
                        Clock::now() +
                        std::chrono::milliseconds(restartBackoffMs(
                            config_, e.index, e.restarts));
                }
            }

            // Restart when the backoff expires.
            bool want_restart = false;
            {
                std::lock_guard<std::mutex> lock(mu_);
                want_restart = !e.alive && !e.needs_reap &&
                               e.pid < 0 &&
                               Clock::now() >= e.restart_at;
            }
            if (want_restart && !stopping_.load()) {
                if (spawn(e).ok()) {
                    {
                        std::lock_guard<std::mutex> lock(mu_);
                        ++e.restarts;
                        ++stats_.restarts;
                    }
                    metricsCounterAdd("evrsim_fleet_restarts_total",
                                      1.0);
                    inform("fleet: shard %d restarted (restart %d)",
                           e.index, e.restarts);
                    if (hooks_.on_up)
                        hooks_.on_up(e.index);
                } else {
                    std::lock_guard<std::mutex> lock(mu_);
                    ++e.restarts;
                    e.restart_at =
                        Clock::now() +
                        std::chrono::milliseconds(restartBackoffMs(
                            config_, e.index, e.restarts));
                }
            }
        }
    }

    TransportStats
    stats() const override
    {
        std::lock_guard<std::mutex> lock(mu_);
        return stats_;
    }

  private:
    struct Endpoint {
        int index = 0;
        pid_t pid = -1;
        int in_fd = -1;  ///< parent writes requests (shard stdin)
        int out_fd = -1; ///< parent reads responses (shard fd 3)
        std::thread reader;
        /** Serializes writes to in_fd AND its close, so a dispatch
         *  can never write through a recycled descriptor. */
        std::mutex write_mu;
        // Everything below is guarded by the transport mu_.
        bool alive = false;
        bool needs_reap = false;
        int restarts = 0;
        Clock::time_point restart_at{};
    };

    Status
    spawn(Endpoint &e)
    {
        int in[2], out[2];
        if (::pipe2(in, O_CLOEXEC) != 0)
            return Status::unavailable(std::string("fleet pipe: ") +
                                       ::strerror(errno));
        if (::pipe2(out, O_CLOEXEC) != 0) {
            Status st = Status::unavailable(
                std::string("fleet pipe: ") + ::strerror(errno));
            ::close(in[0]);
            ::close(in[1]);
            return st;
        }

        std::vector<std::string> args = config_.shard_argv;
        args.push_back("--evrsim-shard=" + std::to_string(e.index));
        if (!config_.shard_params_json.empty())
            args.push_back("--evrsim-shard-params=" +
                           config_.shard_params_json);
        std::vector<char *> cargv;
        cargv.reserve(args.size() + 1);
        for (std::string &a : args)
            cargv.push_back(a.data());
        cargv.push_back(nullptr);

        pid_t pid = ::fork();
        if (pid < 0) {
            Status st = Status::unavailable(
                std::string("fleet fork: ") + ::strerror(errno));
            ::close(in[0]);
            ::close(in[1]);
            ::close(out[0]);
            ::close(out[1]);
            return st;
        }
        if (pid == 0) {
            // Async-signal-safe child setup only: the parent is
            // threaded. dup2 clears FD_CLOEXEC on the target; when
            // source == target the flag must be cleared explicitly.
            auto install = [](int from, int to) -> int {
                if (from == to) {
                    int fl = ::fcntl(from, F_GETFD);
                    return fl < 0 ? -1
                                  : ::fcntl(from, F_SETFD,
                                            fl & ~FD_CLOEXEC);
                }
                return ::dup2(from, to);
            };
            if (install(in[0], STDIN_FILENO) < 0)
                ::_exit(127);
            if (install(out[1], kWorkerResponseFd) < 0)
                ::_exit(127);
            int devnull = ::open("/dev/null", O_WRONLY);
            if (devnull >= 0) {
                ::dup2(devnull, STDOUT_FILENO);
                if (devnull != STDOUT_FILENO)
                    ::close(devnull);
            }
            ::execv(cargv[0], cargv.data());
            ::_exit(127);
        }
        ::close(in[0]);
        ::close(out[1]);
        {
            std::lock_guard<std::mutex> wl(e.write_mu);
            e.in_fd = in[1];
        }
        e.out_fd = out[0];
        {
            std::lock_guard<std::mutex> lock(mu_);
            e.pid = pid;
            e.alive = true;
            e.needs_reap = false;
        }
        e.reader = std::thread(
            [this, &e, fd = out[0]] { readerLoop(e, fd); });
        return {};
    }

    void
    readerLoop(Endpoint &e, int fd)
    {
        MessageReader reader(fd);
        for (;;) {
            Result<Json> msg = reader.next(config_.poll_ms);
            if (!msg.ok()) {
                if (msg.status().code() ==
                    ErrorCode::DeadlineExceeded) {
                    if (stopping_.load())
                        return;
                    continue;
                }
                if (msg.status().code() == ErrorCode::DataLoss) {
                    // A damaged response line: the run it carried (if
                    // any) will fail over at its deadline; the damage
                    // itself is a health strike against the shard.
                    if (hooks_.on_strike)
                        hooks_.on_strike(e.index,
                                         "damaged response line");
                    continue;
                }
                {
                    std::lock_guard<std::mutex> lock(mu_);
                    e.alive = false;
                    e.needs_reap = true;
                }
                if (hooks_.on_down)
                    hooks_.on_down(e.index, msg.status().message());
                return;
            }
            if (hooks_.on_frame)
                hooks_.on_frame(e.index, msg.value());
        }
    }

    FleetConfig config_;
    TransportHooks hooks_;
    std::vector<std::unique_ptr<Endpoint>> eps_;
    mutable std::mutex mu_;
    TransportStats stats_;
    std::atomic<bool> stopping_{false};
    bool started_ = false;
};

} // namespace

std::unique_ptr<ShardTransport>
makePipeShardTransport(const FleetConfig &config)
{
    return std::make_unique<PipeShardTransport>(config);
}

// --- fleet policy ---------------------------------------------------

ShardFleet::ShardFleet(const FleetConfig &config, DegradedRunFn degraded)
    : config_(config), degraded_(std::move(degraded))
{
    // Per-control-plane nonce folded into every trace id: two fleet
    // instances in one process lifetime (restarts, tests) must never
    // mint colliding ids, or spans from different sweeps would stitch
    // into each other's dispatch windows in the merged trace.
    static std::atomic<std::uint64_t> instances{0};
    trace_nonce_ = mix64(0xa0761d6478bd642full +
                         (instances.fetch_add(1) << 17));
}

ShardFleet::~ShardFleet() { stop(); }

Status
ShardFleet::start()
{
    if (!fleetEnabled(config_))
        return Status::invalidArgument(
            "fleet: need shards > 0 and a shard argv or listen "
            "address");
    if (started_)
        return {};
    ignoreSigpipe();
    stopping_.store(false);
    shards_.clear();
    for (int i = 0; i < config_.shards; ++i) {
        auto s = std::make_unique<Shard>();
        s->index = i;
        s->breaker.threshold = config_.breaker_threshold;
        // A TCP slot starts with no endpoint at all: hold it Open so
        // routing skips it until a shard registers (handleUp probes
        // it half-open, exactly like a pipe respawn).
        if (fleetListens(config_))
            s->breaker.forceOpen();
        shards_.push_back(std::move(s));
    }

    transport_ = fleetListens(config_)
                     ? makeTcpShardTransport(config_)
                     : makePipeShardTransport(config_);
    TransportHooks hooks;
    hooks.on_frame = [this](int slot, const Json &msg) {
        handleFrame(slot, msg);
    };
    hooks.on_up = [this](int slot) { handleUp(slot); };
    hooks.on_down = [this](int slot, const std::string &why) {
        if (slot >= 0 &&
            static_cast<std::size_t>(slot) < shards_.size())
            handleShardDown(*shards_[static_cast<std::size_t>(slot)],
                            why);
    };
    hooks.on_strike = [this](int slot, const std::string &why) {
        if (slot < 0 || static_cast<std::size_t>(slot) >= shards_.size())
            return;
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.wire_errors;
        }
        metricsCounterAdd("evrsim_fleet_wire_errors_total", 1.0);
        recordShardFailure(*shards_[static_cast<std::size_t>(slot)],
                           why);
    };
    events_.setPersistPath(config_.events_path);
    if (Status st = transport_->start(std::move(hooks)); !st.ok()) {
        transport_.reset();
        return st;
    }

    // Materialize every fleet counter at zero so a quiet fleet exports
    // explicit zeros (and the status endpoint's numbers always have a
    // metric to match against).
    for (const char *name :
         {"evrsim_fleet_dispatched_total", "evrsim_fleet_completed_total",
          "evrsim_fleet_failovers_total", "evrsim_fleet_restarts_total",
          "evrsim_fleet_breaker_opens_total", "evrsim_fleet_degraded_total",
          "evrsim_fleet_wire_errors_total",
          "evrsim_fleet_ping_timeouts_total",
          "evrsim_fleet_stray_responses_total"})
        metricsCounterAdd(name, 0.0);
    metricsGaugeSet("evrsim_fleet_shards",
                    static_cast<double>(config_.shards));
    started_ = true;
    monitor_ = std::thread([this] { monitorLoop(); });
    return {};
}

void
ShardFleet::handleUp(int slot)
{
    if (slot < 0 || static_cast<std::size_t>(slot) >= shards_.size())
        return;
    Shard &s = *shards_[static_cast<std::size_t>(slot)];
    // A fresh incarnation's counters start from zero: forget the old
    // snapshot so its metrics accumulate instead of being seen as an
    // already-reported prefix.
    folder_.onShardUp(slot);
    bool first;
    {
        std::lock_guard<std::mutex> lock(mu_);
        s.alive = true;
        s.ping_outstanding = false;
        s.last_ping = s.last_frame = Clock::now();
        s.breaker.onRestart(); // open -> half-open probe
        first = !s.seen_up;
        if (first)
            s.seen_up = true;
        else
            ++s.restarts;
    }
    events_.record(first ? "registration" : "restart", slot,
                   transport_ ? transport_->name() : "");
}

void
ShardFleet::markShardHealthy(Shard &s)
{
    bool closed = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (s.breaker.state != BreakerState::Closed) {
            inform("fleet: shard %d healthy again (breaker %s -> closed)",
                   s.index, breakerStateName(s.breaker.state));
            closed = true;
        }
        s.breaker.recordSuccess();
    }
    if (closed)
        events_.record("breaker-close", s.index, "");
}

void
ShardFleet::recordShardFailure(Shard &s, const std::string &why)
{
    bool kill = false, opened = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        s.last_error = why;
        if (s.breaker.recordFailure()) {
            ++stats_.breaker_opens;
            metricsCounterAdd("evrsim_fleet_breaker_opens_total", 1.0);
            warn("fleet: shard %d breaker opened (%s)", s.index,
                 why.c_str());
            kill = s.alive;
            opened = true;
        }
    }
    if (opened)
        events_.record("breaker-open", s.index, why);
    // An open breaker on a live shard means it is misbehaving, not
    // dead (stalled, flaky wire): replace it. The transport's reader
    // observes the loss and runs the normal down path.
    if (kill && transport_)
        transport_->condemn(s.index, why);
}

void
ShardFleet::fenceShard(Shard &s, const std::string &why)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (!s.alive)
            return; // already gone; nothing to fence
    }
    warn("fleet: shard %d fenced (%s)", s.index, why.c_str());
    events_.record("fence", s.index, why);
    // Fail its in-flight runs over *now* (exactly once — the
    // transport's later on_down finds the shard already down), then
    // terminate the endpoint so a zombie holding the old epoch can
    // never answer into the ring again.
    handleShardDown(s, why);
    if (transport_)
        transport_->condemn(s.index, why);
    // A fence loses the shard's remaining buffers; flush what the
    // control plane already holds so the merged trace survives even
    // if the daemon never reaches a clean drain.
    if (traceActive())
        (void)traceWrite();
}

void
ShardFleet::handleShardDown(Shard &s, const std::string &why)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (!s.alive)
            return; // another path got here first
        s.alive = false;
        s.ping_outstanding = false;
        if (!stopping_.load()) {
            s.last_error = why;
            // During stop() the EOF is the *expected* way shards exit;
            // counting it as a failure would make every clean shutdown
            // look like an incident.
            if (s.breaker.forceOpen()) {
                ++stats_.breaker_opens;
                metricsCounterAdd("evrsim_fleet_breaker_opens_total",
                                  1.0);
            }
            warn("fleet: shard %d down (%s)", s.index, why.c_str());
        } else {
            s.breaker.forceOpen();
        }
    }
    // Fail the shard's in-flight dispatches now so their owners fail
    // over immediately instead of riding out the run deadline.
    std::vector<std::shared_ptr<Waiter>> doomed;
    {
        std::lock_guard<std::mutex> lock(waiters_mu_);
        for (auto &kv : waiters_)
            if (kv.second->shard == s.index)
                doomed.push_back(kv.second);
    }
    for (auto &w : doomed) {
        std::lock_guard<std::mutex> lock(w->mu);
        if (!w->done) {
            w->done = true;
            w->attempt.status = Status::unavailable(
                "fleet: shard died with the run in flight (" + why +
                ")");
            w->attempt.worker_died = true;
            w->cv.notify_all();
        }
    }
}

void
ShardFleet::handleFrame(int slot, const Json &msg)
{
    if (slot < 0 || static_cast<std::size_t>(slot) >= shards_.size())
        return;
    Shard &s = *shards_[static_cast<std::size_t>(slot)];

    const Json *type = msg.find("type");
    if (!type || type->type() != Json::Type::String)
        return;
    // Shards piggyback their metrics-registry snapshot on pong and
    // result frames; folding on both means a fenced shard's last
    // counters (shipped with its final result) are never lost.
    if (const Json *mx = msg.find("mx"))
        folder_.fold(slot, *mx);
    if (type->asString() == "pong") {
        {
            std::lock_guard<std::mutex> lock(mu_);
            s.ping_outstanding = false;
            s.last_frame = Clock::now();
        }
        markShardHealthy(s);
        return;
    }
    if (type->asString() != "result")
        return;
    {
        std::lock_guard<std::mutex> lock(mu_);
        s.last_frame = Clock::now();
    }

    const Json *seqj = msg.find("seq");
    const Json *okj = msg.find("ok");
    WorkerAttempt a;
    bool parsed = false;
    if (seqj && seqj->type() == Json::Type::Number && okj &&
        okj->type() == Json::Type::Bool) {
        if (okj->asBool()) {
            if (const Json *res = msg.find("result")) {
                Result<RunResult> rr = RunResult::tryFromJson(*res);
                if (rr.ok()) {
                    a.result = rr.value();
                    parsed = true;
                }
            }
        } else if (const Json *st = msg.find("status")) {
            Status reported;
            if (statusFromJson(*st, reported).ok() && !reported.ok()) {
                a.status = reported; // shard's verdict, code intact
                parsed = true;
            }
        }
    }
    if (!parsed) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.wire_errors;
        }
        metricsCounterAdd("evrsim_fleet_wire_errors_total", 1.0);
        recordShardFailure(s, "unusable result payload");
        return;
    }

    std::shared_ptr<Waiter> w;
    {
        std::lock_guard<std::mutex> lock(waiters_mu_);
        auto it = waiters_.find(seqj->asU64());
        if (it != waiters_.end())
            w = it->second;
    }
    if (!w) {
        // Duplicate or long-abandoned response (wire-dup, a run that
        // already failed over): tolerated, counted.
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.stray_responses;
        }
        metricsCounterAdd("evrsim_fleet_stray_responses_total", 1.0);
    } else {
        // Adopt the run's shipped shard spans, rebased onto the
        // dispatch span's start so they nest inside it in the merged
        // trace. Stray responses have no dispatch window to rebase
        // onto; their events are lost with the failover, by design.
        if (traceActive()) {
            if (const Json *tr = msg.find("trace"))
                traceIngestRemote(kShardTraceLaneBase + slot,
                                  "evrsim-shard-" + std::to_string(slot),
                                  w->dispatch_start_ns,
                                  traceEventsFromWire(*tr));
        }
        std::lock_guard<std::mutex> lock(w->mu);
        if (!w->done) {
            w->done = true;
            w->attempt = a;
            w->cv.notify_all();
        }
    }
    markShardHealthy(s);
}

void
ShardFleet::monitorLoop()
{
    // Under the TCP transport the pong deadline IS the lease: missing
    // it fences the shard immediately (its epoch is dead; the
    // connection is condemned) instead of striking toward the breaker
    // threshold — a partitioned shard must lose ownership of its
    // content-key range in one lease, not three.
    const bool hard_lease = fleetListens(config_);
    const int pong_deadline_ms =
        hard_lease ? std::max(config_.lease_ms, 1)
                   : config_.ping_deadline_ms;

    while (!stopping_.load()) {
        transport_->maintain();
        for (auto &sp : shards_) {
            Shard &s = *sp;
            bool need_ping = false, deadline_missed = false;
            {
                std::lock_guard<std::mutex> lock(mu_);
                if (s.alive) {
                    Clock::time_point now = Clock::now();
                    if (s.ping_outstanding &&
                        now - s.ping_sent >
                            std::chrono::milliseconds(
                                pong_deadline_ms)) {
                        s.ping_outstanding = false;
                        ++stats_.ping_timeouts;
                        deadline_missed = true;
                    } else if (!s.ping_outstanding &&
                               now - s.last_ping >=
                                   std::chrono::milliseconds(
                                       config_.ping_interval_ms)) {
                        s.ping_outstanding = true;
                        s.ping_sent = s.last_ping = now;
                        need_ping = true;
                    }
                }
            }
            if (deadline_missed) {
                metricsCounterAdd("evrsim_fleet_ping_timeouts_total",
                                  1.0);
                if (hard_lease)
                    fenceShard(s, "lease missed");
                else
                    recordShardFailure(s, "ping deadline exceeded");
            }
            if (need_ping) {
                Json ping = Json::object();
                ping.set("type", "ping");
                ping.set("seq", seq_.fetch_add(1));
                if (!transport_->writeFrame(s.index, std::move(ping)))
                    handleShardDown(s, "ping write failed");
            }
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(std::max(config_.poll_ms, 1)));
    }
}

WorkerAttempt
ShardFleet::execute(const std::string &alias, const SimConfig &config,
                    const std::string &key)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.dispatched;
    }
    metricsCounterAdd("evrsim_fleet_dispatched_total", 1.0);

    const int n = std::max(config_.shards, 1);
    const int primary = shardIndexForKey(key, n);
    Status last =
        Status::unavailable("fleet: no healthy shard admitted the run");

    for (int off = 0; off < n && !stopping_.load() &&
                      static_cast<std::size_t>(n) <= shards_.size();
         ++off) {
        Shard &s = *shards_[static_cast<std::size_t>((primary + off) % n)];
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (!s.alive || !s.breaker.admits())
                continue;
        }
        std::uint64_t seq = seq_.fetch_add(1);
        auto w = std::make_shared<Waiter>();
        w->shard = s.index;
        {
            std::lock_guard<std::mutex> lock(waiters_mu_);
            waiters_[seq] = w;
        }
        Json req = Json::object();
        req.set("type", "run");
        req.set("seq", seq);
        req.set("workload", alias);
        req.set("config", config.name);
        // Trace-context propagation: stamp the run with a fresh trace
        // id and the dispatch span's id; the shard adopts them as its
        // ambient context, so its spans share the id and (after the
        // result-frame ingest rebases them onto dispatch_start_ns)
        // nest inside this dispatch span in the merged trace.
        const bool tracing = traceActive();
        if (tracing) {
            std::uint64_t trace_id = mix64(
                trace_nonce_ ^
                (static_cast<std::uint64_t>(::getpid()) << 32) ^ seq ^
                0x51ed2701a93b45c7ull);
            std::uint64_t span_id =
                mix64(trace_id ^ 0x9e3779b97f4a7c15ull);
            req.set("trace", traceIdHex(trace_id));
            req.set("span", traceIdHex(span_id));
            w->dispatch_start_ns = traceNowNs();
            traceContextSet({trace_id, span_id});
        }
        auto finishSpan = [&](const char *outcome) {
            if (!tracing)
                return;
            traceComplete(TraceCat::Driver, "fleet-dispatch",
                          w->dispatch_start_ns,
                          traceNowNs() - w->dispatch_start_ns,
                          key + " shard=" + std::to_string(s.index) +
                              " outcome=" + outcome,
                          static_cast<std::int64_t>(seq));
            traceContextClear();
        };
        if (!transport_->writeFrame(s.index, std::move(req))) {
            {
                std::lock_guard<std::mutex> lock(waiters_mu_);
                waiters_.erase(seq);
            }
            finishSpan("write-failed");
            handleShardDown(s, "run dispatch write failed");
            transport_->condemn(s.index, "run dispatch write failed");
            last = Status::unavailable("fleet: dispatch to shard " +
                                       std::to_string(s.index) +
                                       " failed");
            continue;
        }
        bool done = false;
        {
            std::unique_lock<std::mutex> lk(w->mu);
            done = w->cv.wait_for(
                lk,
                std::chrono::milliseconds(
                    std::max(config_.run_deadline_ms, 1)),
                [&] { return w->done; });
        }
        {
            std::lock_guard<std::mutex> lock(waiters_mu_);
            waiters_.erase(seq);
        }
        if (!done) {
            // No response at all: a dropped wire line or a wedged
            // shard. Strike it and fail over.
            finishSpan("deadline");
            last = Status::unavailable(
                "fleet: run " + key + " exceeded the " +
                std::to_string(config_.run_deadline_ms) +
                " ms dispatch deadline on shard " +
                std::to_string(s.index));
            recordShardFailure(s, "run deadline exceeded");
            continue;
        }
        WorkerAttempt a = w->attempt;
        if (a.worker_died) {
            finishSpan("shard-died");
            last = a.status; // shard died under the run: fail over
            continue;
        }
        finishSpan("ok");
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.completed;
            if (off > 0)
                ++stats_.failovers;
        }
        metricsCounterAdd("evrsim_fleet_completed_total", 1.0);
        if (off > 0) {
            metricsCounterAdd("evrsim_fleet_failovers_total", 1.0);
            events_.record("failover", s.index, key);
        }
        return a; // the shard's verdict (result or Status), verbatim
    }

    // Chain exhausted: degrade to in-daemon execution rather than
    // failing the run while the fleet heals.
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.degraded;
    }
    metricsCounterAdd("evrsim_fleet_degraded_total", 1.0);
    if (!degraded_) {
        WorkerAttempt a;
        a.status = last;
        a.worker_died = true;
        return a;
    }
    warn("fleet: no healthy shard for %s; running degraded in-daemon",
         key.c_str());
    Result<RunResult> r = degraded_(alias, config);
    WorkerAttempt a;
    if (r.ok())
        a.result = r.value();
    else
        a.status = r.status();
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.completed;
    }
    metricsCounterAdd("evrsim_fleet_completed_total", 1.0);
    return a;
}

void
ShardFleet::stop()
{
    if (!started_)
        return;
    stopping_.store(true);
    if (monitor_.joinable())
        monitor_.join();
    if (transport_)
        transport_->stop();

    // Anything still parked on a waiter unblocks with Unavailable.
    std::vector<std::shared_ptr<Waiter>> left;
    {
        std::lock_guard<std::mutex> lock(waiters_mu_);
        for (auto &kv : waiters_)
            left.push_back(kv.second);
    }
    for (auto &w : left) {
        std::lock_guard<std::mutex> lock(w->mu);
        if (!w->done) {
            w->done = true;
            w->attempt.status =
                Status::unavailable("fleet: stopped with run in flight");
            w->attempt.worker_died = true;
            w->cv.notify_all();
        }
    }
    metricsGaugeSet("evrsim_fleet_shards", 0.0);
    started_ = false;
}

ShardFleet::Stats
ShardFleet::stats() const
{
    Stats s;
    {
        std::lock_guard<std::mutex> lock(mu_);
        s = stats_;
    }
    if (transport_) {
        TransportStats t = transport_->stats();
        s.restarts += t.restarts;
        s.fences += t.fences;
        s.reconnects += t.reconnects;
        s.partitions += t.partitions;
        s.stale_epochs += t.stale_epochs;
        s.registrations += t.registrations;
        s.shed_registrations += t.shed_registrations;
    }
    return s;
}

BreakerState
ShardFleet::breakerState(int index) const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (index < 0 || static_cast<std::size_t>(index) >= shards_.size())
        return BreakerState::Open;
    return shards_[static_cast<std::size_t>(index)]->breaker.state;
}

std::string
ShardFleet::listenAddress() const
{
    return transport_ ? transport_->listenAddress() : std::string();
}

void
ShardFleet::setRegistrationDraining(bool draining)
{
    if (transport_)
        transport_->setDraining(draining);
}

Json
fleetStatsToJson(const ShardFleet::Stats &stats)
{
    Json j = Json::object();
    j.set("dispatched", static_cast<double>(stats.dispatched));
    j.set("completed", static_cast<double>(stats.completed));
    j.set("failovers", static_cast<double>(stats.failovers));
    j.set("restarts", static_cast<double>(stats.restarts));
    j.set("breaker_opens", static_cast<double>(stats.breaker_opens));
    j.set("degraded", static_cast<double>(stats.degraded));
    j.set("wire_errors", static_cast<double>(stats.wire_errors));
    j.set("ping_timeouts", static_cast<double>(stats.ping_timeouts));
    j.set("stray_responses",
          static_cast<double>(stats.stray_responses));
    j.set("fences", static_cast<double>(stats.fences));
    j.set("reconnects", static_cast<double>(stats.reconnects));
    j.set("partitions", static_cast<double>(stats.partitions));
    j.set("stale_epochs", static_cast<double>(stats.stale_epochs));
    j.set("registrations", static_cast<double>(stats.registrations));
    j.set("shed_registrations",
          static_cast<double>(stats.shed_registrations));
    return j;
}

Json
ShardFleet::statusJson() const
{
    // Inflight counts first: waiters_mu_ and mu_ are never held
    // together anywhere in the fleet, and statusJson keeps it that way.
    std::map<int, int> inflight;
    {
        std::lock_guard<std::mutex> lock(waiters_mu_);
        for (const auto &kv : waiters_)
            ++inflight[kv.second->shard];
    }
    Json j = Json::object();
    j.set("transport",
          transport_ ? transport_->name() : std::string("none"));
    j.set("listen", listenAddress());
    Json arr = Json::array();
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto now = Clock::now();
        for (const auto &sp : shards_) {
            const Shard &s = *sp;
            Json e = Json::object();
            e.set("slot", s.index);
            e.set("alive", s.alive);
            e.set("breaker", breakerStateName(s.breaker.state));
            e.set("epoch",
                  static_cast<double>(
                      transport_ ? transport_->slotEpoch(s.index) : 0));
            double lease_ms = -1.0;
            if (s.last_frame.time_since_epoch().count() != 0)
                lease_ms = static_cast<double>(
                    std::chrono::duration_cast<
                        std::chrono::milliseconds>(now - s.last_frame)
                        .count());
            e.set("lease_age_ms", lease_ms);
            auto it = inflight.find(s.index);
            e.set("inflight",
                  it == inflight.end() ? 0 : it->second);
            e.set("restarts", static_cast<double>(s.restarts));
            e.set("last_error", s.last_error);
            arr.push(std::move(e));
        }
    }
    j.set("shards", std::move(arr));
    j.set("stats", fleetStatsToJson(stats()));
    return j;
}

Json
ShardFleet::eventsJson() const
{
    return events_.toJson();
}

// --- shard-process side ---------------------------------------------

std::string
shardParamsJson(const BenchParams &params)
{
    Json j = Json::object();
    j.set("width", params.width);
    j.set("height", params.height);
    j.set("frames", params.frames);
    j.set("warmup", params.warmup);
    j.set("tile_jobs", params.tile_jobs);
    j.set("job_timeout_ms", params.job_timeout_ms);
    j.set("log_level", static_cast<int>(params.log_level));
    Json v = Json::object();
    v.set("mode", static_cast<int>(params.validation.mode));
    v.set("sample", params.validation.tile_sample_rate);
    v.set("seed", params.validation.seed);
    j.set("validation", std::move(v));
    // Observability home for the shard process: its trace file and
    // metrics snapshots are rooted here so they never orphan in the
    // shard's cwd. Prefers the metrics dir, falls back to the cache
    // dir; empty means "no durable home" (cwd-relative fallback).
    j.set("obs_dir", params.metrics_dir.empty() ? params.cache_dir
                                                : params.metrics_dir);
    return j.dump(0);
}

Status
applyShardParams(const std::string &text, BenchParams &params)
{
    Result<Json> doc = Json::tryParse(text);
    if (!doc.ok())
        return Status::invalidArgument("shard params unusable: " +
                                       doc.status().message());
    const Json &j = doc.value();
    auto readInt = [&j](const char *key, int &out) {
        if (const Json *f = j.find(key);
            f && f->type() == Json::Type::Number)
            out = static_cast<int>(f->asDouble());
    };
    readInt("width", params.width);
    readInt("height", params.height);
    readInt("frames", params.frames);
    readInt("warmup", params.warmup);
    readInt("tile_jobs", params.tile_jobs);
    readInt("job_timeout_ms", params.job_timeout_ms);
    if (const Json *f = j.find("log_level");
        f && f->type() == Json::Type::Number)
        params.log_level =
            static_cast<LogLevel>(static_cast<int>(f->asDouble()));
    if (const Json *v = j.find("validation");
        v && v->type() == Json::Type::Object) {
        if (const Json *f = v->find("mode");
            f && f->type() == Json::Type::Number)
            params.validation.mode = static_cast<ValidateMode>(
                static_cast<int>(f->asDouble()));
        if (const Json *f = v->find("sample");
            f && f->type() == Json::Type::Number)
            params.validation.tile_sample_rate = f->asDouble();
        if (const Json *f = v->find("seed");
            f && f->type() == Json::Type::Number)
            params.validation.seed = f->asU64();
    }
    return {};
}

int
shardFlagFromArgv(int argc, char **argv, std::string &params_json)
{
    const std::string shard_prefix = "--evrsim-shard=";
    const std::string params_prefix = "--evrsim-shard-params=";
    int index = -1;
    params_json.clear();
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i] ? argv[i] : "";
        if (arg.compare(0, shard_prefix.size(), shard_prefix) == 0)
            index = std::atoi(arg.c_str() + shard_prefix.size());
        else if (arg.compare(0, params_prefix.size(), params_prefix) == 0)
            params_json = arg.substr(params_prefix.size());
    }
    return index;
}

void
applyShardRuntimePolicy(BenchParams &params)
{
    // The daemon owns the cache, the journals and the retry policy;
    // a shard is a stream of bare attempts (the PR 4 worker
    // philosophy), so its death never loses durable state. The
    // metrics dir is cleared too: a shard never writes artifacts —
    // configureShardObservability re-sets it purely as the "record
    // per-run metrics for snapshot shipping" flag.
    params.use_cache = false;
    params.resume = false;
    params.isolate = IsolateMode::Off;
    params.jobs = 1;
    params.heartbeat_ms = 0;
    params.metrics_dir.clear();
    params.write_summary = false;
}

std::string
shardObsDirFromParams(const std::string &params_json)
{
    Result<Json> doc = Json::tryParse(params_json);
    if (!doc.ok())
        return {};
    if (const Json *f = doc.value().find("obs_dir");
        f && f->type() == Json::Type::String)
        return f->asString();
    return {};
}

void
configureShardObservability(int slot, const std::string &obs_dir,
                            BenchParams &params)
{
    // Metrics: recording is keyed off a non-empty metrics_dir (the
    // same gate runMemoized uses), but shards never write artifacts —
    // snapshots ship to the control plane on pong/result frames and
    // the daemon exports the merged files.
    if (!obs_dir.empty())
        params.metrics_dir = obs_dir;
    // Trace: honour EVRSIM_TRACE in the shard too, but route the
    // local spill file under the observability dir with a slot-tagged
    // name so a fenced/killed shard leaves an attributable file
    // instead of an orphan in some cwd. The merged view still comes
    // from shipped events; this file is the forensic fallback.
    Result<TraceConfig> tc = traceConfigFromEnv();
    if (!tc.ok()) {
        warn("shard %d: %s", slot, tc.status().message().c_str());
        return;
    }
    if (!tc.value().enabled())
        return;
    TraceConfig cfg = tc.value();
    std::string name =
        "shard-" + std::to_string(slot) + ".trace.json";
    cfg.path = obs_dir.empty() ? name : obs_dir + "/" + name;
    traceConfigure(cfg);
}

void
attachShardMetricsSnapshot(Json &payload)
{
    if (metricsInstanceCount() == 0)
        return;
    Result<Json> doc = Json::tryParse(metricsToJson());
    if (doc.ok())
        payload.set("mx", std::move(doc.value()));
}

TraceContext
traceContextFromFrame(const Json &msg)
{
    TraceContext ctx;
    if (const Json *f = msg.find("trace");
        f && f->type() == Json::Type::String)
        ctx.trace_id = traceIdParse(f->asString());
    if (const Json *f = msg.find("span");
        f && f->type() == Json::Type::String)
        ctx.parent_span = traceIdParse(f->asString());
    return ctx;
}

Json
shardRunResponse(ExperimentRunner &runner, const BenchParams &params,
                 std::uint64_t seq, const std::string &workload,
                 const std::string &config)
{
    const bool metrics_on = !params.metrics_dir.empty();
    auto t0 = std::chrono::steady_clock::now();
    Result<RunResult> attempt = [&]() -> Result<RunResult> {
        Result<SimConfig> cfg = configByName(config, params.gpuConfig());
        if (!cfg.ok())
            return cfg.status();
        return runner.trySimulate(workload, cfg.value());
    }();
    if (metrics_on) {
        double wall_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();
        metricsCounterAdd(
            "evrsim_runs_total", 1,
            {{"outcome", attempt.ok() ? "ok" : "failed"}});
        if (attempt.ok())
            recordRunMetrics(workload, config, attempt.value(),
                             wall_ms);
    }

    Json payload = Json::object();
    payload.set("type", "result");
    payload.set("seq", seq);
    payload.set("ok", attempt.ok());
    if (attempt.ok())
        payload.set("result", attempt.value().toJson());
    else
        payload.set("status", statusToJson(attempt.status()));
    return payload;
}

Json
shardExecuteRun(ExperimentRunner &runner, const BenchParams &params,
                std::uint64_t seq, const std::string &workload,
                const std::string &config, const TraceContext &ctx)
{
    const bool tracing = traceActive();
    std::uint64_t t0 = 0;
    if (tracing) {
        traceContextSet(ctx);
        t0 = traceNowNs();
    }
    Json payload;
    {
        TraceSpan span(TraceCat::Worker, "shard-run");
        if (span.active()) {
            span.setDetail(workload + "/" + config + " parent=" +
                           traceIdHex(ctx.parent_span));
            span.setValue(static_cast<std::int64_t>(seq));
        }
        payload =
            shardRunResponse(runner, params, seq, workload, config);
    }
    if (tracing) {
        // Ship every span this run recorded (the shard-run envelope
        // plus the frame/stage/tile spans beneath it); the control
        // plane rebases them onto its dispatch span.
        payload.set("trace", traceEventsToWire(traceCollect(t0)));
        traceContextClear();
    }
    attachShardMetricsSnapshot(payload);
    return payload;
}

namespace {

/** One queued run inside a shard process. */
struct PendingRun {
    std::uint64_t seq = 0;
    std::string workload;
    std::string config;
    TraceContext ctx; ///< propagated trace context (zero = none)
};

} // namespace

void
runShardAndExit(int shard_index, WorkloadFactory factory,
                BenchParams params, const std::string &params_json)
{
    if (!params_json.empty()) {
        if (Status s = applyShardParams(params_json, params); !s.ok()) {
            std::fprintf(stderr, "evrsim shard %d: %s\n", shard_index,
                         s.message().c_str());
            std::exit(2);
        }
    }
    applyShardRuntimePolicy(params);
    configureShardObservability(
        shard_index, shardObsDirFromParams(params_json), params);
    setLogLevel(params.log_level);
    ignoreSigpipe();

    ChaosInjector chaos(ChaosInjector::planFromEnv());
    ExperimentRunner runner(factory, params);

    // The reader thread stays glued to stdin so pings are answered
    // mid-run; simulations execute on this one worker thread.
    std::mutex q_mu, write_mu;
    std::condition_variable q_cv;
    std::deque<PendingRun> queue;
    bool closed = false;

    auto respond = [&](Json payload) {
        std::lock_guard<std::mutex> lock(write_mu);
        writeFramedLine(kWorkerResponseFd, std::move(payload), &chaos);
    };

    std::thread worker([&] {
        for (;;) {
            PendingRun run;
            {
                std::unique_lock<std::mutex> lk(q_mu);
                q_cv.wait(lk, [&] { return closed || !queue.empty(); });
                if (queue.empty())
                    return;
                run = std::move(queue.front());
                queue.pop_front();
            }
            // worker-kill9 chaos: die exactly where a real crash
            // would hurt most — after accepting the run, before
            // responding. Counter-based, so the respawned shard does
            // not re-kill the same job forever.
            if (chaos.shouldFire(ChaosSite::WorkerKill9))
                ::raise(SIGKILL);

            respond(shardExecuteRun(runner, params, run.seq,
                                    run.workload, run.config,
                                    run.ctx));
        }
    });

    MessageReader reader(STDIN_FILENO);
    for (;;) {
        Result<Json> msg = reader.next(250);
        if (!msg.ok()) {
            if (msg.status().code() == ErrorCode::DeadlineExceeded)
                continue;
            if (msg.status().code() == ErrorCode::DataLoss)
                continue; // damaged inbound line: skip, keep serving
            break;        // EOF: the daemon is gone — exit cleanly
        }
        if (chaos.shouldFire(ChaosSite::WorkerStall))
            std::this_thread::sleep_for(
                std::chrono::milliseconds(kChaosStallMs));
        const Json *type = msg.value().find("type");
        if (!type || type->type() != Json::Type::String)
            continue;
        if (type->asString() == "ping") {
            Json pong = Json::object();
            pong.set("type", "pong");
            pong.set("seq", msg.value().get("seq", Json(0)));
            // Piggyback the registry snapshot on every pong so the
            // control plane's aggregate stays fresh between runs and
            // a later fence cannot lose more than one ping interval
            // of counters.
            attachShardMetricsSnapshot(pong);
            respond(std::move(pong));
            continue;
        }
        if (type->asString() != "run")
            continue;
        PendingRun run;
        if (const Json *f = msg.value().find("seq");
            f && f->type() == Json::Type::Number)
            run.seq = f->asU64();
        if (const Json *f = msg.value().find("workload");
            f && f->type() == Json::Type::String)
            run.workload = f->asString();
        if (const Json *f = msg.value().find("config");
            f && f->type() == Json::Type::String)
            run.config = f->asString();
        run.ctx = traceContextFromFrame(msg.value());
        {
            std::lock_guard<std::mutex> lock(q_mu);
            queue.push_back(std::move(run));
        }
        q_cv.notify_one();
    }
    {
        std::lock_guard<std::mutex> lock(q_mu);
        closed = true;
    }
    q_cv.notify_all();
    worker.join();
    std::exit(0);
}

} // namespace evrsim
