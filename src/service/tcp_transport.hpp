/**
 * @file
 * TCP shard transport: the multi-machine rung of the fleet.
 *
 * The pipe transport forks its shards; this transport *accepts* them.
 * The control plane listens on EVRSIM_FLEET_LISTEN and remote shard
 * processes (`evrsim-daemon --evrsim-remote-shard=<host:port>`) dial
 * in and register. Registration is a hello/welcome handshake over the
 * same checksummed envelope line protocol the pipes use:
 *
 *   shard -> plane  {type:"hello", version, schema, capacity,
 *                    prev_epoch}
 *   plane -> shard  {type:"welcome", slot, epoch, lease_ms, params}
 *              or   {type:"reject", reason}   (connection closed)
 *
 * Reject reasons: "draining" (the daemon is shutting down),
 * "bad-version" (protocol mismatch), "stale-epoch" (the hello carried
 * a prior epoch — leases are never resumed; re-dial with a fresh
 * hello), "fleet-full" (every slot has a live endpoint).
 *
 * Epoch/lease fencing: every admission takes a *monotonically
 * increasing* epoch from the control plane. All frames both ways are
 * stamped with it; the plane drops any frame whose epoch is not the
 * slot's current one (counted as stale_epochs). When a shard misses
 * its lease (EVRSIM_LEASE_MS, the ping/pong machinery with a hard
 * deadline) the fleet fences it: in-flight runs fail over exactly
 * once, the connection is condemned, and the epoch dies with it — so
 * a partitioned shard that heals can never answer into the ring with
 * old work, own a content-key range twice, or duplicate a seq stream.
 * It must re-register and be handed a fresh epoch.
 *
 * The network chaos sites (net-partition, net-delay, net-reset,
 * net-reconnect-storm — chaos.hpp) are drawn at this transport's
 * framed writes on both sides, keeping every injected network failure
 * counter-based and replayable.
 */
#ifndef EVRSIM_SERVICE_TCP_TRANSPORT_HPP
#define EVRSIM_SERVICE_TCP_TRANSPORT_HPP

#include <memory>
#include <string>

#include "service/fleet.hpp"

namespace evrsim {

/** Schema id a remote shard announces in its hello. */
constexpr const char *kRemoteShardSchema = "evrsim-shard";

/** The listening (control-plane) side of the TCP transport. */
std::unique_ptr<ShardTransport>
makeTcpShardTransport(const FleetConfig &config);

/**
 * Detect remote-shard mode in an embedding binary's argv: the
 * "host:port" from --evrsim-remote-shard=<host:port>, else "". Call
 * before normal flag parsing, like the --evrsim-shard probe.
 */
std::string remoteShardFlagFromArgv(int argc, char **argv);

/**
 * Serve as a remote shard until a shutdown signal, then exit: dial
 * @p host_port, register (re-registering with fresh hellos across
 * disconnects and fences, forever), apply the welcome's params
 * overlay, and run the same ping/run serve loop as the pipe shard —
 * with every response stamped with the epoch its run arrived under,
 * so a response that crosses a reconnect is dropped as stale by the
 * control plane instead of duplicating a completion.
 */
[[noreturn]] void runRemoteShardAndExit(const std::string &host_port,
                                        WorkloadFactory factory,
                                        BenchParams params);

} // namespace evrsim

#endif // EVRSIM_SERVICE_TCP_TRANSPORT_HPP
