/**
 * @file
 * The resident sweep service (`evrsim-daemon`).
 *
 * Everything a multi-tenant sweep service needs already existed
 * piecemeal — content-addressed result cache, in-flight memo dedup,
 * write-ahead sweep journal + resume, process isolation, metrics,
 * heartbeat — and this class composes them behind one UNIX domain
 * socket. Clients submit sweep requests (service_protocol.hpp); the
 * daemon executes them on a shared JobPool + ExperimentRunner and
 * streams per-request progress back.
 *
 * Robustness properties (DESIGN.md §13):
 *
 *  - Single-flight dedup: all requests share one ExperimentRunner, so
 *    concurrent requests for the same (workload, config) attach to the
 *    one in-flight simulation via the memo; each unique config
 *    simulates exactly once per daemon lifetime, then serves from
 *    memory, then from the on-disk cache across restarts.
 *  - Admission control: at most EVRSIM_QUEUE_MAX runs may be admitted
 *    and unfinished across all clients; excess requests are shed
 *    immediately with a structured ResourceExhausted Status instead of
 *    queueing unboundedly.
 *  - Per-client quotas: at most EVRSIM_CLIENT_QUOTA unfinished runs per
 *    client id, so one greedy client cannot starve the rest; the
 *    per-job rlimit budgets (EVRSIM_JOB_MEM_MB/EVRSIM_JOB_TIMEOUT_MS)
 *    apply to service jobs exactly as to bench jobs.
 *  - Graceful drain: SIGTERM/SIGINT (common/shutdown.hpp) stops
 *    admission, lets in-flight requests finish, flushes journals and
 *    metrics, and exits 143/130.
 *  - Crash safety: requests are journaled write-ahead
 *    (request_journal.hpp) and job outcomes ride the PR 4 sweep
 *    journal, so a SIGKILLed daemon restarts with EVRSIM_RESUME
 *    semantics and a client reconnecting by idempotent request id gets
 *    a byte-identical reply without re-simulating completed work.
 */
#ifndef EVRSIM_SERVICE_DAEMON_HPP
#define EVRSIM_SERVICE_DAEMON_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/job_pool.hpp"
#include "driver/experiment.hpp"
#include "service/fleet.hpp"
#include "service/request_journal.hpp"
#include "service/service_protocol.hpp"

namespace evrsim {

/** Service-level knobs, resolved from the environment. */
struct ServiceConfig {
    /** UNIX socket path (EVRSIM_SOCKET; default
     *  <cache_dir>/evrsim.sock). */
    std::string socket_path;
    /** Max admitted-and-unfinished runs across all clients
     *  (EVRSIM_QUEUE_MAX). A request whose run count would exceed the
     *  bound is shed with ResourceExhausted. */
    int queue_max = 256;
    /** Max unfinished runs per client id (EVRSIM_CLIENT_QUOTA). */
    int client_quota = 64;
    /** Internal poll cadence in ms: accept loop wakeups, idle
     *  connection-read timeouts, drain checks. */
    int poll_ms = 100;
    /** Worker-shard fleet (EVRSIM_SHARDS resolves fleet.shards; the
     *  daemon binary fills fleet.shard_argv with its own executable).
     *  fleet.shards == 0 keeps the PR 7 in-daemon execution model. */
    FleetConfig fleet;
};

/**
 * Resolve service knobs from the environment through the strict knob
 * parsers, so a typo'd EVRSIM_QUEUE_MAX fails naming the variable:
 *   EVRSIM_SOCKET=path        socket path (default <cache_dir>/evrsim.sock)
 *   EVRSIM_QUEUE_MAX=n        admission bound, runs (default 256)
 *   EVRSIM_CLIENT_QUOTA=n     per-client bound, runs (default 64)
 *   EVRSIM_SHARDS=n           worker-shard fleet width; 0 disables the
 *                             fleet (daemon binary default: cores/4,
 *                             min 1)
 *   EVRSIM_FLEET_LISTEN=h:p   accept remote shards over TCP on h:p
 *                             instead of forking local ones (port 0 =
 *                             kernel-assigned); EVRSIM_SHARDS slots
 *   EVRSIM_LEASE_MS=n         remote-shard lease: a registered shard
 *                             missing a pong for this long is fenced
 *                             (default 5000)
 *   EVRSIM_FLEET_EVENTS=path  fleet lifecycle event JSONL (default
 *                             <cache_dir>/events.jsonl; 0 disables
 *                             persistence — the ring stays on)
 */
Result<ServiceConfig>
serviceConfigFromEnvChecked(const BenchParams &params);

/** The resident sweep service. */
class SweepService
{
  public:
    /** Monotonic service accounting (also exported as
     *  evrsim_service_* metrics counters). */
    struct Stats {
        std::uint64_t connections = 0;
        std::uint64_t requests_admitted = 0;
        std::uint64_t requests_completed = 0;
        std::uint64_t requests_attached = 0; ///< served via `attach`
        std::uint64_t shed_queue_full = 0;
        std::uint64_t shed_quota = 0;
        std::uint64_t shed_draining = 0;
        std::uint64_t invalid_requests = 0;
        std::uint64_t runs_completed = 0; ///< includes failed runs
        std::uint64_t runs_failed = 0;
        /** Pending (not-done) request specs recovered from the request
         *  journal at startup — the crash-resume inventory. */
        std::uint64_t resumed_requests = 0;
    };

    /**
     * @param factory workload factory (workloads::factory() in the
     *                daemon binary; tests inject small registries)
     * @param params  shared bench parameters. The daemon binary sets
     *                params.resume so a restart replays the sweep
     *                journal; the service honors whatever it is given.
     * @param config  service knobs
     */
    SweepService(WorkloadFactory factory, const BenchParams &params,
                 const ServiceConfig &config);

    /** Drains (if serving) and joins every thread. */
    ~SweepService();

    SweepService(const SweepService &) = delete;
    SweepService &operator=(const SweepService &) = delete;

    /**
     * Bind the socket and start serving. Unavailable when another live
     * daemon already owns the socket (a stale socket file left by a
     * crash is silently replaced).
     */
    Status start();

    /**
     * Stop admitting (new requests are shed with Unavailable
     * "draining"), wait for in-flight requests to finish and their
     * final replies to be sent, then close every connection and the
     * socket. Idempotent.
     */
    void drain();

    /** Block until a cooperative shutdown signal arrives, then
     *  drain(). For the daemon binary's main loop. */
    void serveUntilShutdown();

    Stats stats() const;

    /** The shared runner (tests assert on sweepStats/single-flight). */
    ExperimentRunner &runner() { return runner_; }

    /** The worker-shard fleet; null when EVRSIM_SHARDS=0. */
    ShardFleet *fleet() { return fleet_.get(); }

    const ServiceConfig &config() const { return config_; }

    /** Where the request journal lives; empty = not journaling. */
    std::string requestJournalPath() const;

  private:
    struct Conn {
        int fd = -1;
        std::thread thread;
        std::atomic<bool> done{false};
        std::atomic<bool> dead{false}; ///< peer vanished; skip writes
        std::mutex write_mu;
    };

    /** One parsed run of a request. */
    struct RunSlot {
        std::string workload;
        std::string config_name;
        SimConfig config;
        Status status; ///< Ok => result valid
        RunResult result;
        bool ok = false;
    };

    void acceptLoop();
    void serveConnection(Conn &conn);
    void dispatch(Conn &conn, const Json &msg);

    /** Parse + admit + execute + reply for one sweep/attach request. */
    void executeRequest(Conn &conn, const std::string &id,
                        const Json &spec, bool attached);

    /** Admission control; Ok reserves @p nruns for @p client. */
    Status admit(const std::string &client, std::size_t nruns);
    void finishRun(const std::string &client);
    void finishRequest();

    /** Write one message to @p conn, marking it dead on failure. */
    void send(Conn &conn, Json payload);

    void sendError(Conn &conn, const std::string &id, const Status &why);

    WorkloadFactory factory_;
    BenchParams params_;
    ServiceConfig config_;
    ExperimentRunner runner_;
    JobPool pool_;
    RequestJournal journal_;
    std::unique_ptr<ShardFleet> fleet_;

    int listen_fd_ = -1;
    /** flock'd sidecar (<socket>.lock) serializing socket ownership:
     *  two daemons racing the probe->unlink->bind sequence resolve to
     *  exactly one owner. Held for the daemon's lifetime; the file is
     *  never unlinked (unlinking would let a third daemon lock a
     *  fresh inode while we hold the old one). */
    int lock_fd_ = -1;
    bool bound_ = false;
    std::atomic<bool> stop_accept_{false};
    std::thread accept_thread_;

    std::mutex conns_mu_;
    std::list<std::unique_ptr<Conn>> conns_;

    /** Admission state: one mutex covers the queue bound, the
     *  per-client ledger, drain, and the stats. */
    mutable std::mutex admit_mu_;
    std::condition_variable drained_cv_;
    bool draining_ = false;
    std::size_t outstanding_runs_ = 0;
    std::size_t active_requests_ = 0;
    std::map<std::string, std::size_t> per_client_;
    Stats stats_;

    /** Request specs by id: journal replay + live admissions. What
     *  `attach` resolves against. */
    std::mutex specs_mu_;
    std::map<std::string, Json> specs_;
};

} // namespace evrsim

#endif // EVRSIM_SERVICE_DAEMON_HPP
