/**
 * @file
 * SweepService implementation.
 */
#include "service/daemon.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/file.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "common/env.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/net.hpp"
#include "common/shutdown.hpp"
#include "common/trace.hpp"
#include "driver/envelope.hpp"

namespace evrsim {

namespace {

double
elapsedSeconds(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

/** Probe an existing socket file: is a live daemon behind it? */
bool
socketIsLive(const std::string &path)
{
    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return false;
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    bool live = ::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                          sizeof(addr)) == 0;
    ::close(fd);
    return live;
}

} // namespace

Result<ServiceConfig>
serviceConfigFromEnvChecked(const BenchParams &params)
{
    ServiceConfig cfg;
    if (const char *sock = std::getenv("EVRSIM_SOCKET");
        sock && *sock != '\0')
        cfg.socket_path = sock;
    else if (!params.cache_dir.empty())
        cfg.socket_path = params.cache_dir + "/evrsim.sock";
    else
        cfg.socket_path = "evrsim.sock";

    long long v = 0;
    bool present = false;
    if (Status s = readIntKnob("EVRSIM_QUEUE_MAX", 1, 1000000, v, present);
        !s.ok())
        return s;
    if (present)
        cfg.queue_max = static_cast<int>(v);
    if (Status s =
            readIntKnob("EVRSIM_CLIENT_QUOTA", 1, 1000000, v, present);
        !s.ok())
        return s;
    if (present)
        cfg.client_quota = static_cast<int>(v);
    if (Status s = readIntKnob("EVRSIM_SHARDS", 0, 1024, v, present);
        !s.ok())
        return s;
    if (present)
        cfg.fleet.shards = static_cast<int>(v);
    if (const char *listen = std::getenv("EVRSIM_FLEET_LISTEN");
        listen && *listen != '\0') {
        std::string host;
        int port = 0;
        if (Status s = splitHostPort(listen, &host, &port); !s.ok())
            return s.withContext("EVRSIM_FLEET_LISTEN");
        cfg.fleet.listen = listen;
    }
    if (Status s = readIntKnob("EVRSIM_LEASE_MS", 100, 3600000, v,
                               present);
        !s.ok())
        return s;
    if (present)
        cfg.fleet.lease_ms = static_cast<int>(v);
    // Lifecycle-event persistence: defaults next to the journals,
    // EVRSIM_FLEET_EVENTS=0 disables, anything else is an explicit
    // path. The in-memory ring serves `status` either way.
    if (const char *ev = std::getenv("EVRSIM_FLEET_EVENTS");
        ev && *ev != '\0') {
        if (std::string(ev) != "0")
            cfg.fleet.events_path = ev;
    } else if (!params.cache_dir.empty()) {
        cfg.fleet.events_path = params.cache_dir + "/events.jsonl";
    }
    return cfg;
}

namespace {

/** With a fleet on, every run must leave the daemon process: runs are
 *  forced onto the isolate path so the runner calls the installed
 *  launcher (the fleet). The cache key ignores isolate mode, so cached
 *  results stay valid either way. */
BenchParams
fleetAdjustedParams(BenchParams params, const ServiceConfig &config)
{
    if (fleetEnabled(config.fleet))
        params.isolate = IsolateMode::Process;
    return params;
}

} // namespace

SweepService::SweepService(WorkloadFactory factory,
                           const BenchParams &params,
                           const ServiceConfig &config)
    : factory_(std::move(factory)),
      params_(fleetAdjustedParams(params, config)), config_(config),
      runner_(factory_, params_), pool_(params_.resolvedJobs())
{
    if (fleetEnabled(config_.fleet)) {
        if (config_.fleet.shard_params_json.empty())
            config_.fleet.shard_params_json = shardParamsJson(params_);
        fleet_ = std::make_unique<ShardFleet>(
            config_.fleet,
            [this](const std::string &alias, const SimConfig &config) {
                return runner_.trySimulate(alias, config);
            });
        runner_.setWorkerLauncher(
            [this](const std::string &alias, const SimConfig &config,
                   const std::string &key) {
                return fleet_->execute(alias, config, key);
            });
    }

    std::string jpath = requestJournalPath();
    if (jpath.empty())
        return;
    std::error_code ec;
    std::filesystem::create_directories(params_.cache_dir, ec);

    // Recover request identity from a previous daemon's journal: every
    // known spec becomes attachable, and the not-yet-done ones are the
    // crash-resume inventory a reconnecting client will re-run (cheaply,
    // via the sweep journal + result cache).
    Result<RequestJournal::Replay> rep = RequestJournal::replay(jpath);
    if (rep.ok()) {
        std::size_t pending = 0;
        for (auto &kv : rep.value().specs) {
            if (!rep.value().done.count(kv.first))
                ++pending;
            specs_[kv.first] = std::move(kv.second);
        }
        stats_.resumed_requests = pending;
        if (!specs_.empty())
            inform("service: replayed %zu request(s) from %s "
                   "(%zu pending, %zu damaged record(s) dropped)",
                   specs_.size(), jpath.c_str(), pending,
                   rep.value().damaged);
    } else {
        warn("service: request journal replay failed: %s",
             rep.status().message().c_str());
    }
    if (Status s = journal_.open(jpath); !s.ok())
        warn("service: request journal disabled: %s",
             s.message().c_str());
}

SweepService::~SweepService() { drain(); }

std::string
SweepService::requestJournalPath() const
{
    if (params_.cache_dir.empty())
        return {};
    return params_.cache_dir + "/service.journal";
}

Status
SweepService::start()
{
    if (listen_fd_ >= 0)
        return {};

    // A client vanishing mid-progress-stream (or a shard pipe/socket
    // breaking) must surface as a write Status, never a
    // process-killing SIGPIPE.
    ignoreSigpipe();

    struct sockaddr_un addr;
    if (config_.socket_path.size() >= sizeof(addr.sun_path))
        return Status::invalidArgument(
            "EVRSIM_SOCKET path too long for a UNIX socket (" +
            std::to_string(config_.socket_path.size()) + " > " +
            std::to_string(sizeof(addr.sun_path) - 1) + " bytes): " +
            config_.socket_path);

    // Socket ownership is decided by an flock'd sidecar, not by the
    // probe: two daemons racing the probe->unlink->bind sequence on
    // one path would otherwise both "win" (one binds, the other
    // unlinks the winner's socket out from under it). The lock is
    // held for the daemon's lifetime and the lock file is never
    // unlinked — see lock_fd_.
    std::string lock_path = config_.socket_path + ".lock";
    int lock_fd = ::open(lock_path.c_str(),
                         O_CREAT | O_RDWR | O_CLOEXEC, 0600);
    if (lock_fd < 0)
        return Status::unavailable("open " + lock_path + ": " +
                                   std::strerror(errno));
    if (::flock(lock_fd, LOCK_EX | LOCK_NB) != 0) {
        ::close(lock_fd);
        return Status::unavailable("another daemon owns " +
                                   config_.socket_path +
                                   " (lock held on " + lock_path + ")");
    }
    lock_fd_ = lock_fd;
    auto release_lock = [this] {
        if (lock_fd_ >= 0) {
            ::close(lock_fd_); // releases the flock; never unlink
            lock_fd_ = -1;
        }
    };

    if (::access(config_.socket_path.c_str(), F_OK) == 0) {
        // With the lock held this is belt-and-braces (a live daemon
        // would be holding the lock), but it still catches a daemon
        // from before the sidecar existed.
        if (socketIsLive(config_.socket_path)) {
            release_lock();
            return Status::unavailable("another daemon is serving on " +
                                       config_.socket_path);
        }
        // Stale socket file left behind by a crashed daemon.
        warn("service: replacing stale socket %s",
             config_.socket_path.c_str());
        ::unlink(config_.socket_path.c_str());
    }

    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        release_lock();
        return Status::unavailable(std::string("socket: ") +
                                   std::strerror(errno));
    }
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, config_.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(fd, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        Status s = Status::unavailable("bind " + config_.socket_path +
                                       ": " + std::strerror(errno));
        ::close(fd);
        release_lock();
        return s;
    }
    bound_ = true;
    if (::listen(fd, 64) != 0) {
        Status s = Status::unavailable("listen " + config_.socket_path +
                                       ": " + std::strerror(errno));
        ::close(fd);
        ::unlink(config_.socket_path.c_str());
        bound_ = false;
        release_lock();
        return s;
    }
    listen_fd_ = fd;
    if (fleet_) {
        if (Status s = fleet_->start(); !s.ok()) {
            // Degradation, not failure: every run takes the in-daemon
            // fallback until the monitor heals the fleet.
            warn("service: fleet start: %s", s.message().c_str());
        }
    }
    stop_accept_.store(false);
    accept_thread_ = std::thread([this] { acceptLoop(); });
    inform("service: listening on %s (queue_max=%d client_quota=%d "
           "jobs=%d shards=%d)",
           config_.socket_path.c_str(), config_.queue_max,
           config_.client_quota, params_.resolvedJobs(),
           fleet_ ? config_.fleet.shards : 0);
    return {};
}

void
SweepService::acceptLoop()
{
    for (;;) {
        if (stop_accept_.load(std::memory_order_relaxed))
            return;
        struct pollfd pfd;
        pfd.fd = listen_fd_;
        pfd.events = POLLIN;
        int pr = ::poll(&pfd, 1, config_.poll_ms);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            warn("service: accept poll: %s", std::strerror(errno));
            return;
        }
        if (pr == 0)
            continue;
        int cfd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
        if (cfd < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            return; // listen fd closed under us: draining
        }
        {
            std::lock_guard<std::mutex> lock(admit_mu_);
            ++stats_.connections;
        }
        metricsCounterAdd("evrsim_service_connections_total", 1.0);
        std::lock_guard<std::mutex> lock(conns_mu_);
        // Reap connections whose threads already finished.
        for (auto it = conns_.begin(); it != conns_.end();) {
            if ((*it)->done.load()) {
                if ((*it)->thread.joinable())
                    (*it)->thread.join();
                if ((*it)->fd >= 0)
                    ::close((*it)->fd);
                it = conns_.erase(it);
            } else {
                ++it;
            }
        }
        auto conn = std::make_unique<Conn>();
        conn->fd = cfd;
        Conn *raw = conn.get();
        conn->thread = std::thread([this, raw] { serveConnection(*raw); });
        conns_.push_back(std::move(conn));
    }
}

void
SweepService::serveConnection(Conn &conn)
{
    MessageReader reader(conn.fd);
    for (;;) {
        Result<Json> msg = reader.next(config_.poll_ms);
        if (!msg.ok()) {
            ErrorCode code = msg.status().code();
            if (code == ErrorCode::DeadlineExceeded) {
                // Idle between messages; leave once draining.
                bool draining;
                {
                    std::lock_guard<std::mutex> lock(admit_mu_);
                    draining = draining_;
                }
                if (draining)
                    break;
                continue;
            }
            if (code == ErrorCode::DataLoss) {
                // A torn or damaged line; the framing is
                // self-delimiting, so report it and keep serving.
                {
                    std::lock_guard<std::mutex> lock(admit_mu_);
                    ++stats_.invalid_requests;
                }
                sendError(conn, "", msg.status());
                continue;
            }
            break; // peer closed or socket error
        }
        dispatch(conn, msg.value());
    }
    conn.done.store(true);
}

void
SweepService::dispatch(Conn &conn, const Json &msg)
{
    const Json *type = msg.find("type");
    if (!type || type->type() != Json::Type::String) {
        std::lock_guard<std::mutex> lock(admit_mu_);
        ++stats_.invalid_requests;
        sendError(conn, "",
                  Status::invalidArgument(
                      "message has no string 'type' member"));
        return;
    }

    if (type->asString() == "ping") {
        bool draining;
        {
            std::lock_guard<std::mutex> lock(admit_mu_);
            draining = draining_;
        }
        Json pong = Json::object();
        pong.set("type", "pong");
        pong.set("draining", draining);
        send(conn, std::move(pong));
        return;
    }

    if (type->asString() == "status") {
        bool want_events = false;
        if (const Json *ev = msg.find("events");
            ev && ev->type() == Json::Type::Bool)
            want_events = ev->asBool();
        bool draining;
        Stats st;
        {
            std::lock_guard<std::mutex> lock(admit_mu_);
            draining = draining_;
            st = stats_;
        }
        Json svc = Json::object();
        svc.set("connections", static_cast<double>(st.connections));
        svc.set("requests_admitted",
                static_cast<double>(st.requests_admitted));
        svc.set("requests_completed",
                static_cast<double>(st.requests_completed));
        svc.set("requests_attached",
                static_cast<double>(st.requests_attached));
        svc.set("shed_queue_full",
                static_cast<double>(st.shed_queue_full));
        svc.set("shed_quota", static_cast<double>(st.shed_quota));
        svc.set("shed_draining",
                static_cast<double>(st.shed_draining));
        svc.set("invalid_requests",
                static_cast<double>(st.invalid_requests));
        svc.set("runs_completed",
                static_cast<double>(st.runs_completed));
        svc.set("runs_failed", static_cast<double>(st.runs_failed));
        svc.set("resumed_requests",
                static_cast<double>(st.resumed_requests));
        Json reply = Json::object();
        reply.set("type", "status");
        reply.set("draining", draining);
        reply.set("service", std::move(svc));
        if (fleet_) {
            reply.set("fleet", fleet_->statusJson());
            if (want_events)
                reply.set("events", fleet_->eventsJson());
        }
        send(conn, std::move(reply));
        return;
    }

    const Json *id_j = msg.find("id");
    std::string id =
        id_j && id_j->type() == Json::Type::String ? id_j->asString() : "";

    if (type->asString() == "sweep") {
        const Json *runs = msg.find("runs");
        if (id.empty() || !runs || runs->type() != Json::Type::Array ||
            runs->size() == 0) {
            {
                std::lock_guard<std::mutex> lock(admit_mu_);
                ++stats_.invalid_requests;
            }
            sendError(conn, id,
                      Status::invalidArgument(
                          "sweep needs a non-empty string 'id' and a "
                          "non-empty 'runs' array"));
            return;
        }
        const Json *client = msg.find("client");
        Json spec = Json::object();
        spec.set("client",
                 client && client->type() == Json::Type::String
                     ? client->asString()
                     : std::string("anonymous"));
        spec.set("runs", *runs);
        executeRequest(conn, id, spec, /*attached=*/false);
        return;
    }

    if (type->asString() == "attach") {
        if (id.empty()) {
            {
                std::lock_guard<std::mutex> lock(admit_mu_);
                ++stats_.invalid_requests;
            }
            sendError(conn, id,
                      Status::invalidArgument(
                          "attach needs a non-empty string 'id'"));
            return;
        }
        Json spec;
        {
            std::lock_guard<std::mutex> lock(specs_mu_);
            auto it = specs_.find(id);
            if (it == specs_.end()) {
                sendError(conn, id,
                          Status::notFound(
                              "unknown request id '" + id +
                              "' (not in memory or the request "
                              "journal)"));
                return;
            }
            spec = it->second;
        }
        executeRequest(conn, id, spec, /*attached=*/true);
        return;
    }

    {
        std::lock_guard<std::mutex> lock(admit_mu_);
        ++stats_.invalid_requests;
    }
    sendError(conn, id,
              Status::invalidArgument("unknown message type '" +
                                      type->asString() + "'"));
}

void
SweepService::executeRequest(Conn &conn, const std::string &id,
                             const Json &spec, bool attached)
{
    const Json *client_j = spec.find("client");
    std::string client = client_j &&
                                 client_j->type() == Json::Type::String
                             ? client_j->asString()
                             : "anonymous";
    const Json *runs_j = spec.find("runs");
    if (!runs_j || runs_j->type() != Json::Type::Array ||
        runs_j->size() == 0) {
        {
            std::lock_guard<std::mutex> lock(admit_mu_);
            ++stats_.invalid_requests;
        }
        sendError(conn, id,
                  Status::invalidArgument("request spec has no runs"));
        return;
    }

    // Parse every run up front so an invalid request is rejected whole,
    // before it can consume admission slots or journal space.
    GpuConfig gpu = params_.gpuConfig();
    std::vector<RunSlot> slots;
    slots.reserve(runs_j->size());
    for (std::size_t i = 0; i < runs_j->size(); ++i) {
        const Json &r = runs_j->at(i);
        const Json *wl = r.find("workload");
        const Json *cf = r.find("config");
        if (!wl || wl->type() != Json::Type::String || !cf ||
            cf->type() != Json::Type::String) {
            {
                std::lock_guard<std::mutex> lock(admit_mu_);
                ++stats_.invalid_requests;
            }
            sendError(conn, id,
                      Status::invalidArgument(
                          "runs[" + std::to_string(i) +
                          "] needs string 'workload' and 'config'"));
            return;
        }
        Result<SimConfig> config = configByName(cf->asString(), gpu);
        if (!config.ok()) {
            {
                std::lock_guard<std::mutex> lock(admit_mu_);
                ++stats_.invalid_requests;
            }
            sendError(conn, id, config.status());
            return;
        }
        RunSlot slot;
        slot.workload = wl->asString();
        slot.config_name = cf->asString();
        slot.config = config.value();
        slots.push_back(std::move(slot));
    }

    if (Status adm = admit(client, slots.size()); !adm.ok()) {
        sendError(conn, id, adm);
        return;
    }

    // Write-ahead: the request exists durably before any of its work.
    journal_.recordRequest(id, spec);
    {
        std::lock_guard<std::mutex> lock(specs_mu_);
        specs_[id] = spec;
    }
    {
        std::lock_guard<std::mutex> lock(admit_mu_);
        ++stats_.requests_admitted;
        if (attached)
            ++stats_.requests_attached;
    }
    metricsCounterAdd("evrsim_service_requests_total", 1.0,
                      {{"kind", attached ? "attach" : "sweep"}});

    Json accepted = Json::object();
    accepted.set("type", "accepted");
    accepted.set("id", id);
    accepted.set("total", static_cast<std::uint64_t>(slots.size()));
    send(conn, std::move(accepted));

    auto t0 = std::chrono::steady_clock::now();
    std::atomic<std::size_t> completed{0};
    std::size_t total = slots.size();

    std::vector<std::function<void()>> jobs;
    jobs.reserve(total);
    for (std::size_t i = 0; i < total; ++i) {
        jobs.push_back([this, &conn, &slots, &completed, &id, &client,
                        total, t0, i] {
            RunSlot &s = slots[i];
            Result<RunResult> r = [&]() -> Result<RunResult> {
                try {
                    return runner_.tryRun(s.workload, s.config);
                } catch (const std::exception &e) {
                    return Status::internal(
                        std::string("run threw: ") + e.what());
                } catch (...) {
                    return Status::internal("run threw");
                }
            }();
            if (r.ok()) {
                s.ok = true;
                s.result = r.value();
            } else {
                s.status = r.status();
            }
            std::size_t done =
                completed.fetch_add(1, std::memory_order_relaxed) + 1;

            Json prog = Json::object();
            prog.set("type", "progress");
            prog.set("id", id);
            prog.set("completed", static_cast<std::uint64_t>(done));
            prog.set("total", static_cast<std::uint64_t>(total));
            prog.set("workload", s.workload);
            prog.set("config", s.config_name);
            prog.set("ok", s.ok);
            prog.set("elapsed_s", elapsedSeconds(t0));
            prog.set("final", false);
            send(conn, std::move(prog));

            {
                std::lock_guard<std::mutex> lock(admit_mu_);
                ++stats_.runs_completed;
                if (!s.ok)
                    ++stats_.runs_failed;
            }
            finishRun(client);
        });
    }
    // The connection thread helps run its own jobs; with a 1-thread
    // pool this is exactly the serial bench path per request, and
    // cross-request parallelism comes from the connection threads.
    pool_.runBatch(std::move(jobs));

    Json runs_out = Json::array();
    for (const RunSlot &s : slots) {
        Json r = Json::object();
        r.set("workload", s.workload);
        r.set("config", s.config_name);
        r.set("ok", s.ok);
        if (s.ok)
            r.set("result", s.result.toJson(false));
        else
            r.set("status", statusToJson(s.status));
        runs_out.push(std::move(r));
    }
    SweepStats sw = runner_.sweepStats();
    Json sweep_stats = Json::object();
    sweep_stats.set("requested", sw.requested);
    sweep_stats.set("simulated", sw.simulated);
    sweep_stats.set("disk_hits", sw.disk_hits);
    sweep_stats.set("memo_hits", sw.memo_hits);
    sweep_stats.set("failed", sw.failed);

    Json reply = Json::object();
    reply.set("type", "result");
    reply.set("id", id);
    reply.set("final", true);
    reply.set("elapsed_s", elapsedSeconds(t0));
    reply.set("runs", std::move(runs_out));
    reply.set("stats", std::move(sweep_stats));
    // Bookkeeping lands before the reply so a client that returns from
    // runSweep() observes a consistent stats() snapshot; finishRequest()
    // stays after the send because drain() may shut the socket as soon
    // as the active-request count reaches zero.
    journal_.recordDone(id);
    {
        std::lock_guard<std::mutex> lock(admit_mu_);
        ++stats_.requests_completed;
    }
    send(conn, std::move(reply));
    finishRequest();
}

Status
SweepService::admit(const std::string &client, std::size_t nruns)
{
    std::lock_guard<std::mutex> lock(admit_mu_);
    if (draining_) {
        ++stats_.shed_draining;
        metricsCounterAdd("evrsim_service_shed_total", 1.0,
                          {{"reason", "draining"}});
        return Status::unavailable(
            "service is draining; retry against the next daemon");
    }
    if (outstanding_runs_ + nruns >
        static_cast<std::size_t>(config_.queue_max)) {
        ++stats_.shed_queue_full;
        metricsCounterAdd("evrsim_service_shed_total", 1.0,
                          {{"reason", "queue_full"}});
        return Status::resourceExhausted(
            "admission queue full: " + std::to_string(outstanding_runs_) +
            " run(s) in flight + " + std::to_string(nruns) +
            " requested exceeds EVRSIM_QUEUE_MAX=" +
            std::to_string(config_.queue_max) + "; back off and retry");
    }
    std::size_t &mine = per_client_[client];
    if (mine + nruns > static_cast<std::size_t>(config_.client_quota)) {
        std::size_t in_flight = mine; // erase below frees `mine`
        if (in_flight == 0)
            per_client_.erase(client);
        ++stats_.shed_quota;
        metricsCounterAdd("evrsim_service_shed_total", 1.0,
                          {{"reason", "quota"}});
        return Status::resourceExhausted(
            "client '" + client + "' has " + std::to_string(in_flight) +
            " run(s) in flight + " + std::to_string(nruns) +
            " requested exceeds EVRSIM_CLIENT_QUOTA=" +
            std::to_string(config_.client_quota) + "; back off and retry");
    }
    outstanding_runs_ += nruns;
    mine += nruns;
    ++active_requests_;
    return {};
}

void
SweepService::finishRun(const std::string &client)
{
    std::lock_guard<std::mutex> lock(admit_mu_);
    if (outstanding_runs_ > 0)
        --outstanding_runs_;
    auto it = per_client_.find(client);
    if (it != per_client_.end()) {
        if (it->second > 0)
            --it->second;
        if (it->second == 0)
            per_client_.erase(it);
    }
}

void
SweepService::finishRequest()
{
    std::lock_guard<std::mutex> lock(admit_mu_);
    if (active_requests_ > 0)
        --active_requests_;
    drained_cv_.notify_all();
}

void
SweepService::send(Conn &conn, Json payload)
{
    std::lock_guard<std::mutex> lock(conn.write_mu);
    if (conn.dead.load(std::memory_order_relaxed))
        return;
    if (Status s = writeServiceMessage(conn.fd, std::move(payload));
        !s.ok()) {
        // The peer vanished mid-request. The request keeps running to
        // completion (its results land in cache/journal, so the client
        // can reconnect and attach); only the streaming stops.
        conn.dead.store(true, std::memory_order_relaxed);
        inform("service: client connection lost: %s",
               s.message().c_str());
    }
}

void
SweepService::sendError(Conn &conn, const std::string &id,
                        const Status &why)
{
    Json err = Json::object();
    err.set("type", "error");
    if (!id.empty())
        err.set("id", id);
    err.set("status", statusToJson(why));
    send(conn, std::move(err));
}

void
SweepService::drain()
{
    {
        std::lock_guard<std::mutex> lock(admit_mu_);
        draining_ = true;
    }
    // Shed remote-shard registrations first so a shard dialing in
    // mid-drain gets a clean "draining" reject instead of a slot that
    // is about to be torn down.
    if (fleet_)
        fleet_->setRegistrationDraining(true);
    stop_accept_.store(true);
    if (accept_thread_.joinable())
        accept_thread_.join();

    // Let in-flight requests finish and send their final replies.
    {
        std::unique_lock<std::mutex> lk(admit_mu_);
        drained_cv_.wait(lk, [&] { return active_requests_ == 0; });
    }

    // No runs are in flight anymore: retire the shard fleet.
    if (fleet_)
        fleet_->stop();

    // Flush the merged trace now that every shard's shipped events are
    // ingested (a SIGTERM drain must leave a parseable trace, not rely
    // on atexit), then clean up the shards' local spill files — their
    // contents are already merged, and leaving them would re-orphan
    // what this flush just stitched.
    if (traceActive() && traceWrite().ok()) {
        std::string obs = params_.metrics_dir.empty()
                              ? params_.cache_dir
                              : params_.metrics_dir;
        if (fleet_ && !obs.empty()) {
            std::error_code ec;
            for (int i = 0; i < config_.fleet.shards; ++i)
                std::filesystem::remove(
                    obs + "/shard-" + std::to_string(i) +
                        ".trace.json",
                    ec);
        }
    }

    // Wake idle readers (they observe draining_ and exit) and join.
    {
        std::lock_guard<std::mutex> lock(conns_mu_);
        for (auto &c : conns_)
            if (!c->done.load())
                ::shutdown(c->fd, SHUT_RDWR);
        for (auto &c : conns_) {
            if (c->thread.joinable())
                c->thread.join();
            if (c->fd >= 0) {
                ::close(c->fd);
                c->fd = -1;
            }
        }
        conns_.clear();
    }

    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    if (bound_) {
        ::unlink(config_.socket_path.c_str());
        bound_ = false;
    }
    // Release ownership of the socket path. Close only — never unlink
    // the lock file (see lock_fd_ in daemon.hpp).
    if (lock_fd_ >= 0) {
        ::close(lock_fd_);
        lock_fd_ = -1;
    }
}

void
SweepService::serveUntilShutdown()
{
    while (!shutdownRequested())
        std::this_thread::sleep_for(
            std::chrono::milliseconds(config_.poll_ms));
    inform("service: shutdown signal received; draining");
    drain();
}

SweepService::Stats
SweepService::stats() const
{
    std::lock_guard<std::mutex> lock(admit_mu_);
    return stats_;
}

} // namespace evrsim
