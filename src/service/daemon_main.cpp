/**
 * @file
 * `evrsim-daemon`: the resident sweep service binary.
 *
 * Resolves the shared EVRSIM_* bench knobs plus the service knobs
 * (EVRSIM_SOCKET / EVRSIM_QUEUE_MAX / EVRSIM_CLIENT_QUOTA) through the
 * strict parsers, serves until SIGINT/SIGTERM, drains, flushes metrics,
 * and exits 130/143 like a conventionally signal-terminated process.
 *
 * Crash recovery is the default: the daemon always starts with
 * EVRSIM_RESUME semantics, replaying the sweep journal and the request
 * journal from the cache directory, so a SIGKILLed daemon restarted on
 * the same cache dir serves reconnecting clients byte-identically.
 *
 * Under EVRSIM_ISOLATE=process the binary doubles as its own worker:
 * the supervisor re-execs it with a hidden
 * `--evrsim-worker-run=<workload>/<config>` flag, and the re-execed
 * copy simulates exactly that job in-process, frames the result onto
 * the response pipe, and exits.
 *
 * It likewise doubles as a fleet shard (service/fleet.hpp): with
 * EVRSIM_SHARDS > 0 (default cores/4, min 1) the daemon execs itself
 * with `--evrsim-shard=<i>` and the re-execed copy serves runs from
 * stdin until EOF. The fleet replaces the per-run worker launcher —
 * shards are persistent, so the fork/exec cost is paid per shard
 * lifetime instead of per run.
 */
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <thread>

#include "common/crash_handler.hpp"
#include "common/log.hpp"
#include "common/shutdown.hpp"
#include "common/trace.hpp"
#include "driver/supervisor.hpp"
#include "service/daemon.hpp"
#include "service/fleet.hpp"
#include "service/tcp_transport.hpp"
#include "workloads/registry.hpp"

namespace {

using namespace evrsim;

std::string
workerRunArg(int argc, char **argv)
{
    const std::string prefix = "--evrsim-worker-run=";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i] ? argv[i] : "";
        if (arg.compare(0, prefix.size(), prefix) == 0)
            return arg.substr(prefix.size());
    }
    return {};
}

[[noreturn]] void
runWorkerAndExit(const std::string &job, BenchParams params)
{
    // The daemon owns the cache, the journals and the retry policy;
    // the worker is one bare attempt (mirrors the bench worker mode).
    std::string obs_dir = params.metrics_dir.empty()
                              ? params.cache_dir
                              : params.metrics_dir;
    params.use_cache = false;
    params.resume = false;
    params.isolate = IsolateMode::Off;
    params.jobs = 1;
    params.heartbeat_ms = 0;
    params.metrics_dir.clear();
    params.write_summary = false;

    // Route the worker's trace under the daemon's observability dir
    // with a pid tag, not the default cwd-relative path that every
    // worker would fight over.
    if (Result<TraceConfig> tc = traceConfigFromEnv(); !tc.ok()) {
        fatal("%s", tc.status().message().c_str());
    } else if (tc.value().enabled()) {
        TraceConfig cfg = tc.value();
        std::string name = "evrsim_trace.json.worker-" +
                           std::to_string(::getpid());
        cfg.path = obs_dir.empty() ? name : obs_dir + "/" + name;
        traceConfigure(cfg);
    }

    std::size_t slash = job.find('/');
    if (slash == std::string::npos || slash == 0 ||
        slash + 1 >= job.size()) {
        std::fprintf(stderr,
                     "evrsim-daemon worker: malformed job '%s' "
                     "(want <workload>/<config>)\n",
                     job.c_str());
        std::exit(2);
    }
    std::string alias = job.substr(0, slash);
    std::string config_name = job.substr(slash + 1);
    Result<SimConfig> config =
        configByName(config_name, params.gpuConfig());
    if (!config.ok()) {
        std::fprintf(stderr, "evrsim-daemon worker: %s\n",
                     config.status().message().c_str());
        std::exit(2);
    }
    ExperimentRunner runner(workloads::factory(), params);
    Result<RunResult> attempt = runner.trySimulate(alias, config.value());
    bool wrote = writeWorkerResponse(kWorkerResponseFd, attempt);
    std::exit(wrote ? 0 : 1);
}

void
installProcessLauncher(SweepService &service, const BenchParams &params)
{
    std::string self = selfExecutablePath();
    if (self.empty()) {
        warn("EVRSIM_ISOLATE=process: cannot resolve /proc/self/exe; "
             "jobs run in-process");
        return;
    }
    WorkerLimits limits;
    limits.mem_mb = params.job_mem_mb;
    limits.timeout_ms = params.job_timeout_ms;
    limits.grace_ms = defaultGraceMs(params.job_timeout_ms);
    service.runner().setWorkerLauncher(
        [self, limits](const std::string &alias, const SimConfig &config,
                       const std::string &) {
            WorkerOutcome o = superviseWorker(
                {self, "--evrsim-worker-run=" + alias + "/" + config.name},
                limits);
            return WorkerAttempt{o.status, o.result, o.worker_died};
        });
}

} // namespace

int
main(int argc, char **argv)
{
    std::string worker_job = workerRunArg(argc, argv);
    std::string shard_params;
    int shard_index = shardFlagFromArgv(argc, argv, shard_params);
    std::string remote_plane = remoteShardFlagFromArgv(argc, argv);

    Result<BenchParams> pr = benchParamsFromEnvChecked();
    if (!pr.ok())
        fatal("%s", pr.status().message().c_str());
    BenchParams params = pr.value();
    setLogLevel(params.log_level);
    installCrashHandler();

    if (shard_index >= 0)
        runShardAndExit(shard_index, workloads::factory(), params,
                        shard_params);
    if (!remote_plane.empty())
        runRemoteShardAndExit(remote_plane, workloads::factory(), params);
    if (!worker_job.empty())
        runWorkerAndExit(worker_job, params);

    // Always resume: a daemon restarted after a crash (or a plain
    // restart) replays the journals and serves completed work from the
    // cache instead of re-simulating it.
    params.resume = true;

    // Arm the tracer for the daemon itself (shards and workers arm
    // their own on their exec paths above). A default output path is
    // rooted next to the journals; an explicit EVRSIM_TRACE=...:path
    // is honored as given.
    if (Result<TraceConfig> tc = traceConfigFromEnv(); !tc.ok()) {
        fatal("%s", tc.status().message().c_str());
    } else if (tc.value().enabled()) {
        TraceConfig tcfg = tc.value();
        std::string obs_dir = params.metrics_dir.empty()
                                  ? params.cache_dir
                                  : params.metrics_dir;
        if (tcfg.path == TraceConfig().path && !obs_dir.empty())
            tcfg.path = obs_dir + "/" + tcfg.path;
        traceConfigure(tcfg);
    }

    Result<ServiceConfig> sc = serviceConfigFromEnvChecked(params);
    if (!sc.ok())
        fatal("%s", sc.status().message().c_str());
    ServiceConfig scfg = sc.value();

    // Fleet width defaults to cores/4 (min 1) when EVRSIM_SHARDS is
    // absent; EVRSIM_SHARDS=0 explicitly keeps in-daemon execution.
    if (std::getenv("EVRSIM_SHARDS") == nullptr) {
        unsigned cores = std::thread::hardware_concurrency();
        scfg.fleet.shards = std::max(1u, cores / 4u);
    }
    if (scfg.fleet.shards > 0) {
        if (!scfg.fleet.listen.empty()) {
            // EVRSIM_FLEET_LISTEN: slots are filled by remote shards
            // dialing in, not by forked children — leave shard_argv
            // empty so the TCP transport is chosen.
        } else if (std::string self = selfExecutablePath();
                   self.empty()) {
            warn("fleet: cannot resolve /proc/self/exe; running without "
                 "worker shards");
            scfg.fleet.shards = 0;
        } else {
            scfg.fleet.shard_argv = {self};
        }
    }

    installShutdownHandler();

    SweepService service(workloads::factory(), params, scfg);
    // The fleet is the launcher when it is on; EVRSIM_ISOLATE=process
    // without a fleet keeps the PR 7 per-run supervised worker.
    if (!service.fleet() && params.isolate == IsolateMode::Process)
        installProcessLauncher(service, params);

    if (Status s = service.start(); !s.ok())
        fatal("%s", s.message().c_str());

    service.serveUntilShutdown();

    SweepService::Stats st = service.stats();
    inform("service: drained (connections=%llu admitted=%llu "
           "completed=%llu shed=%llu)",
           static_cast<unsigned long long>(st.connections),
           static_cast<unsigned long long>(st.requests_admitted),
           static_cast<unsigned long long>(st.requests_completed),
           static_cast<unsigned long long>(
               st.shed_queue_full + st.shed_quota + st.shed_draining));
    if (Status s = service.runner().writeMetricsArtifacts(); !s.ok())
        warn("could not write metrics artifacts: %s",
             s.message().c_str());
    return shutdownExitCode(0);
}
