/**
 * @file
 * ServiceClient implementation.
 */
#include "service/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/fault_injector.hpp" // mix64, fnv1a64
#include "common/net.hpp"
#include "driver/envelope.hpp"
#include "service/service_protocol.hpp"

namespace evrsim {

namespace {

using Clock = std::chrono::steady_clock;

/** close(2) on scope exit. */
struct ScopedFd {
    int fd;
    explicit ScopedFd(int f) : fd(f) {}
    ~ScopedFd()
    {
        if (fd >= 0)
            ::close(fd);
    }
    ScopedFd(const ScopedFd &) = delete;
    ScopedFd &operator=(const ScopedFd &) = delete;
};

/** Remaining ms before @p deadline; INT_MAX-ish when none. */
int
remainingMs(bool has_deadline, Clock::time_point deadline)
{
    if (!has_deadline)
        return 1 << 30;
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - Clock::now())
                    .count();
    return left > 0 ? static_cast<int>(std::min<long long>(left, 1 << 30))
                    : 0;
}

/** The daemon shed or never saw the request: worth another attempt. */
bool
retryable(const Status &s)
{
    return s.code() == ErrorCode::Unavailable ||
           s.code() == ErrorCode::ResourceExhausted ||
           s.code() == ErrorCode::DataLoss;
}

Result<SweepReply>
parseResult(const Json &msg)
{
    SweepReply reply;
    if (const Json *e = msg.find("elapsed_s");
        e && e->type() == Json::Type::Number)
        reply.elapsed_s = e->asDouble();
    const Json *runs = msg.find("runs");
    if (!runs || runs->type() != Json::Type::Array)
        return Status::dataLoss("result message has no runs array");
    for (std::size_t i = 0; i < runs->size(); ++i) {
        const Json &r = runs->at(i);
        ClientRunOutcome out;
        if (const Json *w = r.find("workload");
            w && w->type() == Json::Type::String)
            out.workload = w->asString();
        if (const Json *c = r.find("config");
            c && c->type() == Json::Type::String)
            out.config = c->asString();
        const Json *ok = r.find("ok");
        if (ok && ok->type() == Json::Type::Bool && ok->asBool()) {
            const Json *doc = r.find("result");
            if (!doc)
                return Status::dataLoss("run marked ok without a result");
            Result<RunResult> rr = RunResult::tryFromJson(*doc);
            if (!rr.ok())
                return rr.status();
            out.result = rr.value();
            out.result_json = doc->dump(0);
        } else {
            const Json *st = r.find("status");
            out.status = Status::internal("run failed, status missing");
            if (st)
                statusFromJson(*st, out.status); // best effort
        }
        reply.runs.push_back(std::move(out));
    }
    return reply;
}

} // namespace

Result<int>
ServiceClient::connectOnce(int deadline_ms)
{
    // A write against a daemon that died mid-reply must surface as
    // EPIPE, not kill the client process.
    ignoreSigpipe();
    return unixConnect(opts_.socket_path, std::max(deadline_ms, 1));
}

Result<SweepReply>
ServiceClient::runSweep(const std::string &id,
                        const std::vector<ClientRunSpec> &runs,
                        const ProgressFn &progress)
{
    if (id.empty())
        return Status::invalidArgument("request id must be non-empty");
    if (runs.empty())
        return Status::invalidArgument("sweep needs at least one run");
    return execute(id, runs, progress);
}

Result<SweepReply>
ServiceClient::attach(const std::string &id, const ProgressFn &progress)
{
    if (id.empty())
        return Status::invalidArgument("request id must be non-empty");
    return execute(id, {}, progress);
}

Result<Json>
ServiceClient::ping()
{
    Result<int> cfd = connectOnce(opts_.connect_timeout_ms);
    if (!cfd.ok())
        return cfd.status();
    ScopedFd fd(cfd.value());
    Json req = Json::object();
    req.set("type", "ping");
    if (Status s = writeServiceMessage(fd.fd, std::move(req)); !s.ok())
        return s;
    MessageReader reader(fd.fd);
    return reader.next(std::max(opts_.poll_ms, 1000));
}

Result<Json>
ServiceClient::status(bool include_events)
{
    Result<int> cfd = connectOnce(opts_.connect_timeout_ms);
    if (!cfd.ok())
        return cfd.status();
    ScopedFd fd(cfd.value());
    Json req = Json::object();
    req.set("type", "status");
    if (include_events)
        req.set("events", true);
    if (Status s = writeServiceMessage(fd.fd, std::move(req)); !s.ok())
        return s;
    MessageReader reader(fd.fd);
    return reader.next(std::max(opts_.poll_ms, 1000));
}

Result<SweepReply>
ServiceClient::execute(const std::string &id,
                       const std::vector<ClientRunSpec> &runs,
                       const ProgressFn &progress)
{
    bool has_deadline = opts_.deadline_ms > 0;
    Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(opts_.deadline_ms);

    SweepReply reply;
    int attempts_left = std::max(opts_.retries, 0);
    const int base = std::max(opts_.backoff_base_ms, 1);
    const int cap = std::max(opts_.backoff_cap_ms, base);
    int backoff = base;
    // Decorrelated jitter (each nap drawn from [base, 3 * previous)):
    // concurrent clients kicked off the same daemon spread their
    // retries instead of reconnecting in lockstep. The stream is
    // seeded from the request id, so a given request's retry schedule
    // is reproducible.
    std::uint64_t jitter = mix64(fnv1a64(id));
    int sends = 0;
    Status last = Status::unavailable("no attempt made");
    bool first = true;

    for (;;) {
        if (!first) {
            if (attempts_left <= 0)
                return last;
            --attempts_left;
            int nap = std::min(backoff,
                               remainingMs(has_deadline, deadline));
            if (nap > 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(nap));
            jitter = mix64(jitter);
            double u = static_cast<double>(jitter >> 11) * 0x1.0p-53;
            int span = std::min(cap, backoff * 3);
            backoff = span <= base
                          ? base
                          : base + static_cast<int>(
                                       u * static_cast<double>(span -
                                                               base));
        }
        first = false;
        if (remainingMs(has_deadline, deadline) <= 0)
            return Status::deadlineExceeded(
                "request '" + id + "': deadline of " +
                std::to_string(opts_.deadline_ms) + " ms exceeded (" +
                last.message() + ")");

        Result<int> cfd = connectOnce(
            std::min(std::max(opts_.connect_timeout_ms, 1),
                     remainingMs(has_deadline, deadline)));
        ++reply.connect_attempts;
        if (!cfd.ok()) {
            last = cfd.status();
            continue;
        }
        ScopedFd fd(cfd.value());

        Json req = Json::object();
        req.set("type", runs.empty() ? "attach" : "sweep");
        req.set("id", id);
        req.set("client", opts_.client_id);
        if (!runs.empty()) {
            Json arr = Json::array();
            for (const ClientRunSpec &r : runs) {
                Json e = Json::object();
                e.set("workload", r.workload);
                e.set("config", r.config);
                arr.push(std::move(e));
            }
            req.set("runs", std::move(arr));
        }
        if (Status s = writeServiceMessage(fd.fd, std::move(req));
            !s.ok()) {
            last = s;
            continue;
        }
        ++sends;
        reply.resubmits = sends - 1;

        MessageReader reader(fd.fd);
        bool resubmit = false;
        std::uint64_t progress_seen = 0;
        for (;;) {
            int left = remainingMs(has_deadline, deadline);
            if (left <= 0)
                return Status::deadlineExceeded(
                    "request '" + id + "': deadline of " +
                    std::to_string(opts_.deadline_ms) +
                    " ms exceeded waiting for the reply");
            Result<Json> msg =
                reader.next(std::min(opts_.poll_ms, left));
            if (!msg.ok()) {
                if (msg.status().code() == ErrorCode::DeadlineExceeded)
                    continue; // poll tick; overall deadline re-checked
                // Connection lost or torn mid-stream: reconnect and
                // resubmit under the same idempotent id.
                last = msg.status();
                resubmit = true;
                break;
            }
            const Json *type = msg.value().find("type");
            if (!type || type->type() != Json::Type::String)
                continue;
            if (type->asString() == "progress") {
                // The daemon's completed counter is strictly
                // monotone, so a duplicated or replayed record is
                // stream damage (e.g. a duplicated wire line):
                // resubmit under the same id rather than forward a
                // lying progress sequence.
                const Json *done = msg.value().find("completed");
                if (done && done->type() == Json::Type::Number) {
                    std::uint64_t completed = done->asU64();
                    if (completed <= progress_seen) {
                        last = Status::dataLoss(
                            "request '" + id +
                            "': non-monotone progress record "
                            "(completed " +
                            std::to_string(completed) + " after " +
                            std::to_string(progress_seen) + ")");
                        resubmit = true;
                        break;
                    }
                    progress_seen = completed;
                }
                if (progress)
                    progress(msg.value());
                continue;
            }
            if (type->asString() == "accepted" ||
                type->asString() == "pong")
                continue;
            if (type->asString() == "error") {
                Status st =
                    Status::internal("daemon error without status");
                if (const Json *sj = msg.value().find("status"))
                    statusFromJson(*sj, st);
                if (retryable(st)) {
                    last = st;
                    resubmit = true;
                    break;
                }
                return st;
            }
            if (type->asString() == "result") {
                Result<SweepReply> parsed = parseResult(msg.value());
                if (!parsed.ok()) {
                    last = parsed.status();
                    resubmit = true;
                    break;
                }
                SweepReply out = parsed.value();
                out.connect_attempts = reply.connect_attempts;
                out.resubmits = reply.resubmits;
                return out;
            }
            // Unknown message type: ignore (forward compatibility).
        }
        if (!resubmit)
            return last;
    }
}

} // namespace evrsim
