/**
 * @file
 * `evrsim-client`: thin CLI client of the resident sweep service.
 *
 * Submits one sweep request (workloads x configs) to a running
 * `evrsim-daemon` and prints per-run progress plus a result table.
 * Reliability knobs are flags, not env vars, because they are
 * per-invocation policy:
 *
 *   --socket=PATH        daemon socket (default: EVRSIM_SOCKET, else
 *                        <cache_dir>/evrsim.sock)
 *   --id=ID              idempotent request id (default: derived from
 *                        the run list, so the same invocation is the
 *                        same request)
 *   --client=NAME        client id for quota accounting
 *   --workloads=a,b,c    workload aliases (default: all Table III)
 *   --configs=x,y        config names (default: baseline,evr — the
 *                        Figure 7 sweep)
 *   --attach             reconnect to a journaled request by bare id
 *   --deadline-ms=N      overall deadline (0 = none)
 *   --retries=N          retry budget (connects, sheds, lost streams)
 *   --ping               liveness probe and exit
 *   status | --status    fleet introspection: per-shard topology +
 *                        service/fleet counters, printed as a table
 *   --events             with status: also print the lifecycle event
 *                        ring (restart, fence, breaker, failover)
 *   --json               with status: raw JSON instead of the table
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "driver/experiment.hpp"
#include "service/client.hpp"
#include "service/daemon.hpp"
#include "service/service_protocol.hpp"
#include "workloads/registry.hpp"

namespace {

using namespace evrsim;

std::vector<std::string>
splitCsv(const std::string &text)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t comma = text.find(',', start);
        if (comma == std::string::npos)
            comma = text.size();
        if (comma > start)
            out.push_back(text.substr(start, comma - start));
        start = comma + 1;
    }
    return out;
}

bool
flagValue(const std::string &arg, const char *name, std::string &out)
{
    std::string prefix = std::string(name) + "=";
    if (arg.compare(0, prefix.size(), prefix) != 0)
        return false;
    out = arg.substr(prefix.size());
    return true;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: evrsim-client [--socket=PATH] [--id=ID] [--client=NAME]\n"
        "                     [--workloads=a,b,...] [--configs=x,y,...]\n"
        "                     [--attach] [--deadline-ms=N] [--retries=N]\n"
        "                     [--ping]\n"
        "       evrsim-client status [--events] [--json] [--socket=PATH]\n");
    return 2;
}

/** Render the status payload as tables (the --json flag skips this). */
void
printStatus(const Json &st, bool with_events)
{
    std::printf("draining: %s\n",
                st.get("draining", Json(false)).asBool() ? "yes" : "no");
    const Json *fleet = st.find("fleet");
    if (!fleet || fleet->type() != Json::Type::Object) {
        std::printf("fleet: off (EVRSIM_SHARDS=0)\n");
    } else {
        std::printf("fleet: transport=%s listen=%s\n",
                    fleet->get("transport", Json("?")).asString().c_str(),
                    fleet->get("listen", Json("")).asString().c_str());
        std::printf("%-5s %-6s %-9s %-6s %10s %9s %9s  %s\n", "slot",
                    "alive", "breaker", "epoch", "lease_ms", "inflight",
                    "restarts", "last_error");
        const Json *shards = fleet->find("shards");
        if (shards && shards->type() == Json::Type::Array) {
            for (std::size_t i = 0; i < shards->size(); ++i) {
                const Json &s = shards->at(i);
                std::printf(
                    "%-5.0f %-6s %-9s %-6.0f %10.0f %9.0f %9.0f  %s\n",
                    s.get("slot", Json(0)).asDouble(),
                    s.get("alive", Json(false)).asBool() ? "yes" : "no",
                    s.get("breaker", Json("?")).asString().c_str(),
                    s.get("epoch", Json(0)).asDouble(),
                    s.get("lease_age_ms", Json(-1)).asDouble(),
                    s.get("inflight", Json(0)).asDouble(),
                    s.get("restarts", Json(0)).asDouble(),
                    s.get("last_error", Json("")).asString().c_str());
            }
        }
        const Json *fs = fleet->find("stats");
        if (fs && fs->type() == Json::Type::Object) {
            std::printf("fleet counters:");
            for (const auto &kv : fs->members())
                std::printf(" %s=%.0f", kv.first.c_str(),
                            kv.second.asDouble());
            std::printf("\n");
        }
    }
    if (with_events) {
        const Json *events = st.find("events");
        if (events && events->type() == Json::Type::Array) {
            std::printf("events (%zu):\n", events->size());
            for (std::size_t i = 0; i < events->size(); ++i)
                std::printf("  %s\n", events->at(i).dump(0).c_str());
        } else {
            std::printf("events: none reported\n");
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Result<BenchParams> pr = benchParamsFromEnvChecked();
    if (!pr.ok())
        fatal("%s", pr.status().message().c_str());
    Result<ServiceConfig> sc = serviceConfigFromEnvChecked(pr.value());
    if (!sc.ok())
        fatal("%s", sc.status().message().c_str());

    ClientOptions opts;
    opts.socket_path = sc.value().socket_path;
    std::string id;
    std::vector<std::string> aliases = workloads::allAliases();
    std::vector<std::string> configs = {"baseline", "evr"};
    bool do_ping = false;
    bool do_attach = false;
    bool do_status = false;
    bool with_events = false;
    bool raw_json = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i] ? argv[i] : "";
        std::string v;
        if (flagValue(arg, "--socket", v))
            opts.socket_path = v;
        else if (flagValue(arg, "--id", v))
            id = v;
        else if (flagValue(arg, "--client", v))
            opts.client_id = v;
        else if (flagValue(arg, "--workloads", v))
            aliases = splitCsv(v);
        else if (flagValue(arg, "--configs", v))
            configs = splitCsv(v);
        else if (flagValue(arg, "--deadline-ms", v))
            opts.deadline_ms = std::atoi(v.c_str());
        else if (flagValue(arg, "--retries", v))
            opts.retries = std::atoi(v.c_str());
        else if (arg == "--attach")
            do_attach = true;
        else if (arg == "--ping")
            do_ping = true;
        else if (arg == "status" || arg == "--status")
            do_status = true;
        else if (arg == "--events")
            with_events = true;
        else if (arg == "--json")
            raw_json = true;
        else
            return usage();
    }

    ServiceClient client(opts);

    if (do_ping) {
        Result<Json> pong = client.ping();
        if (!pong.ok())
            fatal("ping %s: %s", opts.socket_path.c_str(),
                  pong.status().message().c_str());
        std::printf("%s\n", pong.value().dump(0).c_str());
        return 0;
    }

    if (do_status) {
        Result<Json> st = client.status(with_events);
        if (!st.ok())
            fatal("status %s: %s", opts.socket_path.c_str(),
                  st.status().message().c_str());
        if (raw_json)
            std::printf("%s\n", st.value().dump(2).c_str());
        else
            printStatus(st.value(), with_events);
        return 0;
    }

    std::vector<ClientRunSpec> runs;
    for (const std::string &alias : aliases)
        for (const std::string &config : configs)
            runs.push_back({alias, config});
    if (id.empty()) {
        // Derive a stable id from the run list so re-invoking the same
        // command resumes the same idempotent request.
        std::string spec;
        for (const ClientRunSpec &r : runs)
            spec += r.workload + "/" + r.config + ";";
        id = "cli-" + std::to_string(std::hash<std::string>{}(spec));
    }

    ProgressFn progress = [](const Json &p) {
        std::fprintf(stderr, "  [%llu/%llu] %s/%s %s (%.1fs)\n",
                     static_cast<unsigned long long>(
                         p.get("completed", Json(0)).asDouble()),
                     static_cast<unsigned long long>(
                         p.get("total", Json(0)).asDouble()),
                     p.get("workload", Json("?")).asString().c_str(),
                     p.get("config", Json("?")).asString().c_str(),
                     p.get("ok", Json(false)).asBool() ? "ok" : "FAILED",
                     p.get("elapsed_s", Json(0.0)).asDouble());
    };

    Result<SweepReply> reply =
        do_attach ? client.attach(id, progress)
                  : client.runSweep(id, runs, progress);
    if (!reply.ok())
        fatal("request '%s' failed: %s", id.c_str(),
              reply.status().message().c_str());

    int failed = 0;
    std::printf("%-14s %-12s %14s %14s\n", "workload", "config",
                "cycles", "energy_nJ");
    for (const ClientRunOutcome &r : reply.value().runs) {
        if (!r.status.ok()) {
            ++failed;
            std::printf("%-14s %-12s FAILED: %s\n", r.workload.c_str(),
                        r.config.c_str(), r.status.message().c_str());
            continue;
        }
        std::printf("%-14s %-12s %14llu %14.0f\n", r.workload.c_str(),
                    r.config.c_str(),
                    static_cast<unsigned long long>(
                        r.result.totalCycles()),
                    r.result.totalEnergyNj());
    }
    std::printf("request '%s': %zu run(s), %d failed, %.1fs "
                "(%d connect attempt(s), %d resubmit(s))\n",
                id.c_str(), reply.value().runs.size(), failed,
                reply.value().elapsed_s, reply.value().connect_attempts,
                reply.value().resubmits);
    return failed == 0 ? 0 : 1;
}
