/**
 * @file
 * RequestJournal implementation.
 */
#include "service/request_journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>

#include "common/atomic_file.hpp"
#include "common/log.hpp"
#include "driver/envelope.hpp"

namespace evrsim {

RequestJournal::~RequestJournal()
{
    if (fd_ >= 0)
        ::close(fd_);
}

Status
RequestJournal::open(const std::string &path)
{
    if (fd_ >= 0)
        return {};
    bool existed = ::access(path.c_str(), F_OK) == 0;
    int fd = ::open(path.c_str(),
                    O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0)
        return Status::unavailable("open " + path + ": " +
                                   std::strerror(errno));
    if (!existed) {
        if (Status s = fsyncDirOf(path); !s.ok())
            warn("request journal: %s", s.message().c_str());
    }
    fd_ = fd;
    path_ = path;
    return {};
}

void
RequestJournal::append(Json payload)
{
    if (fd_ < 0)
        return;
    std::string line = wrapEnvelope(std::move(payload),
                                    kRequestJournalVersion)
                           .dump(0);
    line += '\n';
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t off = 0;
    while (off < line.size()) {
        ssize_t n = ::write(fd_, line.data() + off, line.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            warn("request journal append to %s failed: %s", path_.c_str(),
                 std::strerror(errno));
            return;
        }
        off += static_cast<std::size_t>(n);
    }
    if (::fsync(fd_) != 0)
        warn("request journal fsync of %s failed: %s", path_.c_str(),
             std::strerror(errno));
}

void
RequestJournal::recordRequest(const std::string &id, const Json &spec)
{
    Json j = Json::object();
    j.set("type", "request");
    j.set("id", id);
    j.set("spec", spec);
    append(std::move(j));
}

void
RequestJournal::recordDone(const std::string &id)
{
    Json j = Json::object();
    j.set("type", "done");
    j.set("id", id);
    append(std::move(j));
}

Result<RequestJournal::Replay>
RequestJournal::replay(const std::string &path)
{
    Replay out;
    std::ifstream in(path);
    if (!in)
        return out; // no journal yet: nothing to resume

    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        Result<Json> payload = parseEnvelope(line, kRequestJournalVersion);
        if (!payload.ok()) {
            ++out.damaged;
            continue;
        }
        const Json *type = payload.value().find("type");
        const Json *id = payload.value().find("id");
        if (!type || !id || type->type() != Json::Type::String ||
            id->type() != Json::Type::String) {
            ++out.damaged;
            continue;
        }
        const std::string &rid = id->asString();
        if (type->asString() == "request") {
            const Json *spec = payload.value().find("spec");
            if (!spec || spec->type() != Json::Type::Object) {
                ++out.damaged;
                continue;
            }
            ++out.records;
            if (out.specs.count(rid))
                ++out.duplicates;
            out.specs[rid] = *spec; // last admission wins
            // A re-admission restarts the request: it is live again
            // until its new done record lands.
            out.done.erase(rid);
        } else if (type->asString() == "done") {
            ++out.records;
            out.done.insert(rid);
        } else {
            ++out.damaged;
        }
    }
    return out;
}

} // namespace evrsim
