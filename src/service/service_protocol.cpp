/**
 * @file
 * Service wire protocol implementation.
 */
#include "service/service_protocol.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "driver/envelope.hpp"

namespace evrsim {

const std::vector<std::string> &
knownConfigNames()
{
    static const std::vector<std::string> names = {
        "baseline",   "re",       "evr",      "evr-reorder",
        "evr-filter", "oracle-z", "z-prepass"};
    return names;
}

Result<SimConfig>
configByName(const std::string &name, const GpuConfig &gpu)
{
    if (name == "baseline")
        return SimConfig::baseline(gpu);
    if (name == "re")
        return SimConfig::renderingElimination(gpu);
    if (name == "evr")
        return SimConfig::evr(gpu);
    if (name == "evr-reorder")
        return SimConfig::evrReorderOnly(gpu);
    if (name == "evr-filter")
        return SimConfig::evrFilterOnly(gpu);
    if (name == "oracle-z")
        return SimConfig::oracleZ(gpu);
    if (name == "z-prepass")
        return SimConfig::zPrepass(gpu);

    std::string accepted;
    for (const std::string &n : knownConfigNames())
        accepted += (accepted.empty() ? "" : ", ") + n;
    return Status::invalidArgument("unknown config '" + name +
                                   "' (accepted: " + accepted + ")");
}

Status
writeServiceMessage(int fd, Json payload)
{
    std::string line =
        wrapEnvelope(std::move(payload), kServiceProtocolVersion).dump(0);
    line += '\n';
    std::size_t off = 0;
    while (off < line.size()) {
        ssize_t n = ::send(fd, line.data() + off, line.size() - off,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return Status::unavailable(std::string("service write: ") +
                                       std::strerror(errno));
        }
        off += static_cast<std::size_t>(n);
    }
    return {};
}

Result<Json>
MessageReader::next(int timeout_ms)
{
    for (;;) {
        std::size_t nl = buf_.find('\n');
        if (nl != std::string::npos) {
            std::string line = buf_.substr(0, nl);
            buf_.erase(0, nl + 1);
            if (line.empty())
                continue;
            return parseEnvelope(line, kServiceProtocolVersion);
        }
        if (eof_) {
            if (!buf_.empty()) {
                // A final unterminated fragment is a torn write.
                buf_.clear();
                return Status::dataLoss(
                    "service read: connection closed mid-message");
            }
            return Status::unavailable("service read: connection closed");
        }

        struct pollfd pfd;
        pfd.fd = fd_;
        pfd.events = POLLIN;
        int pr = ::poll(&pfd, 1, timeout_ms);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            return Status::unavailable(std::string("service poll: ") +
                                       std::strerror(errno));
        }
        if (pr == 0)
            return Status::deadlineExceeded(
                "service read: no message within " +
                std::to_string(timeout_ms) + " ms");

        char chunk[4096];
        ssize_t n = ::read(fd_, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return Status::unavailable(std::string("service read: ") +
                                       std::strerror(errno));
        }
        if (n == 0) {
            eof_ = true;
            continue;
        }
        buf_.append(chunk, static_cast<std::size_t>(n));
    }
}

} // namespace evrsim
