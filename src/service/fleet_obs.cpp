/**
 * @file
 * Fleet observability implementation: trace-event wire form, shard
 * metrics snapshot folding, and the fleet lifecycle event ring.
 */
#include "service/fleet_obs.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>

#include "common/metrics.hpp"

namespace evrsim {

namespace {

/** Short wire keys: n(ame) c(at) p(hase) t(s) d(ur) v(alue) x(detail)
 *  i(tid) g(trace id, 16-hex). Defaults are omitted. */
Json
shippedEventToWire(const TraceShippedEvent &e)
{
    Json j = Json::object();
    j.set("n", e.name);
    j.set("c", e.cat);
    if (e.phase != 'X')
        j.set("p", std::string(1, e.phase));
    j.set("t", static_cast<std::uint64_t>(e.ts_ns));
    if (e.dur_ns != 0)
        j.set("d", static_cast<std::uint64_t>(e.dur_ns));
    if (e.value != INT64_MIN)
        j.set("v", static_cast<std::int64_t>(e.value));
    if (!e.detail.empty())
        j.set("x", e.detail);
    if (e.tid != 1)
        j.set("i", e.tid);
    if (e.trace_id != 0)
        j.set("g", traceIdHex(e.trace_id));
    return j;
}

std::string
foldKey(int slot, const std::string &name, const Json &labels)
{
    std::string key = std::to_string(slot);
    key += '\x1d';
    key += name;
    key += '\x1d';
    if (labels.type() == Json::Type::Object) {
        for (const auto &kv : labels.members()) {
            key += kv.first;
            key += '\x1f';
            if (kv.second.type() == Json::Type::String)
                key += kv.second.asString();
            key += '\x1e';
        }
    }
    return key;
}

MetricLabels
shardLabels(int slot, const Json &labels)
{
    MetricLabels out;
    if (labels.type() == Json::Type::Object) {
        for (const auto &kv : labels.members()) {
            if (kv.second.type() == Json::Type::String)
                out[kv.first] = kv.second.asString();
        }
    }
    out["shard"] = std::to_string(slot);
    return out;
}

} // namespace

Json
traceEventsToWire(const std::vector<TraceShippedEvent> &events)
{
    Json arr = Json::array();
    for (const TraceShippedEvent &e : events)
        arr.push(shippedEventToWire(e));
    return arr;
}

std::vector<TraceShippedEvent>
traceEventsFromWire(const Json &wire)
{
    std::vector<TraceShippedEvent> out;
    if (wire.type() != Json::Type::Array)
        return out;
    for (std::size_t i = 0; i < wire.size(); ++i) {
        const Json &j = wire.at(i);
        if (j.type() != Json::Type::Object)
            continue;
        const Json *name = j.find("n");
        const Json *cat = j.find("c");
        const Json *ts = j.find("t");
        if (!name || name->type() != Json::Type::String || !cat ||
            cat->type() != Json::Type::String || !ts ||
            ts->type() != Json::Type::Number)
            continue;
        TraceShippedEvent e;
        e.name = name->asString();
        e.cat = cat->asString();
        Json phase = j.get("p", Json("X"));
        if (phase.type() == Json::Type::String &&
            phase.asString().size() == 1)
            e.phase = phase.asString()[0];
        e.ts_ns = ts->asU64();
        e.dur_ns = j.get("d", Json(std::uint64_t{0})).asU64();
        const Json *value = j.find("v");
        if (value && value->type() == Json::Type::Number)
            e.value = value->asI64();
        Json detail = j.get("x", Json(""));
        if (detail.type() == Json::Type::String)
            e.detail = detail.asString();
        Json tid = j.get("i", Json(1));
        if (tid.type() == Json::Type::Number)
            e.tid = static_cast<int>(tid.asI64());
        const Json *gid = j.find("g");
        if (gid && gid->type() == Json::Type::String)
            e.trace_id = traceIdParse(gid->asString());
        out.push_back(std::move(e));
    }
    return out;
}

void
ShardMetricsFolder::onShardUp(int slot)
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string prefix = std::to_string(slot) + '\x1d';
    for (auto it = last_.lower_bound(prefix); it != last_.end();) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        it = last_.erase(it);
    }
    last_conflicts_.erase(slot);
}

void
ShardMetricsFolder::fold(int slot, const Json &snapshot)
{
    if (snapshot.type() != Json::Type::Object)
        return;
    const Json *metrics = snapshot.find("metrics");
    if (!metrics || metrics->type() != Json::Type::Array)
        return;

    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < metrics->size(); ++i) {
        const Json &m = metrics->at(i);
        const Json *name = m.find("name");
        const Json *type = m.find("type");
        if (!name || name->type() != Json::Type::String || !type ||
            type->type() != Json::Type::String)
            continue;
        const Json labels = m.get("labels", Json::object());
        const std::string &kind = type->asString();
        std::string key = foldKey(slot, name->asString(), labels);
        MetricLabels folded = shardLabels(slot, labels);

        if (kind == "counter" || kind == "gauge") {
            const Json *value = m.find("value");
            if (!value || value->type() != Json::Type::Number)
                continue;
            double v = value->asDouble();
            if (kind == "gauge") {
                metricsGaugeSet(name->asString(), v, folded);
                continue;
            }
            LastSeen &last = last_[key];
            // A value below the last snapshot means the shard's
            // registry reset under us (shouldn't happen between
            // onShardUp calls, but fold conservatively): the whole new
            // value is the delta.
            double delta = v >= last.value ? v - last.value : v;
            last.value = v;
            if (delta > 0)
                metricsCounterAdd(name->asString(), delta, folded);
            continue;
        }

        if (kind != "histogram")
            continue;
        const Json *buckets = m.find("buckets");
        const Json *sum = m.find("sum");
        const Json *count = m.find("count");
        if (!buckets || buckets->type() != Json::Type::Array || !sum ||
            sum->type() != Json::Type::Number || !count ||
            count->type() != Json::Type::Number)
            continue;
        std::vector<double> bounds;
        std::vector<std::uint64_t> counts;
        bool ok = true;
        for (std::size_t b = 0; b < buckets->size(); ++b) {
            const Json &bucket = buckets->at(b);
            const Json *le = bucket.find("le");
            const Json *c = bucket.find("count");
            if (!le || !c || c->type() != Json::Type::Number) {
                ok = false;
                break;
            }
            if (le->type() == Json::Type::Number)
                bounds.push_back(le->asDouble());
            else if (b + 1 != buckets->size()) {
                ok = false; // "+Inf" only valid as the last bucket
                break;
            }
            counts.push_back(c->asU64());
        }
        if (!ok || counts.empty())
            continue;
        LastSeen &last = last_[key];
        std::uint64_t total = count->asU64();
        bool reset = last.counts.size() != counts.size() ||
                     total < last.count;
        std::vector<std::uint64_t> deltas(counts.size(), 0);
        for (std::size_t b = 0; b < counts.size(); ++b) {
            std::uint64_t prev = reset ? 0 : last.counts[b];
            deltas[b] = counts[b] >= prev ? counts[b] - prev : counts[b];
        }
        double sum_delta = reset || sum->asDouble() < last.sum
                               ? sum->asDouble()
                               : sum->asDouble() - last.sum;
        std::uint64_t count_delta =
            reset ? total : total - last.count;
        last.value = 0;
        last.counts = counts;
        last.sum = sum->asDouble();
        last.count = total;
        if (count_delta > 0)
            metricsHistogramMergeDelta(name->asString(), folded, bounds,
                                       deltas, sum_delta, count_delta);
    }

    // The shard's own dropped-sample tally surfaces as a per-shard
    // counter so merge-time conflicts are visible fleet-wide.
    const Json *conflicts = snapshot.find("type_conflicts");
    if (conflicts && conflicts->type() == Json::Type::Number) {
        std::uint64_t v = conflicts->asU64();
        std::uint64_t last = last_conflicts_.count(slot)
                                 ? last_conflicts_[slot]
                                 : 0;
        std::uint64_t delta = v >= last ? v - last : v;
        last_conflicts_[slot] = v;
        if (delta > 0)
            metricsCounterAdd(
                "evrsim_shard_type_conflicts_total",
                static_cast<double>(delta),
                {{"shard", std::to_string(slot)}});
    }
}

FleetEventRing::FleetEventRing(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity)
{
}

void
FleetEventRing::setPersistPath(const std::string &path)
{
    std::lock_guard<std::mutex> lock(mu_);
    persist_path_ = path;
}

void
FleetEventRing::record(const char *type, int shard,
                       const std::string &detail)
{
    FleetEvent e;
    e.type = type;
    e.shard = shard;
    e.detail = detail;
    e.ts_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::system_clock::now().time_since_epoch())
                  .count();
    std::string persist_path;
    {
        std::lock_guard<std::mutex> lock(mu_);
        e.seq = next_seq_++;
        ring_.push_back(e);
        while (ring_.size() > capacity_)
            ring_.pop_front();
        persist_path = persist_path_;
    }
    if (persist_path.empty())
        return;
    // Append-only JSONL mirror; events are rare (lifecycle only), so
    // open/append/close per event keeps the file crash-consistent
    // without holding a descriptor.
    if (std::FILE *f = std::fopen(persist_path.c_str(), "a")) {
        std::string line = fleetEventToJson(e).dump(0);
        line += '\n';
        std::fwrite(line.data(), 1, line.size(), f);
        std::fclose(f);
    }
}

std::vector<FleetEvent>
FleetEventRing::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return std::vector<FleetEvent>(ring_.begin(), ring_.end());
}

Json
FleetEventRing::toJson() const
{
    Json arr = Json::array();
    for (const FleetEvent &e : snapshot())
        arr.push(fleetEventToJson(e));
    return arr;
}

Json
fleetEventToJson(const FleetEvent &event)
{
    Json j = Json::object();
    j.set("seq", event.seq);
    j.set("ts_ms", event.ts_ms);
    j.set("type", event.type);
    j.set("shard", event.shard);
    if (!event.detail.empty())
        j.set("detail", event.detail);
    return j;
}

} // namespace evrsim
