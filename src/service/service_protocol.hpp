/**
 * @file
 * Wire protocol of the resident sweep service.
 *
 * Transport: a UNIX domain stream socket carrying newline-delimited
 * JSON, each line wrapped in the same `{schema, payload_crc32,
 * payload}` envelope as the result cache, the sweep journal, and the
 * worker-response pipe (driver/envelope.hpp). The service moves
 * documents across a *process* trust boundary, so it gets the same
 * treatment as documents crossing a *crash* boundary: a torn or
 * damaged line is detected by checksum and surfaced as DataLoss, never
 * half-parsed.
 *
 * Client -> daemon messages:
 *   {type:"sweep",  id, client, runs:[{workload, config}, ...]}
 *   {type:"attach", id, client}   re-run a journaled request by id
 *   {type:"ping"}                 liveness probe
 *   {type:"status", events?}      live introspection: service counters
 *                                 plus fleet topology; events:true also
 *                                 returns the lifecycle event ring
 *
 * Daemon -> client messages:
 *   {type:"accepted", id, total}
 *   {type:"progress", id, completed, total, workload, config, ok,
 *    elapsed_s, final:false}      one per finished run, heartbeat.jsonl
 *                                 semantics (monotone completed/total)
 *   {type:"result",   id, final:true, elapsed_s, runs:[...], stats:{}}
 *   {type:"error",    id?, status:{code, message}}
 *   {type:"pong",     draining}
 *   {type:"status",   draining, service:{...}, fleet?:{transport,
 *    listen, shards:[{slot, alive, breaker, epoch, lease_age_ms,
 *    inflight, restarts, last_error}], stats:{...}}, events?:[...]}
 *                                 fleet is absent with EVRSIM_SHARDS=0
 *
 * Result payloads embed RunResult::toJson(false) — host timing
 * excluded — so a request replayed after a daemon crash is
 * byte-identical to the uninterrupted reply.
 *
 * Configurations travel by *name* (the SimConfig factory names:
 * baseline, re, evr, evr-reorder, evr-filter, oracle-z, z-prepass);
 * dimensions, frame counts and validation policy are daemon-side
 * parameters, exactly as they are for the bench binaries.
 */
#ifndef EVRSIM_SERVICE_SERVICE_PROTOCOL_HPP
#define EVRSIM_SERVICE_SERVICE_PROTOCOL_HPP

#include <string>
#include <vector>

#include "common/status.hpp"
#include "driver/json.hpp"
#include "driver/sim_config.hpp"

namespace evrsim {

/**
 * Service wire schema, embedded in every line's envelope; bump when the
 * message format changes so a stale client fails with DataLoss instead
 * of misreading replies.
 */
constexpr int kServiceProtocolVersion = 1;

/** Config factory names accepted over the wire, in report order. */
const std::vector<std::string> &knownConfigNames();

/**
 * Resolve a wire config name to its SimConfig over @p gpu.
 * InvalidArgument naming the config and the accepted set otherwise.
 */
Result<SimConfig> configByName(const std::string &name,
                               const GpuConfig &gpu);

/**
 * Frame @p payload as one enveloped line and write it to @p fd with a
 * single send(2) (MSG_NOSIGNAL: a vanished peer is an Unavailable
 * Status, never a SIGPIPE). Thread-compatible; callers serialize
 * writes to a shared fd themselves.
 */
Status writeServiceMessage(int fd, Json payload);

/**
 * Buffered line reader for enveloped service messages.
 *
 * next() returns the next message payload, or:
 *  - DeadlineExceeded when @p timeout_ms elapsed with no complete line
 *    (poll-based; the caller decides whether that means "check a drain
 *    flag and keep waiting" or "the request's deadline passed");
 *  - Unavailable when the peer closed the connection;
 *  - DataLoss when a line fails the envelope check (torn write, stale
 *    schema, checksum damage).
 */
class MessageReader
{
  public:
    explicit MessageReader(int fd) : fd_(fd) {}

    Result<Json> next(int timeout_ms);

  private:
    int fd_;
    std::string buf_;
    bool eof_ = false;
};

} // namespace evrsim

#endif // EVRSIM_SERVICE_SERVICE_PROTOCOL_HPP
