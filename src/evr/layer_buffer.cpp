/**
 * @file
 * Layer Buffer implementation.
 */
#include "evr/layer_buffer.hpp"

#include "common/log.hpp"

namespace evrsim {

LayerBuffer::LayerBuffer(int max_pixels)
{
    EVRSIM_ASSERT(max_pixels > 0);
    layers_.assign(static_cast<std::size_t>(max_pixels), 0);
}

void
LayerBuffer::tileStart(int width, int height)
{
    EVRSIM_ASSERT(width > 0 && height > 0);
    EVRSIM_ASSERT(static_cast<std::size_t>(width) * height <=
                  layers_.size());
    width_ = width;
    height_ = height;
    std::fill(layers_.begin(),
              layers_.begin() + static_cast<std::size_t>(width) * height, 0);
    zr_ = kNoZr;
}

void
LayerBuffer::opaqueWrite(int x, int y, std::uint16_t layer, bool is_woz)
{
    EVRSIM_ASSERT(x >= 0 && x < width_ && y >= 0 && y < height_);
    layers_[static_cast<std::size_t>(y) * width_ + x] = layer;
    if (is_woz)
        zr_ = layer;
}

std::uint16_t
LayerBuffer::computeLFar() const
{
    std::uint16_t l_far = 0xffff;
    std::size_t count = static_cast<std::size_t>(width_) * height_;
    for (std::size_t i = 0; i < count; ++i) {
        if (layers_[i] < l_far)
            l_far = layers_[i];
    }
    return l_far;
}

std::uint16_t
LayerBuffer::layerAt(int x, int y) const
{
    EVRSIM_ASSERT(x >= 0 && x < width_ && y >= 0 && y < height_);
    return layers_[static_cast<std::size_t>(y) * width_ + x];
}

} // namespace evrsim
