/**
 * @file
 * The Layer Generator Table (LGT): a per-tile LUT assigning layer
 * identifiers to primitives at the Polygon List Builder stage (paper
 * section V.A).
 *
 * A tile's layer counter starts at zero each frame and increases when a
 * primitive from a *new* draw command is sorted into the tile — always
 * for NWOZ primitives, and for WOZ primitives only when the previous
 * primitive sorted into the tile was NWOZ (all WOZ primitives of a batch
 * share a layer, since their mutual visibility is resolved by depth).
 *
 * Each entry holds the three fields of the paper:
 *   1. last command identifier that touched the tile,
 *   2. last layer assigned in the tile,
 *   3. last primitive type (WOZ / NWOZ).
 */
#ifndef EVRSIM_EVR_LAYER_GENERATOR_TABLE_HPP
#define EVRSIM_EVR_LAYER_GENERATOR_TABLE_HPP

#include <cstdint>
#include <vector>

namespace evrsim {

/** The LGT of Table II: 3 bytes per tile entry. */
class LayerGeneratorTable
{
  public:
    explicit LayerGeneratorTable(int tile_count);

    /** Reset all entries for a new frame (layer counters back to 0). */
    void frameStart();

    /**
     * Assign a layer to a primitive of @p cmd_id sorted into @p tile.
     *
     * @param is_woz primitive writes the Z Buffer
     * @return the layer identifier for this (primitive, tile) pair
     */
    std::uint16_t assign(int tile, std::uint32_t cmd_id, bool is_woz);

    /** Current layer counter of a tile (test/diagnostic access). */
    std::uint16_t lastLayer(int tile) const { return entries_[tile].layer; }

    int tileCount() const { return static_cast<int>(entries_.size()); }

    /** Simulated SRAM bytes (Table II: 3 bytes/entry). */
    std::uint64_t
    simulatedBytes() const
    {
        return static_cast<std::uint64_t>(entries_.size()) * 3;
    }

  private:
    struct Entry {
        std::uint32_t last_cmd = kNoCommand;
        std::uint16_t layer = 0;
        bool last_was_woz = false;
    };

    static constexpr std::uint32_t kNoCommand = 0xffffffffu;

    std::vector<Entry> entries_;
};

} // namespace evrsim

#endif // EVRSIM_EVR_LAYER_GENERATOR_TABLE_HPP
