/**
 * @file
 * Early Visibility Resolution — the paper's core mechanism, assembled
 * from the Layer Generator Table (geometry side), the FVP Table
 * (prediction state across frames) and the Layer Buffer + ZR register
 * (raster side), and implementing both pipeline hooks:
 *
 *  - As a PrimitiveScheduler it assigns layers, predicts per-tile
 *    visibility against the previous frame's FVP and applies the
 *    Algorithm 1 reordering (predicted-occluded WOZ primitives to the
 *    Second List; NWOZ arrivals splice the Second List back).
 *  - As a TileVisibilityTracker it maintains the Layer Buffer during
 *    blending and updates the FVP Table when each tile completes.
 */
#ifndef EVRSIM_EVR_EVR_HPP
#define EVRSIM_EVR_EVR_HPP

#include <memory>
#include <mutex>
#include <vector>

#include "evr/fvp_table.hpp"
#include "evr/layer_buffer.hpp"
#include "evr/layer_generator_table.hpp"
#include "gpu/pipeline_hooks.hpp"

namespace evrsim {

/** EVR feature selection. */
struct EvrConfig {
    /**
     * Apply Algorithm 1 (two display lists, predicted-occluded WOZ
     * primitives rendered last). Disabled for the RE-filter-only
     * ablation.
     */
    bool reorder = true;
};

/** The full EVR mechanism. */
class EarlyVisibilityResolution : public PrimitiveScheduler,
                                  public TileVisibilityTracker
{
  public:
    /**
     * @param tile_count tiles on screen (LGT/FVP Table entries)
     * @param tile_size  nominal tile edge in pixels (Layer Buffer size)
     */
    EarlyVisibilityResolution(int tile_count, int tile_size,
                              const EvrConfig &config = {});

    // --- PrimitiveScheduler ---
    void frameStart() override;
    BinDecision onBin(const ShadedPrimitive &prim, int tile,
                      FrameStats &stats) override;

    // --- TileVisibilityTracker ---
    void tileStart(int tile, int width, int height,
                   FrameStats &stats) override;
    void onOpaqueWrite(int tile, int x, int y, std::uint16_t layer,
                       bool is_woz, FrameStats &stats) override;
    void tileEnd(int tile, const float *tile_depth, int pixel_count,
                 FrameStats &stats) override;
    void tileSkipped(int tile) override;
    bool fvpConservative(int tile, float max_depth) const override;
    void invalidatePrediction(int tile) override { fvp_.invalidate(tile); }

    // --- Inspection (tests, diagnostics) ---
    const LayerGeneratorTable &lgt() const { return lgt_; }
    const FvpTable &fvpTable() const { return fvp_; }
    /** Mutable FVP access for tests/tools that inject prediction state. */
    FvpTable &mutableFvpTable() { return fvp_; }
    const EvrConfig &config() const { return config_; }

  private:
    EvrConfig config_;
    LayerGeneratorTable lgt_;
    FvpTable fvp_;

    /**
     * Layer Buffer slot pool. The hardware has exactly one tile-sized
     * Layer Buffer (tiles render one at a time); tile-parallel
     * simulation has several tiles between tileStart and tileEnd at
     * once, so each active tile borrows a slot from this pool. Serially
     * only one slot ever exists, and results are identical either way —
     * the buffer is scratch that tileStart fully resets.
     *
     * pool_/free_ are guarded by slot_mu_; active_[tile] is written
     * only by the thread rendering that tile (elements are disjoint),
     * so the hot opaqueWrite path takes no lock.
     */
    int layer_buffer_pixels_;
    std::vector<std::unique_ptr<LayerBuffer>> pool_;
    std::vector<LayerBuffer *> free_;
    std::vector<LayerBuffer *> active_;
    std::mutex slot_mu_;
};

} // namespace evrsim

#endif // EVRSIM_EVR_EVR_HPP
