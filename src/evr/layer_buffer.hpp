/**
 * @file
 * The Layer Buffer: an on-chip, tile-sized buffer tracking the layer
 * identifier of the visible opaque fragment at every pixel of the tile
 * being rendered (paper section V.B), together with the ZR register that
 * latches the layer of the last visible WOZ fragment.
 *
 * At end of tile, L_far = min(layer over all pixels); the FVP-type is
 * WOZ iff ZR == L_far (the farthest visible layer belongs to a
 * Z-buffered batch).
 */
#ifndef EVRSIM_EVR_LAYER_BUFFER_HPP
#define EVRSIM_EVR_LAYER_BUFFER_HPP

#include <cstdint>
#include <vector>

namespace evrsim {

/** Tile-local layer tracking (1 KB-class SRAM in Table II). */
class LayerBuffer
{
  public:
    /** ZR value meaning "no visible WOZ fragment yet". */
    static constexpr std::uint16_t kNoZr = 0xffff;

    /** @param max_pixels largest tile footprint (tile_size^2). */
    explicit LayerBuffer(int max_pixels);

    /** Start a tile of @p width x @p height pixels: all layers to 0. */
    void tileStart(int width, int height);

    /**
     * An opaque fragment was written at tile-local (x, y).
     * @param is_woz also latch ZR with this layer
     */
    void opaqueWrite(int x, int y, std::uint16_t layer, bool is_woz);

    /** Minimum layer over the tile's pixels (the tile's L_far). */
    std::uint16_t computeLFar() const;

    /** Layer of the last visible WOZ fragment (kNoZr if none). */
    std::uint16_t zr() const { return zr_; }

    /** Per-pixel inspection for tests. */
    std::uint16_t layerAt(int x, int y) const;

    int width() const { return width_; }
    int height() const { return height_; }

  private:
    std::vector<std::uint16_t> layers_;
    int width_ = 0;
    int height_ = 0;
    std::uint16_t zr_ = kNoZr;
};

} // namespace evrsim

#endif // EVRSIM_EVR_LAYER_BUFFER_HPP
