/**
 * @file
 * Early Visibility Resolution implementation.
 */
#include "evr/evr.hpp"

#include "common/log.hpp"

namespace evrsim {

EarlyVisibilityResolution::EarlyVisibilityResolution(int tile_count,
                                                     int tile_size,
                                                     const EvrConfig &config)
    : config_(config),
      lgt_(tile_count),
      fvp_(tile_count),
      layer_buffer_pixels_(tile_size * tile_size),
      active_(static_cast<std::size_t>(tile_count), nullptr)
{
}

void
EarlyVisibilityResolution::frameStart()
{
    lgt_.frameStart();
    // The FVP Table intentionally persists: it holds the previous
    // frame's farthest visible points.
}

BinDecision
EarlyVisibilityResolution::onBin(const ShadedPrimitive &prim, int tile,
                                 FrameStats &stats)
{
    const RenderState &state = prim.state;
    const bool is_woz = state.isWoz();

    BinDecision d;
    d.layer = lgt_.assign(tile, prim.cmd_id, is_woz);
    ++stats.lgt_accesses;

    // Prediction. The Z_far rule additionally requires the primitive to
    // be depth-*tested*: a depth-writing primitive that skips the test
    // would draw regardless of stored depths, so it can never be safely
    // labelled occluded by depth comparison.
    bool depth_rule_applicable = is_woz && state.depth_test;
    d.predicted_occluded =
        fvp_.predictOccluded(tile, depth_rule_applicable, prim.z_near,
                             d.layer);
    ++stats.fvp_table_accesses;

    if (d.predicted_occluded)
        ++stats.prims_predicted_occluded;
    else
        ++stats.prims_predicted_visible;

    // Algorithm 1 (reordering based on FVP). Only opaque WOZ primitives
    // are reordered among themselves; everything else keeps submission
    // order, which preserves blending semantics exactly.
    if (config_.reorder) {
        bool reorderable_woz = is_woz && state.blend == BlendMode::Opaque;
        if (reorderable_woz) {
            d.to_second_list = d.predicted_occluded;
        } else if (!is_woz) {
            // NWOZ primitive: restore global order before appending.
            d.move_second_to_first = true;
        }
    }
    return d;
}

void
EarlyVisibilityResolution::tileStart(int tile, int width, int height,
                                     FrameStats &stats)
{
    (void)stats;
    LayerBuffer *lb;
    {
        std::lock_guard<std::mutex> lock(slot_mu_);
        if (free_.empty()) {
            pool_.push_back(
                std::make_unique<LayerBuffer>(layer_buffer_pixels_));
            lb = pool_.back().get();
        } else {
            lb = free_.back();
            free_.pop_back();
        }
    }
    active_[static_cast<std::size_t>(tile)] = lb;
    lb->tileStart(width, height);
}

void
EarlyVisibilityResolution::onOpaqueWrite(int tile, int x, int y,
                                         std::uint16_t layer, bool is_woz,
                                         FrameStats &stats)
{
    active_[static_cast<std::size_t>(tile)]->opaqueWrite(x, y, layer,
                                                         is_woz);
    ++stats.layer_buffer_accesses;
}

void
EarlyVisibilityResolution::tileEnd(int tile, const float *tile_depth,
                                   int pixel_count, FrameStats &stats)
{
    LayerBuffer *lb = active_[static_cast<std::size_t>(tile)];

    // L_far: minimum visible layer (full Layer Buffer sweep).
    std::uint16_t l_far = lb->computeLFar();
    stats.layer_buffer_accesses += static_cast<std::uint64_t>(pixel_count);

    // FVP-type: WOZ iff the farthest visible layer is the one latched by
    // the last visible WOZ fragment (ZR register).
    bool woz_type = lb->zr() != LayerBuffer::kNoZr && lb->zr() == l_far;

    if (woz_type) {
        // Z_far: maximum depth held in the tile's Z Buffer.
        float z_far = 0.0f;
        for (int i = 0; i < pixel_count; ++i) {
            if (tile_depth[i] > z_far)
                z_far = tile_depth[i];
        }
        stats.depth_buffer_accesses +=
            static_cast<std::uint64_t>(pixel_count);
        fvp_.storeWoz(tile, z_far);
    } else {
        fvp_.storeNwoz(tile, l_far);
    }
    ++stats.fvp_table_accesses;

    // Return the Layer Buffer slot for the next tile to start.
    active_[static_cast<std::size_t>(tile)] = nullptr;
    std::lock_guard<std::mutex> lock(slot_mu_);
    free_.push_back(lb);
}

bool
EarlyVisibilityResolution::fvpConservative(int tile, float max_depth) const
{
    // Only a WOZ-type entry encodes a depth to be conservative about; an
    // invalid or NWOZ entry cannot mislabel by depth comparison.
    if (!fvp_.valid(tile) || !fvp_.isWozType(tile))
        return true;
    // Z_far is the max over the tile's final Z Buffer, so it must be at
    // least the farthest depth just observed (small epsilon for float
    // noise between the two scans).
    return fvp_.zFar(tile) >= max_depth - 1e-6f;
}

void
EarlyVisibilityResolution::tileSkipped(int tile)
{
    // A tile skipped by Rendering Elimination is unchanged, so the FVP
    // entry computed when it was last rendered remains correct.
    (void)tile;
}

} // namespace evrsim
