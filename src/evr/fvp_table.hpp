/**
 * @file
 * The FVP Table: per-tile storage of the previous frame's Farthest
 * Visible Point (paper section V.C).
 *
 * Each entry stores either the tile's Z_far (farthest depth among
 * visible Z-written pixels) or its L_far (minimum visible layer), plus
 * the FVP-type bit saying which one it is. Prediction (section III.C):
 * a primitive is labelled occluded in a tile iff
 *   - the stored FVP is NWOZ and the primitive's layer < L_far, or
 *   - the stored FVP is WOZ, the primitive is WOZ, and its Z_near > Z_far.
 */
#ifndef EVRSIM_EVR_FVP_TABLE_HPP
#define EVRSIM_EVR_FVP_TABLE_HPP

#include <cstdint>
#include <vector>

namespace evrsim {

/** FVP Table of Table II: 4 bytes per tile entry. */
class FvpTable
{
  public:
    explicit FvpTable(int tile_count);

    /** Clear every entry (no prediction until a frame completes). */
    void reset();

    /** Store a WOZ-type FVP (Z_far) for @p tile. */
    void storeWoz(int tile, float z_far);

    /** Store an NWOZ-type FVP (L_far) for @p tile. */
    void storeNwoz(int tile, std::uint16_t l_far);

    /**
     * Drop @p tile's entry (safe degradation: with no prediction, every
     * primitive there is treated as visible next frame).
     */
    void invalidate(int tile) { entries_[tile] = Entry{}; }

    /**
     * Predict whether a primitive is occluded in @p tile using the
     * previous frame's FVP.
     *
     * @param is_woz primitive writes the Z Buffer
     * @param z_near depth of the primitive's closest vertex
     * @param layer  layer identifier assigned for this tile
     */
    bool predictOccluded(int tile, bool is_woz, float z_near,
                         std::uint16_t layer) const;

    /** Entry inspection for tests and diagnostics. */
    bool valid(int tile) const { return entries_[tile].valid; }
    bool isWozType(int tile) const { return entries_[tile].woz_type; }
    float zFar(int tile) const { return entries_[tile].z_far; }
    std::uint16_t lFar(int tile) const { return entries_[tile].l_far; }

    int tileCount() const { return static_cast<int>(entries_.size()); }

    /** Simulated SRAM bytes (Table II: 4 bytes/entry). */
    std::uint64_t
    simulatedBytes() const
    {
        return static_cast<std::uint64_t>(entries_.size()) * 4;
    }

  private:
    struct Entry {
        float z_far = 1.0f;
        std::uint16_t l_far = 0;
        bool woz_type = false;
        bool valid = false;
    };

    std::vector<Entry> entries_;
};

} // namespace evrsim

#endif // EVRSIM_EVR_FVP_TABLE_HPP
