/**
 * @file
 * FVP Table implementation.
 */
#include "evr/fvp_table.hpp"

#include "common/log.hpp"

namespace evrsim {

FvpTable::FvpTable(int tile_count)
{
    EVRSIM_ASSERT(tile_count > 0);
    entries_.assign(static_cast<std::size_t>(tile_count), Entry{});
}

void
FvpTable::reset()
{
    for (auto &e : entries_)
        e = Entry{};
}

void
FvpTable::storeWoz(int tile, float z_far)
{
    Entry &e = entries_[tile];
    e.z_far = z_far;
    e.woz_type = true;
    e.valid = true;
}

void
FvpTable::storeNwoz(int tile, std::uint16_t l_far)
{
    Entry &e = entries_[tile];
    e.l_far = l_far;
    e.woz_type = false;
    e.valid = true;
}

bool
FvpTable::predictOccluded(int tile, bool is_woz, float z_near,
                          std::uint16_t layer) const
{
    const Entry &e = entries_[tile];
    if (!e.valid) {
        // No completed frame for this tile yet: predict visible.
        return false;
    }
    if (!e.woz_type) {
        // FVP is a layer: anything assigned a strictly lower layer lies
        // under an opaque layer that covered the whole tile.
        return layer < e.l_far;
    }
    // FVP is a depth: only comparable for primitives that also resolve
    // visibility through the Z Buffer.
    return is_woz && z_near > e.z_far;
}

} // namespace evrsim
