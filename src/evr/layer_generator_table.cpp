/**
 * @file
 * Layer Generator Table implementation.
 */
#include "evr/layer_generator_table.hpp"

#include "common/log.hpp"

namespace evrsim {

LayerGeneratorTable::LayerGeneratorTable(int tile_count)
{
    EVRSIM_ASSERT(tile_count > 0);
    entries_.assign(static_cast<std::size_t>(tile_count), Entry{});
}

void
LayerGeneratorTable::frameStart()
{
    for (auto &e : entries_)
        e = Entry{};
}

std::uint16_t
LayerGeneratorTable::assign(int tile, std::uint32_t cmd_id, bool is_woz)
{
    EVRSIM_ASSERT(cmd_id != kNoCommand);
    Entry &e = entries_[tile];

    if (e.last_cmd == cmd_id) {
        // Same command as the last primitive in this tile: same layer.
        e.last_was_woz = is_woz;
        return e.layer;
    }

    // A new command. NWOZ primitives always open a new layer; WOZ
    // primitives only when the preceding primitive was NWOZ (consecutive
    // WOZ batches share a layer). The first command in a tile always
    // opens layer 1 (counter starts at 0).
    bool increment = !is_woz || !e.last_was_woz || e.last_cmd == kNoCommand;
    if (increment && e.layer != 0xffff)
        ++e.layer;

    e.last_cmd = cmd_id;
    e.last_was_woz = is_woz;
    return e.layer;
}

} // namespace evrsim
