/**
 * @file
 * Event-based GPU energy model (the McPAT substitution).
 *
 * The paper models energy with McPAT at 32 nm / 1 V / 400 MHz, including
 * the extra EVR structures as SRAMs/registers. McPAT is driven by event
 * counts; we reproduce that structure directly: the simulator counts every
 * architectural event and this model multiplies each count by a per-event
 * energy constant, plus leakage proportional to execution time.
 *
 * The constants are CACTI/McPAT-class ballpark values for 32 nm SRAMs and
 * datapaths. Absolute joules are not meaningful for reproduction; the
 * *relative* breakdown (DRAM-dominated, fragment shading next, small
 * overheads for the EVR structures) is what Figures 6 and 10 depend on,
 * and that shape is preserved.
 */
#ifndef EVRSIM_ENERGY_ENERGY_MODEL_HPP
#define EVRSIM_ENERGY_ENERGY_MODEL_HPP

#include <cstdint>

#include "mem/memory_system.hpp"

namespace evrsim {

/** Per-event energy constants, in picojoules unless noted. */
struct EnergyParams {
    // Memory hierarchy (per access; misses additionally pay the next level
    // through that level's own access counters, so no double counting).
    double vertex_cache_pj = 5.0;   ///< 4 KB SRAM access
    double texture_cache_pj = 8.0;  ///< 8 KB SRAM access
    double tile_cache_pj = 25.0;    ///< 128 KB SRAM access
    double l2_cache_pj = 40.0;      ///< 256 KB SRAM access
    double dram_pj_per_byte = 120.0; ///< LPDDR3 incl. I/O

    // Datapath.
    double shader_instr_pj = 6.0;    ///< one shader ALU instruction
    double rasterizer_quad_pj = 14.0; ///< edge tests + attr setup per quad
    double depth_test_pj = 2.5;      ///< one Early/Late-Z comparison
    double blend_pj = 4.0;           ///< one blend/Color Buffer update op

    // On-chip raster-local SRAMs (1 KB Color/Depth buffers).
    double color_buffer_pj = 2.0;
    double depth_buffer_pj = 2.0;

    // Rendering Elimination structures.
    double signature_buffer_pj = 10.0; ///< Signature Buffer LUT access
    double crc_pj_per_byte = 0.8;      ///< CRC32 combinational logic

    // EVR structures (new hardware of Table II).
    double lgt_pj = 6.0;          ///< Layer Generator Table access (10.8 KB)
    double fvp_table_pj = 7.0;    ///< FVP Table access (14.4 KB)
    double layer_buffer_pj = 2.0; ///< 1 KB Layer Buffer access

    // Leakage: total static power of GPU + new structures, in milliwatts,
    // at 400 MHz / 1 V / 32 nm.
    double static_power_mw = 120.0;
    double evr_static_power_mw = 1.0; ///< LGT + FVP Table + Layer Buffer
    double re_static_power_mw = 0.9;  ///< Signature Buffer
    double clock_mhz = 400.0;
};

/** Raw event counts consumed by the model. */
struct EnergyEvents {
    std::uint64_t cycles = 0;

    MemorySystemStats mem;

    std::uint64_t vertex_shader_instrs = 0;
    std::uint64_t fragment_shader_instrs = 0;
    std::uint64_t raster_quads = 0;
    std::uint64_t depth_tests = 0;
    std::uint64_t blend_ops = 0;
    std::uint64_t color_buffer_accesses = 0;
    std::uint64_t depth_buffer_accesses = 0;

    // Rendering Elimination events.
    std::uint64_t signature_buffer_accesses = 0;
    std::uint64_t signature_bytes_hashed = 0;

    // EVR events.
    std::uint64_t lgt_accesses = 0;
    std::uint64_t fvp_table_accesses = 0;
    std::uint64_t layer_buffer_accesses = 0;
    /** Extra Parameter Buffer bytes written/read for layer identifiers. */
    std::uint64_t layer_param_bytes = 0;

    bool re_hardware_present = false;
    bool evr_hardware_present = false;
};

/** Energy result in nanojoules, broken down as Figures 6/10 report it. */
struct EnergyBreakdown {
    double dram_nj = 0.0;
    double caches_nj = 0.0;
    double datapath_nj = 0.0;  ///< shaders, rasterizer, depth test, blending
    double onchip_buffers_nj = 0.0;
    double static_nj = 0.0;

    // Overheads reported separately in Figure 6.
    double re_hardware_nj = 0.0;    ///< Signature Buffer + CRC logic
    double evr_hardware_nj = 0.0;   ///< LGT + FVP Table + Layer Buffer
    double layer_writes_nj = 0.0;   ///< layer ids in the Parameter Buffer

    double total() const;

    /** Everything except the three overhead groups. */
    double baselineComponents() const;
};

/**
 * Converts event counts to energy.
 */
class EnergyModel
{
  public:
    explicit EnergyModel(const EnergyParams &params = {});

    /** Compute the full breakdown for a set of event counts. */
    EnergyBreakdown compute(const EnergyEvents &events) const;

    const EnergyParams &params() const { return params_; }

  private:
    EnergyParams params_;
};

} // namespace evrsim

#endif // EVRSIM_ENERGY_ENERGY_MODEL_HPP
