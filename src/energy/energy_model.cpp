/**
 * @file
 * Energy model implementation.
 */
#include "energy/energy_model.hpp"

namespace evrsim {

namespace {
constexpr double kPjToNj = 1e-3;
}

double
EnergyBreakdown::total() const
{
    return baselineComponents() + re_hardware_nj + evr_hardware_nj +
           layer_writes_nj;
}

double
EnergyBreakdown::baselineComponents() const
{
    return dram_nj + caches_nj + datapath_nj + onchip_buffers_nj + static_nj;
}

EnergyModel::EnergyModel(const EnergyParams &params)
    : params_(params)
{
}

EnergyBreakdown
EnergyModel::compute(const EnergyEvents &events) const
{
    const EnergyParams &p = params_;
    EnergyBreakdown out;

    // --- DRAM ---
    out.dram_nj = events.mem.dram.totalBytes() * p.dram_pj_per_byte * kPjToNj;

    // --- Caches (access-count based; a miss shows up as an access at the
    // next level too, so each level's energy is its own accesses only) ---
    out.caches_nj =
        (events.mem.vertex_cache.accesses() * p.vertex_cache_pj +
         events.mem.texture_caches.accesses() * p.texture_cache_pj +
         events.mem.tile_cache.accesses() * p.tile_cache_pj +
         events.mem.l2_cache.accesses() * p.l2_cache_pj) *
        kPjToNj;

    // --- Datapath ---
    out.datapath_nj =
        ((events.vertex_shader_instrs + events.fragment_shader_instrs) *
             p.shader_instr_pj +
         events.raster_quads * p.rasterizer_quad_pj +
         events.depth_tests * p.depth_test_pj +
         events.blend_ops * p.blend_pj) *
        kPjToNj;

    // --- On-chip raster-local buffers ---
    out.onchip_buffers_nj =
        (events.color_buffer_accesses * p.color_buffer_pj +
         events.depth_buffer_accesses * p.depth_buffer_pj) *
        kPjToNj;

    // --- Static energy: P * t, with t = cycles / f ---
    double seconds = events.cycles / (p.clock_mhz * 1e6);
    double static_mw = p.static_power_mw;
    if (events.re_hardware_present)
        static_mw += p.re_static_power_mw;
    if (events.evr_hardware_present)
        static_mw += p.evr_static_power_mw;
    out.static_nj = static_mw * 1e-3 * seconds * 1e9;

    // --- Overhead groups (Figure 6 split) ---
    out.re_hardware_nj =
        (events.signature_buffer_accesses * p.signature_buffer_pj +
         events.signature_bytes_hashed * p.crc_pj_per_byte) *
        kPjToNj;

    out.evr_hardware_nj =
        (events.lgt_accesses * p.lgt_pj +
         events.fvp_table_accesses * p.fvp_table_pj +
         events.layer_buffer_accesses * p.layer_buffer_pj) *
        kPjToNj;

    // Layer identifiers stored into / read from the Parameter Buffer; the
    // cache/DRAM cost of those bytes is charged here rather than hidden in
    // the aggregate DRAM term so Figure 6's "layer writes" bar exists.
    out.layer_writes_nj = events.layer_param_bytes *
                          (p.dram_pj_per_byte * 0.25 + p.tile_cache_pj / 16.0) *
                          kPjToNj;

    return out;
}

} // namespace evrsim
