/**
 * @file
 * RunResult: the persisted outcome of simulating one workload under one
 * configuration, with JSON (de)serialization for the result cache.
 */
#ifndef EVRSIM_DRIVER_RUN_RESULT_HPP
#define EVRSIM_DRIVER_RUN_RESULT_HPP

#include <string>

#include "driver/json.hpp"
#include "energy/energy_model.hpp"
#include "gpu/gpu_stats.hpp"

namespace evrsim {

/** Aggregated outcome of one (workload, config) simulation. */
struct RunResult {
    std::string workload;
    std::string config;
    int frames = 0;
    int width = 0;
    int height = 0;

    /** Counters accumulated over all frames. */
    FrameStats totals;

    /** Energy of the whole run. */
    EnergyBreakdown energy;

    /** CRC32 of the final frame's pixels (output-identity checks). */
    std::uint32_t image_crc = 0;

    /**
     * Host wall-clock of the simulation that produced this result, in
     * milliseconds (0 when unknown). Host-timing metadata, not a
     * simulated statistic: it is excluded from toJson(false), which the
     * determinism checks compare byte-for-byte across scheduler widths.
     */
    double sim_wall_ms = 0.0;

    // --- Convenience metrics used by the benches ---
    std::uint64_t totalCycles() const { return totals.totalCycles(); }
    double totalEnergyNj() const { return energy.total(); }

    /** Fraction of tiles skipped (Figure 9 numerator for RE/EVR). */
    double
    tilesSkippedRatio() const
    {
        return totals.tiles_total == 0
                   ? 0.0
                   : static_cast<double>(totals.tiles_skipped_re) /
                         totals.tiles_total;
    }

    /** Fraction of tiles that truly matched the previous frame. */
    double
    tilesEqualOracleRatio() const
    {
        return totals.tiles_total == 0
                   ? 0.0
                   : static_cast<double>(totals.tiles_equal_oracle) /
                         totals.tiles_total;
    }

    /** Average shaded fragments per screen pixel (Figure 8). */
    double
    shadedPerPixel() const
    {
        std::uint64_t pixels = static_cast<std::uint64_t>(width) * height *
                               static_cast<std::uint64_t>(frames);
        return totals.shadedFragmentsPerPixel(pixels);
    }

    /**
     * Serialize. @p include_host_timing controls the sim_wall_ms field;
     * pass false to get the deterministic, simulation-only document
     * (identical bytes regardless of host speed or EVRSIM_JOBS).
     */
    Json toJson(bool include_host_timing = true) const;

    /** Deserialize; panics on malformed documents (internal use only). */
    static RunResult fromJson(const Json &j);

    /**
     * Deserialize a document of external origin (the on-disk cache):
     * every missing member or type mismatch propagates as DataLoss
     * instead of killing the process, so one stale or corrupt cache
     * entry degrades into a re-simulation rather than a dead sweep.
     */
    static Result<RunResult> tryFromJson(const Json &j);
};

/** Serialize counters (field-table driven; see run_result.cpp). */
Json frameStatsToJson(const FrameStats &stats);
FrameStats frameStatsFromJson(const Json &j);
Status frameStatsFromJsonChecked(const Json &j, FrameStats &out);

} // namespace evrsim

#endif // EVRSIM_DRIVER_RUN_RESULT_HPP
