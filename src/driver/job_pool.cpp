/**
 * @file
 * JobPool implementation.
 */
#include "driver/job_pool.hpp"

#include "common/log.hpp"
#include "common/trace.hpp"

namespace evrsim {

JobPool::JobPool(int threads) : threads_(threads)
{
    EVRSIM_ASSERT(threads_ >= 1);
    if (threads_ == 1)
        return; // inline mode: no workers
    workers_.reserve(static_cast<std::size_t>(threads_));
    for (int i = 0; i < threads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

JobPool::~JobPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    work_ready_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
JobPool::runGuarded(std::function<void()> &job)
{
    // Fault isolation: one job's escaped exception must cost one
    // result, not the pool (std::thread would std::terminate on an
    // unwound worker stack, killing every in-flight simulation).
    try {
        job();
    } catch (const std::exception &e) {
        std::lock_guard<std::mutex> lock(mu_);
        failures_.emplace_back(e.what());
    } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        failures_.emplace_back("non-std exception escaped a job");
    }
}

void
JobPool::submit(std::function<void()> job)
{
    EVRSIM_ASSERT(job != nullptr);
    if (threads_ == 1) {
        // Serial path: execute in submission order, same thread.
        runGuarded(job);
        return;
    }
    QueuedJob queued;
    queued.fn = std::move(job);
    if (traceEnabled(TraceCat::Driver))
        queued.enqueue_ns = traceNowNs();
    {
        std::lock_guard<std::mutex> lock(mu_);
        EVRSIM_ASSERT(!stop_);
        queue_.push_back(std::move(queued));
        ++pending_;
    }
    work_ready_.notify_one();
}

void
JobPool::wait()
{
    if (threads_ == 1)
        return;
    std::unique_lock<std::mutex> lock(mu_);
    all_done_.wait(lock, [this] { return pending_ == 0; });
}

void
JobPool::workerLoop()
{
    for (;;) {
        QueuedJob job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_ready_.wait(lock,
                             [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and nothing left to run
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        if (job.enqueue_ns != 0 && traceEnabled(TraceCat::Driver)) {
            std::uint64_t now = traceNowNs();
            traceComplete(TraceCat::Driver, "queue-wait", job.enqueue_ns,
                          now > job.enqueue_ns ? now - job.enqueue_ns : 0);
        }
        runGuarded(job.fn);
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (--pending_ == 0)
                all_done_.notify_all();
        }
    }
}

std::vector<std::string>
JobPool::drainFailures()
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    out.swap(failures_);
    return out;
}

std::size_t
JobPool::failureCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return failures_.size();
}

std::size_t
JobPool::pendingCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return pending_;
}

int
JobPool::defaultThreads()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

} // namespace evrsim
