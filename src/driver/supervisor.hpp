/**
 * @file
 * Process-level job supervisor for EVRSIM_ISOLATE=process.
 *
 * PR 2's watchdog is cooperative: it catches a slow simulation at the
 * next frame boundary, but it cannot preempt a hung one, and nothing
 * in-process survives a segfault or the OOM killer. The supervisor is
 * the hard failure domain: each simulation attempt runs in a forked
 * worker (the embedding binary re-execed with a hidden worker flag)
 * under setrlimit budgets, and streams its RunResult back over a pipe
 * using the same CRC32-enveloped JSON framing as the result cache.
 *
 * Failure classification at the parent:
 *  - the worker wrote a well-formed response: its Status (or result)
 *    is returned verbatim, ErrorCode intact — a strict-validation
 *    failure stays an InvariantViolation, a cooperative-watchdog
 *    overrun stays DeadlineExceeded (neither is retried);
 *  - the worker died — crashed on a signal, was SIGKILLed at the hard
 *    deadline, ran out of its RLIMIT_AS budget, failed to exec, or
 *    produced a damaged response: Unavailable (transient), with
 *    worker_died set so the scheduler can count hard deaths toward
 *    its crash-quarantine threshold.
 *
 * The hard deadline reuses EVRSIM_JOB_TIMEOUT_MS plus a small grace
 * period, so the worker's own cooperative watchdog (which yields the
 * precise "exceeded after N frames" status) normally fires first and
 * the SIGKILL only reaps true hangs.
 */
#ifndef EVRSIM_DRIVER_SUPERVISOR_HPP
#define EVRSIM_DRIVER_SUPERVISOR_HPP

#include <string>
#include <vector>

#include "common/status.hpp"
#include "driver/run_result.hpp"

namespace evrsim {

/** Envelope schema of the worker-response pipe framing. */
constexpr int kWorkerProtocolVersion = 1;

/**
 * File descriptor a worker writes its framed response to. The parent
 * dup2()s the pipe there before exec, so the worker's stdout/stderr
 * stay free for normal logging (stdout is redirected to /dev/null —
 * a worker re-runs the embedder's banner printing on the way to its
 * job, and twenty workers' banners would shred the parent's tables).
 */
constexpr int kWorkerResponseFd = 3;

/** Resource budget for one worker process. */
struct WorkerLimits {
    /** RLIMIT_AS in MiB (EVRSIM_JOB_MEM_MB); 0 = unlimited. */
    int mem_mb = 0;
    /** Hard wall-clock deadline in ms (EVRSIM_JOB_TIMEOUT_MS); the
     *  parent SIGKILLs the worker at timeout_ms + grace_ms. 0 = none.
     *  Also caps the worker's RLIMIT_CPU, so a spinning worker dies
     *  even if the parent does first. */
    int timeout_ms = 0;
    /** Extra slack over timeout_ms before the SIGKILL, letting the
     *  worker's cooperative watchdog report the precise overrun. */
    int grace_ms = 0;
};

/** What one supervised attempt came back with. */
struct WorkerOutcome {
    Status status; ///< Ok => result is valid
    RunResult result;
    /** The worker process died (signal, deadline kill, OOM, exec or
     *  protocol failure) rather than reporting a Status of its own.
     *  Hard deaths are transient to the retry policy but count toward
     *  the scheduler's crash-quarantine threshold. */
    bool worker_died = false;
};

/** Default grace period for a given timeout (0 stays 0). */
int defaultGraceMs(int timeout_ms);

/** Absolute path of the running executable (/proc/self/exe). */
std::string selfExecutablePath();

/**
 * Fork + exec @p argv (argv[0] is the program path), apply @p limits,
 * and collect the framed response. Never throws; never leaves a
 * zombie. Safe to call concurrently from scheduler workers.
 */
WorkerOutcome superviseWorker(const std::vector<std::string> &argv,
                              const WorkerLimits &limits);

/**
 * Worker side: frame one attempt outcome onto @p fd. Returns false
 * when the write failed (the parent will classify that as a death).
 */
bool writeWorkerResponse(int fd, const Result<RunResult> &attempt);

} // namespace evrsim

#endif // EVRSIM_DRIVER_SUPERVISOR_HPP
