/**
 * @file
 * JSON implementation.
 */
#include "driver/json.hpp"

#include <cmath>
#include <cstdio>

#include "common/log.hpp"

namespace evrsim {

bool
Json::asBool() const
{
    if (type_ != Type::Bool)
        panic("json: not a bool");
    return bool_;
}

double
Json::asDouble() const
{
    if (type_ != Type::Number)
        panic("json: not a number");
    return num_;
}

std::uint64_t
Json::asU64() const
{
    double d = asDouble();
    if (d < 0)
        panic("json: negative value read as u64");
    return static_cast<std::uint64_t>(std::llround(d));
}

std::int64_t
Json::asI64() const
{
    return static_cast<std::int64_t>(std::llround(asDouble()));
}

const std::string &
Json::asString() const
{
    if (type_ != Type::String)
        panic("json: not a string");
    return str_;
}

namespace {

const char *
typeName(Json::Type t)
{
    switch (t) {
      case Json::Type::Null:
        return "null";
      case Json::Type::Bool:
        return "bool";
      case Json::Type::Number:
        return "number";
      case Json::Type::String:
        return "string";
      case Json::Type::Array:
        return "array";
      case Json::Type::Object:
        return "object";
    }
    return "unknown";
}

Status
typeMismatch(const char *wanted, Json::Type got)
{
    return Status::dataLoss(std::string("expected ") + wanted + ", got " +
                            typeName(got));
}

} // namespace

Result<bool>
Json::tryAsBool() const
{
    if (type_ != Type::Bool)
        return typeMismatch("bool", type_);
    return bool_;
}

Result<double>
Json::tryAsDouble() const
{
    if (type_ != Type::Number)
        return typeMismatch("number", type_);
    return num_;
}

Result<std::uint64_t>
Json::tryAsU64() const
{
    if (type_ != Type::Number)
        return typeMismatch("number", type_);
    if (num_ < 0)
        return Status::dataLoss("negative value read as u64");
    return static_cast<std::uint64_t>(std::llround(num_));
}

Result<std::int64_t>
Json::tryAsI64() const
{
    if (type_ != Type::Number)
        return typeMismatch("number", type_);
    return static_cast<std::int64_t>(std::llround(num_));
}

Result<std::string>
Json::tryAsString() const
{
    if (type_ != Type::String)
        return typeMismatch("string", type_);
    return str_;
}

void
Json::push(Json v)
{
    if (type_ != Type::Array)
        panic("json: push on non-array");
    arr_.push_back(std::move(v));
}

std::size_t
Json::size() const
{
    if (type_ == Type::Array)
        return arr_.size();
    if (type_ == Type::Object)
        return obj_.size();
    panic("json: size of non-container");
}

const Json &
Json::at(std::size_t i) const
{
    if (type_ != Type::Array || i >= arr_.size())
        panic("json: bad array access");
    return arr_[i];
}

void
Json::set(const std::string &key, Json v)
{
    if (type_ != Type::Object)
        panic("json: set on non-object");
    obj_[key] = std::move(v);
}

bool
Json::has(const std::string &key) const
{
    return type_ == Type::Object && obj_.count(key) > 0;
}

const Json &
Json::at(const std::string &key) const
{
    if (type_ != Type::Object)
        panic("json: member access on non-object");
    auto it = obj_.find(key);
    if (it == obj_.end())
        panic("json: missing member '%s'", key.c_str());
    return it->second;
}

Json
Json::get(const std::string &key, Json fallback) const
{
    if (has(key))
        return obj_.at(key);
    return fallback;
}

const Json *
Json::find(const std::string &key) const
{
    if (type_ != Type::Object)
        return nullptr;
    auto it = obj_.find(key);
    return it == obj_.end() ? nullptr : &it->second;
}

const std::map<std::string, Json> &
Json::members() const
{
    if (type_ != Type::Object)
        panic("json: members of non-object");
    return obj_;
}

namespace {

void
escapeString(std::string &out, const std::string &s)
{
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
numberToString(std::string &out, double d)
{
    if (d == std::llround(d) && std::fabs(d) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(std::llround(d)));
        out += buf;
    } else {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", d);
        out += buf;
    }
}

} // namespace

void
Json::dumpTo(std::string &out, int indent, int depth) const
{
    auto newline = [&](int d) {
        if (indent > 0) {
            out += '\n';
            out.append(static_cast<std::size_t>(indent) * d, ' ');
        }
    };

    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Type::Number:
        numberToString(out, num_);
        break;
      case Type::String:
        escapeString(out, str_);
        break;
      case Type::Array: {
        out += '[';
        bool first = true;
        for (const Json &v : arr_) {
            if (!first)
                out += ',';
            first = false;
            newline(depth + 1);
            v.dumpTo(out, indent, depth + 1);
        }
        if (!arr_.empty())
            newline(depth);
        out += ']';
        break;
      }
      case Type::Object: {
        out += '{';
        bool first = true;
        for (const auto &[k, v] : obj_) {
            if (!first)
                out += ',';
            first = false;
            newline(depth + 1);
            escapeString(out, k);
            out += indent > 0 ? ": " : ":";
            v.dumpTo(out, indent, depth + 1);
        }
        if (!obj_.empty())
            newline(depth);
        out += '}';
        break;
      }
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace {

/** Recursive-descent JSON parser. */
class Parser
{
  public:
    Parser(const std::string &text) : text_(text) {}

    bool
    run(Json &out, std::string &error)
    {
        skipWs();
        if (!parseValue(out)) {
            error = error_;
            return false;
        }
        skipWs();
        if (pos_ != text_.size()) {
            error = "trailing characters at offset " + std::to_string(pos_);
            return false;
        }
        return true;
    }

  private:
    bool
    fail(const std::string &msg)
    {
        error_ = msg + " at offset " + std::to_string(pos_);
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    parseValue(Json &out)
    {
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        switch (c) {
          case '{':
            return parseObject(out);
          case '[':
            return parseArray(out);
          case '"': {
            std::string s;
            if (!parseString(s))
                return false;
            out = Json(std::move(s));
            return true;
          }
          case 't':
            if (text_.compare(pos_, 4, "true") == 0) {
                pos_ += 4;
                out = Json(true);
                return true;
            }
            return fail("bad literal");
          case 'f':
            if (text_.compare(pos_, 5, "false") == 0) {
                pos_ += 5;
                out = Json(false);
                return true;
            }
            return fail("bad literal");
          case 'n':
            if (text_.compare(pos_, 4, "null") == 0) {
                pos_ += 4;
                out = Json();
                return true;
            }
            return fail("bad literal");
          default:
            return parseNumber(out);
        }
    }

    bool
    parseNumber(Json &out)
    {
        std::size_t start = pos_;
        if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        bool any = false;
        auto digits = [&]() {
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9') {
                ++pos_;
                any = true;
            }
        };
        digits();
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            digits();
        }
        if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '-' || text_[pos_] == '+'))
                ++pos_;
            digits();
        }
        if (!any)
            return fail("bad number");
        out = Json(std::stod(text_.substr(start, pos_ - start)));
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected string");
        out.clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    return fail("bad escape");
                char e = text_[pos_++];
                switch (e) {
                  case '"':
                    out += '"';
                    break;
                  case '\\':
                    out += '\\';
                    break;
                  case '/':
                    out += '/';
                    break;
                  case 'n':
                    out += '\n';
                    break;
                  case 't':
                    out += '\t';
                    break;
                  case 'r':
                    out += '\r';
                    break;
                  case 'b':
                    out += '\b';
                    break;
                  case 'f':
                    out += '\f';
                    break;
                  case 'u': {
                    if (pos_ + 4 > text_.size())
                        return fail("bad \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code += h - '0';
                        else if (h >= 'a' && h <= 'f')
                            code += h - 'a' + 10;
                        else if (h >= 'A' && h <= 'F')
                            code += h - 'A' + 10;
                        else
                            return fail("bad \\u escape");
                    }
                    // The cache only ever stores ASCII; encode the BMP
                    // code point as UTF-8 for completeness.
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xc0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3f));
                    } else {
                        out += static_cast<char>(0xe0 | (code >> 12));
                        out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
                        out += static_cast<char>(0x80 | (code & 0x3f));
                    }
                    break;
                  }
                  default:
                    return fail("bad escape");
                }
            } else {
                out += c;
            }
        }
        return fail("unterminated string");
    }

    bool
    parseArray(Json &out)
    {
        consume('[');
        out = Json::array();
        skipWs();
        if (consume(']'))
            return true;
        while (true) {
            Json v;
            skipWs();
            if (!parseValue(v))
                return false;
            out.push(std::move(v));
            skipWs();
            if (consume(']'))
                return true;
            if (!consume(','))
                return fail("expected ',' or ']'");
        }
    }

    bool
    parseObject(Json &out)
    {
        consume('{');
        out = Json::object();
        skipWs();
        if (consume('}'))
            return true;
        while (true) {
            skipWs();
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (!consume(':'))
                return fail("expected ':'");
            skipWs();
            Json v;
            if (!parseValue(v))
                return false;
            out.set(key, std::move(v));
            skipWs();
            if (consume('}'))
                return true;
            if (!consume(','))
                return fail("expected ',' or '}'");
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    std::string error_;
};

} // namespace

Json
Json::parse(const std::string &text, bool &ok, std::string &error)
{
    Json out;
    Parser p(text);
    ok = p.run(out, error);
    if (!ok)
        out = Json();
    return out;
}

Json
Json::parseOrDie(const std::string &text)
{
    bool ok = false;
    std::string error;
    Json j = parse(text, ok, error);
    if (!ok)
        panic("json parse failed: %s", error.c_str());
    return j;
}

Result<Json>
Json::tryParse(const std::string &text)
{
    bool ok = false;
    std::string error;
    Json j = parse(text, ok, error);
    if (!ok)
        return Status::dataLoss("json parse failed: " + error);
    return j;
}

} // namespace evrsim
