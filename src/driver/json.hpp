/**
 * @file
 * Minimal JSON document type (writer + recursive-descent parser).
 *
 * Used by the experiment runner to persist run results in an on-disk
 * cache so the per-figure bench binaries can share simulations instead
 * of re-running them. Only the JSON subset the cache needs is supported:
 * objects, arrays, strings (with escape handling), doubles, booleans and
 * null. Numbers are stored as doubles — all persisted counters fit in
 * the 2^53 exact-integer range.
 */
#ifndef EVRSIM_DRIVER_JSON_HPP
#define EVRSIM_DRIVER_JSON_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace evrsim {

/** A JSON value. */
class Json
{
  public:
    enum class Type { Null, Bool, Number, String, Array, Object };

    Json() = default;
    Json(bool b) : type_(Type::Bool), bool_(b) {}
    Json(double d) : type_(Type::Number), num_(d) {}
    Json(int i) : type_(Type::Number), num_(i) {}
    Json(std::int64_t i) : type_(Type::Number), num_(static_cast<double>(i)) {}
    Json(std::uint64_t u) : type_(Type::Number), num_(static_cast<double>(u)) {}
    Json(const char *s) : type_(Type::String), str_(s) {}
    Json(std::string s) : type_(Type::String), str_(std::move(s)) {}

    static Json
    array()
    {
        Json j;
        j.type_ = Type::Array;
        return j;
    }

    static Json
    object()
    {
        Json j;
        j.type_ = Type::Object;
        return j;
    }

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }

    // --- accessors (panic on type mismatch) ---
    bool asBool() const;
    double asDouble() const;
    std::uint64_t asU64() const;
    std::int64_t asI64() const;
    const std::string &asString() const;

    // --- try-accessors (propagate type mismatch as Status) ---
    // For documents of *external* origin (the on-disk result cache),
    // where a mismatch is data loss to recover from, not a simulator
    // bug to abort on.
    Result<bool> tryAsBool() const;
    Result<double> tryAsDouble() const;
    Result<std::uint64_t> tryAsU64() const;
    Result<std::int64_t> tryAsI64() const;
    Result<std::string> tryAsString() const;

    // --- array ---
    void push(Json v);
    std::size_t size() const;
    const Json &at(std::size_t i) const;

    // --- object ---
    void set(const std::string &key, Json v);
    bool has(const std::string &key) const;
    /** Member lookup; panics if absent. */
    const Json &at(const std::string &key) const;
    /** Member lookup with a fallback value. */
    Json get(const std::string &key, Json fallback) const;
    /** Member lookup; null when absent or this is not an object. */
    const Json *find(const std::string &key) const;
    const std::map<std::string, Json> &members() const;

    // --- serialization ---
    /** Serialize; @p indent > 0 pretty-prints with that many spaces. */
    std::string dump(int indent = 0) const;

    /**
     * Parse a JSON document.
     * @param error receives a message on failure (result is Null)
     * @param ok    receives parse success
     */
    static Json parse(const std::string &text, bool &ok, std::string &error);

    /** Parse variant that panics on malformed input. */
    static Json parseOrDie(const std::string &text);

    /** Parse variant that propagates malformed input as DataLoss. */
    static Result<Json> tryParse(const std::string &text);

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_ = Type::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<Json> arr_;
    std::map<std::string, Json> obj_;
};

} // namespace evrsim

#endif // EVRSIM_DRIVER_JSON_HPP
