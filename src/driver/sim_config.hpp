/**
 * @file
 * Simulation configurations: which techniques are active on top of the
 * baseline GPU. These correspond to the bars of the paper's figures.
 */
#ifndef EVRSIM_DRIVER_SIM_CONFIG_HPP
#define EVRSIM_DRIVER_SIM_CONFIG_HPP

#include <string>

#include "common/validate.hpp"
#include "gpu/gpu_config.hpp"

namespace evrsim {

/** One simulated GPU variant. */
struct SimConfig {
    GpuConfig gpu;

    /**
     * Ingestion validation + invariant auditing (EVRSIM_VALIDATE). Off
     * by default; the defensive machinery costs nothing when disabled.
     */
    ValidationConfig validation;

    /** Rendering Elimination (Signature Buffer + tile skipping). */
    bool re = false;
    /** EVR prediction state (LGT + Layer Buffer + FVP Table) present. */
    bool evr_predict = false;
    /** Algorithm 1 reordering of predicted-occluded WOZ primitives. */
    bool evr_reorder = false;
    /** Exclude predicted-occluded primitives from RE signatures. */
    bool evr_filter_signature = false;
    /** Figure 8 oracle: Z Buffer preloaded with final depths. */
    bool oracle_z = false;
    /** Real Z-Prepass: depth-only first pass with its full cost. */
    bool z_prepass = false;

    /** Short identifier used in reports and cache keys. */
    std::string name;

    /** Baseline GPU (Figures 7/8/11 reference). */
    static SimConfig
    baseline(const GpuConfig &gpu)
    {
        SimConfig c;
        c.gpu = gpu;
        c.name = "baseline";
        return c;
    }

    /** Baseline + Rendering Elimination (Figures 9/10/11). */
    static SimConfig
    renderingElimination(const GpuConfig &gpu)
    {
        SimConfig c = baseline(gpu);
        c.re = true;
        c.name = "re";
        return c;
    }

    /** The paper's full EVR proposal: reorder + RE with filtering. */
    static SimConfig
    evr(const GpuConfig &gpu)
    {
        SimConfig c = baseline(gpu);
        c.re = true;
        c.evr_predict = true;
        c.evr_reorder = true;
        c.evr_filter_signature = true;
        c.name = "evr";
        return c;
    }

    /** EVR reordering only, no RE (Figure 8's EVR bar). */
    static SimConfig
    evrReorderOnly(const GpuConfig &gpu)
    {
        SimConfig c = baseline(gpu);
        c.evr_predict = true;
        c.evr_reorder = true;
        c.name = "evr-reorder";
        return c;
    }

    /** EVR signature filtering only, no reorder (ablation). */
    static SimConfig
    evrFilterOnly(const GpuConfig &gpu)
    {
        SimConfig c = baseline(gpu);
        c.re = true;
        c.evr_predict = true;
        c.evr_filter_signature = true;
        c.name = "evr-filter";
        return c;
    }

    /** Perfect-visibility oracle (Figure 8's Oracle bar). */
    static SimConfig
    oracleZ(const GpuConfig &gpu)
    {
        SimConfig c = baseline(gpu);
        c.oracle_z = true;
        c.name = "oracle-z";
        return c;
    }

    /**
     * Z-Prepass: the overshading alternative the paper contrasts EVR
     * with — render depth first (paying for it), then shade with
     * near-perfect visibility.
     */
    static SimConfig
    zPrepass(const GpuConfig &gpu)
    {
        SimConfig c = baseline(gpu);
        c.z_prepass = true;
        c.name = "z-prepass";
        return c;
    }

    /** Recoverable flag-combination check: first problem as a Status. */
    Status
    checkValid() const
    {
        Status s = gpu.checkValid();
        if (!s.ok())
            return s;
        if ((evr_reorder || evr_filter_signature) && !evr_predict)
            return Status::invalidArgument(
                "EVR reorder/filter require evr_predict");
        if (evr_filter_signature && !re)
            return Status::invalidArgument(
                "signature filtering requires Rendering Elimination");
        if (oracle_z && z_prepass)
            return Status::invalidArgument(
                "oracle_z and z_prepass are mutually exclusive");
        if (name.empty())
            return Status::invalidArgument("SimConfig must be named");
        return {};
    }

    /** Process-boundary wrapper: exits on an invalid configuration. */
    void
    validate() const
    {
        Status s = checkValid();
        if (!s.ok())
            fatal("SimConfig: %s", s.message().c_str());
    }
};

} // namespace evrsim

#endif // EVRSIM_DRIVER_SIM_CONFIG_HPP
