/**
 * @file
 * RunResult serialization.
 */
#include "driver/run_result.hpp"

#include "common/log.hpp"

namespace evrsim {

namespace {

/** Field-table entry for FrameStats' uint64 counters. */
struct StatField {
    const char *name;
    std::uint64_t FrameStats::*member;
};

// Every scalar counter, named as in the struct; keeping the table next to
// the struct definition honest is covered by a round-trip unit test.
const StatField kStatFields[] = {
    {"draw_commands", &FrameStats::draw_commands},
    {"vertices_fetched", &FrameStats::vertices_fetched},
    {"vertices_shaded", &FrameStats::vertices_shaded},
    {"vertex_shader_instrs", &FrameStats::vertex_shader_instrs},
    {"prims_submitted", &FrameStats::prims_submitted},
    {"prims_backface_culled", &FrameStats::prims_backface_culled},
    {"prims_clipped_away", &FrameStats::prims_clipped_away},
    {"prims_clip_split", &FrameStats::prims_clip_split},
    {"prims_binned", &FrameStats::prims_binned},
    {"bin_tile_pairs", &FrameStats::bin_tile_pairs},
    {"param_attr_bytes", &FrameStats::param_attr_bytes},
    {"param_list_bytes", &FrameStats::param_list_bytes},
    {"layer_param_bytes", &FrameStats::layer_param_bytes},
    {"signature_updates", &FrameStats::signature_updates},
    {"signature_bytes_hashed", &FrameStats::signature_bytes_hashed},
    {"signature_shift_bytes", &FrameStats::signature_shift_bytes},
    {"signature_updates_skipped", &FrameStats::signature_updates_skipped},
    {"signature_compares", &FrameStats::signature_compares},
    {"tiles_skipped_re", &FrameStats::tiles_skipped_re},
    {"lgt_accesses", &FrameStats::lgt_accesses},
    {"fvp_table_accesses", &FrameStats::fvp_table_accesses},
    {"layer_buffer_accesses", &FrameStats::layer_buffer_accesses},
    {"prims_predicted_occluded", &FrameStats::prims_predicted_occluded},
    {"prims_predicted_visible", &FrameStats::prims_predicted_visible},
    {"second_list_entries", &FrameStats::second_list_entries},
    {"second_list_flushes", &FrameStats::second_list_flushes},
    {"pred_occluded_correct", &FrameStats::pred_occluded_correct},
    {"pred_occluded_wrong", &FrameStats::pred_occluded_wrong},
    {"tiles_total", &FrameStats::tiles_total},
    {"tiles_rendered", &FrameStats::tiles_rendered},
    {"tiles_equal_oracle", &FrameStats::tiles_equal_oracle},
    {"prim_tile_rasterized", &FrameStats::prim_tile_rasterized},
    {"raster_quads", &FrameStats::raster_quads},
    {"fragments_generated", &FrameStats::fragments_generated},
    {"early_z_tests", &FrameStats::early_z_tests},
    {"early_z_kills", &FrameStats::early_z_kills},
    {"late_z_tests", &FrameStats::late_z_tests},
    {"late_z_kills", &FrameStats::late_z_kills},
    {"fragments_shaded", &FrameStats::fragments_shaded},
    {"fragment_shader_instrs", &FrameStats::fragment_shader_instrs},
    {"texture_fetches", &FrameStats::texture_fetches},
    {"fragments_discarded_shader", &FrameStats::fragments_discarded_shader},
    {"blend_ops", &FrameStats::blend_ops},
    {"color_buffer_accesses", &FrameStats::color_buffer_accesses},
    {"depth_buffer_accesses", &FrameStats::depth_buffer_accesses},
    {"tile_flush_bytes", &FrameStats::tile_flush_bytes},
    {"geom_mem_latency", &FrameStats::geom_mem_latency},
    {"raster_mem_latency", &FrameStats::raster_mem_latency},
    {"geometry_cycles", &FrameStats::geometry_cycles},
    {"raster_cycles", &FrameStats::raster_cycles},
    {"validate_tile_checks", &FrameStats::validate_tile_checks},
    {"validate_scene_issues", &FrameStats::validate_scene_issues},
    {"validate_commands_dropped", &FrameStats::validate_commands_dropped},
    {"validate_violations", &FrameStats::validate_violations},
    {"degraded_tiles", &FrameStats::degraded_tiles},
    {"commands_rejected", &FrameStats::commands_rejected},
    {"prims_rejected", &FrameStats::prims_rejected},
};

struct CacheField {
    const char *name;
    std::uint64_t CacheStats::*member;
};

const CacheField kCacheFields[] = {
    {"reads", &CacheStats::reads},
    {"writes", &CacheStats::writes},
    {"read_misses", &CacheStats::read_misses},
    {"write_misses", &CacheStats::write_misses},
    {"writebacks", &CacheStats::writebacks},
};

Json
cacheStatsToJson(const CacheStats &c)
{
    Json j = Json::object();
    for (const auto &f : kCacheFields)
        j.set(f.name, c.*(f.member));
    return j;
}

// --- checked loaders -----------------------------------------------------
// Every reader below propagates missing members and type mismatches as
// Status (DataLoss) so a damaged cache document is survivable; the
// legacy panicking entry points wrap them.

Status
getMember(const Json &j, const char *key, const Json *&out)
{
    out = j.find(key);
    if (!out)
        return Status::dataLoss(std::string("missing member '") + key +
                                "'");
    return {};
}

Status
getU64(const Json &j, const char *key, std::uint64_t &out)
{
    const Json *m = nullptr;
    if (Status s = getMember(j, key, m); !s.ok())
        return s;
    Result<std::uint64_t> v = m->tryAsU64();
    if (!v.ok())
        return v.status().withContext(key);
    out = v.value();
    return {};
}

Status
getDouble(const Json &j, const char *key, double &out)
{
    const Json *m = nullptr;
    if (Status s = getMember(j, key, m); !s.ok())
        return s;
    Result<double> v = m->tryAsDouble();
    if (!v.ok())
        return v.status().withContext(key);
    out = v.value();
    return {};
}

Status
getInt(const Json &j, const char *key, int &out)
{
    const Json *m = nullptr;
    if (Status s = getMember(j, key, m); !s.ok())
        return s;
    Result<std::int64_t> v = m->tryAsI64();
    if (!v.ok())
        return v.status().withContext(key);
    out = static_cast<int>(v.value());
    return {};
}

Status
getString(const Json &j, const char *key, std::string &out)
{
    const Json *m = nullptr;
    if (Status s = getMember(j, key, m); !s.ok())
        return s;
    Result<std::string> v = m->tryAsString();
    if (!v.ok())
        return v.status().withContext(key);
    out = v.value();
    return {};
}

/** u64 element @p i of array member @p key. */
Status
getU64Elem(const Json &j, const char *key, std::size_t i,
           std::uint64_t &out)
{
    const Json *arr = nullptr;
    if (Status s = getMember(j, key, arr); !s.ok())
        return s;
    if (arr->type() != Json::Type::Array || i >= arr->size())
        return Status::dataLoss(std::string("member '") + key +
                                "' is not an array with at least " +
                                std::to_string(i + 1) + " elements");
    Result<std::uint64_t> v = arr->at(i).tryAsU64();
    if (!v.ok())
        return v.status().withContext(key);
    out = v.value();
    return {};
}

Status
cacheStatsFromJsonChecked(const Json &j, CacheStats &out)
{
    for (const auto &f : kCacheFields)
        if (Status s = getU64(j, f.name, out.*(f.member)); !s.ok())
            return s;
    return {};
}

Json
dramStatsToJson(const DramStats &d)
{
    Json j = Json::object();
    Json reads = Json::array();
    Json writes = Json::array();
    for (int i = 0; i < kNumTrafficClasses; ++i) {
        reads.push(d.read_bytes[i]);
        writes.push(d.write_bytes[i]);
    }
    j.set("read_bytes", std::move(reads));
    j.set("write_bytes", std::move(writes));
    j.set("accesses", d.accesses);
    j.set("row_hits", d.row_hits);
    j.set("row_misses", d.row_misses);
    j.set("bus_busy_cycles", d.bus_busy_cycles);
    return j;
}

Status
dramStatsFromJsonChecked(const Json &j, DramStats &out)
{
    for (int i = 0; i < kNumTrafficClasses; ++i) {
        std::size_t idx = static_cast<std::size_t>(i);
        if (Status s = getU64Elem(j, "read_bytes", idx,
                                  out.read_bytes[i]);
            !s.ok())
            return s;
        if (Status s = getU64Elem(j, "write_bytes", idx,
                                  out.write_bytes[i]);
            !s.ok())
            return s;
    }
    if (Status s = getU64(j, "accesses", out.accesses); !s.ok())
        return s;
    if (Status s = getU64(j, "row_hits", out.row_hits); !s.ok())
        return s;
    if (Status s = getU64(j, "row_misses", out.row_misses); !s.ok())
        return s;
    return getU64(j, "bus_busy_cycles", out.bus_busy_cycles);
}

/** Object member @p key loaded as CacheStats. */
Status
memberCacheStats(const Json &j, const char *key, CacheStats &out)
{
    const Json *m = nullptr;
    if (Status s = getMember(j, key, m); !s.ok())
        return s;
    return cacheStatsFromJsonChecked(*m, out).withContext(key);
}

} // namespace

Json
frameStatsToJson(const FrameStats &stats)
{
    Json j = Json::object();
    for (const auto &f : kStatFields)
        j.set(f.name, stats.*(f.member));

    Json cas = Json::array();
    for (std::uint64_t c : stats.casuistry)
        cas.push(c);
    j.set("casuistry", std::move(cas));

    Json mem = Json::object();
    mem.set("vertex_cache", cacheStatsToJson(stats.mem.vertex_cache));
    mem.set("texture_caches", cacheStatsToJson(stats.mem.texture_caches));
    mem.set("tile_cache", cacheStatsToJson(stats.mem.tile_cache));
    mem.set("l2_cache", cacheStatsToJson(stats.mem.l2_cache));
    mem.set("dram", dramStatsToJson(stats.mem.dram));
    j.set("mem", std::move(mem));
    return j;
}

Status
frameStatsFromJsonChecked(const Json &j, FrameStats &out)
{
    for (const auto &f : kStatFields)
        if (Status s = getU64(j, f.name, out.*(f.member)); !s.ok())
            return s;

    for (std::size_t i = 0; i < 4; ++i)
        if (Status s = getU64Elem(j, "casuistry", i, out.casuistry[i]);
            !s.ok())
            return s;

    const Json *mem = nullptr;
    if (Status s = getMember(j, "mem", mem); !s.ok())
        return s;
    if (Status s = memberCacheStats(*mem, "vertex_cache",
                                    out.mem.vertex_cache);
        !s.ok())
        return s;
    if (Status s = memberCacheStats(*mem, "texture_caches",
                                    out.mem.texture_caches);
        !s.ok())
        return s;
    if (Status s = memberCacheStats(*mem, "tile_cache",
                                    out.mem.tile_cache);
        !s.ok())
        return s;
    if (Status s = memberCacheStats(*mem, "l2_cache", out.mem.l2_cache);
        !s.ok())
        return s;
    const Json *dram = nullptr;
    if (Status s = getMember(*mem, "dram", dram); !s.ok())
        return s;
    return dramStatsFromJsonChecked(*dram, out.mem.dram)
        .withContext("dram");
}

FrameStats
frameStatsFromJson(const Json &j)
{
    FrameStats stats;
    if (Status s = frameStatsFromJsonChecked(j, stats); !s.ok())
        panic("frame stats document: %s", s.toString().c_str());
    return stats;
}

Json
RunResult::toJson(bool include_host_timing) const
{
    Json j = Json::object();
    j.set("workload", workload);
    j.set("config", config);
    j.set("frames", frames);
    j.set("width", width);
    j.set("height", height);
    j.set("totals", frameStatsToJson(totals));

    Json e = Json::object();
    e.set("dram_nj", energy.dram_nj);
    e.set("caches_nj", energy.caches_nj);
    e.set("datapath_nj", energy.datapath_nj);
    e.set("onchip_buffers_nj", energy.onchip_buffers_nj);
    e.set("static_nj", energy.static_nj);
    e.set("re_hardware_nj", energy.re_hardware_nj);
    e.set("evr_hardware_nj", energy.evr_hardware_nj);
    e.set("layer_writes_nj", energy.layer_writes_nj);
    j.set("energy", std::move(e));

    j.set("image_crc", static_cast<std::uint64_t>(image_crc));
    if (include_host_timing)
        j.set("sim_wall_ms", sim_wall_ms);
    return j;
}

Result<RunResult>
RunResult::tryFromJson(const Json &j)
{
    RunResult r;
    if (Status s = getString(j, "workload", r.workload); !s.ok())
        return s;
    if (Status s = getString(j, "config", r.config); !s.ok())
        return s;
    if (Status s = getInt(j, "frames", r.frames); !s.ok())
        return s;
    if (Status s = getInt(j, "width", r.width); !s.ok())
        return s;
    if (Status s = getInt(j, "height", r.height); !s.ok())
        return s;

    const Json *totals = nullptr;
    if (Status s = getMember(j, "totals", totals); !s.ok())
        return s;
    if (Status s = frameStatsFromJsonChecked(*totals, r.totals); !s.ok())
        return s.withContext("totals");

    const Json *e = nullptr;
    if (Status s = getMember(j, "energy", e); !s.ok())
        return s;
    struct EnergyField {
        const char *name;
        double EnergyBreakdown::*member;
    };
    const EnergyField kEnergyFields[] = {
        {"dram_nj", &EnergyBreakdown::dram_nj},
        {"caches_nj", &EnergyBreakdown::caches_nj},
        {"datapath_nj", &EnergyBreakdown::datapath_nj},
        {"onchip_buffers_nj", &EnergyBreakdown::onchip_buffers_nj},
        {"static_nj", &EnergyBreakdown::static_nj},
        {"re_hardware_nj", &EnergyBreakdown::re_hardware_nj},
        {"evr_hardware_nj", &EnergyBreakdown::evr_hardware_nj},
        {"layer_writes_nj", &EnergyBreakdown::layer_writes_nj},
    };
    for (const EnergyField &f : kEnergyFields)
        if (Status s = getDouble(*e, f.name, r.energy.*(f.member));
            !s.ok())
            return s.withContext("energy");

    std::uint64_t crc = 0;
    if (Status s = getU64(j, "image_crc", crc); !s.ok())
        return s;
    r.image_crc = static_cast<std::uint32_t>(crc);

    if (const Json *wall = j.find("sim_wall_ms")) {
        Result<double> v = wall->tryAsDouble();
        if (!v.ok())
            return v.status().withContext("sim_wall_ms");
        r.sim_wall_ms = v.value();
    }
    return r;
}

RunResult
RunResult::fromJson(const Json &j)
{
    Result<RunResult> r = tryFromJson(j);
    if (!r.ok())
        panic("run result document: %s", r.status().toString().c_str());
    return r.value();
}

} // namespace evrsim
