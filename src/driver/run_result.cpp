/**
 * @file
 * RunResult serialization.
 */
#include "driver/run_result.hpp"

#include "common/log.hpp"

namespace evrsim {

namespace {

/** Field-table entry for FrameStats' uint64 counters. */
struct StatField {
    const char *name;
    std::uint64_t FrameStats::*member;
};

// Every scalar counter, named as in the struct; keeping the table next to
// the struct definition honest is covered by a round-trip unit test.
const StatField kStatFields[] = {
    {"draw_commands", &FrameStats::draw_commands},
    {"vertices_fetched", &FrameStats::vertices_fetched},
    {"vertices_shaded", &FrameStats::vertices_shaded},
    {"vertex_shader_instrs", &FrameStats::vertex_shader_instrs},
    {"prims_submitted", &FrameStats::prims_submitted},
    {"prims_backface_culled", &FrameStats::prims_backface_culled},
    {"prims_clipped_away", &FrameStats::prims_clipped_away},
    {"prims_clip_split", &FrameStats::prims_clip_split},
    {"prims_binned", &FrameStats::prims_binned},
    {"bin_tile_pairs", &FrameStats::bin_tile_pairs},
    {"param_attr_bytes", &FrameStats::param_attr_bytes},
    {"param_list_bytes", &FrameStats::param_list_bytes},
    {"layer_param_bytes", &FrameStats::layer_param_bytes},
    {"signature_updates", &FrameStats::signature_updates},
    {"signature_bytes_hashed", &FrameStats::signature_bytes_hashed},
    {"signature_shift_bytes", &FrameStats::signature_shift_bytes},
    {"signature_updates_skipped", &FrameStats::signature_updates_skipped},
    {"signature_compares", &FrameStats::signature_compares},
    {"tiles_skipped_re", &FrameStats::tiles_skipped_re},
    {"lgt_accesses", &FrameStats::lgt_accesses},
    {"fvp_table_accesses", &FrameStats::fvp_table_accesses},
    {"layer_buffer_accesses", &FrameStats::layer_buffer_accesses},
    {"prims_predicted_occluded", &FrameStats::prims_predicted_occluded},
    {"prims_predicted_visible", &FrameStats::prims_predicted_visible},
    {"second_list_entries", &FrameStats::second_list_entries},
    {"second_list_flushes", &FrameStats::second_list_flushes},
    {"pred_occluded_correct", &FrameStats::pred_occluded_correct},
    {"pred_occluded_wrong", &FrameStats::pred_occluded_wrong},
    {"tiles_total", &FrameStats::tiles_total},
    {"tiles_rendered", &FrameStats::tiles_rendered},
    {"tiles_equal_oracle", &FrameStats::tiles_equal_oracle},
    {"prim_tile_rasterized", &FrameStats::prim_tile_rasterized},
    {"raster_quads", &FrameStats::raster_quads},
    {"fragments_generated", &FrameStats::fragments_generated},
    {"early_z_tests", &FrameStats::early_z_tests},
    {"early_z_kills", &FrameStats::early_z_kills},
    {"late_z_tests", &FrameStats::late_z_tests},
    {"late_z_kills", &FrameStats::late_z_kills},
    {"fragments_shaded", &FrameStats::fragments_shaded},
    {"fragment_shader_instrs", &FrameStats::fragment_shader_instrs},
    {"texture_fetches", &FrameStats::texture_fetches},
    {"fragments_discarded_shader", &FrameStats::fragments_discarded_shader},
    {"blend_ops", &FrameStats::blend_ops},
    {"color_buffer_accesses", &FrameStats::color_buffer_accesses},
    {"depth_buffer_accesses", &FrameStats::depth_buffer_accesses},
    {"tile_flush_bytes", &FrameStats::tile_flush_bytes},
    {"geom_mem_latency", &FrameStats::geom_mem_latency},
    {"raster_mem_latency", &FrameStats::raster_mem_latency},
    {"geometry_cycles", &FrameStats::geometry_cycles},
    {"raster_cycles", &FrameStats::raster_cycles},
};

struct CacheField {
    const char *name;
    std::uint64_t CacheStats::*member;
};

const CacheField kCacheFields[] = {
    {"reads", &CacheStats::reads},
    {"writes", &CacheStats::writes},
    {"read_misses", &CacheStats::read_misses},
    {"write_misses", &CacheStats::write_misses},
    {"writebacks", &CacheStats::writebacks},
};

Json
cacheStatsToJson(const CacheStats &c)
{
    Json j = Json::object();
    for (const auto &f : kCacheFields)
        j.set(f.name, c.*(f.member));
    return j;
}

CacheStats
cacheStatsFromJson(const Json &j)
{
    CacheStats c;
    for (const auto &f : kCacheFields)
        c.*(f.member) = j.at(f.name).asU64();
    return c;
}

Json
dramStatsToJson(const DramStats &d)
{
    Json j = Json::object();
    Json reads = Json::array();
    Json writes = Json::array();
    for (int i = 0; i < kNumTrafficClasses; ++i) {
        reads.push(d.read_bytes[i]);
        writes.push(d.write_bytes[i]);
    }
    j.set("read_bytes", std::move(reads));
    j.set("write_bytes", std::move(writes));
    j.set("accesses", d.accesses);
    j.set("row_hits", d.row_hits);
    j.set("row_misses", d.row_misses);
    j.set("bus_busy_cycles", d.bus_busy_cycles);
    return j;
}

DramStats
dramStatsFromJson(const Json &j)
{
    DramStats d;
    for (int i = 0; i < kNumTrafficClasses; ++i) {
        d.read_bytes[i] = j.at("read_bytes").at(i).asU64();
        d.write_bytes[i] = j.at("write_bytes").at(i).asU64();
    }
    d.accesses = j.at("accesses").asU64();
    d.row_hits = j.at("row_hits").asU64();
    d.row_misses = j.at("row_misses").asU64();
    d.bus_busy_cycles = j.at("bus_busy_cycles").asU64();
    return d;
}

} // namespace

Json
frameStatsToJson(const FrameStats &stats)
{
    Json j = Json::object();
    for (const auto &f : kStatFields)
        j.set(f.name, stats.*(f.member));

    Json cas = Json::array();
    for (std::uint64_t c : stats.casuistry)
        cas.push(c);
    j.set("casuistry", std::move(cas));

    Json mem = Json::object();
    mem.set("vertex_cache", cacheStatsToJson(stats.mem.vertex_cache));
    mem.set("texture_caches", cacheStatsToJson(stats.mem.texture_caches));
    mem.set("tile_cache", cacheStatsToJson(stats.mem.tile_cache));
    mem.set("l2_cache", cacheStatsToJson(stats.mem.l2_cache));
    mem.set("dram", dramStatsToJson(stats.mem.dram));
    j.set("mem", std::move(mem));
    return j;
}

FrameStats
frameStatsFromJson(const Json &j)
{
    FrameStats stats;
    for (const auto &f : kStatFields)
        stats.*(f.member) = j.at(f.name).asU64();

    for (int i = 0; i < 4; ++i)
        stats.casuistry[i] = j.at("casuistry").at(i).asU64();

    const Json &mem = j.at("mem");
    stats.mem.vertex_cache = cacheStatsFromJson(mem.at("vertex_cache"));
    stats.mem.texture_caches = cacheStatsFromJson(mem.at("texture_caches"));
    stats.mem.tile_cache = cacheStatsFromJson(mem.at("tile_cache"));
    stats.mem.l2_cache = cacheStatsFromJson(mem.at("l2_cache"));
    stats.mem.dram = dramStatsFromJson(mem.at("dram"));
    return stats;
}

Json
RunResult::toJson(bool include_host_timing) const
{
    Json j = Json::object();
    j.set("workload", workload);
    j.set("config", config);
    j.set("frames", frames);
    j.set("width", width);
    j.set("height", height);
    j.set("totals", frameStatsToJson(totals));

    Json e = Json::object();
    e.set("dram_nj", energy.dram_nj);
    e.set("caches_nj", energy.caches_nj);
    e.set("datapath_nj", energy.datapath_nj);
    e.set("onchip_buffers_nj", energy.onchip_buffers_nj);
    e.set("static_nj", energy.static_nj);
    e.set("re_hardware_nj", energy.re_hardware_nj);
    e.set("evr_hardware_nj", energy.evr_hardware_nj);
    e.set("layer_writes_nj", energy.layer_writes_nj);
    j.set("energy", std::move(e));

    j.set("image_crc", static_cast<std::uint64_t>(image_crc));
    if (include_host_timing)
        j.set("sim_wall_ms", sim_wall_ms);
    return j;
}

RunResult
RunResult::fromJson(const Json &j)
{
    RunResult r;
    r.workload = j.at("workload").asString();
    r.config = j.at("config").asString();
    r.frames = static_cast<int>(j.at("frames").asI64());
    r.width = static_cast<int>(j.at("width").asI64());
    r.height = static_cast<int>(j.at("height").asI64());
    r.totals = frameStatsFromJson(j.at("totals"));

    const Json &e = j.at("energy");
    r.energy.dram_nj = e.at("dram_nj").asDouble();
    r.energy.caches_nj = e.at("caches_nj").asDouble();
    r.energy.datapath_nj = e.at("datapath_nj").asDouble();
    r.energy.onchip_buffers_nj = e.at("onchip_buffers_nj").asDouble();
    r.energy.static_nj = e.at("static_nj").asDouble();
    r.energy.re_hardware_nj = e.at("re_hardware_nj").asDouble();
    r.energy.evr_hardware_nj = e.at("evr_hardware_nj").asDouble();
    r.energy.layer_writes_nj = e.at("layer_writes_nj").asDouble();

    r.image_crc = static_cast<std::uint32_t>(j.at("image_crc").asU64());
    r.sim_wall_ms = j.get("sim_wall_ms", Json(0.0)).asDouble();
    return r;
}

} // namespace evrsim
