/**
 * @file
 * Envelope framing implementation.
 */
#include "driver/envelope.hpp"

#include "common/crc32.hpp"

namespace evrsim {

Json
wrapEnvelope(Json payload, int schema)
{
    std::string canonical = payload.dump(1);
    Json envelope = Json::object();
    envelope.set("schema", schema);
    envelope.set("payload_crc32",
                 static_cast<std::uint64_t>(
                     Crc32::of(canonical.data(), canonical.size())));
    envelope.set("payload", std::move(payload));
    return envelope;
}

Result<Json>
unwrapEnvelope(const Json &doc, int expected_schema)
{
    const Json *schema = doc.find("schema");
    if (!schema)
        return Status::dataLoss("missing schema field");
    Result<std::int64_t> schema_v = schema->tryAsI64();
    if (!schema_v.ok())
        return schema_v.status().withContext("schema");
    if (schema_v.value() != expected_schema)
        return Status::dataLoss(
            "schema version " + std::to_string(schema_v.value()) +
            " does not match expected " + std::to_string(expected_schema));

    const Json *crc = doc.find("payload_crc32");
    const Json *payload = doc.find("payload");
    if (!crc || !payload)
        return Status::dataLoss("missing payload or payload_crc32 field");
    Result<std::uint64_t> want = crc->tryAsU64();
    if (!want.ok())
        return want.status().withContext("payload_crc32");

    // The CRC covers the canonical re-serialization of the payload, so
    // it survives whitespace-preserving transport but catches any
    // value-level damage.
    std::string canonical = payload->dump(1);
    std::uint32_t got = Crc32::of(canonical.data(), canonical.size());
    if (got != static_cast<std::uint32_t>(want.value()))
        return Status::dataLoss("payload CRC mismatch (entry damaged)");

    return *payload;
}

Result<Json>
parseEnvelope(const std::string &text, int expected_schema)
{
    Result<Json> doc = Json::tryParse(text);
    if (!doc.ok())
        return doc.status();
    return unwrapEnvelope(doc.value(), expected_schema);
}

Json
statusToJson(const Status &s)
{
    Json j = Json::object();
    j.set("code", errorCodeName(s.code()));
    j.set("message", s.message());
    return j;
}

Status
statusFromJson(const Json &j, Status &out)
{
    const Json *code = j.find("code");
    const Json *message = j.find("message");
    if (!code || !message)
        return Status::dataLoss("status document missing code or message");
    Result<std::string> name = code->tryAsString();
    if (!name.ok())
        return name.status().withContext("status code");
    Result<std::string> text = message->tryAsString();
    if (!text.ok())
        return text.status().withContext("status message");

    // Codes travel by stable name, not enum value, so a document is
    // readable even if the enum is ever reordered.
    for (int c = 0; c <= static_cast<int>(ErrorCode::ResourceExhausted);
         ++c) {
        ErrorCode ec = static_cast<ErrorCode>(c);
        if (name.value() == errorCodeName(ec)) {
            out = ec == ErrorCode::Ok ? Status() : Status(ec, text.value());
            return {};
        }
    }
    return Status::dataLoss("unknown status code '" + name.value() + "'");
}

} // namespace evrsim
