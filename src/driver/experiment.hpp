/**
 * @file
 * Experiment runner: simulate (workload, config, frames) triples with an
 * on-disk JSON result cache, plus the environment knobs the bench
 * binaries share.
 *
 * The per-figure benches overlap heavily in the simulations they need
 * (Figure 6 and Figure 7 both need baseline+EVR runs of all 20
 * workloads; Figures 9-11 share the RE runs). Two layers of sharing keep
 * the full sweep at "each triple simulates exactly once":
 *
 *  - an on-disk JSON cache shared *across* bench processes, written
 *    atomically (tmp file + rename) so an interrupted or concurrent run
 *    can never leave a truncated entry behind;
 *  - an in-memory memo with in-flight deduplication shared *within* a
 *    process, so a triple requested by several figures (or by several
 *    scheduler workers at once) simulates exactly once per process.
 *
 * runAll() executes a declared batch of runs on a JobPool
 * (EVRSIM_JOBS workers, default hardware_concurrency); every simulation
 * owns its GpuSimulator/MemorySystem/Scene, so parallel results are
 * bit-identical to the EVRSIM_JOBS=1 serial path.
 */
#ifndef EVRSIM_DRIVER_EXPERIMENT_HPP
#define EVRSIM_DRIVER_EXPERIMENT_HPP

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/fault_injector.hpp"
#include "common/log.hpp"
#include "common/status.hpp"
#include "common/validate.hpp"
#include "driver/run_result.hpp"
#include "driver/sim_config.hpp"
#include "driver/sweep_journal.hpp"
#include "driver/workload.hpp"

namespace evrsim {

class JobPool;

/**
 * Failure-domain granularity for simulation jobs (EVRSIM_ISOLATE).
 * Off runs jobs on scheduler threads (PR 2's soft-failure machinery:
 * exceptions and cooperative deadlines cost one run). Process runs
 * each attempt in a forked, resource-limited worker, so a segfault,
 * hard hang or OOM also costs one run instead of the sweep.
 */
enum class IsolateMode { Off, Process };

/** Shared bench parameters, resolved from the environment. */
struct BenchParams {
    int width = 608;   ///< EVRSIM_FULL=1 -> 1196 (Table II)
    int height = 384;  ///< EVRSIM_FULL=1 -> 768
    int frames = 30;   ///< EVRSIM_FULL=1 -> 60 (paper methodology)
    /** Unmeasured warm-up frames rendered first. The paper's techniques
     *  need one completed frame of FVP/signature state before they are
     *  effective; measuring from a cold start would bias every
     *  comparison by the first frame's mandatory full render. */
    int warmup = 2;
    bool use_cache = true; ///< EVRSIM_NO_CACHE=1 disables
    std::string cache_dir; ///< EVRSIM_CACHE_DIR overrides
    /** Scheduler width for runAll(); 0 = hardware_concurrency,
     *  1 = serial (EVRSIM_JOBS). */
    int jobs = 0;
    /** Tile-level parallelism inside each simulation: tiles of a frame
     *  render concurrently with their memory logs replayed in tile
     *  order, byte-identical to the serial path (EVRSIM_TILE_JOBS;
     *  1 = serial tiles). Tile jobs share the sweep scheduler's pool
     *  when it has workers, otherwise each simulator owns a pool. */
    int tile_jobs = 1;
    /** Per-job wall-clock budget in milliseconds, enforced between
     *  frames (cooperative watchdog); 0 disables
     *  (EVRSIM_JOB_TIMEOUT_MS). Under IsolateMode::Process the same
     *  budget, plus a grace period, is also the hard SIGKILL deadline
     *  the supervisor enforces on the worker process. */
    int job_timeout_ms = 0;
    /** Job failure domain (EVRSIM_ISOLATE: off | process). */
    IsolateMode isolate = IsolateMode::Off;
    /** Per-worker RLIMIT_AS budget in MiB under IsolateMode::Process
     *  (EVRSIM_JOB_MEM_MB); 0 = unlimited. */
    int job_mem_mb = 0;
    /** EVRSIM_RESUME=1: replay <cache_dir>/sweep.journal on startup so
     *  an interrupted sweep re-executes only unfinished jobs. */
    bool resume = false;
    /** Newest quarantined `.corrupt` files kept per cache entry before
     *  older ones are evicted (EVRSIM_CORRUPT_KEEP). */
    int corrupt_keep = 3;
    /** Ingestion validation + invariant auditing applied to every run
     *  whose SimConfig does not carry its own (EVRSIM_VALIDATE /
     *  EVRSIM_VALIDATE_SAMPLE). */
    ValidationConfig validation;
    /** Console verbosity (EVRSIM_LOG: quiet | normal | verbose). */
    LogLevel log_level = LogLevel::Normal;
    /** Directory receiving metrics.json/metrics.prom after a sweep
     *  (EVRSIM_METRICS: unset or 0 = disabled, 1 = the cache dir,
     *  anything else = that directory). Empty = metrics disabled, so
     *  the default path records nothing. */
    std::string metrics_dir;
    /** Live sweep telemetry cadence in milliseconds (EVRSIM_HEARTBEAT_MS;
     *  0 disables the heartbeat thread entirely). Each tick prints a
     *  status line and appends a record to heartbeat.jsonl next to the
     *  journal (or in metrics_dir when not caching). */
    int heartbeat_ms = 2000;
    /** Emit the sweep throughput summary as a summary.json artifact
     *  (EVRSIM_SUMMARY: 0 = off, 1/unset = default placement next to
     *  the journal, anything else = that path). */
    bool write_summary = true;
    std::string summary_path; ///< empty = <cache_dir>/summary.json

    /** GpuConfig for these parameters (Table II otherwise). */
    GpuConfig gpuConfig() const;

    /** Worker count runAll() will actually use (>= 1). */
    int resolvedJobs() const;
};

/**
 * Resolve bench parameters from the environment:
 *   EVRSIM_FULL=1           paper-scale run (1196x768, 60 frames)
 *   EVRSIM_FRAMES=n         override the frame count
 *   EVRSIM_NO_CACHE=1       ignore and do not write the result cache
 *   EVRSIM_CACHE_DIR        cache location (default: <repo>/.bench_cache)
 *   EVRSIM_JOBS=n           scheduler workers (default:
 *                           hardware_concurrency; 1 = serial path)
 *   EVRSIM_TILE_JOBS=n      tile-parallel rasterization inside each
 *                           simulation (default 1 = serial tiles;
 *                           results are byte-identical either way)
 *   EVRSIM_JOB_TIMEOUT_MS=n per-job wall-clock watchdog (0 = off);
 *                           doubles as the hard worker deadline under
 *                           process isolation
 *   EVRSIM_ISOLATE=mode     off | process job failure domain
 *   EVRSIM_JOB_MEM_MB=n     per-worker RLIMIT_AS in MiB (0 = unlimited)
 *   EVRSIM_RESUME=1         resume an interrupted sweep from the journal
 *   EVRSIM_CORRUPT_KEEP=n   quarantined .corrupt files kept per entry
 *   EVRSIM_VALIDATE=mode    off | permissive | strict (see validate.hpp)
 *   EVRSIM_VALIDATE_SAMPLE=r image-identity audit tile sample rate
 *   EVRSIM_LOG=level        quiet | normal | verbose console verbosity
 *   EVRSIM_METRICS=where    0 = off, 1 = cache dir, else a directory:
 *                           write metrics.json/metrics.prom per sweep
 *   EVRSIM_HEARTBEAT_MS=n   live telemetry cadence (0 = off)
 *   EVRSIM_SUMMARY=where    0 = off, 1 = next to the journal, else a
 *                           path: write summary.json per sweep
 *
 * Numeric knobs are validated strictly: a value that is not entirely a
 * number in the accepted range is InvalidArgument naming the variable,
 * never silently parsed as 0.
 */
Result<BenchParams> benchParamsFromEnvChecked();

/** benchParamsFromEnvChecked() that exits(1) on invalid knobs. */
BenchParams benchParamsFromEnv();

/**
 * Record one simulated run into the metrics registry: runs/frames/
 * energy counters plus every FrameStats field, labeled by (workload,
 * config), and the wall-time histogram. The experiment runner calls
 * this for its own simulations; fleet shards call it directly so the
 * control plane can aggregate the same series fleet-wide.
 */
void recordRunMetrics(const std::string &alias, const std::string &config,
                      const RunResult &result, double wall_ms);

/** One declared simulation of a batch: (workload alias, configuration). */
struct RunRequest {
    std::string alias;
    SimConfig config;
};

/** One permanently failed run of a batch (after bounded retries). */
struct RunFailure {
    std::size_t index = 0; ///< position in the request vector
    std::string alias;
    std::string config;
    Status status;    ///< why the last attempt failed
    int attempts = 1; ///< simulation attempts made (1 + retries)
    /** Every attempt was a hard worker death (crash, deadline kill,
     *  OOM): the job is crash-quarantined and skipped, not retried. */
    bool quarantined = false;
};

/**
 * Outcome of runAllChecked(): per-request results plus the runs that
 * failed permanently. Failed slots in results are default-constructed;
 * consumers must treat a request listed in failures as absent.
 */
struct BatchOutcome {
    std::vector<RunResult> results;   ///< request order
    std::vector<RunFailure> failures; ///< ascending by index
    bool ok() const { return failures.empty(); }
};

/**
 * Per-runner accounting of how a sweep's runs were satisfied, for the
 * bench throughput summaries.
 */
struct SweepStats {
    std::uint64_t requested = 0;  ///< runs asked of run()/runAll()
    std::uint64_t simulated = 0;  ///< cold runs actually simulated
    std::uint64_t disk_hits = 0;  ///< served from the on-disk cache
    std::uint64_t memo_hits = 0;  ///< served from the in-process memo
    std::uint64_t frames_simulated = 0; ///< measured frames, cold runs only
    double sim_wall_ms = 0.0;   ///< summed per-simulation wall-clock
    double batch_wall_ms = 0.0; ///< summed runAll() wall-clock
    // Fault accounting:
    std::uint64_t quarantined = 0; ///< corrupt cache entries set aside
    std::uint64_t retries = 0;     ///< extra attempts after transient failures
    std::uint64_t failed = 0;      ///< runs that failed permanently
    std::uint64_t crash_quarantined = 0; ///< jobs whose workers died every attempt
    std::uint64_t corrupt_evicted = 0;   ///< old .corrupt files evicted by the cap
    std::uint64_t resumed = 0; ///< outcomes replayed from the sweep journal
    /** Journal records superseded by a later terminal record for the
     *  same key during replay (resume-of-a-resume; last wins). */
    std::uint64_t resume_duplicates = 0;
    /** Jobs shed un-run because a cooperative shutdown (SIGINT/SIGTERM)
     *  arrived before they started. */
    std::uint64_t cancelled = 0;
    // Validation / degradation accounting (freshly simulated runs only):
    std::uint64_t degraded_tiles = 0;     ///< tiles repaired or disabled
    std::uint64_t validate_violations = 0; ///< invariant audit failures
};

/** One supervised worker attempt, as seen by the runner. */
struct WorkerAttempt {
    Status status; ///< Ok => result is valid
    RunResult result;
    bool worker_died = false; ///< hard death (counts toward quarantine)
};

/**
 * Launches one isolated attempt of (alias, config) whose cache-entry
 * key is @p key, blocking until the worker terminates. The bench
 * context installs a fork/exec launcher (driver/supervisor.hpp);
 * tests install fakes to script worker behaviour deterministically.
 */
using WorkerLauncher = std::function<WorkerAttempt(
    const std::string & /*alias*/, const SimConfig & /*config*/,
    const std::string & /*key*/)>;

/** Simulates and caches runs. */
class ExperimentRunner
{
  public:
    /**
     * @param factory creates workloads by alias
     * @param params  bench parameters (cache policy, dimensions, jobs)
     *
     * Fault injection (EVRSIM_FAULT) is resolved from the environment;
     * the three-argument overload takes an explicit plan for tests.
     */
    ExperimentRunner(WorkloadFactory factory, const BenchParams &params);
    ExperimentRunner(WorkloadFactory factory, const BenchParams &params,
                     const FaultPlan &faults);

    /**
     * Return the result of simulating @p alias under @p config for the
     * bench frame count, using the memo and the on-disk cache when
     * permitted. Thread-safe; concurrent calls for the same triple
     * deduplicate onto a single simulation. Exits(1) on permanent
     * failure — use tryRun() where a failure must be survivable.
     */
    RunResult run(const std::string &alias, const SimConfig &config);

    /** run() that propagates permanent failures instead of exiting. */
    Result<RunResult> tryRun(const std::string &alias,
                             const SimConfig &config);

    /**
     * Execute a batch of runs on a JobPool of resolvedJobs() workers
     * (inline when 1) and return the results in request order.
     * Duplicate requests are simulated once. Results are bit-identical
     * to issuing the same run() calls serially.
     *
     * Fault tolerance: a corrupt cache entry is quarantined to
     * `<entry>.corrupt` and re-simulated; a transiently failing run
     * (ErrorCode::Unavailable) is retried up to kJobMaxAttempts with
     * exponential backoff; a permanently failing run costs only its own
     * slot. Exits(1) if any run failed — use runAllChecked() to get
     * partial results plus the failure list instead.
     */
    std::vector<RunResult> runAll(const std::vector<RunRequest> &requests);

    /** runAll() that reports failures instead of exiting. */
    BatchOutcome runAllChecked(const std::vector<RunRequest> &requests);

    /**
     * Force a fresh simulation (never touches the cache or memo, never
     * retries). Exits(1) on failure.
     */
    RunResult simulate(const std::string &alias, const SimConfig &config);

    /** One simulation attempt, failures propagated (no retry). */
    Result<RunResult> trySimulate(const std::string &alias,
                                  const SimConfig &config);

    const BenchParams &params() const { return params_; }

    /**
     * Install the launcher used for attempts under
     * IsolateMode::Process. Without one, isolation degrades to the
     * in-process path (with a warning) — the runner itself never
     * forks; the embedding binary owns re-exec.
     */
    void setWorkerLauncher(WorkerLauncher launcher);

    /**
     * Stable job key of (alias, config): the cache-entry filename,
     * which already encodes workload, config, dimensions, frames,
     * validation and schema version. Keys address jobs across the
     * sweep journal and the worker protocol.
     */
    std::string jobKey(const std::string &alias,
                       const SimConfig &config) const;

    /** Snapshot of the sweep accounting so far. */
    SweepStats sweepStats() const;

    /**
     * Export the metrics registry (per-run counters recorded while
     * simulating, plus sweep-level `evrsim_sweep_*` gauges refreshed
     * from sweepStats() at call time) as metrics.json and metrics.prom
     * in params().metrics_dir. No-op (Ok) when metrics are disabled.
     */
    Status writeMetricsArtifacts();

    /** Where the heartbeat file goes; empty = no file (stderr only). */
    std::string heartbeatPath() const;

    /** Injection state (tests assert on draw/failure counts). */
    const FaultInjector &faultInjector() const { return fault_; }

  private:
    /** Terminal state of one requested run. */
    struct RunOutcome {
        RunResult result;
        Status status;    ///< Ok, or why the run permanently failed
        int attempts = 0; ///< simulation attempts (0 = served from cache)
        bool quarantined = false; ///< all attempts were hard worker deaths
    };

    /** A memoized run: filled once, then shared by every requester. */
    struct MemoEntry {
        bool done = false;
        RunOutcome outcome;
    };

    std::string cachePath(const std::string &alias,
                          const SimConfig &config) const;

    /** Validation actually applied to a run: the SimConfig's own when it
     *  carries one, else the bench-wide EVRSIM_VALIDATE setting. */
    ValidationConfig effectiveValidation(const SimConfig &config) const;

    /** run() body: memo lookup / in-flight wait / compute-and-publish. */
    RunOutcome runMemoized(const std::string &alias,
                           const SimConfig &config);

    /** Disk-cache lookup, else simulate with bounded retry. */
    RunOutcome computeUncached(const std::string &alias,
                               const SimConfig &config,
                               const std::string &path, bool &from_disk);

    /** One simulation attempt: in-process, or via the worker launcher
     *  under IsolateMode::Process. */
    Result<RunResult> attemptOnce(const std::string &alias,
                                  const SimConfig &config,
                                  const std::string &path,
                                  bool &worker_died);

    /**
     * Load + validate one cache entry: NotFound on a plain miss,
     * DataLoss on parse/schema/CRC/shape damage (caller quarantines).
     */
    Result<RunResult> loadCacheEntry(const std::string &path);

    /** Move a damaged entry aside (`<stem>.<seq>.corrupt`) so it is
     *  never reused, evicting all but the newest corrupt_keep copies. */
    void quarantine(const std::string &path, const Status &why);

    /** Atomically publish @p r at @p path (failure is only a warn). */
    void storeCacheEntry(const std::string &path, const RunResult &r);

    WorkloadFactory factory_;
    BenchParams params_;
    FaultInjector fault_;
    WorkerLauncher launcher_;
    SweepJournal journal_;

    /** Sweep scheduler pool while runAllChecked is active (else null).
     *  Tile jobs (EVRSIM_TILE_JOBS) share it so one set of workers
     *  serves both levels; JobPool::runBatch makes the nesting safe. */
    JobPool *active_pool_ = nullptr;

    mutable std::mutex mu_;
    std::condition_variable memo_done_;
    std::map<std::string, std::shared_ptr<MemoEntry>> memo_;
    SweepStats stats_;
    bool warned_no_launcher_ = false;
};

/**
 * Version tag mixed into cache filenames and embedded in each entry's
 * envelope; bump when simulation semantics or the persisted RunResult
 * schema change so stale results are never reused. v2: added per-run
 * sim_wall_ms. v3: entries wrapped in a {schema, payload_crc32,
 * payload} envelope so damage is detected by checksum, not by luck.
 * v4: validation/degradation counters joined the persisted stats.
 */
constexpr int kResultCacheVersion = 4;

/** Max simulation attempts per run when failures are transient. */
constexpr int kJobMaxAttempts = 3;

/** Backoff before the first retry, doubling per retry (milliseconds). */
constexpr int kRetryBaseMs = 2;

} // namespace evrsim

#endif // EVRSIM_DRIVER_EXPERIMENT_HPP
