/**
 * @file
 * Experiment runner: simulate (workload, config, frames) triples with an
 * on-disk JSON result cache, plus the environment knobs the bench
 * binaries share.
 *
 * The per-figure benches overlap heavily in the simulations they need
 * (Figure 6 and Figure 7 both need baseline+EVR runs of all 20
 * workloads; Figures 9-11 share the RE runs). Two layers of sharing keep
 * the full sweep at "each triple simulates exactly once":
 *
 *  - an on-disk JSON cache shared *across* bench processes, written
 *    atomically (tmp file + rename) so an interrupted or concurrent run
 *    can never leave a truncated entry behind;
 *  - an in-memory memo with in-flight deduplication shared *within* a
 *    process, so a triple requested by several figures (or by several
 *    scheduler workers at once) simulates exactly once per process.
 *
 * runAll() executes a declared batch of runs on a JobPool
 * (EVRSIM_JOBS workers, default hardware_concurrency); every simulation
 * owns its GpuSimulator/MemorySystem/Scene, so parallel results are
 * bit-identical to the EVRSIM_JOBS=1 serial path.
 */
#ifndef EVRSIM_DRIVER_EXPERIMENT_HPP
#define EVRSIM_DRIVER_EXPERIMENT_HPP

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "driver/run_result.hpp"
#include "driver/sim_config.hpp"
#include "driver/workload.hpp"

namespace evrsim {

/** Shared bench parameters, resolved from the environment. */
struct BenchParams {
    int width = 608;   ///< EVRSIM_FULL=1 -> 1196 (Table II)
    int height = 384;  ///< EVRSIM_FULL=1 -> 768
    int frames = 30;   ///< EVRSIM_FULL=1 -> 60 (paper methodology)
    /** Unmeasured warm-up frames rendered first. The paper's techniques
     *  need one completed frame of FVP/signature state before they are
     *  effective; measuring from a cold start would bias every
     *  comparison by the first frame's mandatory full render. */
    int warmup = 2;
    bool use_cache = true; ///< EVRSIM_NO_CACHE=1 disables
    std::string cache_dir; ///< EVRSIM_CACHE_DIR overrides
    /** Scheduler width for runAll(); 0 = hardware_concurrency,
     *  1 = serial (EVRSIM_JOBS). */
    int jobs = 0;

    /** GpuConfig for these parameters (Table II otherwise). */
    GpuConfig gpuConfig() const;

    /** Worker count runAll() will actually use (>= 1). */
    int resolvedJobs() const;
};

/**
 * Resolve bench parameters from the environment:
 *   EVRSIM_FULL=1      paper-scale run (1196x768, 60 frames)
 *   EVRSIM_FRAMES=n    override the frame count
 *   EVRSIM_NO_CACHE=1  ignore and do not write the result cache
 *   EVRSIM_CACHE_DIR   cache location (default: <repo>/.bench_cache)
 *   EVRSIM_JOBS=n      scheduler workers (default: hardware_concurrency;
 *                      1 restores the serial path)
 */
BenchParams benchParamsFromEnv();

/** One declared simulation of a batch: (workload alias, configuration). */
struct RunRequest {
    std::string alias;
    SimConfig config;
};

/**
 * Per-runner accounting of how a sweep's runs were satisfied, for the
 * bench throughput summaries.
 */
struct SweepStats {
    std::uint64_t requested = 0;  ///< runs asked of run()/runAll()
    std::uint64_t simulated = 0;  ///< cold runs actually simulated
    std::uint64_t disk_hits = 0;  ///< served from the on-disk cache
    std::uint64_t memo_hits = 0;  ///< served from the in-process memo
    std::uint64_t frames_simulated = 0; ///< measured frames, cold runs only
    double sim_wall_ms = 0.0;   ///< summed per-simulation wall-clock
    double batch_wall_ms = 0.0; ///< summed runAll() wall-clock
};

/** Simulates and caches runs. */
class ExperimentRunner
{
  public:
    /**
     * @param factory creates workloads by alias
     * @param params  bench parameters (cache policy, dimensions, jobs)
     */
    ExperimentRunner(WorkloadFactory factory, const BenchParams &params);

    /**
     * Return the result of simulating @p alias under @p config for the
     * bench frame count, using the memo and the on-disk cache when
     * permitted. Thread-safe; concurrent calls for the same triple
     * deduplicate onto a single simulation.
     */
    RunResult run(const std::string &alias, const SimConfig &config);

    /**
     * Execute a batch of runs on a JobPool of resolvedJobs() workers
     * (inline when 1) and return the results in request order.
     * Duplicate requests are simulated once. Results are bit-identical
     * to issuing the same run() calls serially.
     */
    std::vector<RunResult> runAll(const std::vector<RunRequest> &requests);

    /** Force a fresh simulation (never touches the cache or memo). */
    RunResult simulate(const std::string &alias, const SimConfig &config);

    const BenchParams &params() const { return params_; }

    /** Snapshot of the sweep accounting so far. */
    SweepStats sweepStats() const;

  private:
    /** A memoized run: filled once, then shared by every requester. */
    struct MemoEntry {
        bool done = false;
        RunResult result;
    };

    std::string cachePath(const std::string &alias,
                          const SimConfig &config) const;

    /** run() body: memo lookup / in-flight wait / compute-and-publish. */
    RunResult runMemoized(const std::string &alias, const SimConfig &config);

    /** Disk-cache lookup, else simulate and write-back atomically. */
    RunResult computeUncached(const std::string &alias,
                              const SimConfig &config,
                              const std::string &path, bool &from_disk);

    WorkloadFactory factory_;
    BenchParams params_;

    mutable std::mutex mu_;
    std::condition_variable memo_done_;
    std::map<std::string, std::shared_ptr<MemoEntry>> memo_;
    SweepStats stats_;
};

/**
 * Version tag mixed into cache filenames; bump when simulation semantics
 * or the persisted RunResult schema change so stale results are never
 * reused. v2: added per-run sim_wall_ms.
 */
constexpr int kResultCacheVersion = 2;

} // namespace evrsim

#endif // EVRSIM_DRIVER_EXPERIMENT_HPP
