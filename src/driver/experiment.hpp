/**
 * @file
 * Experiment runner: simulate (workload, config, frames) triples with an
 * on-disk JSON result cache, plus the environment knobs the bench
 * binaries share.
 *
 * The per-figure benches overlap heavily in the simulations they need
 * (Figure 6 and Figure 7 both need baseline+EVR runs of all 20
 * workloads; Figures 9-11 share the RE runs). The cache lets
 * the full bench sweep simulate each triple exactly once.
 */
#ifndef EVRSIM_DRIVER_EXPERIMENT_HPP
#define EVRSIM_DRIVER_EXPERIMENT_HPP

#include <string>

#include "driver/run_result.hpp"
#include "driver/sim_config.hpp"
#include "driver/workload.hpp"

namespace evrsim {

/** Shared bench parameters, resolved from the environment. */
struct BenchParams {
    int width = 608;   ///< EVRSIM_FULL=1 -> 1196 (Table II)
    int height = 384;  ///< EVRSIM_FULL=1 -> 768
    int frames = 30;   ///< EVRSIM_FULL=1 -> 60 (paper methodology)
    /** Unmeasured warm-up frames rendered first. The paper's techniques
     *  need one completed frame of FVP/signature state before they are
     *  effective; measuring from a cold start would bias every
     *  comparison by the first frame's mandatory full render. */
    int warmup = 2;
    bool use_cache = true; ///< EVRSIM_NO_CACHE=1 disables
    std::string cache_dir; ///< EVRSIM_CACHE_DIR overrides

    /** GpuConfig for these parameters (Table II otherwise). */
    GpuConfig gpuConfig() const;
};

/**
 * Resolve bench parameters from the environment:
 *   EVRSIM_FULL=1      paper-scale run (1196x768, 60 frames)
 *   EVRSIM_FRAMES=n    override the frame count
 *   EVRSIM_NO_CACHE=1  ignore and do not write the result cache
 *   EVRSIM_CACHE_DIR   cache location (default: <repo>/.bench_cache)
 */
BenchParams benchParamsFromEnv();

/** Simulates and caches runs. */
class ExperimentRunner
{
  public:
    /**
     * @param factory creates workloads by alias
     * @param params  bench parameters (cache policy, dimensions)
     */
    ExperimentRunner(WorkloadFactory factory, const BenchParams &params);

    /**
     * Return the result of simulating @p alias under @p config for the
     * bench frame count, using the cache when permitted.
     */
    RunResult run(const std::string &alias, const SimConfig &config);

    /** Force a fresh simulation (never touches the cache). */
    RunResult simulate(const std::string &alias, const SimConfig &config);

    const BenchParams &params() const { return params_; }

  private:
    std::string cachePath(const std::string &alias,
                          const SimConfig &config) const;

    WorkloadFactory factory_;
    BenchParams params_;
};

/**
 * Version tag mixed into cache filenames; bump when simulation semantics
 * change so stale results are never reused.
 */
constexpr int kResultCacheVersion = 1;

} // namespace evrsim

#endif // EVRSIM_DRIVER_EXPERIMENT_HPP
