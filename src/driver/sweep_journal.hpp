/**
 * @file
 * Write-ahead sweep journal: crash-resumable progress for runAll().
 *
 * A paper-scale sweep is hours of accumulated simulation; a SIGKILL or
 * power loss minutes before the end used to cost everything the result
 * cache had not yet absorbed (and with EVRSIM_NO_CACHE, everything).
 * The journal makes sweep progress itself durable: the runner appends
 * one fsync'd record when a job starts and one when it reaches a
 * terminal state (finished with its full RunResult, failed, or
 * crash-quarantined). EVRSIM_RESUME=1 replays the journal on startup
 * and pre-populates the scheduler's memo, so a resumed sweep
 * re-executes only the jobs that were in flight or not yet started —
 * and, because finish records embed the result document, resume works
 * even when the per-entry cache files are gone.
 *
 * Records are single-line CRC32 envelopes (driver/envelope.hpp) in an
 * append-only file, so a record torn by the crash itself is detected
 * and dropped instead of poisoning the replay. The journal is shared
 * by concurrent bench binaries the same way the cache is: appends are
 * single write(2) calls on an O_APPEND descriptor, and keys are the
 * cache-entry filenames, which already encode (workload, config,
 * dimensions, frames, validation, schema version).
 */
#ifndef EVRSIM_DRIVER_SWEEP_JOURNAL_HPP
#define EVRSIM_DRIVER_SWEEP_JOURNAL_HPP

#include <map>
#include <mutex>
#include <string>

#include "common/status.hpp"
#include "driver/run_result.hpp"

namespace evrsim {

/**
 * Journal schema version, embedded in every record's envelope; bump
 * when the record format changes so stale journals are skipped, not
 * misread.
 */
constexpr int kSweepJournalVersion = 1;

/** Append-side and replay-side of the sweep journal. */
class SweepJournal
{
  public:
    /** One replayed terminal outcome. */
    struct ReplayedOutcome {
        enum class Kind { Finished, Failed, Quarantined };
        Kind kind = Kind::Finished;
        RunResult result; ///< valid when kind == Finished
        Status status;    ///< valid otherwise
        int attempts = 0;
    };

    /** Everything a replay learned from the journal. */
    struct Replay {
        /** Last terminal outcome per job key (cache-entry filename). */
        std::map<std::string, ReplayedOutcome> outcomes;
        std::size_t records = 0;   ///< well-formed records read
        std::size_t damaged = 0;   ///< torn/corrupt lines dropped
        std::size_t in_flight = 0; ///< started jobs with no terminal record
        /** Terminal records that superseded an earlier terminal record
         *  for the same key. A resume-of-a-resume appends a second
         *  finish record per re-run job, so duplicates are expected
         *  there — last record wins, and the count surfaces in the
         *  sweep stats rather than silently inflating the journal. */
        std::size_t duplicates = 0;
    };

    SweepJournal() = default;
    ~SweepJournal();

    SweepJournal(const SweepJournal &) = delete;
    SweepJournal &operator=(const SweepJournal &) = delete;

    /**
     * Open @p path for appending (creating it, and fsyncing the
     * directory entry when created). Idempotent per instance.
     */
    Status open(const std::string &path);

    bool isOpen() const { return fd_ >= 0; }

    /**
     * Read a journal and fold it into per-key terminal outcomes
     * (last record wins). A missing file is an empty Replay — resuming
     * a sweep that never started is a fresh sweep. Damaged lines
     * (typically the record torn by the crash being resumed from) are
     * counted and dropped.
     */
    static Result<Replay> replay(const std::string &path);

    /** Append one record; each is fsync'd before returning. */
    void recordStart(const std::string &key);
    void recordFinish(const std::string &key, const RunResult &result,
                      int attempts);
    void recordFail(const std::string &key, const Status &why,
                    int attempts, bool quarantined);

  private:
    void append(Json payload);

    int fd_ = -1;
    std::string path_;
    std::mutex mu_;
};

} // namespace evrsim

#endif // EVRSIM_DRIVER_SWEEP_JOURNAL_HPP
