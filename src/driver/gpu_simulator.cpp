/**
 * @file
 * GpuSimulator implementation.
 */
#include "driver/gpu_simulator.hpp"

#include "common/log.hpp"
#include "common/trace.hpp"
#include "scene/scene_validate.hpp"

namespace evrsim {

GpuSimulator::GpuSimulator(const SimConfig &config,
                           const EnergyParams &energy_params,
                           const TimingParams &timing_params)
    : config_(config),
      mem_(config.gpu.mem),
      shader_(mem_),
      timing_(config_.gpu, timing_params),
      energy_(energy_params),
      geometry_(config_.gpu, mem_),
      raster_(config_.gpu, mem_, shader_, timing_),
      fb_(config.gpu.screen_width, config.gpu.screen_height),
      prev_fb_(config.gpu.screen_width, config.gpu.screen_height)
{
    config_.validate();
    if (config_.re)
        re_ = std::make_unique<RenderingElimination>(config_.gpu.tileCount());
    if (config_.evr_predict) {
        EvrConfig evr_cfg;
        evr_cfg.reorder = config_.evr_reorder;
        evr_ = std::make_unique<EarlyVisibilityResolution>(
            config_.gpu.tileCount(), config_.gpu.tile_size, evr_cfg);
    }
    if (config_.validation.enabled()) {
        auditor_ = std::make_unique<InvariantAuditor>(config_.validation,
                                                      config_.gpu);
        auditor_->attach(re_.get(), evr_.get());
        // Depth-preloading configurations resolve equal-depth fragments
        // differently from a submission-order render, so pixel identity
        // against the reference is not an invariant for them.
        auditor_->setIdentityEnabled(!config_.oracle_z &&
                                     !config_.z_prepass);
    }
}

void
GpuSimulator::setTileExecution(JobPool *pool, int tile_jobs)
{
    if (tile_jobs <= 1) {
        raster_.setTileExecution(nullptr, 1);
        owned_tile_pool_.reset();
        return;
    }
    if (pool == nullptr || pool->threadCount() < 2) {
        // No shareable pool (or an inline one): own a worker pool sized
        // to the requested tile parallelism.
        owned_tile_pool_ = std::make_unique<JobPool>(tile_jobs);
        pool = owned_tile_pool_.get();
    }
    raster_.setTileExecution(pool, tile_jobs);
}

void
GpuSimulator::uploadMesh(Mesh &mesh)
{
    if (mesh.buffer_base != 0)
        return; // already resident
    std::uint64_t bytes = mesh.vertices.size() * kVertexBytes;
    EVRSIM_ASSERT(bytes > 0);
    mesh.buffer_base = mem_.addressSpace().allocVertex(bytes);
    // One-time DMA of the vertex data into GPU-visible memory.
    mem_.otherAccess(mesh.buffer_base, static_cast<unsigned>(bytes), true);
}

void
GpuSimulator::registerTexture(Texture &texture)
{
    if (texture.base() != 0)
        return;
    texture.setBase(mem_.addressSpace().allocTexture(texture.byteSize()));
    mem_.otherAccess(texture.base(),
                     static_cast<unsigned>(texture.byteSize()), true);
}

FrameStats
GpuSimulator::renderFrameImpl(const Scene &scene, FrameStats stats)
{
    // Frame + stage spans (simulation altitude): tracing reads state,
    // never writes it, so an enabled tracer cannot perturb results.
    // The geometry span covers binning too: this is a tile-based
    // renderer whose geometry pipeline bins each primitive as it
    // processes it (single interleaved pass), so there is no separate
    // binning phase to delimit.
    TraceSpan frame_span(TraceCat::Frame, "frame");
    frame_span.setValue(frames_rendered_);

    mem_.clearStats();

    pb_.beginFrame(config_.gpu.tileCount(), mem_.addressSpace());
    if (auditor_)
        auditor_->frameStart(
            static_cast<std::uint64_t>(frames_rendered_));

    {
        TraceSpan stage(TraceCat::Stage, "geometry");
        GeometryHooks gh;
        gh.scheduler = evr_.get();
        gh.signature = re_.get();
        gh.store_layers = config_.evr_predict;
        gh.filter_signature = config_.evr_filter_signature;
        geometry_.run(scene, pb_, gh, stats);
        stats.geometry_cycles = timing_.geometryCycles(stats);
    }

    if (auditor_) {
        TraceSpan stage(TraceCat::Stage, "binning-audit");
        auditor_->checkBinning(pb_, stats);
    }

    // Snapshot the display before this frame touches it: the raster
    // pipeline compares freshly-rendered tiles against it to produce the
    // ground-truth "equal tiles" statistic (Figure 9's oracle).
    prev_fb_ = fb_;

    {
        TraceSpan stage(TraceCat::Stage, "raster");
        RasterHooks rh;
        rh.signature = re_.get();
        rh.tracker = evr_.get();
        rh.auditor = auditor_.get();
        rh.oracle_z = config_.oracle_z;
        rh.z_prepass = config_.z_prepass;
        raster_.run(scene, pb_, fb_,
                    frames_rendered_ > 0 ? &prev_fb_ : nullptr, rh,
                    stats);
    }

    if (re_) {
        TraceSpan stage(TraceCat::Stage, "re-frame-end");
        re_->frameEnd();
    }

    stats.mem = mem_.stats();
    totals_.accumulate(stats);
    ++frames_rendered_;
    return stats;
}

Result<FrameStats>
GpuSimulator::tryRenderFrame(const Scene &scene)
{
    if (!config_.validation.enabled())
        return renderFrameImpl(scene, FrameStats{});

    FrameStats seed;
    const Scene *to_render = &scene;
    Scene sanitized;

    SceneAuditReport report = auditScene(scene);
    if (!report.ok()) {
        if (config_.validation.strict())
            return report.toStatus();
        seed.validate_scene_issues += report.issues.size();
        // Permissive: render the deterministically-sanitized stream
        // (commands keep their submission ids — see sanitizeScene).
        sanitized = scene;
        seed.validate_commands_dropped +=
            sanitizeScene(sanitized, report);
        to_render = &sanitized;
    }

    FrameStats stats = renderFrameImpl(*to_render, seed);
    if (config_.validation.strict() && auditor_ && !auditor_->frameClean())
        return auditor_->frameStatus();
    return stats;
}

FrameStats
GpuSimulator::renderFrame(const Scene &scene)
{
    Result<FrameStats> r = tryRenderFrame(scene);
    if (!r.ok())
        fatal("renderFrame: %s", r.status().message().c_str());
    return r.value();
}

EnergyBreakdown
GpuSimulator::energyOf(const FrameStats &stats) const
{
    return energy_.compute(toEnergyEvents(stats, config_));
}

EnergyEvents
toEnergyEvents(const FrameStats &stats, const SimConfig &config)
{
    EnergyEvents e;
    e.cycles = stats.totalCycles();
    e.mem = stats.mem;

    e.vertex_shader_instrs = stats.vertex_shader_instrs;
    e.fragment_shader_instrs = stats.fragment_shader_instrs;
    e.raster_quads = stats.raster_quads;
    e.depth_tests = stats.early_z_tests + stats.late_z_tests;
    e.blend_ops = stats.blend_ops;
    e.color_buffer_accesses = stats.color_buffer_accesses;
    e.depth_buffer_accesses = stats.depth_buffer_accesses;

    // Each signature combine reads and writes the Signature Buffer; each
    // skip decision reads the two stored signatures.
    e.signature_buffer_accesses =
        2 * stats.signature_updates + 2 * stats.signature_compares;
    e.signature_bytes_hashed =
        stats.signature_bytes_hashed + stats.signature_shift_bytes;

    e.lgt_accesses = stats.lgt_accesses;
    e.fvp_table_accesses = stats.fvp_table_accesses;
    e.layer_buffer_accesses = stats.layer_buffer_accesses;
    e.layer_param_bytes = stats.layer_param_bytes;

    e.re_hardware_present = config.re;
    e.evr_hardware_present = config.evr_predict;
    return e;
}

} // namespace evrsim
