/**
 * @file
 * Experiment runner implementation.
 */
#include "driver/experiment.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/atomic_file.hpp"
#include "common/crash_handler.hpp"
#include "common/env.hpp"
#include "common/log.hpp"
#include "driver/envelope.hpp"
#include "driver/job_pool.hpp"
#include "scene/scene_fuzzer.hpp"

namespace evrsim {

namespace {

double
elapsedMs(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - since)
        .count();
}

/** Name of the write-ahead sweep journal inside the cache directory. */
constexpr const char *kSweepJournalName = "sweep.journal";

/** Clears the calling thread's crash context when a run ends. */
struct CrashContextGuard {
    ~CrashContextGuard() { crashContextClear(); }
};

} // namespace

GpuConfig
BenchParams::gpuConfig() const
{
    GpuConfig gpu;
    gpu.screen_width = width;
    gpu.screen_height = height;
    return gpu;
}

int
BenchParams::resolvedJobs() const
{
    return jobs > 0 ? jobs : JobPool::defaultThreads();
}

Result<BenchParams>
benchParamsFromEnvChecked()
{
    BenchParams p;
    if (const char *full = std::getenv("EVRSIM_FULL");
        full && full[0] == '1') {
        p.width = 1196;
        p.height = 768;
        p.frames = 60;
    }

    // Strictly validated numeric knobs: name, range, destination.
    long long v = 0;
    bool present = false;
    if (Status s = readIntKnob("EVRSIM_WARMUP", 0, 1000000, v, present);
        !s.ok())
        return s;
    if (present)
        p.warmup = static_cast<int>(v);
    if (Status s = readIntKnob("EVRSIM_FRAMES", 1, 1000000, v, present);
        !s.ok())
        return s;
    if (present)
        p.frames = static_cast<int>(v);
    if (Status s = readIntKnob("EVRSIM_JOBS", 1, 4096, v, present);
        !s.ok())
        return s;
    if (present)
        p.jobs = static_cast<int>(v);
    if (Status s = readIntKnob("EVRSIM_JOB_TIMEOUT_MS", 0, 86400000, v,
                               present);
        !s.ok())
        return s;
    if (present)
        p.job_timeout_ms = static_cast<int>(v);
    if (Status s = readIntKnob("EVRSIM_JOB_MEM_MB", 0, 1048576, v, present);
        !s.ok())
        return s;
    if (present)
        p.job_mem_mb = static_cast<int>(v);
    if (Status s = readIntKnob("EVRSIM_CORRUPT_KEEP", 0, 1000000, v,
                               present);
        !s.ok())
        return s;
    if (present)
        p.corrupt_keep = static_cast<int>(v);

    if (const char *iso = std::getenv("EVRSIM_ISOLATE")) {
        std::string mode = iso;
        if (mode == "off")
            p.isolate = IsolateMode::Off;
        else if (mode == "process")
            p.isolate = IsolateMode::Process;
        else
            return Status::invalidArgument(
                "EVRSIM_ISOLATE must be 'off' or 'process', got '" + mode +
                "'");
    }
    if (const char *res = std::getenv("EVRSIM_RESUME"); res && res[0] == '1')
        p.resume = true;

    Result<ValidationConfig> val = validationFromEnvChecked();
    if (!val.ok())
        return val.status();
    p.validation = val.value();

    if (const char *nc = std::getenv("EVRSIM_NO_CACHE"); nc && nc[0] == '1')
        p.use_cache = false;
    if (const char *dir = std::getenv("EVRSIM_CACHE_DIR"))
        p.cache_dir = dir;
    else
        p.cache_dir = ".bench_cache";
    return p;
}

BenchParams
benchParamsFromEnv()
{
    Result<BenchParams> p = benchParamsFromEnvChecked();
    if (!p.ok())
        fatal("%s", p.status().message().c_str());
    return p.value();
}

ExperimentRunner::ExperimentRunner(WorkloadFactory factory,
                                   const BenchParams &params)
    : ExperimentRunner(std::move(factory), params,
                       FaultInjector::planFromEnv())
{
}

ExperimentRunner::ExperimentRunner(WorkloadFactory factory,
                                   const BenchParams &params,
                                   const FaultPlan &faults)
    : factory_(std::move(factory)), params_(params), fault_(faults)
{
    EVRSIM_ASSERT(factory_ != nullptr);

    // The sweep journal lives alongside the cache; it also engages with
    // EVRSIM_NO_CACHE when a resume is explicitly requested, because the
    // journal (not the cache) is what resume replays.
    if (!params_.use_cache && !params_.resume)
        return;
    std::error_code ec;
    std::filesystem::create_directories(params_.cache_dir, ec);
    std::string jpath =
        (std::filesystem::path(params_.cache_dir) / kSweepJournalName)
            .string();

    if (params_.resume) {
        Result<SweepJournal::Replay> replayed = SweepJournal::replay(jpath);
        if (!replayed.ok()) {
            warn("EVRSIM_RESUME: cannot replay %s (%s); starting fresh",
                 jpath.c_str(), replayed.status().toString().c_str());
        } else {
            const SweepJournal::Replay &rep = replayed.value();
            for (const auto &[key, ro] : rep.outcomes) {
                auto entry = std::make_shared<MemoEntry>();
                entry->done = true;
                entry->outcome.attempts = ro.attempts;
                switch (ro.kind) {
                case SweepJournal::ReplayedOutcome::Kind::Finished:
                    entry->outcome.result = ro.result;
                    break;
                case SweepJournal::ReplayedOutcome::Kind::Quarantined:
                    entry->outcome.quarantined = true;
                    [[fallthrough]];
                case SweepJournal::ReplayedOutcome::Kind::Failed:
                    entry->outcome.status = ro.status;
                    break;
                }
                // Journal keys are cache-entry filenames; the memo keys
                // on the full cache path.
                memo_.emplace(
                    (std::filesystem::path(params_.cache_dir) / key)
                        .string(),
                    std::move(entry));
                ++stats_.resumed;
            }
            if (rep.damaged > 0)
                warn("EVRSIM_RESUME: dropped %zu damaged journal "
                     "record(s) from %s (those jobs re-run)",
                     rep.damaged, jpath.c_str());
            if (rep.in_flight > 0)
                warn("EVRSIM_RESUME: %zu job(s) were in flight at the "
                     "interruption and will re-run",
                     rep.in_flight);
        }
    }

    if (Status s = journal_.open(jpath); !s.ok())
        warn("sweep journal disabled: %s", s.toString().c_str());
}

void
ExperimentRunner::setWorkerLauncher(WorkerLauncher launcher)
{
    std::lock_guard<std::mutex> lock(mu_);
    launcher_ = std::move(launcher);
}

std::string
ExperimentRunner::jobKey(const std::string &alias,
                         const SimConfig &config) const
{
    return std::filesystem::path(cachePath(alias, config))
        .filename()
        .string();
}

std::string
ExperimentRunner::cachePath(const std::string &alias,
                            const SimConfig &config) const
{
    std::ostringstream name;
    name << alias << '-' << config.name << '-' << params_.width << 'x'
         << params_.height << "-t" << config.gpu.tile_size << "-f"
         << params_.frames << "-w" << params_.warmup
         << effectiveValidation(config).cacheTag() << "-v"
         << kResultCacheVersion << ".json";
    return (std::filesystem::path(params_.cache_dir) / name.str()).string();
}

ValidationConfig
ExperimentRunner::effectiveValidation(const SimConfig &config) const
{
    return config.validation.enabled() ? config.validation
                                       : params_.validation;
}

Result<RunResult>
ExperimentRunner::trySimulate(const std::string &alias,
                              const SimConfig &config)
{
    // Injected job fault: reported as transient so the retry policy in
    // computeUncached() engages, exactly like a real I/O hiccup would.
    if (fault_.shouldFail(FaultSite::JobExecute))
        return Status::unavailable("injected job-execute fault (" +
                                   alias + "/" + config.name + ")");

    auto start = std::chrono::steady_clock::now();

    // Cooperative watchdog: a runaway simulation is caught at the next
    // frame boundary (frames are the natural unit of progress; nothing
    // inside a frame blocks, so between-frame checks bound the overrun
    // to one frame's wall-clock).
    auto overDeadline = [&]() {
        return params_.job_timeout_ms > 0 &&
               elapsedMs(start) >
                   static_cast<double>(params_.job_timeout_ms);
    };
    auto deadlineStatus = [&](int frames_done) {
        return Status::deadlineExceeded(
            alias + "/" + config.name + " exceeded EVRSIM_JOB_TIMEOUT_MS=" +
            std::to_string(params_.job_timeout_ms) + " after " +
            std::to_string(frames_done) + " frame(s)");
    };

    SimConfig cfg = config;
    cfg.validation = effectiveValidation(config);
    if (Status s = cfg.checkValid(); !s.ok())
        return s;

    try {
        std::unique_ptr<Workload> workload =
            factory_(alias, params_.width, params_.height);
        if (!workload)
            return Status::notFound("unknown workload alias '" + alias +
                                    "'");

        CrashContextGuard crash_guard;
        crashContextSetRun(alias.c_str(), cfg.name.c_str());

        // Scene-mutate fault site: corrupt the workload's frame copy
        // before it reaches the simulator. The decision is keyed by
        // (alias, absolute frame) only, so every configuration of a
        // workload sees the identical corruption — which is what lets
        // tests compare a corrupted EVR run against a corrupted
        // baseline bit for bit.
        const FaultSpec &mutate = fault_.spec(FaultSite::SceneMutate);
        SceneFuzzer fuzzer(mutate.seed);
        auto frameOf = [&](int absolute) {
            Scene scene = workload->frame(absolute);
            std::uint64_t key =
                mix64(fnv1a64(alias) ^
                      static_cast<std::uint64_t>(absolute));
            if (fault_.shouldFailAt(FaultSite::SceneMutate, key))
                fuzzer.corruptScene(scene, key);
            return scene;
        };
        auto renderChecked = [&](GpuSimulator &sim, int absolute) {
            crashContextSetFrame(absolute);
            Result<FrameStats> fs = sim.tryRenderFrame(frameOf(absolute));
            if (!fs.ok())
                return fs.status().withContext(alias + "/" + cfg.name +
                                               " frame " +
                                               std::to_string(absolute));
            return Status();
        };

        GpuSimulator sim(cfg);
        workload->setup(sim);

        // Warm-up: establish FVP and signature state, then measure.
        for (int f = 0; f < params_.warmup; ++f) {
            if (Status s = renderChecked(sim, f); !s.ok())
                return s;
            if (overDeadline())
                return deadlineStatus(f + 1);
        }
        sim.resetTotals();

        for (int f = 0; f < params_.frames; ++f) {
            if (Status s = renderChecked(sim, params_.warmup + f);
                !s.ok())
                return s;
            if (overDeadline())
                return deadlineStatus(params_.warmup + f + 1);
        }

        RunResult r;
        r.workload = alias;
        r.config = cfg.name;
        r.frames = params_.frames;
        r.width = params_.width;
        r.height = params_.height;
        r.totals = sim.totals();
        r.energy = sim.energyOf(sim.totals());
        r.image_crc = sim.framebuffer().contentCrc();
        r.sim_wall_ms = elapsedMs(start);
        return r;
    } catch (const TransientError &e) {
        return Status::unavailable("workload '" + alias +
                                   "' raised a transient error: " +
                                   e.what());
    } catch (const std::bad_alloc &) {
        // Under process isolation the worker's RLIMIT_AS turns a runaway
        // allocation into bad_alloc (when the allocator throws before
        // the OOM killer acts); transient, like any resource exhaustion.
        return Status::unavailable("workload '" + alias +
                                   "' ran out of memory");
    } catch (const std::exception &e) {
        return Status::internal("workload '" + alias +
                                "' threw: " + e.what());
    } catch (...) {
        return Status::internal("workload '" + alias +
                                "' threw a non-std exception");
    }
}

RunResult
ExperimentRunner::simulate(const std::string &alias, const SimConfig &config)
{
    Result<RunResult> r = trySimulate(alias, config);
    if (!r.ok())
        fatal("%s", r.status().toString().c_str());
    return r.value();
}

Result<RunResult>
ExperimentRunner::loadCacheEntry(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return Status::notFound("no cache entry at " + path);

    std::ostringstream buf;
    buf << in.rdbuf();
    if (!in.good() && !in.eof())
        return Status::dataLoss("read error on " + path);

    if (fault_.shouldFail(FaultSite::CacheRead))
        return Status::dataLoss("injected cache-read fault");

    // v3 envelope: {schema, payload_crc32, payload} (driver/envelope.hpp,
    // shared with the sweep journal and the worker pipe). The schema
    // field guards against a foreign or stale document that happens to
    // land at a current filename; the CRC detects any corruption of the
    // payload bytes (truncation is caught earlier by the parse).
    Result<Json> payload = parseEnvelope(buf.str(), kResultCacheVersion);
    if (!payload.ok())
        return payload.status();
    return RunResult::tryFromJson(payload.value());
}

void
ExperimentRunner::quarantine(const std::string &path, const Status &why)
{
    // Existing quarantined copies of this entry, as (seq, path) pairs
    // parsed from the `<entry>.<seq>.corrupt` naming.
    const std::string base =
        std::filesystem::path(path).filename().string() + ".";
    const std::string suffix = ".corrupt";
    std::error_code ec;
    std::vector<std::pair<long long, std::filesystem::path>> copies;
    for (const auto &e : std::filesystem::directory_iterator(
             std::filesystem::path(path).parent_path(), ec)) {
        std::string name = e.path().filename().string();
        if (name.size() <= base.size() + suffix.size())
            continue;
        if (name.compare(0, base.size(), base) != 0 ||
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) != 0)
            continue;
        std::string mid = name.substr(
            base.size(), name.size() - base.size() - suffix.size());
        if (mid.empty() ||
            mid.find_first_not_of("0123456789") != std::string::npos)
            continue;
        copies.emplace_back(std::stoll(mid), e.path());
    }

    // Destination `<entry>.<seq>.corrupt` with seq = max existing + 1:
    // successive quarantines keep distinct post-mortem evidence, seq
    // order stays the age order even after evictions recycle low
    // numbers, and the extension stays `.corrupt` so tooling that
    // filters on it keeps working.
    long long seq = 0;
    for (const auto &copy : copies)
        seq = std::max(seq, copy.first + 1);
    std::string dest = path + "." + std::to_string(seq) + suffix;

    std::filesystem::rename(path, dest, ec);
    if (ec) {
        // Could not set it aside (permissions, races): remove instead,
        // so the bad entry cannot poison the next sweep either way.
        warn("could not quarantine %s (%s); removing it", path.c_str(),
             ec.message().c_str());
        std::filesystem::remove(path, ec);
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.quarantined;
        return;
    }
    warn("quarantined corrupt cache entry %s -> %s: %s", path.c_str(),
         dest.c_str(), why.toString().c_str());
    copies.emplace_back(seq, dest);

    // Cap the pile: a crash-looping or bit-rotting deployment would
    // otherwise grow one `.corrupt` per damaged read forever. Keep the
    // newest corrupt_keep copies (highest sequence numbers), evict the
    // rest, and account for the eviction in the sweep stats.
    std::uint64_t evicted = 0;
    const std::size_t keep =
        static_cast<std::size_t>(std::max(params_.corrupt_keep, 0));
    if (copies.size() > keep) {
        std::sort(copies.begin(), copies.end(),
                  [](const auto &a, const auto &b) {
                      return a.first > b.first;
                  });
        for (std::size_t i = keep; i < copies.size(); ++i) {
            std::filesystem::remove(copies[i].second, ec);
            if (!ec)
                ++evicted;
        }
    }

    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.quarantined;
    stats_.corrupt_evicted += evicted;
}

void
ExperimentRunner::storeCacheEntry(const std::string &path,
                                  const RunResult &r)
{
    if (fault_.shouldFail(FaultSite::CacheWrite)) {
        warn("injected cache-write fault, not publishing %s",
             path.c_str());
        return;
    }

    std::error_code ec;
    std::filesystem::create_directories(params_.cache_dir, ec);

    // Write-then-fsync-then-rename (common/atomic_file.hpp) so a
    // concurrent bench binary, a kill mid write, or a power loss can
    // never leave a truncated or unsynced entry at the published name.
    // Within one process the memo guarantees a single writer per key.
    std::string text =
        wrapEnvelope(r.toJson(), kResultCacheVersion).dump(1);
    if (Status s = atomicWriteFile(path, text); !s.ok())
        warn("could not publish cache entry %s: %s", path.c_str(),
             s.message().c_str());
}

Result<RunResult>
ExperimentRunner::attemptOnce(const std::string &alias,
                              const SimConfig &config,
                              const std::string &path, bool &worker_died)
{
    worker_died = false;
    if (params_.isolate == IsolateMode::Process) {
        WorkerLauncher launcher;
        {
            std::lock_guard<std::mutex> lock(mu_);
            launcher = launcher_;
            if (!launcher && !warned_no_launcher_) {
                warned_no_launcher_ = true;
                warn("EVRSIM_ISOLATE=process but no worker launcher is "
                     "installed; jobs run in-process");
            }
        }
        if (launcher) {
            WorkerAttempt a =
                launcher(alias, config,
                         std::filesystem::path(path).filename().string());
            worker_died = a.worker_died;
            if (!a.status.ok())
                return a.status;
            return a.result;
        }
    }
    return trySimulate(alias, config);
}

ExperimentRunner::RunOutcome
ExperimentRunner::computeUncached(const std::string &alias,
                                  const SimConfig &config,
                                  const std::string &path, bool &from_disk)
{
    from_disk = false;
    if (params_.use_cache) {
        Result<RunResult> cached = loadCacheEntry(path);
        if (cached.ok()) {
            from_disk = true;
            return {cached.value(), Status(), 0};
        }
        // A plain miss (NotFound) is the normal cold path; anything
        // else means the entry exists but cannot be trusted — set it
        // aside for post-mortem and fall through to re-simulation.
        if (cached.status().code() != ErrorCode::NotFound)
            quarantine(path, cached.status());
    }

    RunOutcome outcome;
    int worker_deaths = 0;
    for (int attempt = 1; attempt <= kJobMaxAttempts; ++attempt) {
        outcome.attempts = attempt;
        bool worker_died = false;
        Result<RunResult> r = attemptOnce(alias, config, path, worker_died);
        if (worker_died)
            ++worker_deaths;
        if (r.ok()) {
            outcome.result = r.value();
            outcome.status = Status();
            if (params_.use_cache)
                storeCacheEntry(path, outcome.result);
            return outcome;
        }
        outcome.status = r.status();
        if (!outcome.status.isTransient() || attempt == kJobMaxAttempts)
            break;
        int backoff_ms = kRetryBaseMs << (attempt - 1);
        warn("run %s/%s attempt %d/%d failed (%s); retrying in %d ms",
             alias.c_str(), config.name.c_str(), attempt, kJobMaxAttempts,
             outcome.status.toString().c_str(), backoff_ms);
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    }
    // Every attempt was a hard worker death (crash, deadline SIGKILL,
    // OOM): the job is crash-quarantined — surfaced in the failure
    // report and skipped by later requesters via the memo/journal.
    outcome.quarantined =
        !outcome.status.ok() && worker_deaths >= kJobMaxAttempts;
    return outcome;
}

ExperimentRunner::RunOutcome
ExperimentRunner::runMemoized(const std::string &alias,
                              const SimConfig &config)
{
    std::string key = cachePath(alias, config);

    std::shared_ptr<MemoEntry> entry;
    {
        std::unique_lock<std::mutex> lock(mu_);
        ++stats_.requested;
        auto it = memo_.find(key);
        if (it != memo_.end()) {
            // Either already computed or in flight on another worker;
            // both count as a memo hit for this requester. Failures
            // memoize too: a triple that exhausted its retries is not
            // retried again by every later requester.
            entry = it->second;
            memo_done_.wait(lock, [&] { return entry->done; });
            ++stats_.memo_hits;
            return entry->outcome;
        }
        entry = std::make_shared<MemoEntry>();
        memo_.emplace(key, entry);
    }

    // We own the computation for this key; everyone else waits on entry.
    // The journal write-ahead record goes first: a crash between it and
    // the terminal record replays as "in flight", which re-runs the job.
    std::string jkey = std::filesystem::path(key).filename().string();
    journal_.recordStart(jkey);
    bool from_disk = false;
    auto start = std::chrono::steady_clock::now();
    RunOutcome outcome = computeUncached(alias, config, key, from_disk);
    double wall_ms = elapsedMs(start);
    if (outcome.status.ok())
        journal_.recordFinish(jkey, outcome.result, outcome.attempts);
    else
        journal_.recordFail(jkey, outcome.status, outcome.attempts,
                            outcome.quarantined);

    {
        std::lock_guard<std::mutex> lock(mu_);
        entry->outcome = outcome;
        entry->done = true;
        if (outcome.attempts > 1)
            stats_.retries +=
                static_cast<std::uint64_t>(outcome.attempts - 1);
        if (!outcome.status.ok()) {
            ++stats_.failed;
            if (outcome.quarantined)
                ++stats_.crash_quarantined;
        } else if (from_disk) {
            ++stats_.disk_hits;
        } else {
            ++stats_.simulated;
            stats_.frames_simulated +=
                static_cast<std::uint64_t>(params_.frames);
            stats_.sim_wall_ms += wall_ms;
            stats_.degraded_tiles += outcome.result.totals.degraded_tiles;
            stats_.validate_violations +=
                outcome.result.totals.validate_violations;
        }
    }
    memo_done_.notify_all();
    return outcome;
}

Result<RunResult>
ExperimentRunner::tryRun(const std::string &alias, const SimConfig &config)
{
    RunOutcome outcome = runMemoized(alias, config);
    if (!outcome.status.ok())
        return outcome.status;
    return outcome.result;
}

RunResult
ExperimentRunner::run(const std::string &alias, const SimConfig &config)
{
    RunOutcome outcome = runMemoized(alias, config);
    if (!outcome.status.ok())
        fatal("run %s/%s failed after %d attempt(s): %s", alias.c_str(),
              config.name.c_str(), outcome.attempts,
              outcome.status.toString().c_str());
    return outcome.result;
}

BatchOutcome
ExperimentRunner::runAllChecked(const std::vector<RunRequest> &requests)
{
    auto start = std::chrono::steady_clock::now();
    BatchOutcome batch;
    batch.results.resize(requests.size());
    {
        std::mutex failures_mu;
        int jobs = params_.resolvedJobs();
        if (jobs > static_cast<int>(requests.size()) && !requests.empty())
            jobs = static_cast<int>(requests.size());
        JobPool pool(std::max(jobs, 1));
        for (std::size_t i = 0; i < requests.size(); ++i) {
            pool.submit([this, &requests, &batch, &failures_mu, i] {
                RunOutcome outcome =
                    runMemoized(requests[i].alias, requests[i].config);
                if (outcome.status.ok()) {
                    batch.results[i] = outcome.result;
                    return;
                }
                std::lock_guard<std::mutex> lock(failures_mu);
                batch.failures.push_back({i, requests[i].alias,
                                          requests[i].config.name,
                                          outcome.status, outcome.attempts,
                                          outcome.quarantined});
            });
        }
        pool.wait();
        // runMemoized() catches everything a job can raise, so escaped
        // exceptions here are scheduler bugs, not workload faults.
        EVRSIM_ASSERT(pool.failureCount() == 0);
    }
    std::sort(batch.failures.begin(), batch.failures.end(),
              [](const RunFailure &a, const RunFailure &b) {
                  return a.index < b.index;
              });
    {
        std::lock_guard<std::mutex> lock(mu_);
        stats_.batch_wall_ms += elapsedMs(start);
    }
    return batch;
}

std::vector<RunResult>
ExperimentRunner::runAll(const std::vector<RunRequest> &requests)
{
    BatchOutcome batch = runAllChecked(requests);
    if (!batch.ok()) {
        const RunFailure &first = batch.failures.front();
        fatal("%zu of %zu runs failed; first: %s/%s after %d attempt(s): "
              "%s",
              batch.failures.size(), requests.size(), first.alias.c_str(),
              first.config.c_str(), first.attempts,
              first.status.toString().c_str());
    }
    return std::move(batch.results);
}

SweepStats
ExperimentRunner::sweepStats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

} // namespace evrsim
