/**
 * @file
 * Experiment runner implementation.
 */
#include "driver/experiment.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/log.hpp"

namespace evrsim {

GpuConfig
BenchParams::gpuConfig() const
{
    GpuConfig gpu;
    gpu.screen_width = width;
    gpu.screen_height = height;
    return gpu;
}

BenchParams
benchParamsFromEnv()
{
    BenchParams p;
    if (const char *full = std::getenv("EVRSIM_FULL");
        full && full[0] == '1') {
        p.width = 1196;
        p.height = 768;
        p.frames = 60;
    }
    if (const char *warmup = std::getenv("EVRSIM_WARMUP")) {
        int n = std::atoi(warmup);
        if (n < 0)
            fatal("EVRSIM_WARMUP must be non-negative");
        p.warmup = n;
    }
    if (const char *frames = std::getenv("EVRSIM_FRAMES")) {
        int n = std::atoi(frames);
        if (n <= 0)
            fatal("EVRSIM_FRAMES must be a positive integer");
        p.frames = n;
    }
    if (const char *nc = std::getenv("EVRSIM_NO_CACHE"); nc && nc[0] == '1')
        p.use_cache = false;
    if (const char *dir = std::getenv("EVRSIM_CACHE_DIR"))
        p.cache_dir = dir;
    else
        p.cache_dir = ".bench_cache";
    return p;
}

ExperimentRunner::ExperimentRunner(WorkloadFactory factory,
                                   const BenchParams &params)
    : factory_(std::move(factory)), params_(params)
{
    EVRSIM_ASSERT(factory_ != nullptr);
}

std::string
ExperimentRunner::cachePath(const std::string &alias,
                            const SimConfig &config) const
{
    std::ostringstream name;
    name << alias << '-' << config.name << '-' << params_.width << 'x'
         << params_.height << "-t" << config.gpu.tile_size << "-f"
         << params_.frames << "-w" << params_.warmup << "-v"
         << kResultCacheVersion << ".json";
    return (std::filesystem::path(params_.cache_dir) / name.str()).string();
}

RunResult
ExperimentRunner::simulate(const std::string &alias, const SimConfig &config)
{
    std::unique_ptr<Workload> workload =
        factory_(alias, params_.width, params_.height);
    if (!workload)
        fatal("unknown workload alias '%s'", alias.c_str());

    GpuSimulator sim(config);
    workload->setup(sim);

    // Warm-up: establish FVP and signature state, then measure.
    for (int f = 0; f < params_.warmup; ++f)
        sim.renderFrame(workload->frame(f));
    sim.resetTotals();

    for (int f = 0; f < params_.frames; ++f)
        sim.renderFrame(workload->frame(params_.warmup + f));

    RunResult r;
    r.workload = alias;
    r.config = config.name;
    r.frames = params_.frames;
    r.width = params_.width;
    r.height = params_.height;
    r.totals = sim.totals();
    r.energy = sim.energyOf(sim.totals());
    r.image_crc = sim.framebuffer().contentCrc();
    return r;
}

RunResult
ExperimentRunner::run(const std::string &alias, const SimConfig &config)
{
    std::string path = cachePath(alias, config);

    if (params_.use_cache) {
        std::ifstream in(path);
        if (in) {
            std::ostringstream buf;
            buf << in.rdbuf();
            bool ok = false;
            std::string error;
            Json j = Json::parse(buf.str(), ok, error);
            if (ok) {
                return RunResult::fromJson(j);
            }
            warn("discarding corrupt cache entry %s: %s", path.c_str(),
                 error.c_str());
        }
    }

    RunResult r = simulate(alias, config);

    if (params_.use_cache) {
        std::error_code ec;
        std::filesystem::create_directories(params_.cache_dir, ec);
        std::ofstream out(path);
        if (out) {
            out << r.toJson().dump(1);
        } else {
            warn("could not write cache entry %s", path.c_str());
        }
    }
    return r;
}

} // namespace evrsim
