/**
 * @file
 * Experiment runner implementation.
 */
#include "driver/experiment.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/log.hpp"
#include "driver/job_pool.hpp"

namespace evrsim {

namespace {

double
elapsedMs(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - since)
        .count();
}

} // namespace

GpuConfig
BenchParams::gpuConfig() const
{
    GpuConfig gpu;
    gpu.screen_width = width;
    gpu.screen_height = height;
    return gpu;
}

int
BenchParams::resolvedJobs() const
{
    return jobs > 0 ? jobs : JobPool::defaultThreads();
}

BenchParams
benchParamsFromEnv()
{
    BenchParams p;
    if (const char *full = std::getenv("EVRSIM_FULL");
        full && full[0] == '1') {
        p.width = 1196;
        p.height = 768;
        p.frames = 60;
    }
    if (const char *warmup = std::getenv("EVRSIM_WARMUP")) {
        int n = std::atoi(warmup);
        if (n < 0)
            fatal("EVRSIM_WARMUP must be non-negative");
        p.warmup = n;
    }
    if (const char *frames = std::getenv("EVRSIM_FRAMES")) {
        int n = std::atoi(frames);
        if (n <= 0)
            fatal("EVRSIM_FRAMES must be a positive integer");
        p.frames = n;
    }
    if (const char *nc = std::getenv("EVRSIM_NO_CACHE"); nc && nc[0] == '1')
        p.use_cache = false;
    if (const char *dir = std::getenv("EVRSIM_CACHE_DIR"))
        p.cache_dir = dir;
    else
        p.cache_dir = ".bench_cache";
    if (const char *jobs = std::getenv("EVRSIM_JOBS")) {
        int n = std::atoi(jobs);
        if (n <= 0)
            fatal("EVRSIM_JOBS must be a positive integer");
        p.jobs = n;
    }
    return p;
}

ExperimentRunner::ExperimentRunner(WorkloadFactory factory,
                                   const BenchParams &params)
    : factory_(std::move(factory)), params_(params)
{
    EVRSIM_ASSERT(factory_ != nullptr);
}

std::string
ExperimentRunner::cachePath(const std::string &alias,
                            const SimConfig &config) const
{
    std::ostringstream name;
    name << alias << '-' << config.name << '-' << params_.width << 'x'
         << params_.height << "-t" << config.gpu.tile_size << "-f"
         << params_.frames << "-w" << params_.warmup << "-v"
         << kResultCacheVersion << ".json";
    return (std::filesystem::path(params_.cache_dir) / name.str()).string();
}

RunResult
ExperimentRunner::simulate(const std::string &alias, const SimConfig &config)
{
    auto start = std::chrono::steady_clock::now();

    std::unique_ptr<Workload> workload =
        factory_(alias, params_.width, params_.height);
    if (!workload)
        fatal("unknown workload alias '%s'", alias.c_str());

    GpuSimulator sim(config);
    workload->setup(sim);

    // Warm-up: establish FVP and signature state, then measure.
    for (int f = 0; f < params_.warmup; ++f)
        sim.renderFrame(workload->frame(f));
    sim.resetTotals();

    for (int f = 0; f < params_.frames; ++f)
        sim.renderFrame(workload->frame(params_.warmup + f));

    RunResult r;
    r.workload = alias;
    r.config = config.name;
    r.frames = params_.frames;
    r.width = params_.width;
    r.height = params_.height;
    r.totals = sim.totals();
    r.energy = sim.energyOf(sim.totals());
    r.image_crc = sim.framebuffer().contentCrc();
    r.sim_wall_ms = elapsedMs(start);
    return r;
}

RunResult
ExperimentRunner::computeUncached(const std::string &alias,
                                  const SimConfig &config,
                                  const std::string &path, bool &from_disk)
{
    from_disk = false;
    if (params_.use_cache) {
        std::ifstream in(path);
        if (in) {
            std::ostringstream buf;
            buf << in.rdbuf();
            bool ok = false;
            std::string error;
            Json j = Json::parse(buf.str(), ok, error);
            if (ok) {
                from_disk = true;
                return RunResult::fromJson(j);
            }
            warn("discarding corrupt cache entry %s: %s", path.c_str(),
                 error.c_str());
        }
    }

    RunResult r = simulate(alias, config);

    if (params_.use_cache) {
        std::error_code ec;
        std::filesystem::create_directories(params_.cache_dir, ec);
        // Write-then-rename so a concurrent bench binary (or a kill mid
        // write) can never observe a truncated entry: rename() within a
        // directory is atomic on POSIX. The tmp name is pid-qualified;
        // within one process the memo guarantees a single writer per key.
        std::filesystem::path tmp =
            path + ".tmp." + std::to_string(::getpid());
        std::ofstream out(tmp);
        if (out) {
            out << r.toJson().dump(1);
            out.close();
            if (!out) {
                warn("could not write cache entry %s", tmp.c_str());
                std::filesystem::remove(tmp, ec);
            } else {
                std::filesystem::rename(tmp, path, ec);
                if (ec) {
                    warn("could not publish cache entry %s: %s",
                         path.c_str(), ec.message().c_str());
                    std::filesystem::remove(tmp, ec);
                }
            }
        } else {
            warn("could not write cache entry %s", tmp.c_str());
        }
    }
    return r;
}

RunResult
ExperimentRunner::runMemoized(const std::string &alias,
                              const SimConfig &config)
{
    std::string key = cachePath(alias, config);

    std::shared_ptr<MemoEntry> entry;
    {
        std::unique_lock<std::mutex> lock(mu_);
        ++stats_.requested;
        auto it = memo_.find(key);
        if (it != memo_.end()) {
            // Either already computed or in flight on another worker;
            // both count as a memo hit for this requester.
            entry = it->second;
            memo_done_.wait(lock, [&] { return entry->done; });
            ++stats_.memo_hits;
            return entry->result;
        }
        entry = std::make_shared<MemoEntry>();
        memo_.emplace(key, entry);
    }

    // We own the computation for this key; everyone else waits on entry.
    bool from_disk = false;
    auto start = std::chrono::steady_clock::now();
    RunResult r = computeUncached(alias, config, key, from_disk);
    double wall_ms = elapsedMs(start);

    {
        std::lock_guard<std::mutex> lock(mu_);
        entry->result = r;
        entry->done = true;
        if (from_disk) {
            ++stats_.disk_hits;
        } else {
            ++stats_.simulated;
            stats_.frames_simulated +=
                static_cast<std::uint64_t>(params_.frames);
            stats_.sim_wall_ms += wall_ms;
        }
    }
    memo_done_.notify_all();
    return r;
}

RunResult
ExperimentRunner::run(const std::string &alias, const SimConfig &config)
{
    return runMemoized(alias, config);
}

std::vector<RunResult>
ExperimentRunner::runAll(const std::vector<RunRequest> &requests)
{
    auto start = std::chrono::steady_clock::now();
    std::vector<RunResult> results(requests.size());
    {
        int jobs = params_.resolvedJobs();
        if (jobs > static_cast<int>(requests.size()) && !requests.empty())
            jobs = static_cast<int>(requests.size());
        JobPool pool(std::max(jobs, 1));
        for (std::size_t i = 0; i < requests.size(); ++i) {
            pool.submit([this, &requests, &results, i] {
                results[i] =
                    runMemoized(requests[i].alias, requests[i].config);
            });
        }
        pool.wait();
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        stats_.batch_wall_ms += elapsedMs(start);
    }
    return results;
}

SweepStats
ExperimentRunner::sweepStats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

} // namespace evrsim
