/**
 * @file
 * Experiment runner implementation.
 */
#include "driver/experiment.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include <atomic>

#include "common/atomic_file.hpp"
#include "common/crash_handler.hpp"
#include "common/env.hpp"
#include "common/shutdown.hpp"
#include "common/log.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "driver/envelope.hpp"
#include "common/job_pool.hpp"
#include "scene/scene_fuzzer.hpp"

namespace evrsim {

namespace {

double
elapsedMs(std::chrono::steady_clock::time_point since)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - since)
        .count();
}

/** Name of the write-ahead sweep journal inside the cache directory. */
constexpr const char *kSweepJournalName = "sweep.journal";

/** Clears the calling thread's crash context when a run ends. */
struct CrashContextGuard {
    ~CrashContextGuard() { crashContextClear(); }
};

/**
 * Live sweep telemetry: a timer thread that, every interval, prints a
 * one-line progress status (completed/total, sims/s, ETA, retries,
 * quarantines, cache ratio) and appends the same numbers as one JSON
 * line to heartbeat.jsonl. A terminal record is always appended when
 * the sweep ends, so even a sweep faster than one interval leaves a
 * machine-readable trail; records append (never truncate) so a resumed
 * sweep extends the same file.
 */
class SweepHeartbeat
{
  public:
    SweepHeartbeat(const ExperimentRunner &runner, const JobPool &pool,
                   const std::atomic<std::size_t> &completed,
                   std::size_t total, int interval_ms, std::string path)
        : runner_(runner), pool_(pool), completed_(completed),
          total_(total), path_(std::move(path)),
          start_(std::chrono::steady_clock::now()),
          thread_([this, interval_ms] { loop(interval_ms); })
    {
    }

    ~SweepHeartbeat()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            stop_ = true;
        }
        cv_.notify_all();
        thread_.join();
        emit(true);
    }

  private:
    void
    loop(int interval_ms)
    {
        std::unique_lock<std::mutex> lock(mu_);
        for (;;) {
            if (cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                             [this] { return stop_; }))
                return;
            lock.unlock();
            emit(false);
            lock.lock();
        }
    }

    /** One telemetry sample: status line (ticks only) + JSONL record. */
    void
    emit(bool final_record)
    {
        SweepStats s = runner_.sweepStats();
        std::size_t done = completed_.load(std::memory_order_relaxed);
        double elapsed_s = elapsedMs(start_) / 1000.0;
        double rate = elapsed_s > 0.0 ? done / elapsed_s : 0.0;
        double sims_per_s =
            elapsed_s > 0.0 ? s.simulated / elapsed_s : 0.0;
        double frames_per_s =
            elapsed_s > 0.0 ? s.frames_simulated / elapsed_s : 0.0;
        double eta_s =
            rate > 0.0 && total_ > done ? (total_ - done) / rate : 0.0;
        std::uint64_t served = s.disk_hits + s.memo_hits;
        double cache_ratio =
            s.requested > 0
                ? static_cast<double>(served) / s.requested
                : 0.0;

        if (!final_record) {
            std::fprintf(
                stderr,
                "[sweep] %zu/%zu done (%.0f%%), %.2f sims/s, "
                "%.1f frames/s, ETA %.0fs, queue %zu, retries %llu, "
                "failed %llu, cache %.0f%%\n",
                done, total_,
                total_ > 0 ? 100.0 * done / total_ : 100.0, sims_per_s,
                frames_per_s, eta_s, pool_.pendingCount(),
                static_cast<unsigned long long>(s.retries),
                static_cast<unsigned long long>(s.failed),
                100.0 * cache_ratio);
        }
        if (path_.empty())
            return;

        Json rec = Json::object();
        rec.set("completed", static_cast<std::uint64_t>(done));
        rec.set("total", static_cast<std::uint64_t>(total_));
        rec.set("elapsed_s", elapsed_s);
        rec.set("sims_per_s", sims_per_s);
        rec.set("frames_per_s", frames_per_s);
        rec.set("eta_s", eta_s);
        rec.set("pending", static_cast<std::uint64_t>(
                               pool_.pendingCount()));
        rec.set("simulated", s.simulated);
        rec.set("disk_hits", s.disk_hits);
        rec.set("memo_hits", s.memo_hits);
        rec.set("cache_ratio", cache_ratio);
        rec.set("retries", s.retries);
        rec.set("failed", s.failed);
        rec.set("quarantined", s.quarantined);
        rec.set("crash_quarantined", s.crash_quarantined);
        rec.set("resumed", s.resumed);
        rec.set("final", final_record);

        std::ofstream out(path_, std::ios::app);
        if (out)
            out << rec.dump() << "\n";
    }

    const ExperimentRunner &runner_;
    const JobPool &pool_;
    const std::atomic<std::size_t> &completed_;
    std::size_t total_;
    std::string path_;
    std::chrono::steady_clock::time_point start_;
    std::mutex mu_;
    std::condition_variable cv_;
    bool stop_ = false;
    std::thread thread_; ///< last member: starts after state is ready
};

} // namespace

/**
 * Per-run metrics adoption: every FrameStats counter (and the nested
 * memory sub-object), labeled by (workload, config), plus the run's
 * energy total. Field names track run_result.cpp's serialization table
 * automatically — a counter added there shows up here unprompted.
 * Public so the fleet shard serve loop records the same series its
 * control plane aggregates.
 */
void
recordRunMetrics(const std::string &alias, const std::string &config,
                 const RunResult &result, double wall_ms)
{
    MetricLabels labels{{"workload", alias}, {"config", config}};
    metricsCounterAdd("evrsim_runs_simulated_total", 1, labels);
    metricsCounterAdd("evrsim_frames_simulated_total",
                      static_cast<double>(result.frames), labels);
    metricsCounterAdd("evrsim_energy_total_nj", result.energy.total(),
                      labels);
    metricsHistogramObserve("evrsim_sim_wall_ms", wall_ms,
                            {{"config", config}});

    Json stats = frameStatsToJson(result.totals);
    for (const auto &[key, value] : stats.members()) {
        if (value.type() == Json::Type::Number) {
            metricsCounterAdd("evrsim_stat_" + key, value.asDouble(),
                              labels);
        } else if (value.type() == Json::Type::Object) {
            for (const auto &[sub, subval] : value.members())
                if (subval.type() == Json::Type::Number)
                    metricsCounterAdd("evrsim_stat_" + key + "_" + sub,
                                      subval.asDouble(), labels);
        }
    }
}

GpuConfig
BenchParams::gpuConfig() const
{
    GpuConfig gpu;
    gpu.screen_width = width;
    gpu.screen_height = height;
    return gpu;
}

int
BenchParams::resolvedJobs() const
{
    return jobs > 0 ? jobs : JobPool::defaultThreads();
}

Result<BenchParams>
benchParamsFromEnvChecked()
{
    BenchParams p;
    if (const char *full = std::getenv("EVRSIM_FULL");
        full && full[0] == '1') {
        p.width = 1196;
        p.height = 768;
        p.frames = 60;
    }

    // Strictly validated numeric knobs: name, range, destination.
    long long v = 0;
    bool present = false;
    if (Status s = readIntKnob("EVRSIM_WARMUP", 0, 1000000, v, present);
        !s.ok())
        return s;
    if (present)
        p.warmup = static_cast<int>(v);
    if (Status s = readIntKnob("EVRSIM_FRAMES", 1, 1000000, v, present);
        !s.ok())
        return s;
    if (present)
        p.frames = static_cast<int>(v);
    if (Status s = readIntKnob("EVRSIM_JOBS", 1, 4096, v, present);
        !s.ok())
        return s;
    if (present)
        p.jobs = static_cast<int>(v);
    if (Status s = readIntKnob("EVRSIM_TILE_JOBS", 1, 4096, v, present);
        !s.ok())
        return s;
    if (present)
        p.tile_jobs = static_cast<int>(v);
    if (Status s = readIntKnob("EVRSIM_JOB_TIMEOUT_MS", 0, 86400000, v,
                               present);
        !s.ok())
        return s;
    if (present)
        p.job_timeout_ms = static_cast<int>(v);
    if (Status s = readIntKnob("EVRSIM_JOB_MEM_MB", 0, 1048576, v, present);
        !s.ok())
        return s;
    if (present)
        p.job_mem_mb = static_cast<int>(v);
    if (Status s = readIntKnob("EVRSIM_CORRUPT_KEEP", 0, 1000000, v,
                               present);
        !s.ok())
        return s;
    if (present)
        p.corrupt_keep = static_cast<int>(v);

    int choice = 0;
    if (Status s = readChoiceKnob("EVRSIM_ISOLATE", {"off", "process"},
                                  choice, present);
        !s.ok())
        return s;
    if (present)
        p.isolate = choice == 1 ? IsolateMode::Process : IsolateMode::Off;

    if (Status s = readChoiceKnob("EVRSIM_LOG",
                                  {"quiet", "normal", "verbose"}, choice,
                                  present);
        !s.ok())
        return s;
    if (present)
        p.log_level = static_cast<LogLevel>(choice);

    if (Status s = readIntKnob("EVRSIM_HEARTBEAT_MS", 0, 86400000, v,
                               present);
        !s.ok())
        return s;
    if (present)
        p.heartbeat_ms = static_cast<int>(v);
    if (const char *res = std::getenv("EVRSIM_RESUME"); res && res[0] == '1')
        p.resume = true;

    Result<ValidationConfig> val = validationFromEnvChecked();
    if (!val.ok())
        return val.status();
    p.validation = val.value();

    if (const char *nc = std::getenv("EVRSIM_NO_CACHE"); nc && nc[0] == '1')
        p.use_cache = false;
    if (const char *dir = std::getenv("EVRSIM_CACHE_DIR"))
        p.cache_dir = dir;
    else
        p.cache_dir = ".bench_cache";

    // Placement knobs resolved after cache_dir so "1" can mean "next to
    // the journal".
    if (const char *m = std::getenv("EVRSIM_METRICS")) {
        std::string where = m;
        if (where == "1")
            p.metrics_dir = p.cache_dir;
        else if (where != "0" && !where.empty())
            p.metrics_dir = where;
    }
    if (const char *sm = std::getenv("EVRSIM_SUMMARY")) {
        std::string where = sm;
        if (where == "0" || where.empty())
            p.write_summary = false;
        else if (where != "1")
            p.summary_path = where;
    }
    return p;
}

BenchParams
benchParamsFromEnv()
{
    Result<BenchParams> p = benchParamsFromEnvChecked();
    if (!p.ok())
        fatal("%s", p.status().message().c_str());
    return p.value();
}

ExperimentRunner::ExperimentRunner(WorkloadFactory factory,
                                   const BenchParams &params)
    : ExperimentRunner(std::move(factory), params,
                       FaultInjector::planFromEnv())
{
}

ExperimentRunner::ExperimentRunner(WorkloadFactory factory,
                                   const BenchParams &params,
                                   const FaultPlan &faults)
    : factory_(std::move(factory)), params_(params), fault_(faults)
{
    EVRSIM_ASSERT(factory_ != nullptr);

    // The sweep journal lives alongside the cache; it also engages with
    // EVRSIM_NO_CACHE when a resume is explicitly requested, because the
    // journal (not the cache) is what resume replays.
    if (!params_.use_cache && !params_.resume)
        return;
    std::error_code ec;
    std::filesystem::create_directories(params_.cache_dir, ec);
    std::string jpath =
        (std::filesystem::path(params_.cache_dir) / kSweepJournalName)
            .string();

    if (params_.resume) {
        Result<SweepJournal::Replay> replayed = SweepJournal::replay(jpath);
        if (!replayed.ok()) {
            warn("EVRSIM_RESUME: cannot replay %s (%s); starting fresh",
                 jpath.c_str(), replayed.status().toString().c_str());
        } else {
            const SweepJournal::Replay &rep = replayed.value();
            for (const auto &[key, ro] : rep.outcomes) {
                auto entry = std::make_shared<MemoEntry>();
                entry->done = true;
                entry->outcome.attempts = ro.attempts;
                switch (ro.kind) {
                case SweepJournal::ReplayedOutcome::Kind::Finished:
                    entry->outcome.result = ro.result;
                    break;
                case SweepJournal::ReplayedOutcome::Kind::Quarantined:
                    entry->outcome.quarantined = true;
                    [[fallthrough]];
                case SweepJournal::ReplayedOutcome::Kind::Failed:
                    entry->outcome.status = ro.status;
                    break;
                }
                // Journal keys are cache-entry filenames; the memo keys
                // on the full cache path.
                memo_.emplace(
                    (std::filesystem::path(params_.cache_dir) / key)
                        .string(),
                    std::move(entry));
                ++stats_.resumed;
            }
            stats_.resume_duplicates +=
                static_cast<std::uint64_t>(rep.duplicates);
            if (rep.duplicates > 0)
                warn("EVRSIM_RESUME: %zu duplicate terminal record(s) in "
                     "%s (resume-of-a-resume); last record wins",
                     rep.duplicates, jpath.c_str());
            if (rep.damaged > 0)
                warn("EVRSIM_RESUME: dropped %zu damaged journal "
                     "record(s) from %s (those jobs re-run)",
                     rep.damaged, jpath.c_str());
            if (rep.in_flight > 0)
                warn("EVRSIM_RESUME: %zu job(s) were in flight at the "
                     "interruption and will re-run",
                     rep.in_flight);
        }
    }

    if (Status s = journal_.open(jpath); !s.ok())
        warn("sweep journal disabled: %s", s.toString().c_str());
}

void
ExperimentRunner::setWorkerLauncher(WorkerLauncher launcher)
{
    std::lock_guard<std::mutex> lock(mu_);
    launcher_ = std::move(launcher);
}

std::string
ExperimentRunner::jobKey(const std::string &alias,
                         const SimConfig &config) const
{
    return std::filesystem::path(cachePath(alias, config))
        .filename()
        .string();
}

std::string
ExperimentRunner::cachePath(const std::string &alias,
                            const SimConfig &config) const
{
    std::ostringstream name;
    name << alias << '-' << config.name << '-' << params_.width << 'x'
         << params_.height << "-t" << config.gpu.tile_size << "-f"
         << params_.frames << "-w" << params_.warmup
         << effectiveValidation(config).cacheTag() << "-v"
         << kResultCacheVersion << ".json";
    return (std::filesystem::path(params_.cache_dir) / name.str()).string();
}

ValidationConfig
ExperimentRunner::effectiveValidation(const SimConfig &config) const
{
    return config.validation.enabled() ? config.validation
                                       : params_.validation;
}

Result<RunResult>
ExperimentRunner::trySimulate(const std::string &alias,
                              const SimConfig &config)
{
    // Injected job fault: reported as transient so the retry policy in
    // computeUncached() engages, exactly like a real I/O hiccup would.
    if (fault_.shouldFail(FaultSite::JobExecute))
        return Status::unavailable("injected job-execute fault (" +
                                   alias + "/" + config.name + ")");

    TraceSpan sim_span(TraceCat::Driver, "simulate");
    if (sim_span.active())
        sim_span.setDetail(alias + "/" + config.name);

    auto start = std::chrono::steady_clock::now();

    // Cooperative watchdog: a runaway simulation is caught at the next
    // frame boundary (frames are the natural unit of progress; nothing
    // inside a frame blocks, so between-frame checks bound the overrun
    // to one frame's wall-clock).
    auto overDeadline = [&]() {
        return params_.job_timeout_ms > 0 &&
               elapsedMs(start) >
                   static_cast<double>(params_.job_timeout_ms);
    };
    auto deadlineStatus = [&](int frames_done) {
        return Status::deadlineExceeded(
            alias + "/" + config.name + " exceeded EVRSIM_JOB_TIMEOUT_MS=" +
            std::to_string(params_.job_timeout_ms) + " after " +
            std::to_string(frames_done) + " frame(s)");
    };

    SimConfig cfg = config;
    cfg.validation = effectiveValidation(config);
    if (Status s = cfg.checkValid(); !s.ok())
        return s;

    try {
        std::unique_ptr<Workload> workload =
            factory_(alias, params_.width, params_.height);
        if (!workload)
            return Status::notFound("unknown workload alias '" + alias +
                                    "'");

        CrashContextGuard crash_guard;
        crashContextSetRun(alias.c_str(), cfg.name.c_str());

        // Scene-mutate fault site: corrupt the workload's frame copy
        // before it reaches the simulator. The decision is keyed by
        // (alias, absolute frame) only, so every configuration of a
        // workload sees the identical corruption — which is what lets
        // tests compare a corrupted EVR run against a corrupted
        // baseline bit for bit.
        const FaultSpec &mutate = fault_.spec(FaultSite::SceneMutate);
        SceneFuzzer fuzzer(mutate.seed);
        auto frameOf = [&](int absolute) {
            Scene scene = workload->frame(absolute);
            std::uint64_t key =
                mix64(fnv1a64(alias) ^
                      static_cast<std::uint64_t>(absolute));
            if (fault_.shouldFailAt(FaultSite::SceneMutate, key))
                fuzzer.corruptScene(scene, key);
            return scene;
        };
        auto renderChecked = [&](GpuSimulator &sim, int absolute) {
            crashContextSetFrame(absolute);
            Result<FrameStats> fs = sim.tryRenderFrame(frameOf(absolute));
            if (!fs.ok())
                return fs.status().withContext(alias + "/" + cfg.name +
                                               " frame " +
                                               std::to_string(absolute));
            return Status();
        };

        GpuSimulator sim(cfg);
        if (params_.tile_jobs > 1)
            sim.setTileExecution(active_pool_, params_.tile_jobs);
        workload->setup(sim);

        // Warm-up: establish FVP and signature state, then measure.
        for (int f = 0; f < params_.warmup; ++f) {
            if (Status s = renderChecked(sim, f); !s.ok())
                return s;
            if (overDeadline())
                return deadlineStatus(f + 1);
        }
        sim.resetTotals();

        for (int f = 0; f < params_.frames; ++f) {
            if (Status s = renderChecked(sim, params_.warmup + f);
                !s.ok())
                return s;
            if (overDeadline())
                return deadlineStatus(params_.warmup + f + 1);
        }

        RunResult r;
        r.workload = alias;
        r.config = cfg.name;
        r.frames = params_.frames;
        r.width = params_.width;
        r.height = params_.height;
        r.totals = sim.totals();
        r.energy = sim.energyOf(sim.totals());
        r.image_crc = sim.framebuffer().contentCrc();
        r.sim_wall_ms = elapsedMs(start);
        return r;
    } catch (const TransientError &e) {
        return Status::unavailable("workload '" + alias +
                                   "' raised a transient error: " +
                                   e.what());
    } catch (const std::bad_alloc &) {
        // Under process isolation the worker's RLIMIT_AS turns a runaway
        // allocation into bad_alloc (when the allocator throws before
        // the OOM killer acts); transient, like any resource exhaustion.
        return Status::unavailable("workload '" + alias +
                                   "' ran out of memory");
    } catch (const std::exception &e) {
        return Status::internal("workload '" + alias +
                                "' threw: " + e.what());
    } catch (...) {
        return Status::internal("workload '" + alias +
                                "' threw a non-std exception");
    }
}

RunResult
ExperimentRunner::simulate(const std::string &alias, const SimConfig &config)
{
    Result<RunResult> r = trySimulate(alias, config);
    if (!r.ok())
        fatal("%s", r.status().toString().c_str());
    return r.value();
}

Result<RunResult>
ExperimentRunner::loadCacheEntry(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return Status::notFound("no cache entry at " + path);

    std::ostringstream buf;
    buf << in.rdbuf();
    if (!in.good() && !in.eof())
        return Status::dataLoss("read error on " + path);

    if (fault_.shouldFail(FaultSite::CacheRead))
        return Status::dataLoss("injected cache-read fault");

    // v3 envelope: {schema, payload_crc32, payload} (driver/envelope.hpp,
    // shared with the sweep journal and the worker pipe). The schema
    // field guards against a foreign or stale document that happens to
    // land at a current filename; the CRC detects any corruption of the
    // payload bytes (truncation is caught earlier by the parse).
    Result<Json> payload = parseEnvelope(buf.str(), kResultCacheVersion);
    if (!payload.ok())
        return payload.status();
    return RunResult::tryFromJson(payload.value());
}

void
ExperimentRunner::quarantine(const std::string &path, const Status &why)
{
    if (traceEnabled(TraceCat::Cache))
        traceInstant(TraceCat::Cache, "cache-quarantine",
                     std::filesystem::path(path).filename().string());

    // Existing quarantined copies of this entry, as (seq, path) pairs
    // parsed from the `<entry>.<seq>.corrupt` naming.
    const std::string base =
        std::filesystem::path(path).filename().string() + ".";
    const std::string suffix = ".corrupt";
    std::error_code ec;
    std::vector<std::pair<long long, std::filesystem::path>> copies;
    for (const auto &e : std::filesystem::directory_iterator(
             std::filesystem::path(path).parent_path(), ec)) {
        std::string name = e.path().filename().string();
        if (name.size() <= base.size() + suffix.size())
            continue;
        if (name.compare(0, base.size(), base) != 0 ||
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) != 0)
            continue;
        std::string mid = name.substr(
            base.size(), name.size() - base.size() - suffix.size());
        if (mid.empty() ||
            mid.find_first_not_of("0123456789") != std::string::npos)
            continue;
        copies.emplace_back(std::stoll(mid), e.path());
    }

    // Destination `<entry>.<seq>.corrupt` with seq = max existing + 1:
    // successive quarantines keep distinct post-mortem evidence, seq
    // order stays the age order even after evictions recycle low
    // numbers, and the extension stays `.corrupt` so tooling that
    // filters on it keeps working.
    long long seq = 0;
    for (const auto &copy : copies)
        seq = std::max(seq, copy.first + 1);
    std::string dest = path + "." + std::to_string(seq) + suffix;

    std::filesystem::rename(path, dest, ec);
    if (ec) {
        // Could not set it aside (permissions, races): remove instead,
        // so the bad entry cannot poison the next sweep either way.
        warn("could not quarantine %s (%s); removing it", path.c_str(),
             ec.message().c_str());
        std::filesystem::remove(path, ec);
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.quarantined;
        return;
    }
    warn("quarantined corrupt cache entry %s -> %s: %s", path.c_str(),
         dest.c_str(), why.toString().c_str());
    copies.emplace_back(seq, dest);

    // Cap the pile: a crash-looping or bit-rotting deployment would
    // otherwise grow one `.corrupt` per damaged read forever. Keep the
    // newest corrupt_keep copies (highest sequence numbers), evict the
    // rest, and account for the eviction in the sweep stats.
    std::uint64_t evicted = 0;
    const std::size_t keep =
        static_cast<std::size_t>(std::max(params_.corrupt_keep, 0));
    if (copies.size() > keep) {
        std::sort(copies.begin(), copies.end(),
                  [](const auto &a, const auto &b) {
                      return a.first > b.first;
                  });
        for (std::size_t i = keep; i < copies.size(); ++i) {
            std::filesystem::remove(copies[i].second, ec);
            if (!ec)
                ++evicted;
        }
    }

    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.quarantined;
    stats_.corrupt_evicted += evicted;
}

void
ExperimentRunner::storeCacheEntry(const std::string &path,
                                  const RunResult &r)
{
    if (fault_.shouldFail(FaultSite::CacheWrite)) {
        warn("injected cache-write fault, not publishing %s",
             path.c_str());
        return;
    }

    std::error_code ec;
    std::filesystem::create_directories(params_.cache_dir, ec);

    // Write-then-fsync-then-rename (common/atomic_file.hpp) so a
    // concurrent bench binary, a kill mid write, or a power loss can
    // never leave a truncated or unsynced entry at the published name.
    // Within one process the memo guarantees a single writer per key.
    std::string text =
        wrapEnvelope(r.toJson(), kResultCacheVersion).dump(1);
    if (Status s = atomicWriteFile(path, text); !s.ok())
        warn("could not publish cache entry %s: %s", path.c_str(),
             s.message().c_str());
}

Result<RunResult>
ExperimentRunner::attemptOnce(const std::string &alias,
                              const SimConfig &config,
                              const std::string &path, bool &worker_died)
{
    worker_died = false;
    if (params_.isolate == IsolateMode::Process) {
        WorkerLauncher launcher;
        {
            std::lock_guard<std::mutex> lock(mu_);
            launcher = launcher_;
            if (!launcher && !warned_no_launcher_) {
                warned_no_launcher_ = true;
                warn("EVRSIM_ISOLATE=process but no worker launcher is "
                     "installed; jobs run in-process");
            }
        }
        if (launcher) {
            WorkerAttempt a =
                launcher(alias, config,
                         std::filesystem::path(path).filename().string());
            worker_died = a.worker_died;
            if (!a.status.ok())
                return a.status;
            return a.result;
        }
    }
    return trySimulate(alias, config);
}

ExperimentRunner::RunOutcome
ExperimentRunner::computeUncached(const std::string &alias,
                                  const SimConfig &config,
                                  const std::string &path, bool &from_disk)
{
    from_disk = false;
    if (params_.use_cache) {
        Result<RunResult> cached = loadCacheEntry(path);
        if (cached.ok()) {
            if (traceEnabled(TraceCat::Cache))
                traceInstant(TraceCat::Cache, "cache-hit",
                             alias + "/" + config.name);
            from_disk = true;
            return {cached.value(), Status(), 0};
        }
        if (traceEnabled(TraceCat::Cache))
            traceInstant(TraceCat::Cache, "cache-miss",
                         alias + "/" + config.name);
        // A plain miss (NotFound) is the normal cold path; anything
        // else means the entry exists but cannot be trusted — set it
        // aside for post-mortem and fall through to re-simulation.
        if (cached.status().code() != ErrorCode::NotFound)
            quarantine(path, cached.status());
    }

    RunOutcome outcome;
    int worker_deaths = 0;
    for (int attempt = 1; attempt <= kJobMaxAttempts; ++attempt) {
        outcome.attempts = attempt;
        bool worker_died = false;
        Result<RunResult> r = [&]() {
            TraceSpan attempt_span(TraceCat::Driver, "attempt");
            attempt_span.setValue(attempt);
            if (attempt_span.active())
                attempt_span.setDetail(alias + "/" + config.name);
            return attemptOnce(alias, config, path, worker_died);
        }();
        if (worker_died)
            ++worker_deaths;
        if (r.ok()) {
            outcome.result = r.value();
            outcome.status = Status();
            if (params_.use_cache)
                storeCacheEntry(path, outcome.result);
            return outcome;
        }
        outcome.status = r.status();
        if (!outcome.status.isTransient() || attempt == kJobMaxAttempts)
            break;
        if (traceEnabled(TraceCat::Driver))
            traceInstant(TraceCat::Driver, "retry",
                         alias + "/" + config.name + " attempt " +
                             std::to_string(attempt));
        int backoff_ms = kRetryBaseMs << (attempt - 1);
        warn("run %s/%s attempt %d/%d failed (%s); retrying in %d ms",
             alias.c_str(), config.name.c_str(), attempt, kJobMaxAttempts,
             outcome.status.toString().c_str(), backoff_ms);
        if (!interruptibleSleepMs(backoff_ms)) {
            outcome.status = Status::cancelled(
                "retry abandoned: shutdown requested during backoff "
                "(last failure: " +
                outcome.status.message() + ")");
            break;
        }
    }
    // Every attempt was a hard worker death (crash, deadline SIGKILL,
    // OOM): the job is crash-quarantined — surfaced in the failure
    // report and skipped by later requesters via the memo/journal.
    outcome.quarantined =
        !outcome.status.ok() && worker_deaths >= kJobMaxAttempts;
    return outcome;
}

ExperimentRunner::RunOutcome
ExperimentRunner::runMemoized(const std::string &alias,
                              const SimConfig &config)
{
    std::string key = cachePath(alias, config);
    const bool metrics_on = !params_.metrics_dir.empty();

    std::shared_ptr<MemoEntry> entry;
    {
        std::unique_lock<std::mutex> lock(mu_);
        ++stats_.requested;
        auto it = memo_.find(key);
        if (it != memo_.end()) {
            // Either already computed or in flight on another worker;
            // both count as a memo hit for this requester. Failures
            // memoize too: a triple that exhausted its retries is not
            // retried again by every later requester.
            entry = it->second;
            memo_done_.wait(lock, [&] { return entry->done; });
            ++stats_.memo_hits;
            if (traceEnabled(TraceCat::Cache))
                traceInstant(TraceCat::Cache, "memo-hit",
                             alias + "/" + config.name);
            if (metrics_on)
                metricsCounterAdd("evrsim_runs_total", 1,
                                  {{"outcome", "memo"}});
            return entry->outcome;
        }
        entry = std::make_shared<MemoEntry>();
        memo_.emplace(key, entry);
    }

    // We own the computation for this key; everyone else waits on entry.
    // The journal write-ahead record goes first: a crash between it and
    // the terminal record replays as "in flight", which re-runs the job.
    std::string jkey = std::filesystem::path(key).filename().string();
    journal_.recordStart(jkey);
    bool from_disk = false;
    auto start = std::chrono::steady_clock::now();
    RunOutcome outcome;
    {
        TraceSpan job_span(TraceCat::Driver, "job");
        if (job_span.active())
            job_span.setDetail(alias + "/" + config.name);
        outcome = computeUncached(alias, config, key, from_disk);
    }
    double wall_ms = elapsedMs(start);
    if (outcome.status.ok())
        journal_.recordFinish(jkey, outcome.result, outcome.attempts);
    else
        journal_.recordFail(jkey, outcome.status, outcome.attempts,
                            outcome.quarantined);

    {
        std::lock_guard<std::mutex> lock(mu_);
        entry->outcome = outcome;
        entry->done = true;
        if (outcome.attempts > 1)
            stats_.retries +=
                static_cast<std::uint64_t>(outcome.attempts - 1);
        if (!outcome.status.ok()) {
            ++stats_.failed;
            if (outcome.quarantined)
                ++stats_.crash_quarantined;
        } else if (from_disk) {
            ++stats_.disk_hits;
        } else {
            ++stats_.simulated;
            stats_.frames_simulated +=
                static_cast<std::uint64_t>(params_.frames);
            stats_.sim_wall_ms += wall_ms;
            stats_.degraded_tiles += outcome.result.totals.degraded_tiles;
            stats_.validate_violations +=
                outcome.result.totals.validate_violations;
        }
    }
    if (metrics_on) {
        if (!outcome.status.ok())
            metricsCounterAdd("evrsim_runs_total", 1,
                              {{"outcome", "failed"}});
        else if (from_disk)
            metricsCounterAdd("evrsim_runs_total", 1,
                              {{"outcome", "disk"}});
        else {
            metricsCounterAdd("evrsim_runs_total", 1,
                              {{"outcome", "simulated"}});
            recordRunMetrics(alias, config.name, outcome.result, wall_ms);
        }
        if (outcome.attempts > 1)
            metricsCounterAdd("evrsim_retries_total",
                              static_cast<double>(outcome.attempts - 1));
    }
    memo_done_.notify_all();
    return outcome;
}

Result<RunResult>
ExperimentRunner::tryRun(const std::string &alias, const SimConfig &config)
{
    RunOutcome outcome = runMemoized(alias, config);
    if (!outcome.status.ok())
        return outcome.status;
    return outcome.result;
}

RunResult
ExperimentRunner::run(const std::string &alias, const SimConfig &config)
{
    RunOutcome outcome = runMemoized(alias, config);
    if (!outcome.status.ok())
        fatal("run %s/%s failed after %d attempt(s): %s", alias.c_str(),
              config.name.c_str(), outcome.attempts,
              outcome.status.toString().c_str());
    return outcome.result;
}

BatchOutcome
ExperimentRunner::runAllChecked(const std::vector<RunRequest> &requests)
{
    auto start = std::chrono::steady_clock::now();
    BatchOutcome batch;
    batch.results.resize(requests.size());
    {
        std::mutex failures_mu;
        std::atomic<std::size_t> completed{0};
        int jobs = params_.resolvedJobs();
        if (jobs > static_cast<int>(requests.size()) && !requests.empty())
            jobs = static_cast<int>(requests.size());
        JobPool pool(std::max(jobs, 1));
        // Published before any job is submitted, cleared after wait():
        // tile jobs inside simulations nest onto this pool via
        // JobPool::runBatch instead of spawning a pool per simulator.
        active_pool_ = &pool;
        std::unique_ptr<SweepHeartbeat> heartbeat;
        if (params_.heartbeat_ms > 0 && !requests.empty())
            heartbeat = std::make_unique<SweepHeartbeat>(
                *this, pool, completed, requests.size(),
                params_.heartbeat_ms, heartbeatPath());
        for (std::size_t i = 0; i < requests.size(); ++i) {
            pool.submit([this, &requests, &batch, &failures_mu,
                         &completed, i] {
                // Cooperative shutdown: a job not yet started when the
                // signal arrived is shed, not simulated — running jobs
                // finish, the journal and telemetry flush through the
                // normal end-of-sweep path, and the binary exits
                // 128+signal.
                if (shutdownRequested()) {
                    {
                        std::lock_guard<std::mutex> lock(failures_mu);
                        batch.failures.push_back(
                            {i, requests[i].alias,
                             requests[i].config.name,
                             Status::cancelled(
                                 "sweep interrupted by signal; job "
                                 "not started"),
                             0, false});
                    }
                    {
                        std::lock_guard<std::mutex> lock(mu_);
                        ++stats_.cancelled;
                    }
                    completed.fetch_add(1, std::memory_order_relaxed);
                    return;
                }
                RunOutcome outcome =
                    runMemoized(requests[i].alias, requests[i].config);
                if (outcome.status.ok()) {
                    batch.results[i] = outcome.result;
                } else {
                    std::lock_guard<std::mutex> lock(failures_mu);
                    batch.failures.push_back(
                        {i, requests[i].alias, requests[i].config.name,
                         outcome.status, outcome.attempts,
                         outcome.quarantined});
                }
                completed.fetch_add(1, std::memory_order_relaxed);
            });
        }
        pool.wait();
        active_pool_ = nullptr;
        heartbeat.reset(); // appends the terminal heartbeat record
        // runMemoized() catches everything a job can raise, so escaped
        // exceptions here are scheduler bugs, not workload faults.
        EVRSIM_ASSERT(pool.failureCount() == 0);
    }
    std::sort(batch.failures.begin(), batch.failures.end(),
              [](const RunFailure &a, const RunFailure &b) {
                  return a.index < b.index;
              });
    {
        std::lock_guard<std::mutex> lock(mu_);
        stats_.batch_wall_ms += elapsedMs(start);
    }
    return batch;
}

std::vector<RunResult>
ExperimentRunner::runAll(const std::vector<RunRequest> &requests)
{
    BatchOutcome batch = runAllChecked(requests);
    if (!batch.ok()) {
        const RunFailure &first = batch.failures.front();
        fatal("%zu of %zu runs failed; first: %s/%s after %d attempt(s): "
              "%s",
              batch.failures.size(), requests.size(), first.alias.c_str(),
              first.config.c_str(), first.attempts,
              first.status.toString().c_str());
    }
    return std::move(batch.results);
}

SweepStats
ExperimentRunner::sweepStats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

std::string
ExperimentRunner::heartbeatPath() const
{
    std::string dir = !params_.metrics_dir.empty()
                          ? params_.metrics_dir
                          : (params_.use_cache ? params_.cache_dir
                                               : std::string());
    if (dir.empty())
        return {};
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    return (std::filesystem::path(dir) / "heartbeat.jsonl").string();
}

Status
ExperimentRunner::writeMetricsArtifacts()
{
    if (params_.metrics_dir.empty())
        return {};

    // Sweep-level aggregates as gauges, refreshed at export time so the
    // JSON numbers are exactly the ones printSweepSummary() prints.
    SweepStats s = sweepStats();
    metricsGaugeSet("evrsim_sweep_requested",
                    static_cast<double>(s.requested));
    metricsGaugeSet("evrsim_sweep_simulated",
                    static_cast<double>(s.simulated));
    metricsGaugeSet("evrsim_sweep_disk_hits",
                    static_cast<double>(s.disk_hits));
    metricsGaugeSet("evrsim_sweep_memo_hits",
                    static_cast<double>(s.memo_hits));
    metricsGaugeSet("evrsim_sweep_frames_simulated",
                    static_cast<double>(s.frames_simulated));
    metricsGaugeSet("evrsim_sweep_sim_wall_ms", s.sim_wall_ms);
    metricsGaugeSet("evrsim_sweep_batch_wall_ms", s.batch_wall_ms);
    metricsGaugeSet("evrsim_sweep_quarantined",
                    static_cast<double>(s.quarantined));
    metricsGaugeSet("evrsim_sweep_retries",
                    static_cast<double>(s.retries));
    metricsGaugeSet("evrsim_sweep_failed", static_cast<double>(s.failed));
    metricsGaugeSet("evrsim_sweep_crash_quarantined",
                    static_cast<double>(s.crash_quarantined));
    metricsGaugeSet("evrsim_sweep_corrupt_evicted",
                    static_cast<double>(s.corrupt_evicted));
    metricsGaugeSet("evrsim_sweep_resumed",
                    static_cast<double>(s.resumed));
    metricsGaugeSet("evrsim_sweep_resume_duplicates",
                    static_cast<double>(s.resume_duplicates));
    metricsGaugeSet("evrsim_sweep_cancelled",
                    static_cast<double>(s.cancelled));
    metricsGaugeSet("evrsim_sweep_degraded_tiles",
                    static_cast<double>(s.degraded_tiles));
    metricsGaugeSet("evrsim_sweep_validate_violations",
                    static_cast<double>(s.validate_violations));
    metricsGaugeSet("evrsim_sweep_jobs",
                    static_cast<double>(params_.resolvedJobs()));

    std::error_code ec;
    std::filesystem::create_directories(params_.metrics_dir, ec);
    std::filesystem::path dir(params_.metrics_dir);
    if (Status st = metricsWriteJson((dir / "metrics.json").string());
        !st.ok())
        return st;
    return metricsWriteProm((dir / "metrics.prom").string());
}

} // namespace evrsim
