/**
 * @file
 * CRC32-enveloped JSON framing, shared by every place the driver moves
 * a JSON document across a trust boundary: the on-disk result cache,
 * the sweep journal, and the supervisor's worker-response pipe.
 *
 * An envelope is `{schema, payload_crc32, payload}`: the schema field
 * guards against a foreign or stale document that happens to land at a
 * current location, and the CRC32 of the payload's canonical
 * re-serialization detects any value-level damage (truncation is
 * caught earlier by the parse). Every failure is DataLoss — the
 * caller's recovery policy (quarantine, drop the journal tail, treat
 * the worker as dead) decides what that costs.
 */
#ifndef EVRSIM_DRIVER_ENVELOPE_HPP
#define EVRSIM_DRIVER_ENVELOPE_HPP

#include <string>

#include "common/status.hpp"
#include "driver/json.hpp"

namespace evrsim {

/** Wrap @p payload in a `{schema, payload_crc32, payload}` envelope. */
Json wrapEnvelope(Json payload, int schema);

/**
 * Validate an envelope document and return its payload. DataLoss when
 * the schema field is missing or mismatched, the checksum field is
 * absent, or the payload bytes fail the CRC.
 */
Result<Json> unwrapEnvelope(const Json &doc, int expected_schema);

/** Json::tryParse + unwrapEnvelope in one step. */
Result<Json> parseEnvelope(const std::string &text, int expected_schema);

/**
 * Status <-> JSON, for transporting a worker's (or a journaled run's)
 * failure across a process or crash boundary with its ErrorCode
 * intact — a strict-validation InvariantViolation must arrive as
 * exactly that, not as a generic retryable error.
 *
 * statusFromJson returns Ok with the transported status in @p out, or
 * DataLoss when the document is unusable (out is untouched).
 */
Json statusToJson(const Status &s);
Status statusFromJson(const Json &j, Status &out);

} // namespace evrsim

#endif // EVRSIM_DRIVER_ENVELOPE_HPP
