/**
 * @file
 * GpuSimulator: the library's main entry point.
 *
 * Owns the whole modelled system — memory hierarchy, geometry and raster
 * pipelines, timing and energy models, and the optional RE / EVR
 * mechanisms — and exposes a frame-oriented API:
 *
 *   GpuSimulator sim(SimConfig::evr(gpu_config));
 *   sim.uploadMesh(mesh);
 *   sim.registerTexture(texture);
 *   FrameStats s = sim.renderFrame(scene);
 *
 * Rendering is functional (the final framebuffer is exact) and every
 * architectural event is counted, so configurations can be compared both
 * for correctness (bit-identical output) and for performance/energy.
 */
#ifndef EVRSIM_DRIVER_GPU_SIMULATOR_HPP
#define EVRSIM_DRIVER_GPU_SIMULATOR_HPP

#include <memory>

#include "common/status.hpp"
#include "driver/sim_config.hpp"
#include "energy/energy_model.hpp"
#include "evr/evr.hpp"
#include "gpu/framebuffer.hpp"
#include "gpu/geometry_pipeline.hpp"
#include "gpu/invariant_auditor.hpp"
#include "gpu/raster_pipeline.hpp"
#include "re/rendering_elimination.hpp"
#include "scene/scene.hpp"

namespace evrsim {

/** Top-level simulator facade. */
class GpuSimulator
{
  public:
    explicit GpuSimulator(const SimConfig &config,
                          const EnergyParams &energy_params = {},
                          const TimingParams &timing_params = {});

    /**
     * Place a mesh's vertex buffer in simulated memory (charged as
     * one-time upload traffic). Must be called before the mesh is drawn.
     */
    void uploadMesh(Mesh &mesh);

    /** Place a texture in simulated memory. */
    void registerTexture(Texture &texture);

    /**
     * Render one frame: full geometry + raster pass under the configured
     * techniques. Returns the frame's statistics (timing filled in,
     * memory snapshot attached).
     *
     * With validation off this never fails. In permissive mode a
     * malformed scene is sanitized and invariant violations degrade the
     * offending tiles, so it still never fails; in strict mode both
     * conditions become an error Status instead.
     */
    Result<FrameStats> tryRenderFrame(const Scene &scene);

    /**
     * Legacy never-fails wrapper around tryRenderFrame(); a strict-mode
     * failure exits the process via fatal().
     */
    FrameStats renderFrame(const Scene &scene);

    /**
     * Enable tile-parallel rasterization (EVRSIM_TILE_JOBS): tiles are
     * rendered concurrently and their memory-access logs replayed in
     * tile order, keeping every result byte-identical to the serial
     * path (see RasterPipeline::setTileExecution).
     *
     * @param pool      pool to run tile jobs on; pass null to let the
     *                  simulator own a pool of @p tile_jobs workers
     * @param tile_jobs parallelism (<= 1 restores the serial path)
     */
    void setTileExecution(JobPool *pool, int tile_jobs);

    /**
     * Rasterize with the scalar reference path instead of the SoA/SIMD
     * fast path (bit-identical results; see
     * RasterPipeline::setReferenceRaster). Used by tests and by the
     * --bench-speed scalar leg.
     */
    void setReferenceRaster(bool on) { raster_.setReferenceRaster(on); }

    /** Energy of a frame's (or accumulated) stats under this config. */
    EnergyBreakdown energyOf(const FrameStats &stats) const;

    /** Stats accumulated over every frame rendered so far. */
    const FrameStats &totals() const { return totals_; }

    /** Zero the accumulated totals (e.g. after warm-up frames). */
    void resetTotals() { totals_ = FrameStats{}; }

    /** Current display contents. */
    const Framebuffer &framebuffer() const { return fb_; }

    const SimConfig &config() const { return config_; }
    MemorySystem &memorySystem() { return mem_; }

    /** Mechanism inspection (tests, diagnostics); may be null. */
    const RenderingElimination *re() const { return re_.get(); }
    const EarlyVisibilityResolution *evr() const { return evr_.get(); }

    /** Mutable mechanism access for tests/fuzzers that corrupt state. */
    RenderingElimination *mutableRe() { return re_.get(); }
    EarlyVisibilityResolution *mutableEvr() { return evr_.get(); }

    /** The invariant auditor; null unless validation is enabled. */
    const InvariantAuditor *auditor() const { return auditor_.get(); }

    /** The last rendered frame's Parameter Buffer (diagnostics). */
    const ParameterBuffer &parameterBuffer() const { return pb_; }

    int framesRendered() const { return frames_rendered_; }

  private:
    /** The frame render proper; @p stats arrives pre-seeded with any
     *  ingestion-validation counters. */
    FrameStats renderFrameImpl(const Scene &scene, FrameStats stats);

    SimConfig config_;
    MemorySystem mem_;
    ShaderCore shader_;
    TimingModel timing_;
    EnergyModel energy_;
    GeometryPipeline geometry_;
    RasterPipeline raster_;
    ParameterBuffer pb_;
    std::unique_ptr<RenderingElimination> re_;
    std::unique_ptr<EarlyVisibilityResolution> evr_;
    std::unique_ptr<InvariantAuditor> auditor_;
    std::unique_ptr<JobPool> owned_tile_pool_;
    Framebuffer fb_;
    Framebuffer prev_fb_;
    FrameStats totals_;
    int frames_rendered_ = 0;
};

/** Map a frame's counters to energy-model events (McPAT-style driving). */
EnergyEvents toEnergyEvents(const FrameStats &stats, const SimConfig &config);

} // namespace evrsim

#endif // EVRSIM_DRIVER_GPU_SIMULATOR_HPP
