/**
 * @file
 * Workload interface: a deterministic animated application.
 *
 * A workload owns its meshes and textures, uploads them into a simulator
 * once, and produces the Scene for any frame index as a pure function of
 * that index — so identical frames are generated no matter which
 * configuration consumes them, a precondition for comparing Baseline /
 * RE / EVR runs on bit-identical inputs.
 */
#ifndef EVRSIM_DRIVER_WORKLOAD_HPP
#define EVRSIM_DRIVER_WORKLOAD_HPP

#include <functional>
#include <memory>
#include <string>

#include "driver/gpu_simulator.hpp"
#include "scene/scene.hpp"

namespace evrsim {

/** An animated application fed to the simulator. */
class Workload
{
  public:
    /** Table III row: identity and classification. */
    struct Info {
        std::string alias;  ///< short name used everywhere ("ccs")
        std::string title;  ///< descriptive name
        std::string genre;  ///< Table III genre
        bool is_3d = false; ///< 3D = contains WOZ primitives
    };

    virtual ~Workload() = default;

    virtual Info info() const = 0;

    /** Upload meshes and textures into @p sim (called once per run). */
    virtual void setup(GpuSimulator &sim) = 0;

    /** Build frame @p index; must be a pure function of the index. */
    virtual Scene frame(int index) = 0;
};

/**
 * Factory signature: create a workload by alias for a given render
 * target size. Returns null for unknown aliases.
 */
using WorkloadFactory = std::function<std::unique_ptr<Workload>(
    const std::string &alias, int width, int height)>;

} // namespace evrsim

#endif // EVRSIM_DRIVER_WORKLOAD_HPP
