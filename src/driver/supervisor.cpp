/**
 * @file
 * Worker supervision implementation.
 */
#include "driver/supervisor.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/trace.hpp"
#include "driver/envelope.hpp"

namespace evrsim {

namespace {

/** Upper bound on a worker response; anything larger is damage. */
constexpr std::size_t kMaxResponseBytes = 64u << 20;

std::string
describeArgv(const std::vector<std::string> &argv)
{
    std::string out;
    for (const std::string &a : argv) {
        if (!out.empty())
            out += ' ';
        out += a;
    }
    return out;
}

WorkerOutcome
died(std::string message)
{
    WorkerOutcome out;
    out.status = Status::unavailable(std::move(message));
    out.worker_died = true;
    return out;
}

/**
 * Child-side setup between fork and exec. Only async-signal-safe calls
 * are allowed here: the parent is multi-threaded (scheduler workers),
 * so the child's heap and locks are in an arbitrary state until exec
 * replaces the image.
 */
[[noreturn]] void
execWorker(char *const *argv, int response_fd, const WorkerLimits &limits)
{
    if (response_fd != kWorkerResponseFd) {
        if (::dup2(response_fd, kWorkerResponseFd) < 0)
            ::_exit(127);
        ::close(response_fd);
    }

    int devnull = ::open("/dev/null", O_WRONLY);
    if (devnull >= 0) {
        ::dup2(devnull, STDOUT_FILENO);
        if (devnull != STDOUT_FILENO)
            ::close(devnull);
    }

    if (limits.mem_mb > 0) {
        struct rlimit rl;
        rl.rlim_cur = rl.rlim_max =
            static_cast<rlim_t>(limits.mem_mb) << 20;
        ::setrlimit(RLIMIT_AS, &rl);
    }
    if (limits.timeout_ms > 0) {
        // Belt-and-braces CPU budget: a spinning worker dies on SIGXCPU
        // even if the supervising parent is itself killed first.
        struct rlimit rl;
        rl.rlim_cur = rl.rlim_max = static_cast<rlim_t>(
            (limits.timeout_ms + limits.grace_ms) / 1000 + 2);
        ::setrlimit(RLIMIT_CPU, &rl);
    }

    ::execv(argv[0], argv);
    ::_exit(127);
}

int
reap(pid_t pid)
{
    int wstatus = 0;
    while (::waitpid(pid, &wstatus, 0) < 0 && errno == EINTR) {
    }
    return wstatus;
}

} // namespace

int
defaultGraceMs(int timeout_ms)
{
    if (timeout_ms <= 0)
        return 0;
    return std::clamp(timeout_ms / 2, 500, 5000);
}

std::string
selfExecutablePath()
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return {};
    buf[n] = '\0';
    return buf;
}

bool
writeWorkerResponse(int fd, const Result<RunResult> &attempt)
{
    Json payload = Json::object();
    payload.set("ok", attempt.ok());
    if (attempt.ok())
        payload.set("result", attempt.value().toJson());
    else
        payload.set("status", statusToJson(attempt.status()));

    std::string text =
        wrapEnvelope(std::move(payload), kWorkerProtocolVersion).dump(0);
    std::size_t off = 0;
    while (off < text.size()) {
        ssize_t n = ::write(fd, text.data() + off, text.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

WorkerOutcome
superviseWorker(const std::vector<std::string> &argv,
                const WorkerLimits &limits)
{
    if (argv.empty() || argv[0].empty())
        return died("worker launch failed: empty argv");

    // One span per fork→exec→reap lifetime; the child pid lands in
    // args.value once known, so a Perfetto view stitches the parent's
    // supervision span to the worker's own `.worker-<pid>` trace file.
    TraceSpan lifetime(TraceCat::Worker, "worker-lifetime");
    if (lifetime.active())
        lifetime.setDetail(describeArgv(argv));

    int fds[2];
    if (::pipe(fds) != 0)
        return died(std::string("worker pipe failed: ") +
                    std::strerror(errno));

    // execv wants mutable char*; the vector outlives the fork.
    std::vector<std::string> args = argv;
    std::vector<char *> cargv;
    cargv.reserve(args.size() + 1);
    for (std::string &a : args)
        cargv.push_back(a.data());
    cargv.push_back(nullptr);

    pid_t pid = ::fork();
    if (pid < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        return died(std::string("worker fork failed: ") +
                    std::strerror(errno));
    }
    if (pid == 0) {
        ::close(fds[0]);
        execWorker(cargv.data(), fds[1], limits);
    }
    ::close(fds[1]);
    lifetime.setValue(static_cast<std::int64_t>(pid));

    // Drain the response pipe, enforcing the hard wall-clock deadline.
    using clock = std::chrono::steady_clock;
    const bool bounded = limits.timeout_ms > 0;
    const clock::time_point deadline =
        clock::now() + std::chrono::milliseconds(limits.timeout_ms +
                                                 limits.grace_ms);
    std::string buf;
    bool killed = false;
    char chunk[4096];
    for (;;) {
        int wait_ms = -1;
        if (bounded) {
            auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - clock::now())
                            .count();
            if (left <= 0) {
                killed = true;
                break;
            }
            wait_ms = static_cast<int>(left);
        }
        struct pollfd p = {fds[0], POLLIN, 0};
        int rc = ::poll(&p, 1, wait_ms);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            killed = true; // treat a broken poll as a supervision kill
            break;
        }
        if (rc == 0) {
            killed = true;
            break;
        }
        ssize_t n = ::read(fds[0], chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            killed = true;
            break;
        }
        if (n == 0)
            break; // EOF: worker closed its end (exited)
        buf.append(chunk, static_cast<std::size_t>(n));
        if (buf.size() > kMaxResponseBytes) {
            killed = true;
            break;
        }
    }
    if (killed)
        ::kill(pid, SIGKILL);
    ::close(fds[0]);
    int wstatus = reap(pid);

    if (killed)
        return died("worker killed at the hard deadline (" +
                    std::to_string(limits.timeout_ms) + " ms + " +
                    std::to_string(limits.grace_ms) + " ms grace): " +
                    describeArgv(argv));
    if (WIFSIGNALED(wstatus)) {
        int sig = WTERMSIG(wstatus);
        const char *name = ::strsignal(sig);
        return died("worker died on signal " + std::to_string(sig) + " (" +
                    (name ? name : "?") + "): " + describeArgv(argv));
    }
    if (WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 127)
        return died("worker failed to exec " + argv[0]);
    if (!WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 0)
        return died("worker exited with status " +
                    std::to_string(WIFEXITED(wstatus)
                                       ? WEXITSTATUS(wstatus)
                                       : -1) +
                    ": " + describeArgv(argv));

    Result<Json> payload = parseEnvelope(buf, kWorkerProtocolVersion);
    if (!payload.ok())
        return died("worker response unusable (" +
                    payload.status().toString() + "): " +
                    describeArgv(argv));

    const Json *ok = payload.value().find("ok");
    if (!ok || ok->type() != Json::Type::Bool)
        return died("worker response missing ok field: " +
                    describeArgv(argv));

    WorkerOutcome out;
    if (ok->asBool()) {
        const Json *result = payload.value().find("result");
        if (!result)
            return died("worker response missing result: " +
                        describeArgv(argv));
        Result<RunResult> r = RunResult::tryFromJson(*result);
        if (!r.ok())
            return died("worker result unusable (" +
                        r.status().toString() + "): " +
                        describeArgv(argv));
        out.result = r.value();
        return out;
    }

    const Json *status = payload.value().find("status");
    Status reported;
    if (!status || !statusFromJson(*status, reported).ok() ||
        reported.ok())
        return died("worker status unusable: " + describeArgv(argv));
    out.status = reported; // the worker's own verdict, code intact
    return out;
}

} // namespace evrsim
