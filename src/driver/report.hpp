/**
 * @file
 * Console reporting helpers shared by the bench binaries: aligned
 * tables, ASCII bars for normalized metrics, and the summary statistics
 * the paper reports (arithmetic and geometric means).
 */
#ifndef EVRSIM_DRIVER_REPORT_HPP
#define EVRSIM_DRIVER_REPORT_HPP

#include <string>
#include <vector>

#include "driver/experiment.hpp"

namespace evrsim {

/** Simple fixed-column console table. */
class ReportTable
{
  public:
    explicit ReportTable(std::vector<std::string> headers);

    /** Append one row; must have as many cells as there are headers. */
    void addRow(std::vector<std::string> cells);

    /** Render to stdout with column alignment. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p decimals places. */
std::string fmt(double value, int decimals = 2);

/** Format a ratio as a percentage string ("42.3%"). */
std::string fmtPct(double ratio, int decimals = 1);

/** ASCII bar of length proportional to value/scale (max @p width chars). */
std::string bar(double value, double scale, int width = 24);

/** Arithmetic mean; 0 for empty input. */
double mean(const std::vector<double> &values);

/** Geometric mean; 0 for empty input (values must be positive). */
double geomean(const std::vector<double> &values);

/** Print the standard bench banner (experiment id + parameters). */
void printBenchHeader(const std::string &experiment_id,
                      const std::string &description,
                      const BenchParams &params);

/** Print the paper-vs-measured comparison footer line. */
void printPaperShape(const std::string &expectation);

/**
 * Print the sweep throughput summary for a bench binary: how the
 * requested runs were satisfied (simulated / disk cache / memo), the
 * batch wall-clock, sims/s and frames/s, and the aggregate-sim-time to
 * wall-clock ratio (the scheduler's average concurrency). Speedup is
 * measured by comparing sims/s between EVRSIM_JOBS=1 and =N runs.
 */
void printSweepSummary(const ExperimentRunner &runner);

/**
 * Print the sweep-end failure report: one line per permanently failed
 * run (alias/config, attempts, status). Prints nothing when the batch
 * is clean, so fault-free sweeps look exactly as before.
 */
void printFailureReport(const BatchOutcome &outcome);

/**
 * Write the numbers printSweepSummary() prints — run accounting,
 * throughput, fault counters — plus the batch's permanent failures as
 * a summary.json artifact at @p path (atomic tmp+rename), so BENCH_*
 * trajectories can be collected mechanically instead of scraped from
 * stdout.
 */
Status writeSweepSummaryJson(const ExperimentRunner &runner,
                             const BatchOutcome &outcome,
                             const std::string &path);

} // namespace evrsim

#endif // EVRSIM_DRIVER_REPORT_HPP
