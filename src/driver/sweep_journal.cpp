/**
 * @file
 * SweepJournal implementation.
 */
#include "driver/sweep_journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <set>

#include "common/atomic_file.hpp"
#include "common/log.hpp"
#include "driver/envelope.hpp"

namespace evrsim {

SweepJournal::~SweepJournal()
{
    if (fd_ >= 0)
        ::close(fd_);
}

Status
SweepJournal::open(const std::string &path)
{
    if (fd_ >= 0)
        return {};
    bool existed = ::access(path.c_str(), F_OK) == 0;
    int fd = ::open(path.c_str(),
                    O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0)
        return Status::unavailable("open " + path + ": " +
                                   std::strerror(errno));
    if (!existed) {
        // The journal's own directory entry must survive power loss,
        // or the first crash would resume from a journal that the
        // filesystem forgot ever existed.
        if (Status s = fsyncDirOf(path); !s.ok())
            warn("sweep journal: %s", s.message().c_str());
    }
    fd_ = fd;
    path_ = path;
    return {};
}

void
SweepJournal::append(Json payload)
{
    if (fd_ < 0)
        return;
    std::string line = wrapEnvelope(std::move(payload),
                                    kSweepJournalVersion)
                           .dump(0);
    line += '\n';
    std::lock_guard<std::mutex> lock(mu_);
    // One write(2) per record: concurrent bench binaries appending to
    // the shared journal interleave whole lines, never fragments.
    std::size_t off = 0;
    while (off < line.size()) {
        ssize_t n = ::write(fd_, line.data() + off, line.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            warn("sweep journal append to %s failed: %s", path_.c_str(),
                 std::strerror(errno));
            return;
        }
        off += static_cast<std::size_t>(n);
    }
    if (::fsync(fd_) != 0)
        warn("sweep journal fsync of %s failed: %s", path_.c_str(),
             std::strerror(errno));
}

void
SweepJournal::recordStart(const std::string &key)
{
    Json j = Json::object();
    j.set("type", "start");
    j.set("key", key);
    append(std::move(j));
}

void
SweepJournal::recordFinish(const std::string &key, const RunResult &result,
                           int attempts)
{
    Json j = Json::object();
    j.set("type", "finish");
    j.set("key", key);
    j.set("attempts", attempts);
    j.set("result", result.toJson());
    append(std::move(j));
}

void
SweepJournal::recordFail(const std::string &key, const Status &why,
                         int attempts, bool quarantined)
{
    Json j = Json::object();
    j.set("type", "fail");
    j.set("key", key);
    j.set("attempts", attempts);
    j.set("quarantined", quarantined);
    j.set("status", statusToJson(why));
    append(std::move(j));
}

Result<SweepJournal::Replay>
SweepJournal::replay(const std::string &path)
{
    Replay out;
    std::ifstream in(path);
    if (!in)
        return out; // no journal yet: nothing to resume

    std::set<std::string> started;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        Result<Json> payload = parseEnvelope(line, kSweepJournalVersion);
        if (!payload.ok()) {
            // Typically the one record torn by the crash being resumed
            // from; dropping it re-runs that job, which is exactly the
            // conservative answer.
            ++out.damaged;
            continue;
        }
        const Json *type = payload.value().find("type");
        const Json *key = payload.value().find("key");
        if (!type || !key || type->type() != Json::Type::String ||
            key->type() != Json::Type::String) {
            ++out.damaged;
            continue;
        }
        const std::string &k = key->asString();
        if (type->asString() == "start") {
            ++out.records;
            started.insert(k);
            continue;
        }

        ReplayedOutcome outcome;
        if (const Json *attempts = payload.value().find("attempts");
            attempts && attempts->type() == Json::Type::Number)
            outcome.attempts = static_cast<int>(attempts->asI64());

        if (type->asString() == "finish") {
            const Json *result = payload.value().find("result");
            if (!result) {
                ++out.damaged;
                continue;
            }
            Result<RunResult> r = RunResult::tryFromJson(*result);
            if (!r.ok()) {
                ++out.damaged;
                continue;
            }
            outcome.kind = ReplayedOutcome::Kind::Finished;
            outcome.result = r.value();
        } else if (type->asString() == "fail") {
            const Json *status = payload.value().find("status");
            Status reported;
            if (!status || !statusFromJson(*status, reported).ok() ||
                reported.ok()) {
                ++out.damaged;
                continue;
            }
            bool quarantined = false;
            if (const Json *q = payload.value().find("quarantined");
                q && q->type() == Json::Type::Bool)
                quarantined = q->asBool();
            outcome.kind = quarantined
                               ? ReplayedOutcome::Kind::Quarantined
                               : ReplayedOutcome::Kind::Failed;
            outcome.status = reported;
        } else {
            ++out.damaged;
            continue;
        }
        ++out.records;
        started.erase(k);
        if (out.outcomes.count(k))
            ++out.duplicates;
        out.outcomes[k] = std::move(outcome); // last terminal record wins
    }
    for (const std::string &k : started)
        if (!out.outcomes.count(k))
            ++out.in_flight;
    return out;
}

} // namespace evrsim
