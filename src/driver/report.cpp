/**
 * @file
 * Reporting helpers implementation.
 */
#include "driver/report.hpp"

#include <cmath>
#include <cstdio>

#include "common/atomic_file.hpp"
#include "common/log.hpp"
#include "driver/json.hpp"

namespace evrsim {

ReportTable::ReportTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    EVRSIM_ASSERT(!headers_.empty());
}

void
ReportTable::addRow(std::vector<std::string> cells)
{
    EVRSIM_ASSERT(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

void
ReportTable::print() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &cells) {
        std::printf("  ");
        for (std::size_t c = 0; c < cells.size(); ++c) {
            // Left-align the first column (names), right-align numbers.
            if (c == 0)
                std::printf("%-*s", static_cast<int>(widths[c]),
                            cells[c].c_str());
            else
                std::printf("  %*s", static_cast<int>(widths[c]),
                            cells[c].c_str());
        }
        std::printf("\n");
    };

    print_row(headers_);
    std::size_t total = 2;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c == 0 ? 0 : 2);
    std::printf("  %s\n", std::string(total, '-').c_str());
    for (const auto &row : rows_)
        print_row(row);
}

std::string
fmt(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
fmtPct(double ratio, int decimals)
{
    return fmt(ratio * 100.0, decimals) + "%";
}

std::string
bar(double value, double scale, int width)
{
    if (scale <= 0.0)
        return "";
    int n = static_cast<int>(std::lround(value / scale * width));
    n = std::max(0, std::min(n, width * 2)); // allow overshoot to 2x
    return std::string(static_cast<std::size_t>(n), '#');
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / values.size();
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        EVRSIM_ASSERT(v > 0.0);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / values.size());
}

void
printBenchHeader(const std::string &experiment_id,
                 const std::string &description, const BenchParams &params)
{
    std::printf("==============================================================\n");
    std::printf("%s — %s\n", experiment_id.c_str(), description.c_str());
    std::printf("render target %dx%d, %d frames%s\n", params.width,
                params.height, params.frames,
                params.use_cache ? " (result cache on)" : "");
    std::printf("==============================================================\n");
}

void
printPaperShape(const std::string &expectation)
{
    std::printf("\npaper shape: %s\n\n", expectation.c_str());
}

void
printSweepSummary(const ExperimentRunner &runner)
{
    SweepStats s = runner.sweepStats();
    std::printf("sweep: %llu runs (%llu simulated, %llu disk cache, "
                "%llu memo) on %d job(s)\n",
                static_cast<unsigned long long>(s.requested),
                static_cast<unsigned long long>(s.simulated),
                static_cast<unsigned long long>(s.disk_hits),
                static_cast<unsigned long long>(s.memo_hits),
                runner.params().resolvedJobs());
    if (s.batch_wall_ms > 0.0 && s.simulated > 0) {
        double secs = s.batch_wall_ms / 1000.0;
        std::printf("sweep throughput: %.2f sims/s, %.1f frames/s "
                    "(%.2fs wall, %.2fs aggregate sim time, "
                    "avg concurrency %.2fx)\n",
                    s.simulated / secs, s.frames_simulated / secs, secs,
                    s.sim_wall_ms / 1000.0, s.sim_wall_ms / s.batch_wall_ms);
    } else if (s.batch_wall_ms > 0.0) {
        std::printf("sweep throughput: all runs served from cache in "
                    "%.2fs wall\n",
                    s.batch_wall_ms / 1000.0);
    }
    if (s.resumed > 0)
        std::printf("sweep resume: %llu outcome(s) replayed from the "
                    "journal\n",
                    static_cast<unsigned long long>(s.resumed));
    if (s.quarantined > 0 || s.retries > 0 || s.failed > 0 ||
        s.crash_quarantined > 0 || s.corrupt_evicted > 0) {
        std::printf("sweep faults: %llu cache entr%s quarantined, "
                    "%llu retr%s, %llu run(s) failed",
                    static_cast<unsigned long long>(s.quarantined),
                    s.quarantined == 1 ? "y" : "ies",
                    static_cast<unsigned long long>(s.retries),
                    s.retries == 1 ? "y" : "ies",
                    static_cast<unsigned long long>(s.failed));
        if (s.crash_quarantined > 0)
            std::printf(", %llu job(s) crash-quarantined",
                        static_cast<unsigned long long>(
                            s.crash_quarantined));
        if (s.corrupt_evicted > 0)
            std::printf(", %llu old .corrupt file(s) evicted",
                        static_cast<unsigned long long>(
                            s.corrupt_evicted));
        std::printf("\n");
    }
    if (s.validate_violations > 0 || s.degraded_tiles > 0)
        std::printf("sweep degradations: %llu invariant violation(s), "
                    "%llu tile(s) degraded\n",
                    static_cast<unsigned long long>(s.validate_violations),
                    static_cast<unsigned long long>(s.degraded_tiles));
    std::printf("\n");
}

void
printFailureReport(const BatchOutcome &outcome)
{
    if (outcome.ok())
        return;
    std::fprintf(stderr, "FAILED RUNS (%zu):\n", outcome.failures.size());
    for (const RunFailure &f : outcome.failures)
        std::fprintf(stderr, "  %s/%s after %d attempt(s)%s: %s\n",
                     f.alias.c_str(), f.config.c_str(), f.attempts,
                     f.quarantined ? " [crash-quarantined]" : "",
                     f.status.toString().c_str());
    std::fprintf(stderr,
                 "results for failed runs are omitted below; exit will "
                 "be non-zero\n");
}

Status
writeSweepSummaryJson(const ExperimentRunner &runner,
                      const BatchOutcome &outcome, const std::string &path)
{
    SweepStats s = runner.sweepStats();
    Json doc = Json::object();
    doc.set("schema", 1);
    doc.set("jobs", runner.params().resolvedJobs());
    doc.set("requested", s.requested);
    doc.set("simulated", s.simulated);
    doc.set("disk_hits", s.disk_hits);
    doc.set("memo_hits", s.memo_hits);
    doc.set("frames_simulated", s.frames_simulated);
    doc.set("sim_wall_ms", s.sim_wall_ms);
    doc.set("batch_wall_ms", s.batch_wall_ms);
    double secs = s.batch_wall_ms / 1000.0;
    doc.set("sims_per_s", secs > 0.0 ? s.simulated / secs : 0.0);
    doc.set("frames_per_s",
            secs > 0.0 ? s.frames_simulated / secs : 0.0);
    doc.set("avg_concurrency",
            s.batch_wall_ms > 0.0 ? s.sim_wall_ms / s.batch_wall_ms : 0.0);
    doc.set("quarantined", s.quarantined);
    doc.set("retries", s.retries);
    doc.set("failed", s.failed);
    doc.set("crash_quarantined", s.crash_quarantined);
    doc.set("corrupt_evicted", s.corrupt_evicted);
    doc.set("resumed", s.resumed);
    doc.set("degraded_tiles", s.degraded_tiles);
    doc.set("validate_violations", s.validate_violations);

    Json failures = Json::array();
    for (const RunFailure &f : outcome.failures) {
        Json entry = Json::object();
        entry.set("workload", f.alias);
        entry.set("config", f.config);
        entry.set("attempts", f.attempts);
        entry.set("quarantined", f.quarantined);
        entry.set("status", f.status.toString());
        failures.push(std::move(entry));
    }
    doc.set("failures", std::move(failures));

    return atomicWriteFile(path, doc.dump(1) + "\n");
}

} // namespace evrsim
