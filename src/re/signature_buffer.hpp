/**
 * @file
 * The Signature Buffer: Rendering Elimination's per-tile CRC32 lookup
 * table.
 *
 * Each tile holds two signatures: the finalized one of the previous frame
 * and the in-progress one of the current frame. A signature is the CRC32
 * of the concatenated attribute blocks of every primitive sorted into the
 * tile, built incrementally: the running tile CRC is shifted by the size
 * of the incoming primitive's attribute block and combined with the
 * primitive's own CRC (GF(2) combine — see Crc32::combine).
 */
#ifndef EVRSIM_RE_SIGNATURE_BUFFER_HPP
#define EVRSIM_RE_SIGNATURE_BUFFER_HPP

#include <cstdint>
#include <vector>

namespace evrsim {

/** A tile signature: CRC plus total hashed length. */
struct Signature {
    std::uint32_t crc = 0;
    std::uint64_t length = 0;

    constexpr bool operator==(const Signature &o) const = default;
};

/** Per-tile previous/current signature storage. */
class SignatureBuffer
{
  public:
    explicit SignatureBuffer(int tile_count);

    /** Clear the in-progress (current-frame) signatures. */
    void resetCurrent();

    /** Fold a primitive CRC into @p tile's current signature. */
    void combine(int tile, std::uint32_t prim_crc, std::uint32_t prim_bytes);

    /**
     * True if @p tile's current signature equals the previous frame's
     * (and a previous frame exists for this tile), and neither frame's
     * signature is poisoned.
     */
    bool matchesPrevious(int tile) const;

    /**
     * Mark @p tile's current signature as unreliable: it must match
     * nothing, this frame or the next. Used when EVR's filtering
     * excluded every primitive of a non-empty tile (the signature then
     * carries no information about the tile's visible content).
     */
    void poisonCurrent(int tile);

    bool currentPoisoned(int tile) const
    {
        return current_poisoned_[tile] != 0;
    }

    /** Promote current signatures to previous (end of frame). */
    void rotate();

    /**
     * Overwrite @p tile's previous-frame signature (clearing its poison
     * bit). Test/fuzz-harness entry point: plants the stale or corrupt
     * reference state the invariant auditor must catch.
     */
    void
    setPrevious(int tile, const Signature &sig, bool valid)
    {
        previous_[tile] = sig;
        previous_valid_[tile] = valid ? 1 : 0;
        previous_poisoned_[tile] = 0;
    }

    const Signature &current(int tile) const { return current_[tile]; }
    const Signature &previous(int tile) const { return previous_[tile]; }
    bool previousValid(int tile) const { return previous_valid_[tile] != 0; }

    int tileCount() const { return static_cast<int>(current_.size()); }

    /** Simulated SRAM bytes of the structure (two CRCs per tile). */
    std::uint64_t
    simulatedBytes() const
    {
        return static_cast<std::uint64_t>(current_.size()) * 8;
    }

  private:
    std::vector<Signature> current_;
    std::vector<Signature> previous_;
    std::vector<char> previous_valid_;
    std::vector<char> current_poisoned_;
    std::vector<char> previous_poisoned_;
};

} // namespace evrsim

#endif // EVRSIM_RE_SIGNATURE_BUFFER_HPP
