/**
 * @file
 * Signature Buffer implementation.
 */
#include "re/signature_buffer.hpp"

#include <algorithm>

#include "common/crc32.hpp"
#include "common/log.hpp"

namespace evrsim {

SignatureBuffer::SignatureBuffer(int tile_count)
{
    EVRSIM_ASSERT(tile_count > 0);
    current_.assign(static_cast<std::size_t>(tile_count), Signature{});
    previous_.assign(static_cast<std::size_t>(tile_count), Signature{});
    previous_valid_.assign(static_cast<std::size_t>(tile_count), 0);
    current_poisoned_.assign(static_cast<std::size_t>(tile_count), 0);
    previous_poisoned_.assign(static_cast<std::size_t>(tile_count), 0);
}

void
SignatureBuffer::resetCurrent()
{
    for (auto &s : current_)
        s = Signature{};
    std::fill(current_poisoned_.begin(), current_poisoned_.end(), 0);
}

void
SignatureBuffer::combine(int tile, std::uint32_t prim_crc,
                         std::uint32_t prim_bytes)
{
    Signature &s = current_[tile];
    s.crc = Crc32::combine(s.crc, prim_crc, prim_bytes);
    s.length += prim_bytes;
}

bool
SignatureBuffer::matchesPrevious(int tile) const
{
    return previous_valid_[tile] != 0 && current_poisoned_[tile] == 0 &&
           previous_poisoned_[tile] == 0 && current_[tile] == previous_[tile];
}

void
SignatureBuffer::poisonCurrent(int tile)
{
    current_poisoned_[tile] = 1;
}

void
SignatureBuffer::rotate()
{
    previous_ = current_;
    previous_poisoned_ = current_poisoned_;
    for (auto &v : previous_valid_)
        v = 1;
}

} // namespace evrsim
