/**
 * @file
 * Rendering Elimination implementation.
 */
#include <algorithm>

#include "common/crc32.hpp"
#include "re/rendering_elimination.hpp"

namespace evrsim {

RenderingElimination::RenderingElimination(int tile_count)
    : signatures_(tile_count)
{
    excluded_count_.assign(static_cast<std::size_t>(tile_count), 0);
    included_count_.assign(static_cast<std::size_t>(tile_count), 0);
}

void
RenderingElimination::frameStart()
{
    signatures_.resetCurrent();
    std::fill(excluded_count_.begin(), excluded_count_.end(), 0);
    std::fill(included_count_.begin(), included_count_.end(), 0);
}

void
RenderingElimination::addPrimitive(int tile, const ShadedPrimitive &prim,
                                   bool excluded, FrameStats &stats)
{
    if (excluded) {
        // EVR predicted the primitive occluded in this tile: the
        // Signature Buffer entry is not read, shifted or updated.
        ++stats.signature_updates_skipped;
        ++excluded_count_[tile];
        return;
    }
    signatures_.combine(tile, prim.attr_crc, prim.attr_bytes);
    ++included_count_[tile];
    ++stats.signature_updates;
    stats.signature_shift_bytes += prim.attr_bytes;
}

bool
RenderingElimination::shouldSkipTile(int tile, FrameStats &stats)
{
    ++stats.signature_compares;
    return signatures_.matchesPrevious(tile);
}

void
RenderingElimination::tileMispredicted(int tile)
{
    // A predicted-occluded (signature-excluded) primitive contributed to
    // this tile's final pixels: the rendered surface is not described by
    // the signature, so the signature must match nothing — this frame or
    // (after rotation) the next. Skip references are therefore exactly
    // the frames whose surface is fully explained by their signature,
    // which makes every later exclusion against their FVP sound (see
    // DESIGN.md section 4.1).
    signatures_.poisonCurrent(tile);
}

void
RenderingElimination::frameEnd()
{
    signatures_.rotate();
}

} // namespace evrsim
