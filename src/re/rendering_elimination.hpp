/**
 * @file
 * Rendering Elimination (Anglada et al., HPCA 2019a), the prior technique
 * EVR builds on: skip rendering tiles whose inputs — the attributes of
 * every primitive sorted into them — are identical to the previous
 * frame's, reusing the colors already present in the framebuffer.
 *
 * EVR improves RE through the @c excluded flag of addPrimitive(): when
 * EVR predicts a primitive occluded in a tile, the primitive is left out
 * of the tile's signature, so tiles whose only frame-to-frame changes are
 * in hidden geometry still match (Table I, scenario C).
 */
#ifndef EVRSIM_RE_RENDERING_ELIMINATION_HPP
#define EVRSIM_RE_RENDERING_ELIMINATION_HPP

#include "gpu/pipeline_hooks.hpp"
#include "re/signature_buffer.hpp"

namespace evrsim {

/** The complete RE mechanism, pluggable into the pipeline hooks. */
class RenderingElimination : public SignatureUpdater
{
  public:
    explicit RenderingElimination(int tile_count);

    void frameStart() override;

    void addPrimitive(int tile, const ShadedPrimitive &prim, bool excluded,
                      FrameStats &stats) override;

    bool shouldSkipTile(int tile, FrameStats &stats) override;

    void tileMispredicted(int tile) override;

    void frameEnd() override;

    /** Audit query: tileMispredicted() really poisons (see hooks). */
    bool
    mispredictionPoisoned(int tile) const override
    {
        return signatures_.currentPoisoned(tile);
    }

    const SignatureBuffer &signatureBuffer() const { return signatures_; }

    /** Mutable access for tests/fuzzers that corrupt signature state. */
    SignatureBuffer &mutableSignatureBuffer() { return signatures_; }

    /** Primitives excluded from @p tile's signature this frame. */
    std::uint32_t
    excludedCount(int tile) const
    {
        return excluded_count_[tile];
    }

    /** Primitives combined into @p tile's signature this frame. */
    std::uint32_t
    includedCount(int tile) const
    {
        return included_count_[tile];
    }

  private:
    SignatureBuffer signatures_;
    std::vector<std::uint32_t> excluded_count_;
    std::vector<std::uint32_t> included_count_;
};

} // namespace evrsim

#endif // EVRSIM_RE_RENDERING_ELIMINATION_HPP
