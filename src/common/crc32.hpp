/**
 * @file
 * CRC32 (IEEE 802.3 polynomial) with incremental update and combine.
 *
 * Rendering Elimination identifies redundant tiles by hashing the vertex
 * attributes of every primitive sorted into a tile with a CRC32 and folding
 * the per-primitive CRCs into a per-tile signature. Two operations are
 * needed beyond a plain checksum:
 *
 *  - update():  extend a running CRC with more bytes (per-primitive hash).
 *  - combine(): given crc(A) and crc(B) and len(B), produce crc(A||B)
 *    without touching the bytes again. This models the paper's
 *    "shift [the tile hash] as many bytes as the size of the primitive and
 *    combine with the hash of the primitive" Signature Buffer update.
 *
 * combine() uses the standard GF(2) matrix-exponentiation technique
 * (as in zlib's crc32_combine).
 */
#ifndef EVRSIM_COMMON_CRC32_HPP
#define EVRSIM_COMMON_CRC32_HPP

#include <cstddef>
#include <cstdint>

namespace evrsim {

/** Incremental CRC32 hasher. */
class Crc32
{
  public:
    /** CRC of the empty string. */
    Crc32() = default;

    /** Extend the CRC with @p len bytes at @p data. */
    void update(const void *data, std::size_t len);

    /** Extend the CRC with a trivially-copyable value's object bytes. */
    template <typename T>
    void
    updateValue(const T &value)
    {
        update(&value, sizeof(T));
    }

    /** Finalized CRC value of all bytes seen so far. */
    std::uint32_t value() const { return crc_ ^ 0xffffffffu; }

    /** Total number of bytes hashed. */
    std::uint64_t length() const { return length_; }

    /** One-shot CRC of a buffer. */
    static std::uint32_t of(const void *data, std::size_t len);

    /**
     * CRC of the concatenation A||B given crc(A), crc(B) and len(B).
     *
     * @param crc_a  finalized CRC of the first block
     * @param crc_b  finalized CRC of the second block
     * @param len_b  length in bytes of the second block
     */
    static std::uint32_t combine(std::uint32_t crc_a, std::uint32_t crc_b,
                                 std::uint64_t len_b);

  private:
    std::uint32_t crc_ = 0xffffffffu;
    std::uint64_t length_ = 0;
};

} // namespace evrsim

#endif // EVRSIM_COMMON_CRC32_HPP
