/**
 * @file
 * Metrics registry: counters, gauges and histograms with labels.
 *
 * The simulator already counts everything the paper's figures need
 * (FrameStats, memory traffic, driver retry/cache counters), but those
 * counts only surface as end-of-sweep tables printed to stdout. The
 * registry gives them a machine-readable home: benches record per-run
 * totals and sweep-level aggregates here, and the experiment layer
 * exports one `metrics.json` (plus a Prometheus-style `metrics.prom`
 * text file) per sweep next to the journal, so `BENCH_*.json`
 * trajectories and dashboards can consume them mechanically.
 *
 * Threading: every operation takes one registry mutex. Metrics are
 * recorded at per-run granularity (a few dozen samples per simulation),
 * never inside pixel loops, so contention is irrelevant; simplicity and
 * correctness win. Recording is gated by the experiment layer
 * (EVRSIM_METRICS), so the default path costs nothing but the
 * enabled-check.
 *
 * Identity: a metric instance is (name, sorted label set). Re-recording
 * with the same identity accumulates (counter/histogram) or overwrites
 * (gauge). Types are sticky: the first use of a name fixes its type and
 * a mismatched later use is counted in `evrsim_metrics_type_conflicts`
 * rather than corrupting the series.
 */
#ifndef EVRSIM_COMMON_METRICS_HPP
#define EVRSIM_COMMON_METRICS_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace evrsim {

/** Label set attached to a metric sample ({{"workload","ccs"},...}). */
using MetricLabels = std::map<std::string, std::string>;

/** Add @p delta (>= 0) to a monotonically increasing counter. */
void metricsCounterAdd(const std::string &name, double delta,
                       const MetricLabels &labels = {});

/** Set a gauge to the latest observed value. */
void metricsGaugeSet(const std::string &name, double value,
                     const MetricLabels &labels = {});

/**
 * Record one observation into a histogram. Buckets default to a
 * geometric ladder spanning sub-millisecond to minutes (fits wall-time
 * in ms); call metricsHistogramDefine first for a custom ladder.
 */
void metricsHistogramObserve(const std::string &name, double value,
                             const MetricLabels &labels = {});

/**
 * Fix the bucket upper bounds (ascending, +Inf implied) used by every
 * instance of histogram @p name. No-op once the histogram has samples.
 */
void metricsHistogramDefine(const std::string &name,
                            const std::vector<double> &upper_bounds);

/**
 * Merge pre-aggregated histogram data — per-bucket count deltas
 * (including the +Inf overflow slot), a sum delta and a count delta —
 * into the instance (name, labels). A name never seen locally adopts
 * @p bounds as its ladder; a later merge whose bounds disagree (or a
 * sticky-kind conflict) drops the sample and counts a type conflict.
 * The fleet control plane uses this to fold shard histogram snapshots
 * into the merged registry without replaying observations.
 */
void metricsHistogramMergeDelta(
    const std::string &name, const MetricLabels &labels,
    const std::vector<double> &bounds,
    const std::vector<std::uint64_t> &count_deltas, double sum_delta,
    std::uint64_t count_delta);

/** Drop every recorded metric (tests; batch boundaries). */
void metricsReset();

/** Number of distinct metric instances currently recorded. */
std::size_t metricsInstanceCount();

/** Samples dropped so far because a name was re-used with another type
 *  (or an incompatible histogram ladder was merged). */
std::uint64_t metricsTypeConflicts();

/**
 * Fetch the current value of a counter/gauge instance. Unavailable when
 * the instance does not exist (exact name + labels match).
 */
Result<double> metricsValue(const std::string &name,
                            const MetricLabels &labels = {});

/**
 * Serialize the registry as JSON: `{"schema":1,"metrics":[...]}` with
 * one entry per instance carrying name/type/labels and either `value`
 * (counter, gauge) or `buckets`/`sum`/`count` (histogram). Entries are
 * sorted by (name, labels) so output is deterministic.
 */
std::string metricsToJson();

/** Serialize in Prometheus text exposition format (# TYPE lines,
 *  `name{label="v"} value`, histogram `_bucket`/`_sum`/`_count`). */
std::string metricsToProm();

/** Write metricsToJson() / metricsToProm() atomically to @p path. */
Status metricsWriteJson(const std::string &path);
Status metricsWriteProm(const std::string &path);

} // namespace evrsim

#endif // EVRSIM_COMMON_METRICS_HPP
