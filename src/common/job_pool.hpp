/**
 * @file
 * JobPool: a small fixed-size thread pool for the experiment scheduler.
 *
 * The pool exists to parallelize *independent* simulations — each job
 * owns its own GpuSimulator/MemorySystem/Scene, so workers never share
 * simulator state and parallel results are bit-identical to serial ones.
 *
 * A pool of size 1 runs every job inline on the submitting thread, which
 * restores the exact serial execution order (and stack) of a plain loop;
 * `EVRSIM_JOBS=1` therefore reproduces the historical serial bench path.
 */
#ifndef EVRSIM_COMMON_JOB_POOL_HPP
#define EVRSIM_COMMON_JOB_POOL_HPP

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace evrsim {

/** Fixed-size worker pool with a FIFO job queue. */
class JobPool
{
  public:
    /**
     * @param threads number of workers (>= 1). With 1, jobs execute
     *                inline in submit() and no thread is spawned.
     */
    explicit JobPool(int threads);

    /** Drains the queue (waits for pending jobs), then joins workers. */
    ~JobPool();

    JobPool(const JobPool &) = delete;
    JobPool &operator=(const JobPool &) = delete;

    /**
     * Enqueue one job. A job that throws does NOT take down the pool
     * (or the process): the exception is caught at the worker boundary,
     * its message recorded, and the worker moves on to the next job.
     * Escaped exceptions are job-level faults — retrieve them with
     * drainFailures() after wait().
     */
    void submit(std::function<void()> job);

    /** Block until every submitted job has finished executing. */
    void wait();

    /**
     * Run a batch of jobs to completion, safely callable from *inside*
     * a pool job (nested submission). Plain submit()+wait() would
     * deadlock there: wait() blocks until the global pending count hits
     * zero, which includes the very job doing the waiting.
     *
     * runBatch() instead parks one claim ticket per job on the shared
     * queue (so idle workers can steal batch work) and turns the
     * calling thread into a helper: it keeps claiming and running its
     * own batch's jobs, and only sleeps once every job is being run by
     * some other worker. Batch jobs are expected to be leaves with
     * respect to wait() — they may themselves call runBatch(), but
     * must never call wait() on this pool.
     *
     * Unlike submit(), an exception escaping a batch job is NOT
     * recorded as a pool failure: all jobs still run to completion,
     * then the lowest-index captured exception is rethrown on the
     * calling thread — deterministic regardless of execution order.
     * With 1 thread (or from any context), jobs run in index order on
     * the calling thread, reproducing the serial path exactly.
     */
    void runBatch(std::vector<std::function<void()>> jobs);

    /**
     * Messages of exceptions that escaped jobs since the last drain,
     * in completion order. Call after wait() for a stable view.
     */
    std::vector<std::string> drainFailures();

    /** Number of escaped-exception failures recorded so far. */
    std::size_t failureCount() const;

    /** Jobs queued or currently running (heartbeat telemetry). */
    std::size_t pendingCount() const;

    int threadCount() const { return threads_; }

    /** Default worker count: hardware_concurrency, at least 1. */
    static int defaultThreads();

  private:
    /** Shared state of one runBatch() call. Jobs are claimed by
     *  bumping next_ under the pool mutex; each errors_ slot is
     *  written by exactly one runner (the mutex-guarded finished_
     *  decrement publishes it to the batch owner). */
    struct BatchState;

    void workerLoop();

    /** Run @p job, capturing any escaping exception as a failure. */
    void runGuarded(std::function<void()> &job);

    /** Claim-and-run loop shared by workers and the batch owner.
     *  Runs at most one job; returns false when nothing was left to
     *  claim. */
    bool runOneBatchJob(BatchState &batch);

    int threads_;
    std::vector<std::thread> workers_;

    /** A queued job plus its submit timestamp, so the worker that
     *  dequeues it can emit a driver-level queue-wait trace span
     *  (0 when tracing was off at submit time). A non-null batch
     *  makes this a claim ticket for one job of that batch instead
     *  of a directly runnable function. */
    struct QueuedJob {
        std::function<void()> fn;
        std::shared_ptr<BatchState> batch;
        std::uint64_t enqueue_ns = 0;
    };

    mutable std::mutex mu_;
    std::condition_variable work_ready_;  ///< queue non-empty or stopping
    std::condition_variable all_done_;    ///< pending_ reached zero
    std::deque<QueuedJob> queue_;
    std::vector<std::string> failures_; ///< escaped-exception messages
    std::size_t pending_ = 0; ///< queued + currently-running jobs
    bool stop_ = false;
};

} // namespace evrsim

#endif // EVRSIM_COMMON_JOB_POOL_HPP
