/**
 * @file
 * ChaosInjector implementation.
 */
#include "common/chaos.hpp"

#include <cstdlib>

#include "common/env.hpp"
#include "common/fault_injector.hpp" // mix64
#include "common/log.hpp"

namespace evrsim {

namespace {

Result<ChaosSite>
siteFromName(const std::string &name)
{
    for (int i = 0; i < kNumChaosSites; ++i) {
        ChaosSite site = static_cast<ChaosSite>(i);
        if (name == chaosSiteName(site))
            return site;
    }
    return Status::invalidArgument(
        "unknown chaos site '" + name +
        "' (expected worker-kill9, worker-stall, wire-corrupt, "
        "wire-drop, wire-dup, net-partition, net-delay, net-reset "
        "or net-reconnect-storm)");
}

/** 53-bit mantissa draw in [0, 1) from one mixed word. */
double
unitDraw(std::uint64_t mixed)
{
    return static_cast<double>(mixed >> 11) * 0x1.0p-53;
}

} // namespace

const char *
chaosSiteName(ChaosSite site)
{
    switch (site) {
      case ChaosSite::WorkerKill9:
        return "worker-kill9";
      case ChaosSite::WorkerStall:
        return "worker-stall";
      case ChaosSite::WireCorrupt:
        return "wire-corrupt";
      case ChaosSite::WireDrop:
        return "wire-drop";
      case ChaosSite::WireDup:
        return "wire-dup";
      case ChaosSite::NetPartition:
        return "net-partition";
      case ChaosSite::NetDelay:
        return "net-delay";
      case ChaosSite::NetReset:
        return "net-reset";
      case ChaosSite::NetReconnectStorm:
        return "net-reconnect-storm";
    }
    return "unknown";
}

Result<ChaosPlan>
ChaosInjector::parsePlan(const std::string &text)
{
    ChaosPlan plan;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        std::size_t comma = text.find(',', pos);
        std::string entry = text.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        std::size_t c1 = entry.find(':');
        std::size_t c2 =
            c1 == std::string::npos ? std::string::npos
                                    : entry.find(':', c1 + 1);
        if (c1 == std::string::npos || c2 == std::string::npos)
            return Status::invalidArgument(
                "malformed chaos spec '" + entry +
                "' (expected <site>:<rate>:<seed>)");

        Result<ChaosSite> site = siteFromName(entry.substr(0, c1));
        if (!site.ok())
            return site.status();

        Result<double> rate =
            parseDoubleStrict(entry.substr(c1 + 1, c2 - c1 - 1));
        if (!rate.ok() || rate.value() < 0.0 || rate.value() > 1.0)
            return Status::invalidArgument(
                "chaos rate in '" + entry +
                "' must be a number in [0, 1]");

        Result<long long> seed = parseIntStrict(entry.substr(c2 + 1));
        if (!seed.ok() || seed.value() < 0)
            return Status::invalidArgument(
                "chaos seed in '" + entry +
                "' must be a non-negative integer");

        ChaosSpec &spec = plan[static_cast<int>(site.value())];
        spec.enabled = true;
        spec.rate = rate.value();
        spec.seed = static_cast<std::uint64_t>(seed.value());

        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return plan;
}

ChaosPlan
ChaosInjector::planFromEnv()
{
    const char *raw = std::getenv("EVRSIM_CHAOS");
    if (!raw)
        return {};
    Result<ChaosPlan> plan = parsePlan(raw);
    if (!plan.ok())
        fatal("EVRSIM_CHAOS: %s", plan.status().message().c_str());
    return plan.value();
}

bool
ChaosInjector::shouldFire(ChaosSite site)
{
    const int i = static_cast<int>(site);
    const ChaosSpec &spec = plan_[i];
    if (!spec.enabled)
        return false;
    std::uint64_t n = draws_[i].fetch_add(1, std::memory_order_relaxed);
    // [0, 1) draw compared with < rate, so rate 0 never fires and
    // rate 1 always does.
    double u = unitDraw(mix64(spec.seed ^ mix64(n)));
    if (u >= spec.rate)
        return false;
    fired_[i].fetch_add(1, std::memory_order_relaxed);
    return true;
}

std::uint64_t
ChaosInjector::fired(ChaosSite site) const
{
    return fired_[static_cast<int>(site)].load(
        std::memory_order_relaxed);
}

std::uint64_t
ChaosInjector::draws(ChaosSite site) const
{
    return draws_[static_cast<int>(site)].load(std::memory_order_relaxed);
}

std::string
applyWireChaos(ChaosInjector &chaos, std::string line)
{
    if (chaos.shouldFire(ChaosSite::WireCorrupt) && line.size() > 1) {
        // Flip one byte that is not the terminating newline. The
        // position rides the corrupt stream's fired counter so
        // repeated corruption walks the line deterministically.
        const ChaosSpec &spec = chaos.spec(ChaosSite::WireCorrupt);
        std::uint64_t n = chaos.fired(ChaosSite::WireCorrupt);
        std::size_t idx = static_cast<std::size_t>(
            mix64(spec.seed ^ (n * 0x632be59bd9b4e019ull)) %
            (line.size() - 1));
        line[idx] = static_cast<char>(line[idx] ^ 0x20);
    }
    if (chaos.shouldFire(ChaosSite::WireDrop))
        return {};
    if (chaos.shouldFire(ChaosSite::WireDup))
        return line + line;
    return line;
}

} // namespace evrsim
