/**
 * @file
 * JobPool implementation.
 */
#include "common/job_pool.hpp"

#include "common/log.hpp"
#include "common/trace.hpp"

namespace evrsim {

struct JobPool::BatchState {
    std::vector<std::function<void()>> jobs;
    std::size_t next = 0;     ///< first unclaimed index (guarded by mu_)
    std::size_t finished = 0; ///< completed jobs (guarded by mu_)
    std::vector<std::exception_ptr> errors; ///< slot i: job i's escapee
    std::condition_variable done; ///< finished == jobs.size()
};

JobPool::JobPool(int threads) : threads_(threads)
{
    EVRSIM_ASSERT(threads_ >= 1);
    if (threads_ == 1)
        return; // inline mode: no workers
    workers_.reserve(static_cast<std::size_t>(threads_));
    for (int i = 0; i < threads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

JobPool::~JobPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    work_ready_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
JobPool::runGuarded(std::function<void()> &job)
{
    // Fault isolation: one job's escaped exception must cost one
    // result, not the pool (std::thread would std::terminate on an
    // unwound worker stack, killing every in-flight simulation).
    try {
        job();
    } catch (const std::exception &e) {
        std::lock_guard<std::mutex> lock(mu_);
        failures_.emplace_back(e.what());
    } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        failures_.emplace_back("non-std exception escaped a job");
    }
}

void
JobPool::submit(std::function<void()> job)
{
    EVRSIM_ASSERT(job != nullptr);
    if (threads_ == 1) {
        // Serial path: execute in submission order, same thread.
        runGuarded(job);
        return;
    }
    QueuedJob queued;
    queued.fn = std::move(job);
    if (traceEnabled(TraceCat::Driver))
        queued.enqueue_ns = traceNowNs();
    {
        std::lock_guard<std::mutex> lock(mu_);
        EVRSIM_ASSERT(!stop_);
        queue_.push_back(std::move(queued));
        ++pending_;
    }
    work_ready_.notify_one();
}

void
JobPool::wait()
{
    if (threads_ == 1)
        return;
    std::unique_lock<std::mutex> lock(mu_);
    all_done_.wait(lock, [this] { return pending_ == 0; });
}

bool
JobPool::runOneBatchJob(BatchState &batch)
{
    std::size_t index;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (batch.next >= batch.jobs.size())
            return false; // every job already claimed by some runner
        index = batch.next++;
    }
    try {
        batch.jobs[index]();
    } catch (...) {
        // Not a pool failure: the batch owner rethrows deterministically.
        batch.errors[index] = std::current_exception();
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (++batch.finished == batch.jobs.size())
            batch.done.notify_all();
    }
    return true;
}

void
JobPool::runBatch(std::vector<std::function<void()>> jobs)
{
    if (jobs.empty())
        return;
    auto batch = std::make_shared<BatchState>();
    batch->jobs = std::move(jobs);
    batch->errors.resize(batch->jobs.size());

    if (threads_ == 1) {
        // Serial path: index order on the calling thread, no queue.
        for (std::size_t i = 0; i < batch->jobs.size(); ++i) {
            try {
                batch->jobs[i]();
            } catch (...) {
                batch->errors[i] = std::current_exception();
            }
        }
    } else {
        // Park one claim ticket per job so idle workers can steal
        // batch work; pending_ covers the tickets so wait() callers
        // still see a quiescent pool only after the tickets drain.
        std::uint64_t enqueue_ns =
            traceEnabled(TraceCat::Driver) ? traceNowNs() : 0;
        {
            std::lock_guard<std::mutex> lock(mu_);
            EVRSIM_ASSERT(!stop_);
            for (std::size_t i = 0; i < batch->jobs.size(); ++i) {
                QueuedJob ticket;
                ticket.batch = batch;
                ticket.enqueue_ns = enqueue_ns;
                queue_.push_back(std::move(ticket));
            }
            pending_ += batch->jobs.size();
        }
        work_ready_.notify_all();

        // Helping wait: the owner claims and runs its own batch's jobs
        // until none are left, then sleeps only while stolen jobs are
        // still running elsewhere. Never blocks with claimable work in
        // hand, so nested calls from inside pool jobs cannot deadlock.
        while (runOneBatchJob(*batch)) {
        }
        {
            std::unique_lock<std::mutex> lock(mu_);
            batch->done.wait(lock, [&] {
                return batch->finished == batch->jobs.size();
            });
        }
    }

    // Deterministic failure surface: lowest-index escapee wins, no
    // matter which thread ran it or when it finished.
    for (std::exception_ptr &err : batch->errors)
        if (err)
            std::rethrow_exception(err);
}

void
JobPool::workerLoop()
{
    for (;;) {
        QueuedJob job;
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_ready_.wait(lock,
                             [this] { return stop_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stop_ set and nothing left to run
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        if (job.enqueue_ns != 0 && traceEnabled(TraceCat::Driver)) {
            std::uint64_t now = traceNowNs();
            traceComplete(TraceCat::Driver, "queue-wait", job.enqueue_ns,
                          now > job.enqueue_ns ? now - job.enqueue_ns : 0);
        }
        if (job.batch) {
            // Claim ticket: run one job of the batch if any remain
            // unclaimed (the owner's helping loop may have beaten us).
            runOneBatchJob(*job.batch);
        } else {
            runGuarded(job.fn);
        }
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (--pending_ == 0)
                all_done_.notify_all();
        }
    }
}

std::vector<std::string>
JobPool::drainFailures()
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    out.swap(failures_);
    return out;
}

std::size_t
JobPool::failureCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return failures_.size();
}

std::size_t
JobPool::pendingCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return pending_;
}

int
JobPool::defaultThreads()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

} // namespace evrsim
