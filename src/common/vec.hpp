/**
 * @file
 * Small fixed-size vector types used throughout the renderer.
 *
 * Only the operations the pipeline actually needs are provided; the types
 * are aggregates so they stay trivially copyable and friendly to arrays.
 */
#ifndef EVRSIM_COMMON_VEC_HPP
#define EVRSIM_COMMON_VEC_HPP

#include <cmath>
#include <cstdint>

namespace evrsim {

/** 2-component float vector (texture coordinates, screen positions). */
struct Vec2 {
    float x = 0.0f;
    float y = 0.0f;

    constexpr Vec2 operator+(const Vec2 &o) const { return {x + o.x, y + o.y}; }
    constexpr Vec2 operator-(const Vec2 &o) const { return {x - o.x, y - o.y}; }
    constexpr Vec2 operator*(float s) const { return {x * s, y * s}; }
    constexpr bool operator==(const Vec2 &o) const = default;
};

/** 3-component float vector (object-space positions, normals, RGB). */
struct Vec3 {
    float x = 0.0f;
    float y = 0.0f;
    float z = 0.0f;

    constexpr Vec3 operator+(const Vec3 &o) const
    {
        return {x + o.x, y + o.y, z + o.z};
    }
    constexpr Vec3 operator-(const Vec3 &o) const
    {
        return {x - o.x, y - o.y, z - o.z};
    }
    constexpr Vec3 operator*(float s) const { return {x * s, y * s, z * s}; }
    constexpr Vec3 operator*(const Vec3 &o) const
    {
        return {x * o.x, y * o.y, z * o.z};
    }
    constexpr bool operator==(const Vec3 &o) const = default;

    constexpr float dot(const Vec3 &o) const
    {
        return x * o.x + y * o.y + z * o.z;
    }

    constexpr Vec3 cross(const Vec3 &o) const
    {
        return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
    }

    float length() const { return std::sqrt(dot(*this)); }

    /** Unit-length copy; returns +X for (near-)zero vectors. */
    Vec3
    normalized() const
    {
        float len = length();
        if (len < 1e-20f)
            return {1.0f, 0.0f, 0.0f};
        return *this * (1.0f / len);
    }
};

/** 4-component float vector (homogeneous positions, RGBA colors). */
struct Vec4 {
    float x = 0.0f;
    float y = 0.0f;
    float z = 0.0f;
    float w = 0.0f;

    constexpr Vec4 operator+(const Vec4 &o) const
    {
        return {x + o.x, y + o.y, z + o.z, w + o.w};
    }
    constexpr Vec4 operator-(const Vec4 &o) const
    {
        return {x - o.x, y - o.y, z - o.z, w - o.w};
    }
    constexpr Vec4 operator*(float s) const
    {
        return {x * s, y * s, z * s, w * s};
    }
    constexpr bool operator==(const Vec4 &o) const = default;

    constexpr float dot(const Vec4 &o) const
    {
        return x * o.x + y * o.y + z * o.z + w * o.w;
    }

    constexpr Vec3 xyz() const { return {x, y, z}; }
};

/** Linear interpolation between two scalars. */
constexpr float
lerp(float a, float b, float t)
{
    return a + (b - a) * t;
}

/** Linear interpolation between two Vec3. */
constexpr Vec3
lerp(const Vec3 &a, const Vec3 &b, float t)
{
    return a + (b - a) * t;
}

/** Linear interpolation between two Vec4. */
constexpr Vec4
lerp(const Vec4 &a, const Vec4 &b, float t)
{
    return a + (b - a) * t;
}

/** Clamp a scalar to [lo, hi]. */
constexpr float
clampf(float v, float lo, float hi)
{
    return v < lo ? lo : (v > hi ? hi : v);
}

/** Clamp an integer to [lo, hi]. */
constexpr int
clampi(int v, int lo, int hi)
{
    return v < lo ? lo : (v > hi ? hi : v);
}

} // namespace evrsim

#endif // EVRSIM_COMMON_VEC_HPP
