/**
 * @file
 * Logging and error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * Two terminating reporters are provided with distinct intents:
 *  - panic():  an internal invariant was violated (a simulator bug).
 *              Aborts, so a debugger/core dump lands at the fault.
 *  - fatal():  the simulation cannot continue because of a user error
 *              (bad configuration, invalid arguments). Exits cleanly.
 *
 * Non-terminating reporters:
 *  - warn():   something works but is suspicious or approximated.
 *  - inform(): normal status messages.
 */
#ifndef EVRSIM_COMMON_LOG_HPP
#define EVRSIM_COMMON_LOG_HPP

#include <cstdarg>
#include <string>

namespace evrsim {

/** Verbosity levels for inform() filtering. */
enum class LogLevel {
    Quiet = 0,   ///< only warnings and errors
    Normal = 1,  ///< default
    Verbose = 2, ///< per-frame chatter
};

/** Set the global verbosity for inform()/informv(). */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

/**
 * Report an internal invariant violation and abort.
 * Use for conditions that indicate a simulator bug.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user-caused error and exit(1).
 * Use for bad configurations or arguments.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious-but-survivable condition to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal status to stdout (suppressed at LogLevel::Quiet). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report verbose status (only shown at LogLevel::Verbose). */
void informv(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Assertion macro that survives NDEBUG builds.
 * Evaluates @p cond once; on failure panics with file/line context.
 */
#define EVRSIM_ASSERT(cond, ...)                                             \
    do {                                                                     \
        if (!(cond)) {                                                       \
            ::evrsim::panic("assertion '%s' failed at %s:%d", #cond,         \
                            __FILE__, __LINE__);                             \
        }                                                                    \
    } while (0)

} // namespace evrsim

#endif // EVRSIM_COMMON_LOG_HPP
