/**
 * @file
 * Deterministic chaos orchestration for the sharded worker fleet.
 *
 * The PR 2 fault injector (fault_injector.hpp) perturbs *logical*
 * operations — a cache read reports DataLoss, a job attempt reports
 * Unavailable. Chaos perturbs the *process and wire* layer underneath
 * the fleet: a worker shard dies on SIGKILL mid-run, stalls past its
 * ping deadline, or damages the enveloped bytes it writes back to the
 * daemon. That is the failure vocabulary the ShardFleet supervisor
 * (service/fleet.hpp) must absorb, and chaos makes each failure
 * reproducible enough to assert on from ctest.
 *
 * Chaos is enabled through EVRSIM_CHAOS, the same comma-separated
 * `<site>:<rate>:<seed>` grammar as EVRSIM_FAULT:
 *
 *   EVRSIM_CHAOS=worker-kill9:0.05:11       5% of runs raise SIGKILL
 *   EVRSIM_CHAOS=wire-corrupt:1:3,wire-dup:0.2:4
 *
 * Sites (all evaluated inside the shard process, which inherits the
 * daemon's environment):
 *   worker-kill9   the shard raises SIGKILL at the start of a run —
 *                  the daemon sees EOF on the pipe with the run
 *                  in flight (breaker failure, failover, restart)
 *   worker-stall   the shard sleeps kChaosStallMs before handling a
 *                  message, so the parent's ping deadline fires
 *   wire-corrupt   one byte of an outgoing framed line is flipped
 *                  (the envelope CRC or parse catches it: DataLoss)
 *   wire-drop      an outgoing framed line is silently discarded
 *                  (the daemon's run deadline catches it)
 *   wire-dup       an outgoing framed line is written twice (the
 *                  daemon must tolerate stray responses; the client
 *                  must reject non-monotone progress)
 *
 * Network sites (evaluated at the TCP transport's framed writes — the
 * control plane's sends apply net sites only; a remote shard's sends
 * apply wire sites then net sites):
 *   net-partition  the connection is blackholed for kChaosPartitionMs:
 *                  outgoing frames silently vanish, so the peer's
 *                  lease/run deadline fires and the shard is fenced
 *   net-delay      an outgoing frame is held kChaosNetDelayMs before
 *                  the write (reordering pressure on deadlines)
 *   net-reset      the connection is torn down mid-frame (half the
 *                  frame is written, then the socket is shut down),
 *                  modelling an RST: the reader sees a torn tail
 *   net-reconnect-storm
 *                  a remote shard voluntarily drops its control-plane
 *                  connection and immediately re-dials, exercising
 *                  the register/reject/re-register path under load
 *
 * Decisions are a pure function of (site seed, per-site draw counter)
 * via the shared mix64 primitive, exactly like the fault injector: the
 * first chaos event of a quiet-start sweep is fully deterministic, and
 * a restarted shard starts a fresh counter stream (so a kill decision
 * does not chase a job across restarts the way a keyed draw would —
 * that would make the injected failure permanent instead of transient).
 * When EVRSIM_CHAOS is unset every site is one predictable branch.
 */
#ifndef EVRSIM_COMMON_CHAOS_HPP
#define EVRSIM_COMMON_CHAOS_HPP

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.hpp"

namespace evrsim {

/** Process/wire-level chaos sites (EVRSIM_CHAOS names). */
enum class ChaosSite {
    WorkerKill9 = 0,
    WorkerStall = 1,
    WireCorrupt = 2,
    WireDrop = 3,
    WireDup = 4,
    NetPartition = 5,
    NetDelay = 6,
    NetReset = 7,
    NetReconnectStorm = 8,
};
constexpr int kNumChaosSites = 9;

/**
 * How long a worker-stall sleeps: comfortably past any test ping
 * deadline, short enough that a soak with a few stalls stays fast
 * (the parent SIGKILLs the stalled shard at breaker-open anyway).
 */
constexpr int kChaosStallMs = 2500;

/**
 * How long a net-partition blackholes a connection: past any test
 * lease deadline (so the fence fires) but bounded, so a soaked
 * connection heals and the shard can re-register within the soak's
 * wall-clock budget.
 */
constexpr int kChaosPartitionMs = 2500;

/** How long a net-delay holds a frame: deadline pressure, not a fence. */
constexpr int kChaosNetDelayMs = 150;

/** Human name used in EVRSIM_CHAOS specs ("worker-kill9"). */
const char *chaosSiteName(ChaosSite site);

/** Per-site chaos configuration. */
struct ChaosSpec {
    bool enabled = false;
    double rate = 0.0;      ///< probability of firing per draw, [0, 1]
    std::uint64_t seed = 0; ///< stream seed for deterministic draws
};

using ChaosPlan = std::array<ChaosSpec, kNumChaosSites>;

/** Seeded per-site chaos source. Thread-safe. */
class ChaosInjector
{
  public:
    /** All sites disabled. */
    ChaosInjector() = default;

    explicit ChaosInjector(const ChaosPlan &plan) : plan_(plan) {}

    /** Parse an EVRSIM_CHAOS spec string ("site:rate:seed[,...]"). */
    static Result<ChaosPlan> parsePlan(const std::string &text);

    /**
     * Plan from the EVRSIM_CHAOS environment variable; all-disabled
     * when unset, fatal (user error) when malformed.
     */
    static ChaosPlan planFromEnv();

    /** Whether any site can fire. */
    bool
    enabled() const
    {
        for (const ChaosSpec &s : plan_)
            if (s.enabled)
                return true;
        return false;
    }

    /**
     * Draw the next decision for @p site: true = inject the event.
     * Deterministic in the number of prior draws for the site.
     */
    bool shouldFire(ChaosSite site);

    /** Per-site configuration (tests). */
    const ChaosSpec &
    spec(ChaosSite site) const
    {
        return plan_[static_cast<int>(site)];
    }

    /** Events fired at @p site so far. */
    std::uint64_t fired(ChaosSite site) const;

    /** Decisions drawn at @p site so far. */
    std::uint64_t draws(ChaosSite site) const;

  private:
    ChaosPlan plan_;
    std::array<std::atomic<std::uint64_t>, kNumChaosSites> draws_{};
    std::array<std::atomic<std::uint64_t>, kNumChaosSites> fired_{};
};

/**
 * Apply the wire chaos sites to one outgoing newline-terminated framed
 * line, drawing (in order) wire-corrupt, wire-drop, wire-dup from
 * @p chaos. Returns the bytes to actually write:
 *  - unchanged when nothing fires,
 *  - with one non-newline byte XOR-flipped (wire-corrupt; the flip
 *    position is a deterministic function of the corrupt stream),
 *  - empty (wire-drop),
 *  - the line twice (wire-dup).
 * Corrupt composes with dup (both copies damaged); drop wins over dup.
 */
std::string applyWireChaos(ChaosInjector &chaos, std::string line);

} // namespace evrsim

#endif // EVRSIM_COMMON_CHAOS_HPP
