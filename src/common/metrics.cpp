/**
 * @file
 * Metrics registry implementation.
 *
 * Hand-written JSON (common/ cannot depend on driver/json.hpp); the
 * tests round-trip the output through the driver parser to prove it is
 * well-formed. Numbers are emitted as integers when integral so
 * counter totals compare exactly against the printed tables.
 */
#include "common/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <mutex>

#include "common/atomic_file.hpp"

namespace evrsim {

namespace {

enum class Kind { Counter, Gauge, Histogram };

const char *
kindName(Kind k)
{
    switch (k) {
    case Kind::Counter:
        return "counter";
    case Kind::Gauge:
        return "gauge";
    case Kind::Histogram:
        return "histogram";
    }
    return "?";
}

struct Instance {
    Kind kind = Kind::Counter;
    MetricLabels labels;
    double value = 0;                 // counter / gauge
    std::vector<double> bounds;       // histogram upper bounds
    std::vector<std::uint64_t> counts; // per-bucket (+1 overflow slot)
    double sum = 0;
    std::uint64_t count = 0;
};

struct Registry {
    std::mutex mu;
    // name -> (serialized labels -> instance); the outer map also pins
    // the sticky kind and custom histogram bounds per name.
    std::map<std::string, std::map<std::string, Instance>> series;
    std::map<std::string, Kind> kinds;
    std::map<std::string, std::vector<double>> custom_bounds;
    std::uint64_t type_conflicts = 0;
};

Registry &
registry()
{
    static Registry *r = new Registry; // never destroyed (atexit order)
    return *r;
}

/** Wall-time-in-ms friendly default ladder: 0.1ms .. 100s. */
std::vector<double>
defaultBounds()
{
    return {0.1, 0.25, 0.5, 1, 2.5, 5,    10,   25,   50,
            100, 250,  500, 1000, 2500, 5000, 10000, 100000};
}

std::string
labelsKey(const MetricLabels &labels)
{
    std::string key;
    for (const auto &kv : labels) { // std::map: already sorted
        key += kv.first;
        key += '\x1f';
        key += kv.second;
        key += '\x1e';
    }
    return key;
}

/** Locked lookup-or-create; null when the name is bound to another kind. */
Instance *
instance(Registry &r, const std::string &name, Kind kind,
         const MetricLabels &labels)
{
    auto kit = r.kinds.find(name);
    if (kit == r.kinds.end()) {
        r.kinds[name] = kind;
    } else if (kit->second != kind) {
        ++r.type_conflicts;
        return nullptr;
    }
    Instance &inst = r.series[name][labelsKey(labels)];
    if (inst.counts.empty() && kind == Kind::Histogram) {
        auto bit = r.custom_bounds.find(name);
        inst.bounds =
            bit != r.custom_bounds.end() ? bit->second : defaultBounds();
        inst.counts.assign(inst.bounds.size() + 1, 0);
    }
    if (inst.labels.empty() && !labels.empty())
        inst.labels = labels;
    inst.kind = kind;
    return &inst;
}

/** Shortest-exact double formatting; integral values print as integers
 *  so JSON totals compare exactly with printed tables. */
std::string
formatNumber(double v)
{
    if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.0f", v);
        return buf;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (unsigned char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
}

/** Prometheus label-value escaping. The text exposition format defines
 *  exactly three escapes inside quoted label values — backslash,
 *  double-quote and newline; everything else passes through verbatim.
 *  Centralized here so hostile workload/config/shard labels can never
 *  tear a quoted value open or smuggle a line break into the output. */
std::string
promEscapeLabelValue(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '\\':
            out += "\\\\";
            break;
        case '"':
            out += "\\\"";
            break;
        case '\n':
            out += "\\n";
            break;
        default:
            out += c;
        }
    }
    return out;
}

/** Prometheus label names must match [a-zA-Z_][a-zA-Z0-9_]*. Quoting
 *  is not available for names, so out-of-charset bytes map to '_'
 *  (and a leading digit gets a '_' prefix) rather than being emitted
 *  raw, which would malform every line mentioning the label. */
std::string
promSanitizeLabelName(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 1);
    for (char c : s) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  c == '_' || (!out.empty() && c >= '0' && c <= '9');
        out += ok ? c : '_';
    }
    if (out.empty())
        out = "_";
    return out;
}

/** Prometheus label block: {a="x",b="y"} or empty. */
std::string
promLabels(const MetricLabels &labels)
{
    if (labels.empty())
        return "";
    std::string out = "{";
    bool first = true;
    for (const auto &kv : labels) {
        if (!first)
            out += ',';
        first = false;
        out += promSanitizeLabelName(kv.first);
        out += "=\"";
        out += promEscapeLabelValue(kv.second);
        out += '"';
    }
    out += '}';
    return out;
}

std::string
promBound(double v)
{
    if (std::isinf(v))
        return "+Inf";
    return formatNumber(v);
}

} // namespace

void
metricsCounterAdd(const std::string &name, double delta,
                  const MetricLabels &labels)
{
    if (delta < 0)
        return; // counters are monotone; ignore bad deltas
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    if (Instance *inst = instance(r, name, Kind::Counter, labels))
        inst->value += delta;
}

void
metricsGaugeSet(const std::string &name, double value,
                const MetricLabels &labels)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    if (Instance *inst = instance(r, name, Kind::Gauge, labels))
        inst->value = value;
}

void
metricsHistogramObserve(const std::string &name, double value,
                        const MetricLabels &labels)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    Instance *inst = instance(r, name, Kind::Histogram, labels);
    if (!inst)
        return;
    std::size_t b = 0;
    while (b < inst->bounds.size() && value > inst->bounds[b])
        ++b;
    ++inst->counts[b];
    inst->sum += value;
    ++inst->count;
}

void
metricsHistogramMergeDelta(const std::string &name,
                           const MetricLabels &labels,
                           const std::vector<double> &bounds,
                           const std::vector<std::uint64_t> &count_deltas,
                           double sum_delta, std::uint64_t count_delta)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    // A name never seen locally adopts the shipped bucket ladder.
    if (r.series.find(name) == r.series.end() &&
        r.custom_bounds.find(name) == r.custom_bounds.end())
        r.custom_bounds[name] = bounds;
    Instance *inst = instance(r, name, Kind::Histogram, labels);
    if (!inst)
        return; // sticky-kind conflict, already counted
    if (inst->bounds != bounds ||
        count_deltas.size() != inst->counts.size()) {
        // Incompatible ladders cannot be merged bucket-for-bucket;
        // dropping the sample and counting it beats corrupting the
        // series, same contract as a kind mismatch.
        ++r.type_conflicts;
        return;
    }
    for (std::size_t b = 0; b < count_deltas.size(); ++b)
        inst->counts[b] += count_deltas[b];
    inst->sum += sum_delta;
    inst->count += count_delta;
}

void
metricsHistogramDefine(const std::string &name,
                       const std::vector<double> &upper_bounds)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto sit = r.series.find(name);
    if (sit != r.series.end() && !sit->second.empty())
        return; // sticky once sampled
    std::vector<double> bounds = upper_bounds;
    std::sort(bounds.begin(), bounds.end());
    r.custom_bounds[name] = bounds;
}

void
metricsReset()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.series.clear();
    r.kinds.clear();
    r.custom_bounds.clear();
    r.type_conflicts = 0;
}

std::uint64_t
metricsTypeConflicts()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    return r.type_conflicts;
}

std::size_t
metricsInstanceCount()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    std::size_t n = 0;
    for (const auto &s : r.series)
        n += s.second.size();
    return n;
}

Result<double>
metricsValue(const std::string &name, const MetricLabels &labels)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto sit = r.series.find(name);
    if (sit == r.series.end())
        return Status::unavailable("no metric named '" + name + "'");
    auto iit = sit->second.find(labelsKey(labels));
    if (iit == sit->second.end())
        return Status::unavailable("no instance of '" + name +
                                   "' with those labels");
    if (iit->second.kind == Kind::Histogram)
        return iit->second.sum;
    return iit->second.value;
}

std::string
metricsToJson()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    std::string out = "{\"schema\":1,\"metrics\":[";
    bool first = true;
    for (const auto &s : r.series) { // map order: sorted by name
        for (const auto &i : s.second) { // sorted by label key
            const Instance &inst = i.second;
            if (!first)
                out += ',';
            first = false;
            out += "\n{\"name\":";
            appendEscaped(out, s.first);
            out += ",\"type\":\"";
            out += kindName(inst.kind);
            out += "\",\"labels\":{";
            bool lfirst = true;
            for (const auto &kv : inst.labels) {
                if (!lfirst)
                    out += ',';
                lfirst = false;
                appendEscaped(out, kv.first);
                out += ':';
                appendEscaped(out, kv.second);
            }
            out += '}';
            if (inst.kind == Kind::Histogram) {
                out += ",\"buckets\":[";
                for (std::size_t b = 0; b < inst.counts.size(); ++b) {
                    if (b)
                        out += ',';
                    out += "{\"le\":";
                    if (b < inst.bounds.size())
                        out += formatNumber(inst.bounds[b]);
                    else
                        out += "\"+Inf\"";
                    out += ",\"count\":" +
                           std::to_string(inst.counts[b]) + '}';
                }
                out += "],\"sum\":" + formatNumber(inst.sum) +
                       ",\"count\":" + std::to_string(inst.count);
            } else {
                out += ",\"value\":" + formatNumber(inst.value);
            }
            out += '}';
        }
    }
    out += "\n],\"type_conflicts\":" + std::to_string(r.type_conflicts) +
           "}\n";
    return out;
}

std::string
metricsToProm()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    std::string out;
    for (const auto &s : r.series) {
        const Kind kind = r.kinds.at(s.first);
        out += "# TYPE " + s.first + ' ' + kindName(kind) + '\n';
        for (const auto &i : s.second) {
            const Instance &inst = i.second;
            if (kind == Kind::Histogram) {
                std::uint64_t cum = 0;
                for (std::size_t b = 0; b < inst.counts.size(); ++b) {
                    cum += inst.counts[b];
                    MetricLabels ls = inst.labels;
                    ls["le"] = b < inst.bounds.size()
                                   ? promBound(inst.bounds[b])
                                   : "+Inf";
                    out += s.first + "_bucket" + promLabels(ls) + ' ' +
                           std::to_string(cum) + '\n';
                }
                out += s.first + "_sum" + promLabels(inst.labels) + ' ' +
                       formatNumber(inst.sum) + '\n';
                out += s.first + "_count" + promLabels(inst.labels) +
                       ' ' + std::to_string(inst.count) + '\n';
            } else {
                out += s.first + promLabels(inst.labels) + ' ' +
                       formatNumber(inst.value) + '\n';
            }
        }
    }
    return out;
}

Status
metricsWriteJson(const std::string &path)
{
    return atomicWriteFile(path, metricsToJson());
}

Status
metricsWriteProm(const std::string &path)
{
    return atomicWriteFile(path, metricsToProm());
}

} // namespace evrsim
