/**
 * @file
 * xoshiro256** implementation (public-domain reference algorithm).
 */
#include "common/rng.hpp"

#include "common/log.hpp"

namespace evrsim {

namespace {

/** SplitMix64 step, used to expand a single seed into generator state. */
std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    EVRSIM_ASSERT(bound > 0);
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next();
    unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
        std::uint64_t threshold = -bound % bound;
        while (low < threshold) {
            x = next();
            m = static_cast<unsigned __int128>(x) * bound;
            low = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t
Rng::nextRange(std::int64_t lo, std::int64_t hi)
{
    EVRSIM_ASSERT(lo <= hi);
    auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBelow(span));
}

float
Rng::nextFloat()
{
    // 24 high-quality bits -> [0, 1) float.
    return static_cast<float>(next() >> 40) * (1.0f / 16777216.0f);
}

float
Rng::nextFloat(float lo, float hi)
{
    return lo + (hi - lo) * nextFloat();
}

bool
Rng::nextBool(float p)
{
    return nextFloat() < p;
}

Rng
Rng::fork(std::uint64_t stream_id) const
{
    // Hash the parent state together with the stream id into a new seed.
    std::uint64_t mix = s_[0] ^ rotl(s_[3], 13) ^ (stream_id * 0xd6e8feb86659fd93ull);
    return Rng(mix);
}

} // namespace evrsim
