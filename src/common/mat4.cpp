/**
 * @file
 * Mat4 implementation.
 */
#include "common/mat4.hpp"

#include <cmath>

namespace evrsim {

Mat4
Mat4::identity()
{
    Mat4 r;
    for (int i = 0; i < 4; ++i)
        r.m[i][i] = 1.0f;
    return r;
}

Mat4
Mat4::translate(const Vec3 &t)
{
    Mat4 r = identity();
    r.m[3][0] = t.x;
    r.m[3][1] = t.y;
    r.m[3][2] = t.z;
    return r;
}

Mat4
Mat4::scale(const Vec3 &s)
{
    Mat4 r;
    r.m[0][0] = s.x;
    r.m[1][1] = s.y;
    r.m[2][2] = s.z;
    r.m[3][3] = 1.0f;
    return r;
}

Mat4
Mat4::rotateX(float radians)
{
    Mat4 r = identity();
    float c = std::cos(radians), s = std::sin(radians);
    r.m[1][1] = c;
    r.m[1][2] = s;
    r.m[2][1] = -s;
    r.m[2][2] = c;
    return r;
}

Mat4
Mat4::rotateY(float radians)
{
    Mat4 r = identity();
    float c = std::cos(radians), s = std::sin(radians);
    r.m[0][0] = c;
    r.m[0][2] = -s;
    r.m[2][0] = s;
    r.m[2][2] = c;
    return r;
}

Mat4
Mat4::rotateZ(float radians)
{
    Mat4 r = identity();
    float c = std::cos(radians), s = std::sin(radians);
    r.m[0][0] = c;
    r.m[0][1] = s;
    r.m[1][0] = -s;
    r.m[1][1] = c;
    return r;
}

Mat4
Mat4::perspective(float fovy_radians, float aspect, float z_near, float z_far)
{
    Mat4 r;
    float f = 1.0f / std::tan(fovy_radians * 0.5f);
    r.m[0][0] = f / aspect;
    r.m[1][1] = f;
    r.m[2][2] = (z_far + z_near) / (z_near - z_far);
    r.m[2][3] = -1.0f;
    r.m[3][2] = (2.0f * z_far * z_near) / (z_near - z_far);
    return r;
}

Mat4
Mat4::ortho(float left, float right, float bottom, float top, float z_near,
            float z_far)
{
    Mat4 r = identity();
    r.m[0][0] = 2.0f / (right - left);
    r.m[1][1] = 2.0f / (top - bottom);
    r.m[2][2] = -2.0f / (z_far - z_near);
    r.m[3][0] = -(right + left) / (right - left);
    r.m[3][1] = -(top + bottom) / (top - bottom);
    r.m[3][2] = -(z_far + z_near) / (z_far - z_near);
    return r;
}

Mat4
Mat4::lookAt(const Vec3 &eye, const Vec3 &center, const Vec3 &up)
{
    Vec3 f = (center - eye).normalized();
    Vec3 s = f.cross(up).normalized();
    Vec3 u = s.cross(f);

    Mat4 r = identity();
    r.m[0][0] = s.x;
    r.m[1][0] = s.y;
    r.m[2][0] = s.z;
    r.m[0][1] = u.x;
    r.m[1][1] = u.y;
    r.m[2][1] = u.z;
    r.m[0][2] = -f.x;
    r.m[1][2] = -f.y;
    r.m[2][2] = -f.z;
    r.m[3][0] = -s.dot(eye);
    r.m[3][1] = -u.dot(eye);
    r.m[3][2] = f.dot(eye);
    return r;
}

Mat4
Mat4::operator*(const Mat4 &other) const
{
    Mat4 r;
    for (int c = 0; c < 4; ++c) {
        for (int row = 0; row < 4; ++row) {
            float acc = 0.0f;
            for (int k = 0; k < 4; ++k)
                acc += m[k][row] * other.m[c][k];
            r.m[c][row] = acc;
        }
    }
    return r;
}

Vec4
Mat4::operator*(const Vec4 &v) const
{
    return {
        m[0][0] * v.x + m[1][0] * v.y + m[2][0] * v.z + m[3][0] * v.w,
        m[0][1] * v.x + m[1][1] * v.y + m[2][1] * v.z + m[3][1] * v.w,
        m[0][2] * v.x + m[1][2] * v.y + m[2][2] * v.z + m[3][2] * v.w,
        m[0][3] * v.x + m[1][3] * v.y + m[2][3] * v.z + m[3][3] * v.w,
    };
}

Vec4
Mat4::transformPoint(const Vec3 &p) const
{
    return (*this) * Vec4{p.x, p.y, p.z, 1.0f};
}

Vec3
Mat4::transformDir(const Vec3 &d) const
{
    Vec4 r = (*this) * Vec4{d.x, d.y, d.z, 0.0f};
    return r.xyz();
}

bool
Mat4::operator==(const Mat4 &other) const
{
    for (int c = 0; c < 4; ++c)
        for (int r = 0; r < 4; ++r)
            if (m[c][r] != other.m[c][r])
                return false;
    return true;
}

} // namespace evrsim
