/**
 * @file
 * Implementation of the logging helpers.
 *
 * Reporters are thread-safe: each message is formatted into a private
 * buffer first, then emitted as one line under a single global mutex, so
 * parallel scheduler workers never interleave partial lines.
 */
#include "common/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

namespace evrsim {

namespace {
LogLevel g_level = LogLevel::Normal;

std::mutex &
logMutex()
{
    static std::mutex mu;
    return mu;
}

void
vreport(FILE *stream, const char *prefix, const char *fmt, va_list ap)
{
    // Format outside the lock; emit the whole line in one locked write.
    char stack_buf[512];
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(stack_buf, sizeof(stack_buf), fmt, ap);
    if (n < 0) {
        va_end(ap2);
        return;
    }
    const char *msg = stack_buf;
    std::vector<char> heap_buf;
    if (static_cast<std::size_t>(n) >= sizeof(stack_buf)) {
        heap_buf.resize(static_cast<std::size_t>(n) + 1);
        std::vsnprintf(heap_buf.data(), heap_buf.size(), fmt, ap2);
        msg = heap_buf.data();
    }
    va_end(ap2);

    std::lock_guard<std::mutex> lock(logMutex());
    std::fputs(prefix, stream);
    std::fputs(msg, stream);
    std::fputc('\n', stream);
    std::fflush(stream);
}
} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport(stderr, "panic: ", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport(stderr, "fatal: ", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport(stderr, "warn: ", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (g_level < LogLevel::Normal)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport(stdout, "info: ", fmt, ap);
    va_end(ap);
}

void
informv(const char *fmt, ...)
{
    if (g_level < LogLevel::Verbose)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport(stdout, "info: ", fmt, ap);
    va_end(ap);
}

} // namespace evrsim
