/**
 * @file
 * Implementation of the logging helpers.
 */
#include "common/log.hpp"

#include <cstdio>
#include <cstdlib>

namespace evrsim {

namespace {
LogLevel g_level = LogLevel::Normal;

void
vreport(FILE *stream, const char *prefix, const char *fmt, va_list ap)
{
    std::fprintf(stream, "%s", prefix);
    std::vfprintf(stream, fmt, ap);
    std::fputc('\n', stream);
    std::fflush(stream);
}
} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport(stderr, "panic: ", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport(stderr, "fatal: ", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport(stderr, "warn: ", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (g_level < LogLevel::Normal)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport(stdout, "info: ", fmt, ap);
    va_end(ap);
}

void
informv(const char *fmt, ...)
{
    if (g_level < LogLevel::Verbose)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport(stdout, "info: ", fmt, ap);
    va_end(ap);
}

} // namespace evrsim
