/**
 * @file
 * Low-overhead scoped-span tracer emitting Chrome trace-event JSON.
 *
 * Every figure in the paper is derived from event counters, but counters
 * only say *how much* — not *where the time went*. The tracer records
 * spans at two altitudes so a slow or faulty sweep is inspectable after
 * the fact in Perfetto / chrome://tracing:
 *
 *  - driver level: job queue wait, per-job execution, cache hit/miss,
 *    retry and quarantine instants, and the fork→exec→reap lifetime of
 *    isolated worker processes (with the child pid as metadata);
 *  - simulation level: per-frame spans, the pipeline stages inside each
 *    frame (geometry+binning, raster, RE frame end), and — optionally,
 *    and usually sampled — per-tile raster spans.
 *
 * Design constraints, in priority order:
 *
 *  1. Zero cost when disabled. Tracing is off unless EVRSIM_TRACE is
 *     set; a disabled TraceSpan is one relaxed atomic load and a branch,
 *     no allocation, no lock, no timestamp. Tracing never touches
 *     simulation state, so enabling it cannot perturb results (a test
 *     asserts RunResult byte-identity with tracing on vs off).
 *  2. Thread safety without a global hot lock. Each thread records into
 *     its own ring buffer (newest events win when full); the global
 *     registry is only locked to register a thread or to flush.
 *  3. Crash forensics. While a span is active its (category, name) is
 *     pushed onto the crash handler's thread-local span stack, so a
 *     worker that dies mid-stage reports *which* stage killed it.
 *
 * Configuration: EVRSIM_TRACE=<categories>[:<path>] where categories is
 * a comma-separated list of {driver, cache, worker, frame, stage, tile}
 * or "all", each optionally sampled with "/N" (record 1-in-N spans, for
 * hot categories like tile), and path is the output file (default
 * "evrsim_trace.json"). Parsing is strict in the env.hpp spirit: an
 * unknown category or malformed sample rate is a one-line error naming
 * the variable, never a silently different trace.
 */
#ifndef EVRSIM_COMMON_TRACE_HPP
#define EVRSIM_COMMON_TRACE_HPP

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace evrsim {

/** Span categories; each is a bit in the enabled mask. */
enum class TraceCat : unsigned {
    Driver = 0, ///< scheduler: queue wait, job execution, retries
    Cache,      ///< result-cache hits / misses / quarantines
    Worker,     ///< isolated worker process lifetimes (fork→exec→reap)
    Frame,      ///< one span per rendered frame
    Stage,      ///< pipeline stages inside a frame (geometry, raster, RE)
    Tile,       ///< per-tile raster spans (hot: sample with tile/N)
    kCount,
};

constexpr std::size_t kTraceCatCount =
    static_cast<std::size_t>(TraceCat::kCount);

/** Stable lowercase name of a category ("driver", "tile", ...). */
const char *traceCatName(TraceCat cat);

/** Resolved EVRSIM_TRACE configuration. */
struct TraceConfig {
    unsigned mask = 0; ///< bit per TraceCat; 0 = tracing disabled
    /** Record 1-in-N spans of the category (1 = every span). */
    unsigned sample[kTraceCatCount] = {1, 1, 1, 1, 1, 1};
    std::string path = "evrsim_trace.json";

    bool enabled() const { return mask != 0; }
    bool
    has(TraceCat cat) const
    {
        return (mask & (1u << static_cast<unsigned>(cat))) != 0;
    }
};

/**
 * Parse EVRSIM_TRACE. Unset yields a disabled config (mask 0);
 * anything present must parse fully or the error names the variable,
 * the offending token, and the accepted grammar.
 */
Result<TraceConfig> traceConfigFromEnv();

/**
 * Install @p config globally, (re)arming the tracer. Events recorded
 * before a configure call are discarded. With an enabled config the
 * trace file is written automatically at process exit (std::atexit) —
 * including exit(1) via fatal() — or explicitly with traceWrite().
 */
void traceConfigure(const TraceConfig &config);

/** The currently installed configuration. */
TraceConfig traceConfig();

/** Internal: the enabled-category bitmask (do not touch directly). */
extern std::atomic<unsigned> g_trace_mask;

/** Cheap per-category check (one relaxed atomic load). */
inline bool
traceEnabled(TraceCat cat)
{
    return (g_trace_mask.load(std::memory_order_relaxed) &
            (1u << static_cast<unsigned>(cat))) != 0;
}

/** True when any category is enabled. */
inline bool
traceActive()
{
    return g_trace_mask.load(std::memory_order_relaxed) != 0;
}

/**
 * Serialize every thread's buffered events as Chrome trace-event JSON
 * and atomically publish the file at the configured path. Safe to call
 * while other threads are still tracing (they keep recording; a later
 * write picks their events up). Unavailable on I/O failure; Ok (doing
 * nothing) when tracing is disabled.
 */
Status traceWrite();

/** Nanoseconds since the tracer was configured (monotonic). */
std::uint64_t traceNowNs();

/** Events discarded because a thread's ring buffer wrapped. */
std::uint64_t traceDroppedEvents();

/** Open-span depth of the calling thread (tests assert balance). */
int traceActiveDepth();

/**
 * Span-totals accumulator: aggregate wall time per (category, name).
 *
 * Independent of the trace-event machinery above: totals can be
 * collected with tracing off (no ring buffers, no output file), and a
 * sampled trace still counts *every* span in the totals. bench_summary
 * --bench-speed uses this to attribute a run's wall time to pipeline
 * stages (geometry / binning / raster) without writing a trace.
 */
struct TraceTotal {
    const char *cat;  ///< category name ("stage", "frame", ...)
    const char *name; ///< span name ("geometry", "raster", ...)
    std::uint64_t count = 0;    ///< spans accumulated
    std::uint64_t total_ns = 0; ///< summed wall time
};

/**
 * Enable totals collection for the categories in @p mask (bit per
 * TraceCat, as in TraceConfig::mask; 0 disables). Implicitly resets
 * previously accumulated totals.
 */
void traceTotalsEnable(unsigned mask);

/** Zero all accumulated totals (collection state is unchanged). */
void traceTotalsReset();

/** Snapshot of the accumulated totals, sorted by category then name. */
std::vector<TraceTotal> traceTotals();

/**
 * Ambient trace context (Dapper-style). The control plane stamps a
 * {trace_id, parent_span} pair on every dispatched run; the executing
 * side installs it as the calling thread's ambient context, and every
 * event recorded while it is set carries the trace id (emitted as a
 * 16-hex-digit args.trace_id). A zero trace_id means "no context".
 */
struct TraceContext {
    std::uint64_t trace_id = 0;
    std::uint64_t parent_span = 0;
};

/** Install @p ctx as the calling thread's ambient trace context. */
void traceContextSet(const TraceContext &ctx);

/** Clear the calling thread's ambient trace context. */
void traceContextClear();

/** The calling thread's ambient trace context (zero when unset). */
TraceContext traceContextCurrent();

/** Format a trace/span id as the canonical 16-hex-digit wire string. */
std::string traceIdHex(std::uint64_t id);

/** Parse a 16-hex-digit id; 0 on malformed input. */
std::uint64_t traceIdParse(const std::string &hex);

/**
 * One event in shippable (process-independent) form: names and
 * categories are owned strings, timestamps are relative to an agreed
 * base so the receiver can rebase them onto its own clock.
 */
struct TraceShippedEvent {
    std::string name;
    std::string cat;
    char phase = 'X';          ///< 'X' complete, 'i' instant
    std::uint64_t ts_ns = 0;   ///< relative to the collection base
    std::uint64_t dur_ns = 0;  ///< complete events only
    std::int64_t value = INT64_MIN;
    std::string detail;
    int tid = 1;               ///< recording thread ordinal
    std::uint64_t trace_id = 0;
};

/**
 * Snapshot every local event recorded at or after @p since_ns (a
 * traceNowNs() value), with timestamps rebased so ts_ns = 0 at
 * @p since_ns. The shard side uses this to ship one run's spans back
 * on the result frame. Empty when tracing is disabled.
 */
std::vector<TraceShippedEvent> traceCollect(std::uint64_t since_ns);

/**
 * Adopt foreign events into this process's trace under a synthetic
 * pid lane. @p pid_tag keys the lane (stable per remote process slot),
 * @p process_name labels it, and @p base_ns (a local traceNowNs()
 * value) rebases the shipped timestamps onto the local clock — the
 * control plane passes the dispatch span's start so shard spans land
 * inside it. No-op when tracing is disabled.
 */
void traceIngestRemote(int pid_tag, const std::string &process_name,
                       std::uint64_t base_ns,
                       const std::vector<TraceShippedEvent> &events);

/** Record an instant event (a point in time, no duration). */
void traceInstant(TraceCat cat, const char *name);
void traceInstant(TraceCat cat, const char *name, std::string detail);

/**
 * Record a complete event with an explicit start and duration, for
 * spans whose start was captured before the recording thread knew it
 * would trace them (e.g. job queue wait: enqueue is timestamped at
 * submit, the event is emitted at dequeue on the worker thread).
 */
void traceComplete(TraceCat cat, const char *name, std::uint64_t start_ns,
                   std::uint64_t dur_ns, std::string detail = {},
                   std::int64_t value = INT64_MIN);

/**
 * RAII scoped span. Construction decides activity once (category
 * enabled + sampling filter); destruction records a complete event
 * covering the scope. @p name must be a string literal (it is kept by
 * pointer, and handed to the crash handler's span stack).
 */
class TraceSpan
{
  public:
    TraceSpan(TraceCat cat, const char *name);
    ~TraceSpan();

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    /** True when this span will be recorded (use to gate arg building). */
    bool active() const { return active_; }

    /** Attach a free-form string argument (args.detail in the JSON). */
    void
    setDetail(std::string detail)
    {
        if (active_)
            detail_ = std::move(detail);
    }

    /** Attach an integer argument (args.value; frame index, pid, ...). */
    void
    setValue(std::int64_t value)
    {
        if (active_)
            value_ = value;
    }

  private:
    bool active_;        ///< recorded as a trace event
    bool totals_ = false; ///< accumulated into the span totals
    TraceCat cat_;
    const char *name_;
    std::uint64_t start_ns_ = 0;
    std::int64_t value_ = INT64_MIN;
    std::string detail_;
};

} // namespace evrsim

#endif // EVRSIM_COMMON_TRACE_HPP
