/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * All workloads must be bit-reproducible across runs and platforms, so we
 * use a self-contained xoshiro256** generator seeded through SplitMix64
 * rather than std::mt19937 + std::distributions (whose outputs are not
 * specified identically across standard library implementations).
 */
#ifndef EVRSIM_COMMON_RNG_HPP
#define EVRSIM_COMMON_RNG_HPP

#include <cstdint>

namespace evrsim {

/** xoshiro256** deterministic PRNG. */
class Rng
{
  public:
    /** Seed the generator; equal seeds yield equal sequences. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) using Lemire's method; bound > 0. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform float in [0, 1). */
    float nextFloat();

    /** Uniform float in [lo, hi). */
    float nextFloat(float lo, float hi);

    /** Bernoulli draw with probability @p p of true. */
    bool nextBool(float p = 0.5f);

    /**
     * Fork an independent child stream identified by @p stream_id.
     * Children with different ids are statistically independent of each
     * other and of the parent; used to give each workload element its own
     * stable stream regardless of evaluation order.
     */
    Rng fork(std::uint64_t stream_id) const;

  private:
    std::uint64_t s_[4];
};

} // namespace evrsim

#endif // EVRSIM_COMMON_RNG_HPP
