/**
 * @file
 * Strict numeric parsing for environment knobs.
 *
 * The bench binaries are driven by EVRSIM_* environment variables; a
 * typo'd value silently parsed as 0 by atoi() (e.g. EVRSIM_FRAMES=3O)
 * would quietly run a wrong experiment. These parsers accept a value
 * only if the *entire* string is a number, and report rejections as
 * Status so the caller can name the offending variable in one line.
 */
#ifndef EVRSIM_COMMON_ENV_HPP
#define EVRSIM_COMMON_ENV_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace evrsim {

/**
 * Parse a base-10 integer, requiring full consumption of @p text
 * (surrounding whitespace rejected). InvalidArgument on anything else,
 * including empty input and overflow.
 */
Result<long long> parseIntStrict(const std::string &text);

/** Like parseIntStrict for a floating-point literal. */
Result<double> parseDoubleStrict(const std::string &text);

/**
 * Read an integer environment knob.
 *
 * @param name      variable name (used verbatim in error messages)
 * @param min_value inclusive lower bound
 * @param max_value inclusive upper bound
 * @param out       receives the value; untouched when the knob is unset
 * @returns Ok with @p present=false when unset; Ok with @p present=true
 *          on success; InvalidArgument naming the variable, its value
 *          and the accepted range otherwise.
 */
Status readIntKnob(const char *name, long long min_value,
                   long long max_value, long long &out, bool &present);

/**
 * Read an enumerated environment knob whose value must be one of
 * @p choices exactly (case-sensitive; e.g. EVRSIM_LOG=quiet|normal|
 * verbose).
 *
 * @param name    variable name (used verbatim in error messages)
 * @param choices accepted values, in declaration order
 * @param index   receives the matched choice's index; untouched when
 *                the knob is unset
 * @returns Ok with @p present=false when unset; Ok with @p present=true
 *          on a match; InvalidArgument naming the variable, its value
 *          and every accepted choice otherwise.
 */
Status readChoiceKnob(const char *name,
                      const std::vector<std::string> &choices, int &index,
                      bool &present);

} // namespace evrsim

#endif // EVRSIM_COMMON_ENV_HPP
