/**
 * @file
 * Environment-knob parsing implementation.
 */
#include "common/env.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace evrsim {

namespace {

/** strtoll/strtod skip leading whitespace; "entire string" must not. */
bool
startsWithSpace(const std::string &text)
{
    return !text.empty() &&
           std::isspace(static_cast<unsigned char>(text.front())) != 0;
}

} // namespace

Result<long long>
parseIntStrict(const std::string &text)
{
    if (text.empty())
        return Status::invalidArgument("empty value");
    if (startsWithSpace(text))
        return Status::invalidArgument("not an integer");
    errno = 0;
    char *end = nullptr;
    long long v = std::strtoll(text.c_str(), &end, 10);
    if (errno == ERANGE)
        return Status::invalidArgument("value out of integer range");
    if (end != text.c_str() + text.size())
        return Status::invalidArgument("not an integer");
    return v;
}

Result<double>
parseDoubleStrict(const std::string &text)
{
    if (text.empty())
        return Status::invalidArgument("empty value");
    if (startsWithSpace(text))
        return Status::invalidArgument("not a number");
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(text.c_str(), &end);
    if (errno == ERANGE)
        return Status::invalidArgument("value out of double range");
    if (end != text.c_str() + text.size())
        return Status::invalidArgument("not a number");
    return v;
}

Status
readIntKnob(const char *name, long long min_value, long long max_value,
            long long &out, bool &present)
{
    const char *raw = std::getenv(name);
    present = raw != nullptr;
    if (!present)
        return {};
    Result<long long> parsed = parseIntStrict(raw);
    if (!parsed.ok())
        return Status::invalidArgument(
            std::string(name) + "='" + raw + "' is not a valid integer");
    if (parsed.value() < min_value || parsed.value() > max_value)
        return Status::invalidArgument(
            std::string(name) + "=" + std::to_string(parsed.value()) +
            " is outside the accepted range [" +
            std::to_string(min_value) + ", " + std::to_string(max_value) +
            "]");
    out = parsed.value();
    return {};
}

Status
readChoiceKnob(const char *name, const std::vector<std::string> &choices,
               int &index, bool &present)
{
    const char *raw = std::getenv(name);
    present = raw != nullptr;
    if (!present)
        return {};
    for (std::size_t i = 0; i < choices.size(); ++i) {
        if (choices[i] == raw) {
            index = static_cast<int>(i);
            return {};
        }
    }
    std::string accepted;
    for (std::size_t i = 0; i < choices.size(); ++i) {
        if (i)
            accepted += "|";
        accepted += choices[i];
    }
    return Status::invalidArgument(std::string(name) + "='" + raw +
                                   "' is not one of " + accepted);
}

} // namespace evrsim
