/**
 * @file
 * Signal-safe crash reporting for the bench and test binaries.
 *
 * A sweep that dies of SIGSEGV/SIGABRT deep inside a multi-hour run is
 * useless to debug unless the report says *which* (workload, config,
 * frame, tile) was active. installCrashHandler() arms handlers that
 * write exactly that context — maintained as thread-local plain data by
 * the simulation loop — to stderr using only async-signal-safe calls
 * (write(2), no malloc, no stdio), then re-raise with the default
 * disposition so the exit status and core dump are unchanged.
 *
 * Context setters are cheap enough for hot loops (a few thread-local
 * stores); they are called by the experiment runner (run identity,
 * frame) and the raster pipeline (tile).
 */
#ifndef EVRSIM_COMMON_CRASH_HANDLER_HPP
#define EVRSIM_COMMON_CRASH_HANDLER_HPP

namespace evrsim {

/**
 * Install handlers for SIGSEGV, SIGABRT, SIGBUS, SIGFPE and SIGILL.
 * Idempotent; never overrides a sanitizer's handler twice.
 */
void installCrashHandler();

/** Name the (workload, config) the calling thread is simulating. */
void crashContextSetRun(const char *workload, const char *config);

/** Frame index the calling thread is rendering (-1 = none). */
void crashContextSetFrame(int frame);

/** Tile index the calling thread is rasterizing (-1 = none). */
void crashContextSetTile(int tile);

/**
 * Push / pop the innermost active trace span onto the calling thread's
 * crash context, so a crash report says which stage died. Both pointers
 * MUST be string literals (or otherwise outlive the span): the handler
 * reads them from a signal context, so no copy is taken. The stack is
 * fixed-depth; deeper spans are counted but not recorded.
 */
void crashContextPushSpan(const char *category, const char *name);
void crashContextPopSpan();

/**
 * The calling thread's innermost recorded span, as "category/name", or
 * an empty string when no span is active. For tests.
 */
const char *crashContextInnermostSpanCategory();
const char *crashContextInnermostSpanName();

/** Clear the calling thread's context (end of a run). */
void crashContextClear();

} // namespace evrsim

#endif // EVRSIM_COMMON_CRASH_HANDLER_HPP
