/**
 * @file
 * Integer rectangles and float bounding boxes used by binning and
 * rasterization.
 */
#ifndef EVRSIM_COMMON_RECT_HPP
#define EVRSIM_COMMON_RECT_HPP

#include <algorithm>

#include "common/vec.hpp"

namespace evrsim {

/** Half-open integer rectangle [x0, x1) x [y0, y1). */
struct RectI {
    int x0 = 0;
    int y0 = 0;
    int x1 = 0;
    int y1 = 0;

    constexpr bool operator==(const RectI &o) const = default;

    constexpr int width() const { return x1 - x0; }
    constexpr int height() const { return y1 - y0; }
    constexpr bool empty() const { return x1 <= x0 || y1 <= y0; }
    constexpr long area() const
    {
        return empty() ? 0 : static_cast<long>(width()) * height();
    }

    constexpr bool
    contains(int x, int y) const
    {
        return x >= x0 && x < x1 && y >= y0 && y < y1;
    }

    /** Intersection; may be empty. */
    constexpr RectI
    intersect(const RectI &o) const
    {
        return {std::max(x0, o.x0), std::max(y0, o.y0), std::min(x1, o.x1),
                std::min(y1, o.y1)};
    }
};

/** Closed float bounding box in screen space. */
struct BBox2 {
    float min_x = 0.0f;
    float min_y = 0.0f;
    float max_x = 0.0f;
    float max_y = 0.0f;

    constexpr bool empty() const { return max_x < min_x || max_y < min_y; }

    /** Bounding box of a triangle given its three screen positions. */
    static constexpr BBox2
    ofTriangle(const Vec2 &a, const Vec2 &b, const Vec2 &c)
    {
        return {
            std::min({a.x, b.x, c.x}),
            std::min({a.y, b.y, c.y}),
            std::max({a.x, b.x, c.x}),
            std::max({a.y, b.y, c.y}),
        };
    }
};

} // namespace evrsim

#endif // EVRSIM_COMMON_RECT_HPP
