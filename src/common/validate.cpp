/**
 * @file
 * Validation policy resolution.
 */
#include "common/validate.hpp"

#include <cstdio>
#include <cstdlib>

#include "common/env.hpp"
#include "common/log.hpp"

namespace evrsim {

const char *
validateModeName(ValidateMode mode)
{
    switch (mode) {
      case ValidateMode::Off:
        return "off";
      case ValidateMode::Permissive:
        return "permissive";
      case ValidateMode::Strict:
        return "strict";
    }
    return "unknown";
}

std::string
ValidationConfig::cacheTag() const
{
    if (!enabled())
        return "";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "-V%s-s%g", validateModeName(mode),
                  tile_sample_rate);
    return buf;
}

Result<ValidationConfig>
validationFromEnvChecked()
{
    ValidationConfig cfg;

    if (const char *raw = std::getenv("EVRSIM_VALIDATE")) {
        std::string v = raw;
        if (v == "off")
            cfg.mode = ValidateMode::Off;
        else if (v == "permissive")
            cfg.mode = ValidateMode::Permissive;
        else if (v == "strict")
            cfg.mode = ValidateMode::Strict;
        else
            return Status::invalidArgument(
                "EVRSIM_VALIDATE must be off, permissive or strict "
                "(got '" + v + "')");
    }

    if (const char *raw = std::getenv("EVRSIM_VALIDATE_SAMPLE")) {
        Result<double> rate = parseDoubleStrict(raw);
        if (!rate.ok() || rate.value() < 0.0 || rate.value() > 1.0)
            return Status::invalidArgument(
                "EVRSIM_VALIDATE_SAMPLE must be a number in [0, 1] "
                "(got '" + std::string(raw) + "')");
        cfg.tile_sample_rate = rate.value();
    }

    return cfg;
}

ValidationConfig
validationFromEnv()
{
    Result<ValidationConfig> cfg = validationFromEnvChecked();
    if (!cfg.ok())
        fatal("%s", cfg.status().message().c_str());
    return cfg.value();
}

} // namespace evrsim
