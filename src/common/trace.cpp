/**
 * @file
 * Tracer implementation.
 *
 * Recording path: the owning thread appends to its own ring buffer
 * under a per-buffer mutex (uncontended except during a flush), so
 * scheduler workers never serialize on each other. The global mutex
 * only guards the thread registry and configuration.
 *
 * Output is the Chrome trace-event format: a top-level object with a
 * "traceEvents" array of complete ("X"), instant ("i") and metadata
 * ("M") events, timestamps in microseconds. The file loads directly in
 * Perfetto or chrome://tracing. Written atomically (tmp + rename) so a
 * crash mid-write never leaves a torn trace next to a good sweep.
 */
#include "common/trace.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "common/atomic_file.hpp"
#include "common/crash_handler.hpp"
#include "common/env.hpp"

namespace evrsim {

std::atomic<unsigned> g_trace_mask{0};

namespace {

/** Per-thread ring capacity; the newest events win when it wraps. */
constexpr std::size_t kRingCapacity = 32768;

/** Sample rates mirrored out of the installed config so the span
 *  constructor never takes the global lock. */
std::atomic<unsigned> g_sample[kTraceCatCount] = {};

/** One recorded event (complete, instant, or metadata). */
struct TraceEvent {
    const char *name = "";     ///< string literal
    TraceCat cat = TraceCat::Driver;
    char phase = 'X';          ///< 'X' complete, 'i' instant
    std::uint64_t ts_ns = 0;   ///< since epoch
    std::uint64_t dur_ns = 0;  ///< complete events only
    std::int64_t value = INT64_MIN; ///< args.value when != INT64_MIN
    std::string detail;        ///< args.detail when non-empty
    std::uint64_t trace_id = 0; ///< args.trace_id when nonzero
};

/** One thread's recording state. Owned jointly by the thread (via a
 *  thread_local shared_ptr) and the registry, so a worker thread that
 *  exits before the flush still gets its events written. */
struct ThreadBuf {
    std::mutex mu;
    std::vector<TraceEvent> ring;
    std::uint64_t count = 0;   ///< events ever appended
    int tid = 0;               ///< registration ordinal (1-based)
    /** Per-category span counters driving the 1-in-N sampling filter.
     *  Owner-thread only; no lock needed. */
    std::uint64_t sample_seq[kTraceCatCount] = {};

    void
    append(TraceEvent e)
    {
        std::lock_guard<std::mutex> lock(mu);
        if (ring.size() < kRingCapacity) {
            ring.push_back(std::move(e));
        } else {
            ring[static_cast<std::size_t>(count % kRingCapacity)] =
                std::move(e);
        }
        ++count;
    }
};

/** Events adopted from a remote process (one lane per pid_tag).
 *  Timestamps are already rebased onto the local clock at ingest. */
struct RemoteLane {
    int pid_tag = 0;
    std::string process_name;
    std::vector<TraceShippedEvent> events;
};

/** Cap on adopted remote events (newest-wins, like the local rings). */
constexpr std::size_t kRemoteEventCap = 262144;

struct Global {
    std::mutex mu;
    TraceConfig config;
    std::vector<std::shared_ptr<ThreadBuf>> threads;
    std::vector<RemoteLane> remotes;
    std::uint64_t remote_events = 0;  ///< adopted (pre-cap) count
    std::uint64_t remote_dropped = 0; ///< rejected past the cap
    int next_tid = 1;
    std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();
    bool atexit_armed = false;
};

Global &
global()
{
    static Global *g = new Global; // never destroyed: threads + atexit
    return *g;
}

thread_local std::shared_ptr<ThreadBuf> tls_buf;
thread_local int tls_depth = 0;
thread_local TraceContext tls_context;

/** Categories whose spans feed the totals accumulator. */
std::atomic<unsigned> g_totals_mask{0};

/** One (category, name) bucket. Names are string literals, so pointer
 *  pairs identify buckets; two TUs spelling the same literal simply
 *  yield two buckets that are merged at snapshot time. */
struct TotalsBucket {
    TraceCat cat;
    const char *name;
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
};

struct Totals {
    std::mutex mu;
    std::vector<TotalsBucket> buckets;
};

Totals &
totals()
{
    static Totals *t = new Totals; // never destroyed (atexit ordering)
    return *t;
}

inline bool
totalsEnabled(TraceCat cat)
{
    return (g_totals_mask.load(std::memory_order_relaxed) &
            (1u << static_cast<unsigned>(cat))) != 0;
}

void
totalsAdd(TraceCat cat, const char *name, std::uint64_t dur_ns)
{
    Totals &t = totals();
    std::lock_guard<std::mutex> lock(t.mu);
    for (TotalsBucket &b : t.buckets) {
        if (b.cat == cat && b.name == name) {
            ++b.count;
            b.total_ns += dur_ns;
            return;
        }
    }
    t.buckets.push_back({cat, name, 1, dur_ns});
}

ThreadBuf &
threadBuf()
{
    if (!tls_buf) {
        tls_buf = std::make_shared<ThreadBuf>();
        Global &g = global();
        std::lock_guard<std::mutex> lock(g.mu);
        tls_buf->tid = g.next_tid++;
        g.threads.push_back(tls_buf);
    }
    return *tls_buf;
}

/** JSON string escaping for detail payloads (names are literals but
 *  get the same treatment — it is cheap and uniformly correct). */
void
appendEscaped(std::string &out, const std::string &s)
{
    out += '"';
    for (unsigned char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    out += '"';
}

/** Microseconds with nanosecond precision, as Chrome expects. */
void
appendUs(std::string &out, std::uint64_t ns)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%llu.%03u",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned>(ns % 1000));
    out += buf;
}

void
appendEvent(std::string &out, const TraceEvent &e, int pid, int tid)
{
    out += "{\"name\":";
    appendEscaped(out, e.name);
    out += ",\"cat\":";
    appendEscaped(out, traceCatName(e.cat));
    out += ",\"ph\":\"";
    out += e.phase;
    out += "\"";
    if (e.phase == 'i')
        out += ",\"s\":\"t\""; // thread-scoped instant
    out += ",\"pid\":" + std::to_string(pid);
    out += ",\"tid\":" + std::to_string(tid);
    out += ",\"ts\":";
    appendUs(out, e.ts_ns);
    if (e.phase == 'X') {
        out += ",\"dur\":";
        appendUs(out, e.dur_ns);
    }
    if (e.value != INT64_MIN || !e.detail.empty() || e.trace_id != 0) {
        out += ",\"args\":{";
        bool first = true;
        if (e.value != INT64_MIN) {
            out += "\"value\":" + std::to_string(e.value);
            first = false;
        }
        if (!e.detail.empty()) {
            if (!first)
                out += ',';
            out += "\"detail\":";
            appendEscaped(out, e.detail);
            first = false;
        }
        if (e.trace_id != 0) {
            if (!first)
                out += ',';
            out += "\"trace_id\":";
            appendEscaped(out, traceIdHex(e.trace_id));
        }
        out += '}';
    }
    out += '}';
}

/** Same layout as appendEvent, for an adopted (shipped) event. */
void
appendShippedEvent(std::string &out, const TraceShippedEvent &e, int pid)
{
    out += "{\"name\":";
    appendEscaped(out, e.name);
    out += ",\"cat\":";
    appendEscaped(out, e.cat);
    out += ",\"ph\":\"";
    out += e.phase;
    out += "\"";
    if (e.phase == 'i')
        out += ",\"s\":\"t\"";
    out += ",\"pid\":" + std::to_string(pid);
    out += ",\"tid\":" + std::to_string(e.tid);
    out += ",\"ts\":";
    appendUs(out, e.ts_ns);
    if (e.phase == 'X') {
        out += ",\"dur\":";
        appendUs(out, e.dur_ns);
    }
    if (e.value != INT64_MIN || !e.detail.empty() || e.trace_id != 0) {
        out += ",\"args\":{";
        bool first = true;
        if (e.value != INT64_MIN) {
            out += "\"value\":" + std::to_string(e.value);
            first = false;
        }
        if (!e.detail.empty()) {
            if (!first)
                out += ',';
            out += "\"detail\":";
            appendEscaped(out, e.detail);
            first = false;
        }
        if (e.trace_id != 0) {
            if (!first)
                out += ',';
            out += "\"trace_id\":";
            appendEscaped(out, traceIdHex(e.trace_id));
        }
        out += '}';
    }
    out += '}';
}

void
appendMetadata(std::string &out, const char *name, int pid, int tid,
               const std::string &value)
{
    out += "{\"name\":";
    appendEscaped(out, name);
    out += ",\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
           ",\"tid\":" + std::to_string(tid) + ",\"ts\":0,\"args\":{";
    out += "\"name\":";
    appendEscaped(out, value);
    out += "}}";
}

void
atexitWrite()
{
    if (traceActive())
        (void)traceWrite();
}

} // namespace

const char *
traceCatName(TraceCat cat)
{
    switch (cat) {
    case TraceCat::Driver:
        return "driver";
    case TraceCat::Cache:
        return "cache";
    case TraceCat::Worker:
        return "worker";
    case TraceCat::Frame:
        return "frame";
    case TraceCat::Stage:
        return "stage";
    case TraceCat::Tile:
        return "tile";
    case TraceCat::kCount:
        break;
    }
    return "?";
}

Result<TraceConfig>
traceConfigFromEnv()
{
    TraceConfig cfg;
    const char *raw = std::getenv("EVRSIM_TRACE");
    if (!raw)
        return cfg; // unset: disabled
    std::string text = raw;

    const std::string grammar =
        " (expected <categories>[:<path>] with categories from "
        "driver,cache,worker,frame,stage,tile or 'all', each optionally "
        "sampled as <cat>/N)";

    std::string cats = text;
    std::string::size_type colon = text.find(':');
    if (colon != std::string::npos) {
        cats = text.substr(0, colon);
        std::string path = text.substr(colon + 1);
        if (path.empty())
            return Status::invalidArgument("EVRSIM_TRACE='" + text +
                                           "' has an empty path" + grammar);
        cfg.path = path;
    }
    if (cats.empty())
        return Status::invalidArgument("EVRSIM_TRACE='" + text +
                                       "' has no categories" + grammar);

    std::string::size_type pos = 0;
    while (pos <= cats.size()) {
        std::string::size_type comma = cats.find(',', pos);
        std::string token = cats.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        pos = comma == std::string::npos ? cats.size() + 1 : comma + 1;

        unsigned sample = 1;
        std::string::size_type slash = token.find('/');
        if (slash != std::string::npos) {
            Result<long long> n = parseIntStrict(token.substr(slash + 1));
            if (!n.ok() || n.value() < 1 || n.value() > 1000000)
                return Status::invalidArgument(
                    "EVRSIM_TRACE: bad sample rate in '" + token + "'" +
                    grammar);
            sample = static_cast<unsigned>(n.value());
            token = token.substr(0, slash);
        }

        if (token == "all" || token == "*") {
            cfg.mask = (1u << kTraceCatCount) - 1;
            if (sample != 1)
                for (unsigned &s : cfg.sample)
                    s = sample;
            continue;
        }
        bool known = false;
        for (std::size_t c = 0; c < kTraceCatCount; ++c) {
            if (token == traceCatName(static_cast<TraceCat>(c))) {
                cfg.mask |= 1u << c;
                cfg.sample[c] = sample;
                known = true;
                break;
            }
        }
        if (!known)
            return Status::invalidArgument("EVRSIM_TRACE: unknown "
                                           "category '" +
                                           token + "'" + grammar);
    }
    return cfg;
}

void
traceConfigure(const TraceConfig &config)
{
    Global &g = global();
    std::lock_guard<std::mutex> lock(g.mu);
    g.config = config;
    g.epoch = std::chrono::steady_clock::now();
    // Drop anything recorded under a previous configuration so a
    // reconfigured trace (tests do this repeatedly) starts clean.
    for (const std::shared_ptr<ThreadBuf> &t : g.threads) {
        std::lock_guard<std::mutex> tl(t->mu);
        t->ring.clear();
        t->count = 0;
    }
    g.remotes.clear();
    g.remote_events = 0;
    g.remote_dropped = 0;
    if (config.enabled() && !g.atexit_armed) {
        g.atexit_armed = true;
        std::atexit(atexitWrite);
    }
    for (std::size_t c = 0; c < kTraceCatCount; ++c)
        g_sample[c].store(config.sample[c], std::memory_order_relaxed);
    g_trace_mask.store(config.mask, std::memory_order_relaxed);
}

TraceConfig
traceConfig()
{
    Global &g = global();
    std::lock_guard<std::mutex> lock(g.mu);
    return g.config;
}

std::uint64_t
traceNowNs()
{
    Global &g = global();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - g.epoch)
            .count());
}

std::uint64_t
traceDroppedEvents()
{
    Global &g = global();
    std::lock_guard<std::mutex> lock(g.mu);
    std::uint64_t dropped = 0;
    for (const std::shared_ptr<ThreadBuf> &t : g.threads) {
        std::lock_guard<std::mutex> tl(t->mu);
        if (t->count > kRingCapacity)
            dropped += t->count - kRingCapacity;
    }
    return dropped;
}

int
traceActiveDepth()
{
    return tls_depth;
}

void
traceTotalsEnable(unsigned mask)
{
    traceTotalsReset();
    g_totals_mask.store(mask, std::memory_order_relaxed);
}

void
traceTotalsReset()
{
    Totals &t = totals();
    std::lock_guard<std::mutex> lock(t.mu);
    t.buckets.clear();
}

std::vector<TraceTotal>
traceTotals()
{
    std::vector<TraceTotal> out;
    {
        Totals &t = totals();
        std::lock_guard<std::mutex> lock(t.mu);
        for (const TotalsBucket &b : t.buckets) {
            // Merge buckets whose literals live at different addresses
            // but spell the same (category, name).
            bool merged = false;
            for (TraceTotal &o : out) {
                if (std::strcmp(o.cat, traceCatName(b.cat)) == 0 &&
                    std::strcmp(o.name, b.name) == 0) {
                    o.count += b.count;
                    o.total_ns += b.total_ns;
                    merged = true;
                    break;
                }
            }
            if (!merged)
                out.push_back(
                    {traceCatName(b.cat), b.name, b.count, b.total_ns});
        }
    }
    std::sort(out.begin(), out.end(),
              [](const TraceTotal &a, const TraceTotal &b) {
                  int c = std::strcmp(a.cat, b.cat);
                  if (c != 0)
                      return c < 0;
                  return std::strcmp(a.name, b.name) < 0;
              });
    return out;
}

void
traceInstant(TraceCat cat, const char *name)
{
    traceInstant(cat, name, std::string());
}

void
traceContextSet(const TraceContext &ctx)
{
    tls_context = ctx;
}

void
traceContextClear()
{
    tls_context = TraceContext{};
}

TraceContext
traceContextCurrent()
{
    return tls_context;
}

std::string
traceIdHex(std::uint64_t id)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(id));
    return buf;
}

std::uint64_t
traceIdParse(const std::string &hex)
{
    if (hex.size() != 16)
        return 0;
    std::uint64_t id = 0;
    for (char c : hex) {
        std::uint64_t digit;
        if (c >= '0' && c <= '9')
            digit = static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            digit = static_cast<std::uint64_t>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F')
            digit = static_cast<std::uint64_t>(c - 'A' + 10);
        else
            return 0;
        id = (id << 4) | digit;
    }
    return id;
}

std::vector<TraceShippedEvent>
traceCollect(std::uint64_t since_ns)
{
    std::vector<TraceShippedEvent> out;
    if (!traceActive())
        return out;
    Global &g = global();
    std::vector<std::shared_ptr<ThreadBuf>> threads;
    {
        std::lock_guard<std::mutex> lock(g.mu);
        threads = g.threads;
    }
    for (const std::shared_ptr<ThreadBuf> &t : threads) {
        std::lock_guard<std::mutex> tl(t->mu);
        std::size_t n = t->ring.size();
        if (n == 0)
            continue;
        std::size_t first =
            t->count > kRingCapacity
                ? static_cast<std::size_t>(t->count % kRingCapacity)
                : 0;
        for (std::size_t i = 0; i < n; ++i) {
            const TraceEvent &e = t->ring[(first + i) % n];
            if (e.ts_ns < since_ns)
                continue;
            TraceShippedEvent s;
            s.name = e.name;
            s.cat = traceCatName(e.cat);
            s.phase = e.phase;
            s.ts_ns = e.ts_ns - since_ns;
            s.dur_ns = e.dur_ns;
            s.value = e.value;
            s.detail = e.detail;
            s.tid = t->tid;
            s.trace_id = e.trace_id;
            out.push_back(std::move(s));
        }
    }
    return out;
}

void
traceIngestRemote(int pid_tag, const std::string &process_name,
                  std::uint64_t base_ns,
                  const std::vector<TraceShippedEvent> &events)
{
    if (!traceActive() || events.empty())
        return;
    Global &g = global();
    std::lock_guard<std::mutex> lock(g.mu);
    RemoteLane *lane = nullptr;
    for (RemoteLane &l : g.remotes) {
        if (l.pid_tag == pid_tag) {
            lane = &l;
            break;
        }
    }
    if (!lane) {
        g.remotes.push_back(RemoteLane{pid_tag, process_name, {}});
        lane = &g.remotes.back();
    }
    for (const TraceShippedEvent &e : events) {
        if (g.remote_events >= kRemoteEventCap) {
            ++g.remote_dropped;
            continue;
        }
        TraceShippedEvent adopted = e;
        adopted.ts_ns += base_ns;
        lane->events.push_back(std::move(adopted));
        ++g.remote_events;
    }
}

void
traceInstant(TraceCat cat, const char *name, std::string detail)
{
    if (!traceEnabled(cat))
        return;
    TraceEvent e;
    e.name = name;
    e.cat = cat;
    e.phase = 'i';
    e.ts_ns = traceNowNs();
    e.detail = std::move(detail);
    e.trace_id = tls_context.trace_id;
    threadBuf().append(std::move(e));
}

void
traceComplete(TraceCat cat, const char *name, std::uint64_t start_ns,
              std::uint64_t dur_ns, std::string detail, std::int64_t value)
{
    if (!traceEnabled(cat))
        return;
    TraceEvent e;
    e.name = name;
    e.cat = cat;
    e.phase = 'X';
    e.ts_ns = start_ns;
    e.dur_ns = dur_ns;
    e.detail = std::move(detail);
    e.value = value;
    e.trace_id = tls_context.trace_id;
    threadBuf().append(std::move(e));
}

TraceSpan::TraceSpan(TraceCat cat, const char *name)
    : active_(false), cat_(cat), name_(name)
{
    totals_ = totalsEnabled(cat);
    if (traceEnabled(cat)) {
        ThreadBuf &buf = threadBuf();
        std::size_t c = static_cast<std::size_t>(cat);
        unsigned sample = g_sample[c].load(std::memory_order_relaxed);
        // Sampling filters trace *events* only; totals count every span.
        if (sample <= 1 || (buf.sample_seq[c]++ % sample) == 0)
            active_ = true;
    }
    if (!active_ && !totals_)
        return;
    start_ns_ = traceNowNs();
    if (active_) {
        ++tls_depth;
        crashContextPushSpan(traceCatName(cat_), name_);
    }
}

TraceSpan::~TraceSpan()
{
    if (!active_ && !totals_)
        return;
    std::uint64_t end = traceNowNs();
    std::uint64_t dur = end > start_ns_ ? end - start_ns_ : 0;
    if (totals_)
        totalsAdd(cat_, name_, dur);
    if (!active_)
        return;
    crashContextPopSpan();
    --tls_depth;
    TraceEvent e;
    e.name = name_;
    e.cat = cat_;
    e.phase = 'X';
    e.ts_ns = start_ns_;
    e.dur_ns = dur;
    e.value = value_;
    e.detail = std::move(detail_);
    e.trace_id = tls_context.trace_id;
    threadBuf().append(std::move(e));
}

Status
traceWrite()
{
    Global &g = global();
    std::string path;
    std::vector<std::shared_ptr<ThreadBuf>> threads;
    std::vector<RemoteLane> remotes;
    std::uint64_t remote_dropped = 0;
    {
        std::lock_guard<std::mutex> lock(g.mu);
        if (!g.config.enabled())
            return {};
        path = g.config.path;
        threads = g.threads;
        remotes = g.remotes;
        remote_dropped = g.remote_dropped;
    }

    int pid = static_cast<int>(::getpid());
    std::string out;
    out.reserve(1u << 20);
    out += "{\"traceEvents\":[\n";
    appendMetadata(out, "process_name", pid, 0, "evrsim");

    std::uint64_t dropped = 0;
    for (const std::shared_ptr<ThreadBuf> &t : threads) {
        std::lock_guard<std::mutex> tl(t->mu);
        if (t->count == 0)
            continue;
        out += ",\n";
        appendMetadata(out, "thread_name", pid, t->tid,
                       "evrsim-thread-" + std::to_string(t->tid));
        // Chronological emit order: the ring overwrites oldest-first,
        // so the oldest surviving event sits at count % capacity once
        // the buffer has wrapped.
        std::size_t n = t->ring.size();
        std::size_t first =
            t->count > kRingCapacity
                ? static_cast<std::size_t>(t->count % kRingCapacity)
                : 0;
        for (std::size_t i = 0; i < n; ++i) {
            out += ",\n";
            appendEvent(out, t->ring[(first + i) % n], pid, t->tid);
        }
        if (t->count > kRingCapacity)
            dropped += t->count - kRingCapacity;
    }
    // Adopted remote lanes: each pid_tag renders as its own process so
    // shard spans sit beside (and, timestamp-wise, inside) the local
    // dispatch spans that shipped them.
    for (const RemoteLane &lane : remotes) {
        if (lane.events.empty())
            continue;
        out += ",\n";
        appendMetadata(out, "process_name", lane.pid_tag, 0,
                       lane.process_name);
        for (const TraceShippedEvent &e : lane.events) {
            out += ",\n";
            appendShippedEvent(out, e, lane.pid_tag);
        }
    }
    dropped += remote_dropped;
    out += "\n],\"displayTimeUnit\":\"ms\",\"droppedEvents\":" +
           std::to_string(dropped) + "}\n";

    return atomicWriteFile(path, out);
}

} // namespace evrsim
