/**
 * @file
 * Deadline-aware socket helpers (net.hpp).
 */
#include "common/net.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/env.hpp"

namespace evrsim {

namespace {

std::int64_t
nowMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

Status
errnoStatus(const std::string &what)
{
    return Status::unavailable(what + ": " + std::strerror(errno));
}

Status
setNonblocking(int fd, bool nonblocking)
{
    int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0)
        return errnoStatus("fcntl(F_GETFL)");
    if (nonblocking)
        flags |= O_NONBLOCK;
    else
        flags &= ~O_NONBLOCK;
    if (::fcntl(fd, F_SETFL, flags) < 0)
        return errnoStatus("fcntl(F_SETFL)");
    return {};
}

/**
 * Finish a nonblocking connect: poll for writability until
 * @p deadline, then read SO_ERROR for the real verdict.
 */
Status
awaitConnect(int fd, std::int64_t deadline)
{
    for (;;) {
        std::int64_t left = deadline - nowMs();
        if (left <= 0)
            return Status::deadlineExceeded("connect timed out");
        struct pollfd pfd;
        pfd.fd = fd;
        pfd.events = POLLOUT;
        pfd.revents = 0;
        int n = ::poll(&pfd, 1, static_cast<int>(left));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return errnoStatus("poll(connect)");
        }
        if (n == 0)
            return Status::deadlineExceeded("connect timed out");
        int err = 0;
        socklen_t err_len = sizeof(err);
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) < 0)
            return errnoStatus("getsockopt(SO_ERROR)");
        if (err != 0)
            return Status::unavailable(std::string("connect: ") +
                                       std::strerror(err));
        return {};
    }
}

} // namespace

void
ignoreSigpipe()
{
    static std::once_flag once;
    std::call_once(once, [] {
        struct sigaction cur;
        std::memset(&cur, 0, sizeof(cur));
        if (::sigaction(SIGPIPE, nullptr, &cur) == 0 &&
            cur.sa_handler != SIG_DFL)
            return; // an embedding application installed a handler
        struct sigaction ign;
        std::memset(&ign, 0, sizeof(ign));
        ign.sa_handler = SIG_IGN;
        ::sigemptyset(&ign.sa_mask);
        ::sigaction(SIGPIPE, &ign, nullptr);
    });
}

Status
splitHostPort(const std::string &host_port, std::string *host,
              int *port)
{
    std::size_t colon = host_port.rfind(':');
    if (colon == std::string::npos || colon == 0)
        return Status::invalidArgument("expected <host>:<port>, got '" +
                                       host_port + "'");
    Result<long long> p = parseIntStrict(host_port.substr(colon + 1));
    if (!p.ok() || p.value() < 0 || p.value() > 65535)
        return Status::invalidArgument("port in '" + host_port +
                                       "' must be in [0, 65535]");
    *host = host_port.substr(0, colon);
    *port = static_cast<int>(p.value());
    return {};
}

Result<int>
tcpListen(const std::string &host_port, int backlog)
{
    std::string host;
    int port = 0;
    Status split = splitHostPort(host_port, &host, &port);
    if (!split.ok())
        return split;

    struct addrinfo hints;
    std::memset(&hints, 0, sizeof(hints));
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_PASSIVE;
    struct addrinfo *res = nullptr;
    std::string port_str = std::to_string(port);
    int gai = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res);
    if (gai != 0)
        return Status::invalidArgument("resolve '" + host +
                                       "': " + ::gai_strerror(gai));

    Status last = Status::unavailable("no addresses for '" + host + "'");
    for (struct addrinfo *ai = res; ai; ai = ai->ai_next) {
        int fd = ::socket(ai->ai_family,
                          ai->ai_socktype | SOCK_CLOEXEC, 0);
        if (fd < 0) {
            last = errnoStatus("socket");
            continue;
        }
        int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        if (::bind(fd, ai->ai_addr, ai->ai_addrlen) < 0 ||
            ::listen(fd, backlog) < 0) {
            last = errnoStatus("bind/listen " + host_port);
            ::close(fd);
            continue;
        }
        ::freeaddrinfo(res);
        return fd;
    }
    ::freeaddrinfo(res);
    return last;
}

std::string
listenAddress(int listen_fd)
{
    struct sockaddr_in addr;
    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd,
                      reinterpret_cast<struct sockaddr *>(&addr),
                      &len) < 0 ||
        addr.sin_family != AF_INET)
        return {};
    char host[INET_ADDRSTRLEN] = {0};
    if (!::inet_ntop(AF_INET, &addr.sin_addr, host, sizeof(host)))
        return {};
    return std::string(host) + ":" +
           std::to_string(ntohs(addr.sin_port));
}

Result<int>
tcpConnect(const std::string &host_port, int deadline_ms)
{
    std::string host;
    int port = 0;
    Status split = splitHostPort(host_port, &host, &port);
    if (!split.ok())
        return split;
    if (port == 0)
        return Status::invalidArgument("cannot connect to port 0 ('" +
                                       host_port + "')");

    struct addrinfo hints;
    std::memset(&hints, 0, sizeof(hints));
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    struct addrinfo *res = nullptr;
    std::string port_str = std::to_string(port);
    int gai = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res);
    if (gai != 0)
        return Status::unavailable("resolve '" + host +
                                   "': " + ::gai_strerror(gai));

    const std::int64_t deadline = nowMs() + deadline_ms;
    Status last = Status::unavailable("no addresses for '" + host + "'");
    for (struct addrinfo *ai = res; ai; ai = ai->ai_next) {
        int fd = ::socket(ai->ai_family,
                          ai->ai_socktype | SOCK_CLOEXEC, 0);
        if (fd < 0) {
            last = errnoStatus("socket");
            continue;
        }
        Status st = setNonblocking(fd, true);
        if (st.ok()) {
            if (::connect(fd, ai->ai_addr, ai->ai_addrlen) < 0 &&
                errno != EINPROGRESS)
                st = errnoStatus("connect " + host_port);
            else
                st = awaitConnect(fd, deadline);
        }
        if (st.ok())
            st = setNonblocking(fd, false);
        if (!st.ok()) {
            last = st;
            ::close(fd);
            if (st.code() == ErrorCode::DeadlineExceeded)
                break; // no budget left for further addresses
            continue;
        }
        int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_KEEPALIVE, &one, sizeof(one));
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        ::freeaddrinfo(res);
        return fd;
    }
    ::freeaddrinfo(res);
    return last;
}

Result<int>
unixConnect(const std::string &path, int deadline_ms)
{
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        return Status::invalidArgument("socket path too long: " + path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return errnoStatus("socket(AF_UNIX)");
    Status st = setNonblocking(fd, true);
    if (st.ok()) {
        if (::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                      sizeof(addr)) < 0) {
            if (errno == EINPROGRESS) {
                st = awaitConnect(fd, nowMs() + deadline_ms);
            } else if (errno == EAGAIN) {
                // AF_UNIX quirk: a full accept backlog fails the
                // nonblocking connect *immediately* with EAGAIN and
                // poll will never complete it — surface Unavailable
                // so the caller's retry/backoff loop handles it.
                st = Status::unavailable("connect " + path +
                                         ": backlog full");
            } else {
                st = errnoStatus("connect " + path);
            }
        }
    }
    if (st.ok())
        st = setNonblocking(fd, false);
    if (!st.ok()) {
        ::close(fd);
        return st;
    }
    return fd;
}

Result<int>
acceptDeadline(int listen_fd, int timeout_ms)
{
    const std::int64_t deadline = nowMs() + timeout_ms;
    for (;;) {
        std::int64_t left = deadline - nowMs();
        if (left <= 0)
            return Status::deadlineExceeded("accept timed out");
        struct pollfd pfd;
        pfd.fd = listen_fd;
        pfd.events = POLLIN;
        pfd.revents = 0;
        int n = ::poll(&pfd, 1, static_cast<int>(left));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return errnoStatus("poll(accept)");
        }
        if (n == 0)
            return Status::deadlineExceeded("accept timed out");
        if (pfd.revents & (POLLERR | POLLHUP | POLLNVAL))
            return Status::cancelled("listener closed");
        int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
        if (fd < 0) {
            if (errno == EINTR || errno == EAGAIN ||
                errno == ECONNABORTED)
                continue;
            if (errno == EBADF || errno == EINVAL)
                return Status::cancelled("listener closed");
            return errnoStatus("accept");
        }
        return fd;
    }
}

Status
sendAllDeadline(int fd, const void *data, std::size_t len,
                int deadline_ms)
{
    const char *p = static_cast<const char *>(data);
    std::size_t sent = 0;
    const std::int64_t deadline = nowMs() + deadline_ms;
    while (sent < len) {
        ssize_t n = ::send(fd, p + sent, len - sent, MSG_NOSIGNAL);
        if (n > 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            std::int64_t left = deadline - nowMs();
            if (left <= 0)
                return Status::deadlineExceeded("send timed out");
            struct pollfd pfd;
            pfd.fd = fd;
            pfd.events = POLLOUT;
            pfd.revents = 0;
            if (::poll(&pfd, 1, static_cast<int>(left)) < 0 &&
                errno != EINTR)
                return errnoStatus("poll(send)");
            continue;
        }
        return errnoStatus("send");
    }
    return {};
}

} // namespace evrsim
