/**
 * @file
 * FaultInjector implementation.
 */
#include "common/fault_injector.hpp"

#include <cstdlib>

#include "common/env.hpp"
#include "common/log.hpp"

namespace evrsim {

std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

std::uint64_t
fnv1a64(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

namespace {

Result<FaultSite>
siteFromName(const std::string &name)
{
    for (int i = 0; i < kNumFaultSites; ++i) {
        FaultSite site = static_cast<FaultSite>(i);
        if (name == faultSiteName(site))
            return site;
    }
    return Status::invalidArgument(
        "unknown fault site '" + name +
        "' (expected cache-read, cache-write, job-execute, "
        "scene-mutate, worker-crash or worker-hang)");
}

/** 53-bit mantissa draw in [0, 1) from one mixed word. */
double
unitDraw(std::uint64_t mixed)
{
    return static_cast<double>(mixed >> 11) * 0x1.0p-53;
}

} // namespace

const char *
faultSiteName(FaultSite site)
{
    switch (site) {
      case FaultSite::CacheRead:
        return "cache-read";
      case FaultSite::CacheWrite:
        return "cache-write";
      case FaultSite::JobExecute:
        return "job-execute";
      case FaultSite::SceneMutate:
        return "scene-mutate";
      case FaultSite::WorkerCrash:
        return "worker-crash";
      case FaultSite::WorkerHang:
        return "worker-hang";
    }
    return "unknown";
}

Result<FaultPlan>
FaultInjector::parsePlan(const std::string &text)
{
    FaultPlan plan;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        std::size_t comma = text.find(',', pos);
        std::string entry = text.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        std::size_t c1 = entry.find(':');
        std::size_t c2 =
            c1 == std::string::npos ? std::string::npos
                                    : entry.find(':', c1 + 1);
        if (c1 == std::string::npos || c2 == std::string::npos)
            return Status::invalidArgument(
                "malformed fault spec '" + entry +
                "' (expected <site>:<rate>:<seed>)");

        Result<FaultSite> site = siteFromName(entry.substr(0, c1));
        if (!site.ok())
            return site.status();

        Result<double> rate =
            parseDoubleStrict(entry.substr(c1 + 1, c2 - c1 - 1));
        if (!rate.ok() || rate.value() < 0.0 || rate.value() > 1.0)
            return Status::invalidArgument(
                "fault rate in '" + entry +
                "' must be a number in [0, 1]");

        Result<long long> seed = parseIntStrict(entry.substr(c2 + 1));
        if (!seed.ok() || seed.value() < 0)
            return Status::invalidArgument(
                "fault seed in '" + entry +
                "' must be a non-negative integer");

        FaultSpec &spec = plan[static_cast<int>(site.value())];
        spec.enabled = true;
        spec.rate = rate.value();
        spec.seed = static_cast<std::uint64_t>(seed.value());

        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return plan;
}

FaultPlan
FaultInjector::planFromEnv()
{
    const char *raw = std::getenv("EVRSIM_FAULT");
    if (!raw)
        return {};
    Result<FaultPlan> plan = parsePlan(raw);
    if (!plan.ok())
        fatal("EVRSIM_FAULT: %s", plan.status().message().c_str());
    return plan.value();
}

bool
FaultInjector::shouldFail(FaultSite site)
{
    const int i = static_cast<int>(site);
    const FaultSpec &spec = plan_[i];
    if (!spec.enabled)
        return false;
    std::uint64_t n = draws_[i].fetch_add(1, std::memory_order_relaxed);
    // [0, 1) draw compared with < rate, so rate 0 never fires and
    // rate 1 always does.
    double u = unitDraw(mix64(spec.seed ^ mix64(n)));
    if (u >= spec.rate)
        return false;
    injected_[i].fetch_add(1, std::memory_order_relaxed);
    return true;
}

bool
FaultInjector::shouldFailAt(FaultSite site, std::uint64_t key)
{
    const int i = static_cast<int>(site);
    const FaultSpec &spec = plan_[i];
    if (!spec.enabled)
        return false;
    draws_[i].fetch_add(1, std::memory_order_relaxed);
    double u = unitDraw(mix64(spec.seed ^ mix64(key)));
    if (u >= spec.rate)
        return false;
    injected_[i].fetch_add(1, std::memory_order_relaxed);
    return true;
}

std::uint64_t
FaultInjector::injected(FaultSite site) const
{
    return injected_[static_cast<int>(site)].load(
        std::memory_order_relaxed);
}

std::uint64_t
FaultInjector::draws(FaultSite site) const
{
    return draws_[static_cast<int>(site)].load(std::memory_order_relaxed);
}

} // namespace evrsim
