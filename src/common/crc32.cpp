/**
 * @file
 * CRC32 implementation: table-driven update plus GF(2) matrix combine.
 */
#include "common/crc32.hpp"

#include <array>

namespace evrsim {

namespace {

constexpr std::uint32_t kPoly = 0xedb88320u; // reflected IEEE polynomial

constexpr std::array<std::uint32_t, 256>
makeTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
        table[i] = c;
    }
    return table;
}

const std::array<std::uint32_t, 256> kTable = makeTable();

/** Multiply a GF(2) 32x32 matrix by a vector. */
std::uint32_t
gf2MatrixTimes(const std::uint32_t *mat, std::uint32_t vec)
{
    std::uint32_t sum = 0;
    while (vec) {
        if (vec & 1u)
            sum ^= *mat;
        vec >>= 1;
        ++mat;
    }
    return sum;
}

/** Square a GF(2) 32x32 matrix: square[i] = mat * mat[i]. */
void
gf2MatrixSquare(std::uint32_t *square, const std::uint32_t *mat)
{
    for (int n = 0; n < 32; ++n)
        square[n] = gf2MatrixTimes(mat, mat[n]);
}

} // namespace

void
Crc32::update(const void *data, std::size_t len)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint32_t c = crc_;
    for (std::size_t i = 0; i < len; ++i)
        c = kTable[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    crc_ = c;
    length_ += len;
}

std::uint32_t
Crc32::of(const void *data, std::size_t len)
{
    Crc32 h;
    h.update(data, len);
    return h.value();
}

std::uint32_t
Crc32::combine(std::uint32_t crc_a, std::uint32_t crc_b, std::uint64_t len_b)
{
    // Degenerate case: appending an empty block changes nothing.
    if (len_b == 0)
        return crc_a;

    std::uint32_t even[32]; // even-power-of-two zero operator
    std::uint32_t odd[32];  // odd-power-of-two zero operator

    // Put the operator for one zero bit in odd.
    odd[0] = kPoly;
    std::uint32_t row = 1;
    for (int n = 1; n < 32; ++n) {
        odd[n] = row;
        row <<= 1;
    }

    // Operator for two zero bits, then four.
    gf2MatrixSquare(even, odd);
    gf2MatrixSquare(odd, even);

    // Apply len_b zero bytes to crc_a (8 * len_b zero bits), squaring the
    // operator as we walk the bits of the length.
    std::uint64_t len = len_b;
    std::uint32_t crc = crc_a;
    do {
        gf2MatrixSquare(even, odd);
        if (len & 1u)
            crc = gf2MatrixTimes(even, crc);
        len >>= 1;
        if (len == 0)
            break;

        gf2MatrixSquare(odd, even);
        if (len & 1u)
            crc = gf2MatrixTimes(odd, crc);
        len >>= 1;
    } while (len != 0);

    return crc ^ crc_b;
}

} // namespace evrsim
