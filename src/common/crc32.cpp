/**
 * @file
 * CRC32 implementation: table-driven update plus GF(2) matrix combine.
 *
 * Both operations sit on simulation hot paths (per-primitive signature
 * combines run once per (primitive, tile) pair per frame), so each has a
 * fast path that is bit-identical to the textbook form:
 *
 *  - update() consumes 8 bytes per step with a slice-by-8 table fan-in
 *    (same polynomial division, just restructured XOR order);
 *  - combine() memoizes the zero-padding operator per block length. The
 *    operator is a pure function of len_b, and the simulator combines
 *    millions of blocks drawn from a handful of attribute sizes, so the
 *    expensive matrix-exponentiation runs once per distinct length and
 *    every later combine is a single 32-bit matrix-vector product.
 */
#include "common/crc32.hpp"

#include <array>
#include <mutex>
#include <unordered_map>

namespace evrsim {

namespace {

constexpr std::uint32_t kPoly = 0xedb88320u; // reflected IEEE polynomial

/** Slice-by-8 tables: kTable8[0] is the classic byte table; entry
 *  kTable8[k][b] advances byte b through k additional zero bytes. */
using SliceTables = std::array<std::array<std::uint32_t, 256>, 8>;

constexpr SliceTables
makeTables()
{
    SliceTables t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
        t[0][i] = c;
    }
    for (int k = 1; k < 8; ++k)
        for (std::uint32_t i = 0; i < 256; ++i)
            t[k][i] = t[0][t[k - 1][i] & 0xffu] ^ (t[k - 1][i] >> 8);
    return t;
}

const SliceTables kT = makeTables();

/** Multiply a GF(2) 32x32 matrix by a vector. */
std::uint32_t
gf2MatrixTimes(const std::uint32_t *mat, std::uint32_t vec)
{
    std::uint32_t sum = 0;
    while (vec) {
        if (vec & 1u)
            sum ^= *mat;
        vec >>= 1;
        ++mat;
    }
    return sum;
}

/** Square a GF(2) 32x32 matrix: square[i] = mat * mat[i]. */
void
gf2MatrixSquare(std::uint32_t *square, const std::uint32_t *mat)
{
    for (int n = 0; n < 32; ++n)
        square[n] = gf2MatrixTimes(mat, mat[n]);
}

/** The 32x32 GF(2) operator advancing a CRC across len zero bytes. */
struct ZeroOperator {
    std::array<std::uint32_t, 32> mat;
};

/** Build the zero operator for @p len bytes (len > 0) from scratch —
 *  the original matrix-exponentiation walk of the length's bits. */
ZeroOperator
buildZeroOperator(std::uint64_t len)
{
    std::uint32_t even[32]; // even-power-of-two zero operator
    std::uint32_t odd[32];  // odd-power-of-two zero operator

    // Operator for one zero bit.
    odd[0] = kPoly;
    std::uint32_t row = 1;
    for (int n = 1; n < 32; ++n) {
        odd[n] = row;
        row <<= 1;
    }
    // Two zero bits, then four.
    gf2MatrixSquare(even, odd);
    gf2MatrixSquare(odd, even);

    // Accumulate the identity-applied operator while walking the bits of
    // 8 * len (as zero *bytes*). We track the composite operator as a
    // matrix so it can be reapplied to any CRC later.
    ZeroOperator out;
    for (int n = 0; n < 32; ++n)
        out.mat[n] = 1u << n; // identity

    std::uint32_t tmp[32];
    bool first = true;
    do {
        gf2MatrixSquare(even, odd);
        if (len & 1u) {
            if (first) {
                for (int n = 0; n < 32; ++n)
                    out.mat[n] = even[n];
                first = false;
            } else {
                for (int n = 0; n < 32; ++n)
                    tmp[n] = gf2MatrixTimes(even, out.mat[n]);
                for (int n = 0; n < 32; ++n)
                    out.mat[n] = tmp[n];
            }
        }
        len >>= 1;
        if (len == 0)
            break;

        gf2MatrixSquare(odd, even);
        if (len & 1u) {
            if (first) {
                for (int n = 0; n < 32; ++n)
                    out.mat[n] = odd[n];
                first = false;
            } else {
                for (int n = 0; n < 32; ++n)
                    tmp[n] = gf2MatrixTimes(odd, out.mat[n]);
                for (int n = 0; n < 32; ++n)
                    out.mat[n] = tmp[n];
            }
        }
        len >>= 1;
    } while (len != 0);

    return out;
}

/** Memoized zero operators keyed by block length. Guarded by a mutex:
 *  lookups are two orders of magnitude cheaper than one matrix build,
 *  and concurrent tile workers may combine during parallel raster. */
const ZeroOperator &
zeroOperatorFor(std::uint64_t len)
{
    static std::mutex mu;
    static std::unordered_map<std::uint64_t, ZeroOperator> cache;
    std::lock_guard<std::mutex> lock(mu);
    auto it = cache.find(len);
    if (it == cache.end())
        it = cache.emplace(len, buildZeroOperator(len)).first;
    return it->second;
}

} // namespace

void
Crc32::update(const void *data, std::size_t len)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint32_t c = crc_;
    length_ += len;

    // Slice-by-8: fold 8 bytes per iteration through the 8 tables. The
    // result is the same polynomial division as the byte loop below.
    while (len >= 8) {
        std::uint32_t lo = c ^ (static_cast<std::uint32_t>(p[0]) |
                                (static_cast<std::uint32_t>(p[1]) << 8) |
                                (static_cast<std::uint32_t>(p[2]) << 16) |
                                (static_cast<std::uint32_t>(p[3]) << 24));
        c = kT[7][lo & 0xffu] ^ kT[6][(lo >> 8) & 0xffu] ^
            kT[5][(lo >> 16) & 0xffu] ^ kT[4][lo >> 24] ^ kT[3][p[4]] ^
            kT[2][p[5]] ^ kT[1][p[6]] ^ kT[0][p[7]];
        p += 8;
        len -= 8;
    }
    for (std::size_t i = 0; i < len; ++i)
        c = kT[0][(c ^ p[i]) & 0xffu] ^ (c >> 8);
    crc_ = c;
}

std::uint32_t
Crc32::of(const void *data, std::size_t len)
{
    Crc32 h;
    h.update(data, len);
    return h.value();
}

std::uint32_t
Crc32::combine(std::uint32_t crc_a, std::uint32_t crc_b, std::uint64_t len_b)
{
    // Degenerate case: appending an empty block changes nothing.
    if (len_b == 0)
        return crc_a;
    const ZeroOperator &op = zeroOperatorFor(len_b);
    return gf2MatrixTimes(op.mat.data(), crc_a) ^ crc_b;
}

} // namespace evrsim
