/**
 * @file
 * Validation-and-degradation policy for the simulation core.
 *
 * EVRSIM_VALIDATE selects how much the simulator distrusts its inputs
 * and itself:
 *
 *   off         (default) no ingestion checks, no invariant auditing —
 *               the production fast path, zero overhead.
 *   permissive  malformed scene input is sanitized (offending draw
 *               commands dropped), pipeline invariants are audited, and
 *               a violation never aborts: the offending tile is repaired
 *               from the reference raster path, EVR/RE is disabled for
 *               it, and a degradation counter is recorded in the frame's
 *               stats (surfacing in RunResult JSON and the sweep fault
 *               report).
 *   strict      the same checks, but any violation converts the frame
 *               (and therefore the run) into a failing Status — the mode
 *               the `invariants` ctest label runs under.
 *
 * EVRSIM_VALIDATE_SAMPLE tunes the expensive end-of-tile image-identity
 * check: the fraction of tiles (deterministically sampled per frame)
 * re-rendered through the reference raster path and compared
 * bit-for-bit. 1 = every tile, 0 = identity checking off; the cheap
 * structural checks (binning containment, Algorithm 1 list composition,
 * FVP conservativeness, scenario-D poisoning) always run when validation
 * is enabled.
 */
#ifndef EVRSIM_COMMON_VALIDATE_HPP
#define EVRSIM_COMMON_VALIDATE_HPP

#include <cstdint>
#include <string>

#include "common/status.hpp"

namespace evrsim {

/** How much checking the simulation core performs. */
enum class ValidateMode {
    Off = 0,    ///< no checks (production path)
    Permissive, ///< check, repair and count — never abort
    Strict,     ///< check and fail the run on the first violation
};

/** Stable name used in env values and cache tags ("permissive"). */
const char *validateModeName(ValidateMode mode);

/** Resolved validation policy for one simulation. */
struct ValidationConfig {
    ValidateMode mode = ValidateMode::Off;

    /**
     * Fraction of rendered tiles whose final pixels are compared against
     * the reference raster path each frame, in [0, 1]. Sampling is a
     * pure function of (seed, frame, tile), so runs are reproducible.
     */
    double tile_sample_rate = 0.0625;

    /** Stream seed for the tile-sampling decisions. */
    std::uint64_t seed = 0;

    bool enabled() const { return mode != ValidateMode::Off; }
    bool strict() const { return mode == ValidateMode::Strict; }

    /**
     * Cache-key fragment distinguishing validated runs from production
     * runs (auditing adds counters to the persisted totals). Empty when
     * validation is off, so existing cache entries keep their names.
     */
    std::string cacheTag() const;
};

/**
 * Resolve the validation policy from EVRSIM_VALIDATE /
 * EVRSIM_VALIDATE_SAMPLE. Unset means off; a malformed value is
 * InvalidArgument naming the variable, never silently ignored.
 */
Result<ValidationConfig> validationFromEnvChecked();

/** validationFromEnvChecked() that exits(1) on invalid knobs. */
ValidationConfig validationFromEnv();

} // namespace evrsim

#endif // EVRSIM_COMMON_VALIDATE_HPP
