/**
 * @file
 * Deterministic fault injection for exercising the sweep's recovery
 * paths (corrupt-cache quarantine, transient-job retry, failure
 * reporting) from ctest, without hand-corrupting files or racing kill
 * signals.
 *
 * Faults are enabled through EVRSIM_FAULT, a comma-separated list of
 * `<site>:<rate>:<seed>` triples:
 *
 *   EVRSIM_FAULT=cache-read:1:42            every cache load fails
 *   EVRSIM_FAULT=job-execute:0.25:7         a quarter of job attempts
 *   EVRSIM_FAULT=cache-read:1:1,cache-write:1:2
 *
 * Sites:
 *   cache-read    loading an on-disk result entry reports DataLoss
 *                 (the entry is quarantined and re-simulated)
 *   cache-write   publishing a result entry fails (warn, no cache file)
 *   job-execute   a simulation attempt reports Unavailable (transient,
 *                 so the scheduler's bounded retry engages)
 *   scene-mutate  the frame's scene is corrupted by the deterministic
 *                 fuzz mutator before ingestion (exercises the
 *                 EVRSIM_VALIDATE sanitize/degrade paths from benches)
 *   worker-crash  an EVRSIM_ISOLATE=process worker raises SIGSEGV
 *                 before simulating (exercises the supervisor's
 *                 crash-retry-quarantine path); evaluated only inside
 *                 a worker process, keyed by job so every attempt of
 *                 an injected job dies and no other job ever does
 *   worker-hang   an isolated worker spins forever instead of
 *                 simulating, so the parent's hard SIGKILL deadline
 *                 (EVRSIM_JOB_TIMEOUT_MS) must reap it
 *
 * Decisions are a pure function of (site seed, per-site draw counter)
 * via SplitMix64, so a single-threaded sweep injects the *same* faults
 * on every run — the recovery tests are reproducible, not flaky. Sites
 * whose decisions must agree across configurations regardless of
 * scheduling order (scene-mutate: the baseline and EVR runs of a
 * workload must see identical corruption for image comparisons to be
 * meaningful) use shouldFailAt() with a caller-derived key instead of
 * the draw counter. When EVRSIM_FAULT is unset the injector is a single
 * predictable branch per site (enabled flag false), i.e. zero overhead
 * on the production path.
 */
#ifndef EVRSIM_COMMON_FAULT_INJECTOR_HPP
#define EVRSIM_COMMON_FAULT_INJECTOR_HPP

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.hpp"

namespace evrsim {

/** Instrumented operations a fault can be injected into. */
enum class FaultSite {
    CacheRead = 0,
    CacheWrite = 1,
    JobExecute = 2,
    SceneMutate = 3,
    WorkerCrash = 4,
    WorkerHang = 5,
};
constexpr int kNumFaultSites = 6;

/**
 * SplitMix64 finalizer: an uncorrelated u64 from any input. Shared by
 * the fault injector, the validation tile sampler and the scene fuzzer
 * so every "random but reproducible" decision uses one primitive.
 */
std::uint64_t mix64(std::uint64_t x);

/**
 * FNV-1a over a string, for keying per-job fault decisions.
 * std::hash<std::string> is implementation-defined, which would make
 * keyed injection differ across standard libraries (and across the
 * parent/worker boundary if they were ever built differently); FNV-1a
 * keeps every string -> decision mapping stable everywhere.
 */
std::uint64_t fnv1a64(const std::string &s);

/** Human name used in EVRSIM_FAULT specs ("cache-read"). */
const char *faultSiteName(FaultSite site);

/** Per-site injection configuration. */
struct FaultSpec {
    bool enabled = false;
    double rate = 0.0;      ///< probability of failure per draw, [0, 1]
    std::uint64_t seed = 0; ///< stream seed for deterministic draws
};

using FaultPlan = std::array<FaultSpec, kNumFaultSites>;

/** Seeded per-site fault source. Thread-safe. */
class FaultInjector
{
  public:
    /** All sites disabled. */
    FaultInjector() = default;

    explicit FaultInjector(const FaultPlan &plan) : plan_(plan) {}

    /** Parse an EVRSIM_FAULT spec string ("site:rate:seed[,...]"). */
    static Result<FaultPlan> parsePlan(const std::string &text);

    /**
     * Plan from the EVRSIM_FAULT environment variable; all-disabled
     * when unset, fatal (user error) when malformed.
     */
    static FaultPlan planFromEnv();

    /** Whether any site can inject. */
    bool
    enabled() const
    {
        for (const FaultSpec &s : plan_)
            if (s.enabled)
                return true;
        return false;
    }

    /**
     * Draw the next decision for @p site: true = inject a failure.
     * Deterministic in the number of prior draws for the site.
     */
    bool shouldFail(FaultSite site);

    /**
     * Keyed decision for @p site: a pure function of (site seed, @p key)
     * — independent of how many draws other threads or configurations
     * made before this one. Counted in draws()/injected() like
     * shouldFail().
     */
    bool shouldFailAt(FaultSite site, std::uint64_t key);

    /** Per-site configuration (tests and fuzzer seeding). */
    const FaultSpec &
    spec(FaultSite site) const
    {
        return plan_[static_cast<int>(site)];
    }

    /** Failures injected at @p site so far. */
    std::uint64_t injected(FaultSite site) const;

    /** Decisions drawn at @p site so far. */
    std::uint64_t draws(FaultSite site) const;

  private:
    FaultPlan plan_;
    std::array<std::atomic<std::uint64_t>, kNumFaultSites> draws_{};
    std::array<std::atomic<std::uint64_t>, kNumFaultSites> injected_{};
};

} // namespace evrsim

#endif // EVRSIM_COMMON_FAULT_INJECTOR_HPP
