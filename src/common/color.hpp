/**
 * @file
 * Packed RGBA8 color type used by the Color Buffer and framebuffer.
 *
 * Fragment shaders produce floating-point RGBA (Vec4 with components in
 * [0, 1]); the blend stage converts to packed 8-bit-per-channel values on
 * Color Buffer writes, exactly like the modelled hardware. Keeping the
 * stored format at 8 bits also makes the "tile produced identical colors"
 * comparisons well defined.
 */
#ifndef EVRSIM_COMMON_COLOR_HPP
#define EVRSIM_COMMON_COLOR_HPP

#include <cstdint>

#include "common/vec.hpp"

namespace evrsim {

/** Packed 32-bit RGBA color, 8 bits per channel. */
struct Rgba8 {
    std::uint8_t r = 0;
    std::uint8_t g = 0;
    std::uint8_t b = 0;
    std::uint8_t a = 255;

    constexpr bool operator==(const Rgba8 &o) const = default;

    /** Reinterpret as one 32-bit word (for hashing / fast compares). */
    std::uint32_t
    packed() const
    {
        return static_cast<std::uint32_t>(r) |
               (static_cast<std::uint32_t>(g) << 8) |
               (static_cast<std::uint32_t>(b) << 16) |
               (static_cast<std::uint32_t>(a) << 24);
    }
};

/** Convert one float channel in [0,1] to 8 bits with rounding. */
constexpr std::uint8_t
channelTo8(float v)
{
    float c = clampf(v, 0.0f, 1.0f);
    return static_cast<std::uint8_t>(c * 255.0f + 0.5f);
}

/** Quantize a float RGBA color to packed RGBA8. */
constexpr Rgba8
toRgba8(const Vec4 &c)
{
    return {channelTo8(c.x), channelTo8(c.y), channelTo8(c.z),
            channelTo8(c.w)};
}

/** Expand a packed RGBA8 color to float RGBA. */
constexpr Vec4
toVec4(const Rgba8 &c)
{
    constexpr float inv = 1.0f / 255.0f;
    return {c.r * inv, c.g * inv, c.b * inv, c.a * inv};
}

} // namespace evrsim

#endif // EVRSIM_COMMON_COLOR_HPP
