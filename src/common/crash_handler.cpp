/**
 * @file
 * Crash handler implementation.
 *
 * Everything the handler touches is pre-formatted or plain-old-data:
 * the run identity is copied into fixed thread-local buffers at set
 * time, so the handler itself only concatenates bytes and calls
 * write(2) — both async-signal-safe.
 */
#include "common/crash_handler.hpp"

#include <signal.h>
#include <string.h>
#include <unistd.h>

namespace evrsim {

namespace {

constexpr int kNameMax = 64;

thread_local char tls_workload[kNameMax] = {0};
thread_local char tls_config[kNameMax] = {0};
thread_local int tls_frame = -1;
thread_local int tls_tile = -1;

/** Fixed-depth stack of active trace spans (literal pointers only, so
 *  the handler can read them from a signal context without copying). */
constexpr int kSpanDepthMax = 16;
thread_local const char *tls_span_cat[kSpanDepthMax] = {nullptr};
thread_local const char *tls_span_name[kSpanDepthMax] = {nullptr};
thread_local int tls_span_depth = 0;

bool installed = false;

/** Bounded copy into a fixed buffer, always NUL-terminated. */
void
copyName(char (&dst)[kNameMax], const char *src)
{
    if (!src) {
        dst[0] = '\0';
        return;
    }
    size_t n = strlen(src);
    if (n >= kNameMax)
        n = kNameMax - 1;
    memcpy(dst, src, n);
    dst[n] = '\0';
}

/** write(2) a NUL-terminated string; EINTR-tolerant best effort. */
void
put(const char *s)
{
    size_t len = strlen(s);
    while (len > 0) {
        ssize_t w = write(STDERR_FILENO, s, len);
        if (w <= 0)
            return;
        s += w;
        len -= static_cast<size_t>(w);
    }
}

/** Signal-safe signed decimal formatting. */
void
putInt(long v)
{
    char buf[24];
    char *p = buf + sizeof(buf);
    bool neg = v < 0;
    unsigned long u = neg ? 0ul - static_cast<unsigned long>(v)
                          : static_cast<unsigned long>(v);
    do {
        *--p = static_cast<char>('0' + (u % 10));
        u /= 10;
    } while (u != 0);
    if (neg)
        *--p = '-';
    while (p < buf + sizeof(buf)) {
        char c[1] = {*p++};
        if (write(STDERR_FILENO, c, 1) <= 0)
            return;
    }
}

const char *
signalName(int sig)
{
    switch (sig) {
      case SIGSEGV:
        return "SIGSEGV";
      case SIGABRT:
        return "SIGABRT";
      case SIGBUS:
        return "SIGBUS";
      case SIGFPE:
        return "SIGFPE";
      case SIGILL:
        return "SIGILL";
    }
    return "signal";
}

void
crashHandler(int sig)
{
    put("\n=== evrsim crash: ");
    put(signalName(sig));
    put(" ===\n");
    if (tls_workload[0] || tls_config[0]) {
        put("active run: ");
        put(tls_workload[0] ? tls_workload : "?");
        put("/");
        put(tls_config[0] ? tls_config : "?");
        put("\n");
    } else {
        put("active run: (none recorded on this thread)\n");
    }
    if (tls_frame >= 0) {
        put("frame: ");
        putInt(tls_frame);
        put("\n");
    }
    if (tls_tile >= 0) {
        put("tile: ");
        putInt(tls_tile);
        put("\n");
    }
    int depth = tls_span_depth;
    if (depth > kSpanDepthMax)
        depth = kSpanDepthMax;
    if (depth > 0 && tls_span_name[depth - 1]) {
        put("active span: ");
        put(tls_span_cat[depth - 1] ? tls_span_cat[depth - 1] : "?");
        put("/");
        put(tls_span_name[depth - 1]);
        put(" (depth ");
        putInt(tls_span_depth);
        put(")\n");
    }
    put("=== re-raising with default disposition ===\n");

    // Restore the default action and re-raise so the process still dies
    // of the original signal (correct exit status, core dump, and any
    // outer supervisor sees the truth).
    signal(sig, SIG_DFL);
    raise(sig);
}

} // namespace

void
installCrashHandler()
{
    if (installed)
        return;
    installed = true;

    struct sigaction sa;
    memset(&sa, 0, sizeof(sa));
    sa.sa_handler = crashHandler;
    sigemptyset(&sa.sa_mask);
    // No SA_RESETHAND: the handler restores SIG_DFL itself; SA_NODEFER
    // unneeded since the handler never returns.
    const int signals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL};
    for (int sig : signals) {
        struct sigaction old;
        if (sigaction(sig, nullptr, &old) == 0 &&
            old.sa_handler != SIG_DFL && old.sa_handler != SIG_IGN) {
            // Something else (a sanitizer runtime, a test harness)
            // already handles this signal; leave it in charge.
            continue;
        }
        sigaction(sig, &sa, nullptr);
    }
}

void
crashContextSetRun(const char *workload, const char *config)
{
    copyName(tls_workload, workload);
    copyName(tls_config, config);
}

void
crashContextSetFrame(int frame)
{
    tls_frame = frame;
}

void
crashContextSetTile(int tile)
{
    tls_tile = tile;
}

void
crashContextPushSpan(const char *category, const char *name)
{
    if (tls_span_depth < kSpanDepthMax) {
        tls_span_cat[tls_span_depth] = category;
        tls_span_name[tls_span_depth] = name;
    }
    ++tls_span_depth;
}

void
crashContextPopSpan()
{
    if (tls_span_depth > 0)
        --tls_span_depth;
}

const char *
crashContextInnermostSpanCategory()
{
    int depth = tls_span_depth;
    if (depth > kSpanDepthMax)
        depth = kSpanDepthMax;
    if (depth <= 0 || !tls_span_cat[depth - 1])
        return "";
    return tls_span_cat[depth - 1];
}

const char *
crashContextInnermostSpanName()
{
    int depth = tls_span_depth;
    if (depth > kSpanDepthMax)
        depth = kSpanDepthMax;
    if (depth <= 0 || !tls_span_name[depth - 1])
        return "";
    return tls_span_name[depth - 1];
}

void
crashContextClear()
{
    tls_workload[0] = '\0';
    tls_config[0] = '\0';
    tls_frame = -1;
    tls_tile = -1;
    tls_span_depth = 0;
}

} // namespace evrsim
