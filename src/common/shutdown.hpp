/**
 * @file
 * Cooperative SIGINT/SIGTERM shutdown for sweeps and the service.
 *
 * The crash handler (crash_handler.hpp) covers *fatal* signals; an
 * operator's Ctrl-C or a systemd stop is different — it should end the
 * sweep cleanly, not kill it mid-write. Before this module, SIGINT
 * killed a bench with the default disposition: no terminal
 * `"final":true` heartbeat record, no summary.json, no trace flush, no
 * metrics export, and the journal's last record possibly still in
 * flight.
 *
 * installShutdownHandler() arms SIGINT/SIGTERM handlers that only set a
 * flag (async-signal-safe by construction). The experiment scheduler
 * checks the flag before *starting* each job — already-running
 * simulations finish, queued ones are shed with ErrorCode::Cancelled —
 * so the sweep drains to a clean end: journal records written,
 * telemetry artifacts flushed by the normal end-of-sweep path, and the
 * process exits 128+signal (130 for SIGINT, 143 for SIGTERM) like a
 * conventional well-behaved daemon. The sweep service uses the same
 * flag to stop admitting requests and drain.
 */
#ifndef EVRSIM_COMMON_SHUTDOWN_HPP
#define EVRSIM_COMMON_SHUTDOWN_HPP

namespace evrsim {

/**
 * Install the cooperative SIGINT/SIGTERM handlers. Idempotent; leaves
 * any non-default handler (a test harness, an embedding runtime) in
 * charge of its signal.
 */
void installShutdownHandler();

/** Whether a shutdown signal has been received (or injected). */
bool shutdownRequested();

/** The signal that requested shutdown (SIGINT/SIGTERM), 0 = none. */
int shutdownSignal();

/**
 * Conventional exit status for the received signal: 128 + signo (130
 * for SIGINT, 143 for SIGTERM); @p fallback when none was received.
 */
int shutdownExitCode(int fallback);

/**
 * Inject a shutdown request as if @p signal had been delivered — the
 * service uses it to drain programmatically, tests use it to exercise
 * the cooperative path without racing a real signal delivery.
 */
void requestShutdown(int signal);

/** Clear the flag (tests only: isolates cases from each other). */
void resetShutdownForTest();

/**
 * Sleep @p ms, waking early if a cooperative shutdown arrives (polled
 * in <= 20 ms slices). True when the full nap completed, false when it
 * was interrupted — retry backoffs use this so a Ctrl-C during a long
 * backoff ends the attempt immediately instead of after the nap.
 */
bool interruptibleSleepMs(int ms);

} // namespace evrsim

#endif // EVRSIM_COMMON_SHUTDOWN_HPP
