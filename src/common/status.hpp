/**
 * @file
 * Structured error propagation: Status and Result<T>.
 *
 * The simulator distinguishes three failure families (see DESIGN.md §8):
 *
 *  - panic():   internal invariant violations — simulator bugs. Abort.
 *  - fatal():   unrecoverable user errors at a process entry point
 *               (bad CLI/environment). Exit(1).
 *  - Status:    *recoverable* conditions inside the sweep machinery —
 *               a corrupt cache entry, an unknown workload alias, an
 *               injected or real I/O fault, a job deadline — which must
 *               degrade one run, never the whole multi-hour sweep.
 *
 * Status carries a coarse ErrorCode plus a human-readable message.
 * Result<T> is a Status-or-value union for fallible producers. Both are
 * deliberately minimal (no payloads, no chaining beyond withContext) —
 * just enough structure for the experiment scheduler's retry and
 * failure-report policies to key off code() and isTransient().
 */
#ifndef EVRSIM_COMMON_STATUS_HPP
#define EVRSIM_COMMON_STATUS_HPP

#include <stdexcept>
#include <string>
#include <utility>

#include "common/log.hpp"

namespace evrsim {

/** Coarse error classification, in the spirit of absl::StatusCode. */
enum class ErrorCode {
    Ok = 0,
    InvalidArgument,  ///< malformed input (env knob, fault spec)
    NotFound,         ///< entity absent (workload alias, cache file)
    DataLoss,         ///< entity present but unusable (corrupt cache)
    Unavailable,      ///< transient I/O-style failure — worth retrying
    DeadlineExceeded, ///< job exceeded its wall-clock budget
    Internal,         ///< unexpected exception escaping a component
    /** A pipeline invariant failed under EVRSIM_VALIDATE=strict; not
     *  transient — the same inputs will violate it again. */
    InvariantViolation,
    /** The work was shed before it started (cooperative shutdown, a
     *  draining service). Nothing about the job itself is wrong. */
    Cancelled,
    /** A bounded resource (admission queue, per-client quota) is full.
     *  The structured answer to overload: back off and retry, or go
     *  elsewhere — never queue unboundedly. */
    ResourceExhausted,
};

/** Stable name for an ErrorCode ("DATA_LOSS"). */
const char *errorCodeName(ErrorCode code);

/** An ErrorCode plus context message; default-constructed is Ok. */
class Status
{
  public:
    Status() = default;
    Status(ErrorCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
    }

    static Status
    invalidArgument(std::string msg)
    {
        return {ErrorCode::InvalidArgument, std::move(msg)};
    }
    static Status
    notFound(std::string msg)
    {
        return {ErrorCode::NotFound, std::move(msg)};
    }
    static Status
    dataLoss(std::string msg)
    {
        return {ErrorCode::DataLoss, std::move(msg)};
    }
    static Status
    unavailable(std::string msg)
    {
        return {ErrorCode::Unavailable, std::move(msg)};
    }
    static Status
    deadlineExceeded(std::string msg)
    {
        return {ErrorCode::DeadlineExceeded, std::move(msg)};
    }
    static Status
    internal(std::string msg)
    {
        return {ErrorCode::Internal, std::move(msg)};
    }
    static Status
    invariantViolation(std::string msg)
    {
        return {ErrorCode::InvariantViolation, std::move(msg)};
    }
    static Status
    cancelled(std::string msg)
    {
        return {ErrorCode::Cancelled, std::move(msg)};
    }
    static Status
    resourceExhausted(std::string msg)
    {
        return {ErrorCode::ResourceExhausted, std::move(msg)};
    }

    bool ok() const { return code_ == ErrorCode::Ok; }
    ErrorCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /**
     * Whether a retry might succeed. Only Unavailable qualifies:
     * corrupt data stays corrupt, a missing alias stays missing, and a
     * run that blew its deadline once will blow it again.
     */
    bool isTransient() const { return code_ == ErrorCode::Unavailable; }

    /** "DATA_LOSS: message" (or "OK"). */
    std::string
    toString() const
    {
        if (ok())
            return "OK";
        return std::string(errorCodeName(code_)) + ": " + message_;
    }

    /** Same code with "@p context: " prefixed to the message. */
    Status
    withContext(const std::string &context) const
    {
        if (ok())
            return *this;
        return {code_, context + ": " + message_};
    }

  private:
    ErrorCode code_ = ErrorCode::Ok;
    std::string message_;
};

/**
 * A value or the Status explaining its absence.
 *
 * Constructed implicitly from either; value() panics on an error-state
 * Result, so callers must branch on ok() first (the point is that the
 * *caller* decides whether a failure is survivable — value() on an
 * unchecked error is a simulator bug, not a user error).
 */
template <typename T>
class Result
{
  public:
    Result(T value) : value_(std::move(value)) {}
    Result(Status status) : status_(std::move(status))
    {
        EVRSIM_ASSERT(!status_.ok());
    }

    bool ok() const { return status_.ok(); }
    const Status &status() const { return status_; }

    const T &
    value() const
    {
        if (!ok())
            panic("Result::value() on error: %s",
                  status_.toString().c_str());
        return value_;
    }

    T &
    value()
    {
        if (!ok())
            panic("Result::value() on error: %s",
                  status_.toString().c_str());
        return value_;
    }

  private:
    Status status_;
    T value_{};
};

/**
 * Exception tagging a failure as transient (retryable) when it crosses a
 * component that communicates by throwing — e.g. a workload whose asset
 * I/O hiccuped. The experiment runner maps it to ErrorCode::Unavailable;
 * every other exception maps to ErrorCode::Internal (no retry).
 */
class TransientError : public std::runtime_error
{
  public:
    explicit TransientError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

} // namespace evrsim

#endif // EVRSIM_COMMON_STATUS_HPP
