/**
 * @file
 * Durable atomic file publication.
 *
 * The result cache and the sweep journal both need "either the old
 * bytes or the new bytes, never a mix, even across power loss". The
 * classic tmp+rename gives atomicity against concurrent readers and
 * kills, but *not* against power loss: without an fsync of the file the
 * rename can land while the data blocks are still dirty, and without an
 * fsync of the directory the rename itself can be lost. atomicWriteFile
 * does all three steps (write+fsync tmp, rename, fsync directory), so a
 * machine that loses power right after it returns still has the entry.
 */
#ifndef EVRSIM_COMMON_ATOMIC_FILE_HPP
#define EVRSIM_COMMON_ATOMIC_FILE_HPP

#include <string>

#include "common/status.hpp"

namespace evrsim {

/**
 * Atomically and durably replace @p path with @p contents.
 *
 * Writes to `<path>.tmp.<pid>`, fsyncs the file, renames it over
 * @p path, then fsyncs the containing directory. On any failure the
 * temporary file is removed and the previous @p path (if any) is left
 * untouched; the error is Unavailable naming the failing step.
 */
Status atomicWriteFile(const std::string &path, const std::string &contents);

/**
 * fsync the directory containing @p path, making a just-created or
 * just-renamed directory entry durable. Unavailable on failure.
 */
Status fsyncDirOf(const std::string &path);

} // namespace evrsim

#endif // EVRSIM_COMMON_ATOMIC_FILE_HPP
