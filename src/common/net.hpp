/**
 * @file
 * Deadline-aware POSIX socket helpers shared by the service layer.
 *
 * Every cross-process hop in the resident service — client to daemon
 * over AF_UNIX, control plane to remote shard over TCP — has the same
 * three robustness requirements, so they live here once:
 *
 *  1. *No blocking past a deadline.* connect(2) on a wedged peer can
 *     hang for minutes (TCP SYN retries, a daemon stuck in accept with
 *     a full backlog). Every helper here takes a deadline and uses
 *     nonblocking sockets + poll(2), returning DeadlineExceeded
 *     instead of wedging the caller.
 *  2. *No SIGPIPE, ever.* A peer vanishing mid-stream must surface as
 *     a write Status, not kill the process. Writes use MSG_NOSIGNAL
 *     and processes additionally call ignoreSigpipe() once at setup
 *     (belt and braces: MSG_NOSIGNAL does not cover every path, e.g.
 *     a stray write(2) on a socket fd).
 *  3. *Dead peers are detected.* TCP connections enable SO_KEEPALIVE
 *     so a silently vanished host eventually errors the socket even
 *     between application-level pings.
 *
 * All fds are created close-on-exec so shard children never inherit
 * the control plane's sockets.
 */
#ifndef EVRSIM_COMMON_NET_HPP
#define EVRSIM_COMMON_NET_HPP

#include <cstddef>
#include <string>

#include "common/status.hpp"

namespace evrsim {

/**
 * Ignore SIGPIPE process-wide, once, idempotently. Only replaces the
 * default disposition — a handler installed by an embedding
 * application is left alone. Safe to call from multiple threads.
 */
void ignoreSigpipe();

/**
 * Split "host:port" at the *last* colon (loopback names only; no
 * bracketed-IPv6 support needed on a lab fleet). Fails on a missing
 * colon, empty host, or a port outside [0, 65535]. Port 0 is allowed
 * for listeners (kernel-assigned port, resolved via
 * listenAddress()).
 */
Status splitHostPort(const std::string &host_port, std::string *host,
                     int *port);

/**
 * Create a TCP listener bound to @p host_port ("127.0.0.1:0" binds a
 * kernel-assigned loopback port). CLOEXEC, SO_REUSEADDR, backlog
 * @p backlog. Returns the listening fd.
 */
Result<int> tcpListen(const std::string &host_port, int backlog);

/**
 * The actual "host:port" a listener is bound to (resolves port 0 via
 * getsockname). Empty string on error.
 */
std::string listenAddress(int listen_fd);

/**
 * Connect to @p host_port with a wall-clock deadline: nonblocking
 * connect + poll + SO_ERROR. On success the fd is returned in
 * *blocking* mode with SO_KEEPALIVE and TCP_NODELAY set (framed
 * request/response traffic — Nagle only adds latency).
 */
Result<int> tcpConnect(const std::string &host_port, int deadline_ms);

/**
 * Connect to the AF_UNIX socket at @p path with a deadline. Note a
 * subtlety: a nonblocking UNIX connect whose backlog is full fails
 * EAGAIN immediately (poll will not complete it), which maps to
 * Unavailable — the retrying caller's backoff is the right response,
 * not spinning out the deadline here.
 */
Result<int> unixConnect(const std::string &path, int deadline_ms);

/**
 * Accept one connection from @p listen_fd, waiting up to
 * @p timeout_ms. The accepted fd is CLOEXEC and blocking.
 * DeadlineExceeded when nothing arrived; Cancelled when the listener
 * was closed/shut down under us.
 */
Result<int> acceptDeadline(int listen_fd, int timeout_ms);

/**
 * Write all @p len bytes to @p fd (MSG_NOSIGNAL, poll-paced) within
 * @p deadline_ms. Unavailable on a broken peer, DeadlineExceeded on
 * timeout.
 */
Status sendAllDeadline(int fd, const void *data, std::size_t len,
                       int deadline_ms);

} // namespace evrsim

#endif // EVRSIM_COMMON_NET_HPP
