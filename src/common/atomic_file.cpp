/**
 * @file
 * atomicWriteFile implementation.
 */
#include "common/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

namespace evrsim {

namespace {

Status
errnoStatus(const std::string &step, const std::string &path)
{
    return Status::unavailable(step + " " + path + ": " +
                               std::strerror(errno));
}

/** write(2) until @p size bytes are on their way or an error lands. */
bool
writeAll(int fd, const char *data, std::size_t size)
{
    std::size_t off = 0;
    while (off < size) {
        ssize_t n = ::write(fd, data + off, size - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

Status
fsyncDirOf(const std::string &path)
{
    std::filesystem::path dir = std::filesystem::path(path).parent_path();
    std::string dir_name = dir.empty() ? "." : dir.string();
    int fd = ::open(dir_name.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0)
        return errnoStatus("open directory", dir_name);
    int rc = ::fsync(fd);
    ::close(fd);
    if (rc != 0)
        return errnoStatus("fsync directory", dir_name);
    return {};
}

Status
atomicWriteFile(const std::string &path, const std::string &contents)
{
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());

    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                    0644);
    if (fd < 0)
        return errnoStatus("open", tmp);

    auto fail = [&](const std::string &step,
                    const std::string &what) -> Status {
        Status s = errnoStatus(step, what);
        if (fd >= 0)
            ::close(fd);
        ::unlink(tmp.c_str());
        return s;
    };

    if (!writeAll(fd, contents.data(), contents.size()))
        return fail("write", tmp);
    // Data blocks must be durable *before* the rename publishes the
    // name, or a power cut can leave the final path pointing at
    // garbage — the exact failure mode tmp+rename is meant to prevent.
    if (::fsync(fd) != 0)
        return fail("fsync", tmp);
    int rc = ::close(fd);
    fd = -1;
    if (rc != 0)
        return fail("close", tmp);

    if (::rename(tmp.c_str(), path.c_str()) != 0)
        return fail("rename", path);

    // Make the rename itself durable (the directory entry lives in the
    // directory's blocks, not the file's).
    if (Status s = fsyncDirOf(path); !s.ok())
        return s;
    return {};
}

} // namespace evrsim
