/**
 * @file
 * Column-major 4x4 matrix used for all geometry transforms.
 *
 * Conventions match OpenGL: column-major storage, column vectors,
 * clip space with z in [-w, w] remapped by the viewport transform to a
 * [0, 1] depth range where 0 is the near plane.
 */
#ifndef EVRSIM_COMMON_MAT4_HPP
#define EVRSIM_COMMON_MAT4_HPP

#include "common/vec.hpp"

namespace evrsim {

/** Column-major 4x4 float matrix. */
struct Mat4 {
    /** m[col][row], matching OpenGL's memory layout. */
    float m[4][4] = {};

    /** Identity matrix. */
    static Mat4 identity();

    /** Translation by @p t. */
    static Mat4 translate(const Vec3 &t);

    /** Non-uniform scale by @p s. */
    static Mat4 scale(const Vec3 &s);

    /** Rotation of @p radians around the X axis. */
    static Mat4 rotateX(float radians);

    /** Rotation of @p radians around the Y axis. */
    static Mat4 rotateY(float radians);

    /** Rotation of @p radians around the Z axis. */
    static Mat4 rotateZ(float radians);

    /**
     * Right-handed perspective projection.
     *
     * @param fovy_radians vertical field of view
     * @param aspect       width / height
     * @param z_near       positive distance to near plane
     * @param z_far        positive distance to far plane
     */
    static Mat4 perspective(float fovy_radians, float aspect, float z_near,
                            float z_far);

    /** Right-handed orthographic projection. */
    static Mat4 ortho(float left, float right, float bottom, float top,
                      float z_near, float z_far);

    /** Right-handed look-at view matrix. */
    static Mat4 lookAt(const Vec3 &eye, const Vec3 &center, const Vec3 &up);

    /** Matrix product this * other (applies @p other first). */
    Mat4 operator*(const Mat4 &other) const;

    /** Transform a homogeneous vector. */
    Vec4 operator*(const Vec4 &v) const;

    /** Transform a point (w = 1). */
    Vec4 transformPoint(const Vec3 &p) const;

    /** Transform a direction (w = 0), ignoring translation. */
    Vec3 transformDir(const Vec3 &d) const;

    bool operator==(const Mat4 &other) const;
};

} // namespace evrsim

#endif // EVRSIM_COMMON_MAT4_HPP
