/**
 * @file
 * Cooperative shutdown implementation.
 *
 * The handler writes one sig_atomic_t-sized atomic — nothing else — so
 * it is trivially async-signal-safe. Everything observable (the flag,
 * the signal number, the exit code) reads that one word.
 */
#include "common/shutdown.hpp"

#include <signal.h>
#include <string.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

namespace evrsim {

namespace {

/** 0 = no shutdown requested, else the delivering signal number. */
std::atomic<int> g_shutdown_signal{0};

bool installed = false;

void
shutdownHandler(int sig)
{
    // First signal wins; a second Ctrl-C while draining keeps the
    // original exit code rather than flapping between 130 and 143.
    int expected = 0;
    g_shutdown_signal.compare_exchange_strong(expected, sig);
}

} // namespace

void
installShutdownHandler()
{
    if (installed)
        return;
    installed = true;

    struct sigaction sa;
    memset(&sa, 0, sizeof(sa));
    sa.sa_handler = shutdownHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART; // journal/cache writes resume, not fail
    for (int sig : {SIGINT, SIGTERM}) {
        struct sigaction old;
        if (sigaction(sig, nullptr, &old) == 0 &&
            old.sa_handler != SIG_DFL && old.sa_handler != SIG_IGN) {
            // A test harness or embedding runtime already handles it.
            continue;
        }
        sigaction(sig, &sa, nullptr);
    }
}

bool
shutdownRequested()
{
    return g_shutdown_signal.load(std::memory_order_relaxed) != 0;
}

int
shutdownSignal()
{
    return g_shutdown_signal.load(std::memory_order_relaxed);
}

int
shutdownExitCode(int fallback)
{
    int sig = shutdownSignal();
    return sig != 0 ? 128 + sig : fallback;
}

void
requestShutdown(int signal)
{
    int expected = 0;
    g_shutdown_signal.compare_exchange_strong(expected, signal);
}

void
resetShutdownForTest()
{
    g_shutdown_signal.store(0);
}

bool
interruptibleSleepMs(int ms)
{
    int left = ms;
    while (left > 0) {
        if (shutdownRequested())
            return false;
        int slice = std::min(left, 20);
        std::this_thread::sleep_for(std::chrono::milliseconds(slice));
        left -= slice;
    }
    return !shutdownRequested();
}

} // namespace evrsim
