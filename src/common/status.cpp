/**
 * @file
 * Status implementation.
 */
#include "common/status.hpp"

namespace evrsim {

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Ok:
        return "OK";
      case ErrorCode::InvalidArgument:
        return "INVALID_ARGUMENT";
      case ErrorCode::NotFound:
        return "NOT_FOUND";
      case ErrorCode::DataLoss:
        return "DATA_LOSS";
      case ErrorCode::Unavailable:
        return "UNAVAILABLE";
      case ErrorCode::DeadlineExceeded:
        return "DEADLINE_EXCEEDED";
      case ErrorCode::Internal:
        return "INTERNAL";
      case ErrorCode::InvariantViolation:
        return "INVARIANT_VIOLATION";
      case ErrorCode::Cancelled:
        return "CANCELLED";
      case ErrorCode::ResourceExhausted:
        return "RESOURCE_EXHAUSTED";
    }
    return "UNKNOWN";
}

} // namespace evrsim
