/**
 * @file
 * Set-associative cache implementation.
 */
#include "mem/cache.hpp"

#include "common/log.hpp"

namespace evrsim {

namespace {

bool
isPowerOfTwo(unsigned v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

void
CacheStats::accumulate(const CacheStats &other)
{
    reads += other.reads;
    writes += other.writes;
    read_misses += other.read_misses;
    write_misses += other.write_misses;
    writebacks += other.writebacks;
}

SetAssocCache::SetAssocCache(const CacheConfig &config, SetAssocCache *next)
    : config_(config), next_cache_(next)
{
    EVRSIM_ASSERT(next != nullptr);
    EVRSIM_ASSERT(isPowerOfTwo(config_.line_bytes));
    EVRSIM_ASSERT(config_.ways > 0);
    EVRSIM_ASSERT(config_.size_bytes % (config_.line_bytes * config_.ways) ==
                  0);
    num_sets_ = config_.size_bytes / (config_.line_bytes * config_.ways);
    lines_.assign(static_cast<std::size_t>(num_sets_) * config_.ways, Line{});
}

SetAssocCache::SetAssocCache(const CacheConfig &config, DramModel *dram)
    : config_(config), dram_(dram)
{
    EVRSIM_ASSERT(dram != nullptr);
    EVRSIM_ASSERT(isPowerOfTwo(config_.line_bytes));
    EVRSIM_ASSERT(config_.ways > 0);
    EVRSIM_ASSERT(config_.size_bytes % (config_.line_bytes * config_.ways) ==
                  0);
    num_sets_ = config_.size_bytes / (config_.line_bytes * config_.ways);
    lines_.assign(static_cast<std::size_t>(num_sets_) * config_.ways, Line{});
}

AccessResult
SetAssocCache::forward(Addr line_addr, bool write, TrafficClass cls)
{
    if (next_cache_)
        return next_cache_->access(line_addr, config_.line_bytes, write, cls);
    return dram_->access(line_addr, config_.line_bytes, write, cls);
}

Cycles
SetAssocCache::accessLine(Addr line_addr, bool write, TrafficClass cls,
                          bool &hit)
{
    std::uint64_t line_no = line_addr / config_.line_bytes;
    unsigned set = static_cast<unsigned>(line_no % num_sets_);
    std::uint64_t tag = line_no / num_sets_;
    Line *set_lines = &lines_[static_cast<std::size_t>(set) * config_.ways];

    ++lru_clock_;

    // Lookup.
    for (unsigned w = 0; w < config_.ways; ++w) {
        Line &line = set_lines[w];
        if (line.valid && line.tag == tag) {
            line.lru = lru_clock_;
            if (write)
                line.dirty = true;
            hit = true;
            return config_.hit_latency;
        }
    }

    // Miss: pick the LRU victim.
    hit = false;
    unsigned victim = 0;
    for (unsigned w = 1; w < config_.ways; ++w) {
        if (!set_lines[w].valid) {
            victim = w;
            break;
        }
        if (set_lines[w].lru < set_lines[victim].lru)
            victim = w;
    }

    Line &line = set_lines[victim];
    Cycles latency = config_.hit_latency;

    if (line.valid && line.dirty) {
        // Write back the victim. Reconstruct its address from tag/set.
        Addr victim_addr = (line.tag * num_sets_ + set) * config_.line_bytes;
        forward(victim_addr, true, cls);
        ++stats_.writebacks;
    }

    // Fetch the new line (write-allocate: writes fetch too).
    AccessResult fill = forward(line_addr, false, cls);
    latency += fill.latency;

    line.valid = true;
    line.dirty = write;
    line.tag = tag;
    line.lru = lru_clock_;
    return latency;
}

AccessResult
SetAssocCache::access(Addr addr, unsigned size, bool write, TrafficClass cls)
{
    EVRSIM_ASSERT(size > 0);

    Addr first_line = addr & ~static_cast<Addr>(config_.line_bytes - 1);
    Addr last_line = (addr + size - 1) &
                     ~static_cast<Addr>(config_.line_bytes - 1);

    AccessResult result;
    result.hit = true;
    for (Addr line_addr = first_line; line_addr <= last_line;
         line_addr += config_.line_bytes) {
        if (write)
            ++stats_.writes;
        else
            ++stats_.reads;

        bool hit = false;
        result.latency += accessLine(line_addr, write, cls, hit);
        if (!hit) {
            result.hit = false;
            if (write)
                ++stats_.write_misses;
            else
                ++stats_.read_misses;
        }
    }
    return result;
}

void
SetAssocCache::flush(TrafficClass cls)
{
    for (unsigned set = 0; set < num_sets_; ++set) {
        for (unsigned w = 0; w < config_.ways; ++w) {
            Line &line = lines_[static_cast<std::size_t>(set) * config_.ways +
                                w];
            if (line.valid && line.dirty) {
                Addr addr = (line.tag * num_sets_ + set) * config_.line_bytes;
                forward(addr, true, cls);
                ++stats_.writebacks;
            }
            line = Line{};
        }
    }
}

} // namespace evrsim
