/**
 * @file
 * Set-associative cache implementation (cold parts; the hit path is
 * inline in the header).
 */
#include "mem/cache.hpp"

namespace evrsim {

namespace {

bool
isPowerOfTwo(unsigned v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

unsigned
log2Exact(unsigned v)
{
    unsigned s = 0;
    while ((1u << s) < v)
        ++s;
    return s;
}

} // namespace

void
CacheStats::accumulate(const CacheStats &other)
{
    reads += other.reads;
    writes += other.writes;
    read_misses += other.read_misses;
    write_misses += other.write_misses;
    writebacks += other.writebacks;
}

void
SetAssocCache::initGeometry()
{
    EVRSIM_ASSERT(isPowerOfTwo(config_.line_bytes));
    EVRSIM_ASSERT(config_.ways > 0);
    EVRSIM_ASSERT(config_.size_bytes % (config_.line_bytes * config_.ways) ==
                  0);
    num_sets_ = config_.size_bytes / (config_.line_bytes * config_.ways);
    line_shift_ = log2Exact(config_.line_bytes);
    sets_pow2_ = isPowerOfTwo(num_sets_);
    set_shift_ = sets_pow2_ ? log2Exact(num_sets_) : 0;
    lines_.assign(static_cast<std::size_t>(num_sets_) * config_.ways, Line{});
}

SetAssocCache::SetAssocCache(const CacheConfig &config, SetAssocCache *next)
    : config_(config), next_cache_(next)
{
    EVRSIM_ASSERT(next != nullptr);
    initGeometry();
}

SetAssocCache::SetAssocCache(const CacheConfig &config, DramModel *dram)
    : config_(config), dram_(dram)
{
    EVRSIM_ASSERT(dram != nullptr);
    initGeometry();
}

AccessResult
SetAssocCache::forward(Addr line_addr, bool write, TrafficClass cls)
{
    if (next_cache_)
        return next_cache_->access(line_addr, config_.line_bytes, write, cls);
    return dram_->access(line_addr, config_.line_bytes, write, cls);
}

Cycles
SetAssocCache::missLine(Addr line_addr, Line *set_lines, unsigned set,
                        std::uint64_t tag, bool write, TrafficClass cls,
                        bool &hit)
{
    // Pick the LRU victim.
    hit = false;
    unsigned victim = 0;
    for (unsigned w = 1; w < config_.ways; ++w) {
        if (!set_lines[w].valid) {
            victim = w;
            break;
        }
        if (set_lines[w].lru < set_lines[victim].lru)
            victim = w;
    }

    Line &line = set_lines[victim];
    Cycles latency = config_.hit_latency;

    if (line.valid && line.dirty) {
        // Write back the victim. Reconstruct its address from tag/set.
        Addr victim_addr = (line.tag * num_sets_ + set) * config_.line_bytes;
        forward(victim_addr, true, cls);
        ++stats_.writebacks;
    }

    // Fetch the new line (write-allocate: writes fetch too).
    AccessResult fill = forward(line_addr, false, cls);
    latency += fill.latency;

    line.valid = true;
    line.dirty = write;
    line.tag = tag;
    line.lru = lru_clock_;
    return latency;
}

void
SetAssocCache::flush(TrafficClass cls)
{
    for (unsigned set = 0; set < num_sets_; ++set) {
        for (unsigned w = 0; w < config_.ways; ++w) {
            Line &line = lines_[static_cast<std::size_t>(set) * config_.ways +
                                w];
            if (line.valid && line.dirty) {
                Addr addr = (line.tag * num_sets_ + set) * config_.line_bytes;
                forward(addr, true, cls);
                ++stats_.writebacks;
            }
            line = Line{};
        }
    }
}

} // namespace evrsim
