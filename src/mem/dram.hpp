/**
 * @file
 * Main-memory model: a latency/bandwidth DRAM with row-locality effects.
 *
 * This stands in for DRAMSim2 in the paper's methodology. It models the
 * properties the evaluation depends on:
 *  - per-access latency between a row-hit minimum and row-miss maximum
 *    (Table II: 50-100 cycles),
 *  - a peak transfer bandwidth (Table II: 4 B/cycle, dual-channel LPDDR3),
 *  - total bytes moved, classified by producer, which drives the energy
 *    model's DRAM term.
 *
 * Requests are attributed to interleaved channels by address; each channel
 * tracks its open row per bank to decide hit vs. miss latency.
 */
#ifndef EVRSIM_MEM_DRAM_HPP
#define EVRSIM_MEM_DRAM_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "mem/mem_types.hpp"

namespace evrsim {

/** Configuration for the DRAM model. */
struct DramConfig {
    Cycles row_hit_latency = 50;   ///< latency when the row is open
    Cycles row_miss_latency = 100; ///< latency on a row conflict
    unsigned bytes_per_cycle = 4;  ///< peak bus bandwidth
    unsigned channels = 2;         ///< interleaved channels
    unsigned banks_per_channel = 8;
    unsigned row_bytes = 2048;     ///< row-buffer size
};

/** Per-class DRAM traffic counters. */
struct DramStats {
    std::array<std::uint64_t, kNumTrafficClasses> read_bytes{};
    std::array<std::uint64_t, kNumTrafficClasses> write_bytes{};
    std::uint64_t accesses = 0;
    std::uint64_t row_hits = 0;
    std::uint64_t row_misses = 0;
    /** Total cycles the data bus was busy transferring. */
    Cycles bus_busy_cycles = 0;

    std::uint64_t totalReadBytes() const;
    std::uint64_t totalWriteBytes() const;
    std::uint64_t totalBytes() const;

    /** Accumulate another stats block (for aggregating frames). */
    void accumulate(const DramStats &other);
};

/**
 * The DRAM device at the bottom of the hierarchy.
 */
class DramModel
{
  public:
    explicit DramModel(const DramConfig &config = {});

    /**
     * Perform one access of @p size bytes at @p addr.
     *
     * @param addr   starting address
     * @param size   bytes transferred
     * @param write  true for writes
     * @param cls    producer classification for the traffic breakdown
     * @return       latency of the access
     */
    AccessResult access(Addr addr, unsigned size, bool write,
                        TrafficClass cls);

    const DramStats &stats() const { return stats_; }
    const DramConfig &config() const { return config_; }

    /** Reset counters (open-row state is kept; it is microarchitectural). */
    void clearStats();

  private:
    DramConfig config_;
    DramStats stats_;
    /** Open row per [channel][bank]; ~0 when none. */
    std::vector<std::uint64_t> open_rows_;
};

} // namespace evrsim

#endif // EVRSIM_MEM_DRAM_HPP
