/**
 * @file
 * Simulated GPU address-space layout.
 *
 * The functional pipeline computes all values directly, but cache behaviour
 * must be driven by realistic addresses: vertex buffers, textures, the
 * Parameter Buffer and the framebuffer each live in their own region, and
 * allocations within a region are contiguous. A simple bump allocator per
 * region is sufficient because the simulator allocates once per workload.
 */
#ifndef EVRSIM_MEM_ADDRESS_SPACE_HPP
#define EVRSIM_MEM_ADDRESS_SPACE_HPP

#include <cstdint>

#include "common/log.hpp"
#include "mem/mem_types.hpp"

namespace evrsim {

/** Fixed region bases (1 GB total, Table II main-memory size). */
struct AddressSpace {
    static constexpr Addr kVertexBase = 0x0000'0000ull;      ///< 256 MB
    static constexpr Addr kTextureBase = 0x1000'0000ull;     ///< 256 MB
    static constexpr Addr kParameterBase = 0x2000'0000ull;   ///< 256 MB
    static constexpr Addr kFramebufferBase = 0x3000'0000ull; ///< 256 MB
    static constexpr Addr kRegionSize = 0x1000'0000ull;

    /** Allocate @p bytes in the vertex-buffer region. */
    Addr
    allocVertex(std::uint64_t bytes)
    {
        return bump(vertex_top_, kVertexBase, bytes);
    }

    /** Allocate @p bytes in the texture region. */
    Addr
    allocTexture(std::uint64_t bytes)
    {
        return bump(texture_top_, kTextureBase, bytes);
    }

    /** Allocate @p bytes in the Parameter Buffer region. */
    Addr
    allocParameter(std::uint64_t bytes)
    {
        return bump(parameter_top_, kParameterBase, bytes);
    }

    /** Reset the Parameter Buffer region (reused every frame). */
    void resetParameter() { parameter_top_ = kRegionStart; }

    /** Address of pixel (x, y) in a @p width pixels wide RGBA8 surface. */
    static Addr
    framebufferAddr(int x, int y, int width)
    {
        return kFramebufferBase +
               (static_cast<Addr>(y) * width + x) * 4;
    }

  private:
    /** First usable offset; 0 is reserved as the "unallocated" sentinel. */
    static constexpr std::uint64_t kRegionStart = 64;

    Addr
    bump(std::uint64_t &top, Addr base, std::uint64_t bytes)
    {
        // Align every allocation to a cache line so objects do not share
        // lines across unrelated buffers.
        std::uint64_t aligned = (top + 63) & ~63ull;
        if (aligned + bytes > kRegionSize)
            fatal("address space region at %llx exhausted",
                  static_cast<unsigned long long>(base));
        top = aligned + bytes;
        return base + aligned;
    }

    std::uint64_t vertex_top_ = kRegionStart;
    std::uint64_t texture_top_ = kRegionStart;
    std::uint64_t parameter_top_ = kRegionStart;
};

} // namespace evrsim

#endif // EVRSIM_MEM_ADDRESS_SPACE_HPP
