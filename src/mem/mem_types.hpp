/**
 * @file
 * Shared types for the modelled memory hierarchy.
 */
#ifndef EVRSIM_MEM_MEM_TYPES_HPP
#define EVRSIM_MEM_MEM_TYPES_HPP

#include <cstdint>

namespace evrsim {

/** Physical address within the simulated GPU address space. */
using Addr = std::uint64_t;

/** Simulated cycle count. */
using Cycles = std::uint64_t;

/**
 * Classification of memory traffic by producer, used for the energy and
 * bandwidth breakdowns in the evaluation figures.
 */
enum class TrafficClass : std::uint8_t {
    VertexFetch = 0,     ///< vertex attributes read by the Geometry Pipeline
    ParameterBuffer,     ///< Parameter Buffer reads/writes (binning, raster)
    Texture,             ///< texture sampling by fragment shaders
    Framebuffer,         ///< Color Buffer flushes to main memory
    Other,               ///< miscellaneous (command lists, state)
    NumClasses,
};

/** Number of traffic classes, for fixed-size stat arrays. */
constexpr int kNumTrafficClasses =
    static_cast<int>(TrafficClass::NumClasses);

/** Human-readable traffic class name. */
const char *trafficClassName(TrafficClass c);

/** Outcome of a memory access as seen by the requester. */
struct AccessResult {
    /** Latency in cycles until the data is available. */
    Cycles latency = 0;
    /** True if the request was satisfied without reaching DRAM. */
    bool hit = true;
};

} // namespace evrsim

#endif // EVRSIM_MEM_MEM_TYPES_HPP
