/**
 * @file
 * Set-associative cache model with LRU replacement.
 *
 * The caches of the Mali-450-like hierarchy in Table II (vertex cache,
 * texture caches, tile cache, L2) are instances of this class. The model
 * is functional with respect to tags only: it tracks which lines are
 * resident and dirty, forwards misses and write-backs to the next level,
 * and counts every event the energy/timing models need. Data contents are
 * not stored — producers compute values functionally and the hierarchy is
 * consulted for latency/traffic.
 *
 * Policy: write-back, write-allocate.
 */
#ifndef EVRSIM_MEM_CACHE_HPP
#define EVRSIM_MEM_CACHE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "mem/dram.hpp"
#include "mem/mem_types.hpp"

namespace evrsim {

/** Static configuration of one cache. */
struct CacheConfig {
    std::string name = "cache";
    unsigned size_bytes = 4096;
    unsigned line_bytes = 64;
    unsigned ways = 2;
    Cycles hit_latency = 1;
};

/** Event counters for one cache. */
struct CacheStats {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t read_misses = 0;
    std::uint64_t write_misses = 0;
    std::uint64_t writebacks = 0;

    std::uint64_t accesses() const { return reads + writes; }
    std::uint64_t misses() const { return read_misses + write_misses; }

    /** Miss ratio in [0, 1]; 0 when there were no accesses. */
    double
    missRatio() const
    {
        auto a = accesses();
        return a == 0 ? 0.0 : static_cast<double>(misses()) / a;
    }

    void accumulate(const CacheStats &other);
};

/**
 * One level of cache. Misses are forwarded either to another cache or to
 * DRAM, whichever was wired in.
 */
class SetAssocCache
{
  public:
    /**
     * Build a cache backed by another cache level.
     * @param config geometry and latency
     * @param next   the next cache level (not owned)
     */
    SetAssocCache(const CacheConfig &config, SetAssocCache *next);

    /**
     * Build a cache backed directly by DRAM.
     */
    SetAssocCache(const CacheConfig &config, DramModel *dram);

    /**
     * Access @p size bytes starting at @p addr. Requests spanning several
     * lines touch each line once.
     *
     * @return aggregate latency and whether every line hit in this level.
     */
    AccessResult access(Addr addr, unsigned size, bool write,
                        TrafficClass cls);

    /** Invalidate all lines, writing back dirty ones. */
    void flush(TrafficClass cls);

    const CacheConfig &config() const { return config_; }
    const CacheStats &stats() const { return stats_; }
    void clearStats() { stats_ = CacheStats{}; }

    unsigned numSets() const { return num_sets_; }

  private:
    struct Line {
        std::uint64_t tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lru = 0; ///< larger = more recently used
    };

    /** Access one whole line; returns latency. */
    Cycles accessLine(Addr line_addr, bool write, TrafficClass cls,
                      bool &hit);

    /** Forward a whole-line request to the next level. */
    AccessResult forward(Addr line_addr, bool write, TrafficClass cls);

    CacheConfig config_;
    SetAssocCache *next_cache_ = nullptr;
    DramModel *dram_ = nullptr;
    unsigned num_sets_ = 0;
    std::uint64_t lru_clock_ = 0;
    std::vector<Line> lines_; ///< num_sets_ * ways, set-major
    CacheStats stats_;
};

} // namespace evrsim

#endif // EVRSIM_MEM_CACHE_HPP
