/**
 * @file
 * Set-associative cache model with LRU replacement.
 *
 * The caches of the Mali-450-like hierarchy in Table II (vertex cache,
 * texture caches, tile cache, L2) are instances of this class. The model
 * is functional with respect to tags only: it tracks which lines are
 * resident and dirty, forwards misses and write-backs to the next level,
 * and counts every event the energy/timing models need. Data contents are
 * not stored — producers compute values functionally and the hierarchy is
 * consulted for latency/traffic.
 *
 * Policy: write-back, write-allocate.
 */
#ifndef EVRSIM_MEM_CACHE_HPP
#define EVRSIM_MEM_CACHE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "mem/dram.hpp"
#include "mem/mem_types.hpp"

namespace evrsim {

/** Static configuration of one cache. */
struct CacheConfig {
    std::string name = "cache";
    unsigned size_bytes = 4096;
    unsigned line_bytes = 64;
    unsigned ways = 2;
    Cycles hit_latency = 1;
};

/** Event counters for one cache. */
struct CacheStats {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t read_misses = 0;
    std::uint64_t write_misses = 0;
    std::uint64_t writebacks = 0;

    std::uint64_t accesses() const { return reads + writes; }
    std::uint64_t misses() const { return read_misses + write_misses; }

    /** Miss ratio in [0, 1]; 0 when there were no accesses. */
    double
    missRatio() const
    {
        auto a = accesses();
        return a == 0 ? 0.0 : static_cast<double>(misses()) / a;
    }

    void accumulate(const CacheStats &other);
};

/**
 * One level of cache. Misses are forwarded either to another cache or to
 * DRAM, whichever was wired in.
 */
class SetAssocCache
{
  public:
    /**
     * Build a cache backed by another cache level.
     * @param config geometry and latency
     * @param next   the next cache level (not owned)
     */
    SetAssocCache(const CacheConfig &config, SetAssocCache *next);

    /**
     * Build a cache backed directly by DRAM.
     */
    SetAssocCache(const CacheConfig &config, DramModel *dram);

    /**
     * Access @p size bytes starting at @p addr. Requests spanning several
     * lines touch each line once.
     *
     * Defined in the header: this is the single hottest call in a
     * simulation (every fragment's texture fetch and framebuffer
     * traffic lands here, tens of millions of calls per sweep) and the
     * build has no LTO to inline it across translation units.
     *
     * @return aggregate latency and whether every line hit in this level.
     */
    AccessResult
    access(Addr addr, unsigned size, bool write, TrafficClass cls)
    {
        EVRSIM_ASSERT(size > 0);

        Addr first_line = addr & ~static_cast<Addr>(config_.line_bytes - 1);
        Addr last_line = (addr + size - 1) &
                         ~static_cast<Addr>(config_.line_bytes - 1);

        AccessResult result;
        result.hit = true;
        for (Addr line_addr = first_line; line_addr <= last_line;
             line_addr += config_.line_bytes) {
            if (write)
                ++stats_.writes;
            else
                ++stats_.reads;

            bool hit = false;
            result.latency += accessLine(line_addr, write, cls, hit);
            if (!hit) {
                result.hit = false;
                if (write)
                    ++stats_.write_misses;
                else
                    ++stats_.read_misses;
            }
        }
        return result;
    }

    /** Invalidate all lines, writing back dirty ones. */
    void flush(TrafficClass cls);

    const CacheConfig &config() const { return config_; }
    const CacheStats &stats() const { return stats_; }
    void clearStats() { stats_ = CacheStats{}; }

    unsigned numSets() const { return num_sets_; }

  private:
    struct Line {
        std::uint64_t tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t lru = 0; ///< larger = more recently used
    };

    /** Derive num_sets_ and the shift/mask fast-path index fields. */
    void initGeometry();

    /**
     * Access one whole line; returns latency. The hit path — an LRU
     * bump in a 2..8-way set — is the bulk of all calls, so the index
     * math uses precomputed shifts/masks (every configured geometry is
     * a power of two; the division fallback covers any that is not).
     */
    Cycles
    accessLine(Addr line_addr, bool write, TrafficClass cls, bool &hit)
    {
        std::uint64_t line_no = line_addr >> line_shift_;
        unsigned set;
        std::uint64_t tag;
        if (sets_pow2_) {
            set = static_cast<unsigned>(line_no) & (num_sets_ - 1);
            tag = line_no >> set_shift_;
        } else {
            set = static_cast<unsigned>(line_no % num_sets_);
            tag = line_no / num_sets_;
        }
        Line *set_lines =
            &lines_[static_cast<std::size_t>(set) * config_.ways];

        ++lru_clock_;

        // Lookup.
        for (unsigned w = 0; w < config_.ways; ++w) {
            Line &line = set_lines[w];
            if (line.valid && line.tag == tag) {
                line.lru = lru_clock_;
                if (write)
                    line.dirty = true;
                hit = true;
                return config_.hit_latency;
            }
        }
        return missLine(line_addr, set_lines, set, tag, write, cls, hit);
    }

    /** Miss path of accessLine: victim selection, writeback, fill. */
    Cycles missLine(Addr line_addr, Line *set_lines, unsigned set,
                    std::uint64_t tag, bool write, TrafficClass cls,
                    bool &hit);

    /** Forward a whole-line request to the next level. */
    AccessResult forward(Addr line_addr, bool write, TrafficClass cls);

    CacheConfig config_;
    SetAssocCache *next_cache_ = nullptr;
    DramModel *dram_ = nullptr;
    unsigned num_sets_ = 0;
    unsigned line_shift_ = 0; ///< log2(line_bytes)
    unsigned set_shift_ = 0;  ///< log2(num_sets_) when sets_pow2_
    bool sets_pow2_ = false;
    std::uint64_t lru_clock_ = 0;
    std::vector<Line> lines_; ///< num_sets_ * ways, set-major
    CacheStats stats_;
};

} // namespace evrsim

#endif // EVRSIM_MEM_CACHE_HPP
