/**
 * @file
 * The full Mali-450-like memory hierarchy of Table II.
 *
 *   Vertex Cache (4 KB)   ─┐
 *   Texture Caches (4×8KB) ┼──> L2 (256 KB) ──> DRAM (LPDDR3 model)
 *   Tile Cache (128 KB)   ─┘
 *
 * The on-chip Color/Depth/Layer buffers are SRAMs local to the raster
 * pipeline and are not part of this hierarchy; their energy is accounted
 * separately. Framebuffer flushes bypass the caches (streaming writes) and
 * go straight to DRAM, as TBR hardware does.
 */
#ifndef EVRSIM_MEM_MEMORY_SYSTEM_HPP
#define EVRSIM_MEM_MEMORY_SYSTEM_HPP

#include <array>
#include <memory>

#include "mem/address_space.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"

namespace evrsim {

/** Hierarchy-wide configuration (defaults = Table II). */
struct MemorySystemConfig {
    DramConfig dram;
    CacheConfig vertex_cache{"vertex", 4 * 1024, 64, 2, 1};
    CacheConfig texture_cache{"texture", 8 * 1024, 64, 2, 1};
    unsigned num_texture_caches = 4;
    CacheConfig tile_cache{"tile", 128 * 1024, 64, 8, 1};
    CacheConfig l2_cache{"l2", 256 * 1024, 64, 8, 2};
};

/** Snapshot of all hierarchy counters. */
struct MemorySystemStats {
    CacheStats vertex_cache;
    CacheStats texture_caches; ///< all texture caches combined
    CacheStats tile_cache;
    CacheStats l2_cache;
    DramStats dram;

    void accumulate(const MemorySystemStats &other);
};

/**
 * Owns and wires the cache hierarchy; exposes one entry point per
 * pipeline consumer.
 */
class MemorySystem
{
  public:
    explicit MemorySystem(const MemorySystemConfig &config = {});

    // The per-access entry points are inline: each is a one-line
    // dispatch into SetAssocCache::access (itself header-inline) on a
    // path hit tens of millions of times per sweep, and the build has
    // no LTO to collapse the calls across translation units.

    /** Vertex attribute fetch (Geometry Pipeline). */
    AccessResult
    vertexFetch(Addr addr, unsigned size)
    {
        return vertex_cache_.access(addr, size, false,
                                    TrafficClass::VertexFetch);
    }

    /** Parameter Buffer write at binning time. */
    AccessResult
    parameterWrite(Addr addr, unsigned size)
    {
        return tile_cache_.access(addr, size, true,
                                  TrafficClass::ParameterBuffer);
    }

    /** Parameter Buffer / Display List read at raster time. */
    AccessResult
    parameterRead(Addr addr, unsigned size)
    {
        return tile_cache_.access(addr, size, false,
                                  TrafficClass::ParameterBuffer);
    }

    /**
     * Texture fetch from fragment processor @p unit (0..3). Each fragment
     * processor owns one texture cache (Table II: 4 texture caches).
     */
    AccessResult
    textureFetch(unsigned unit, Addr addr, unsigned size)
    {
        EVRSIM_ASSERT(unit < texture_caches_.size());
        return texture_caches_[unit]->access(addr, size, false,
                                             TrafficClass::Texture);
    }

    /** Streaming Color Buffer flush (tile -> framebuffer). */
    AccessResult
    framebufferWrite(Addr addr, unsigned size)
    {
        // Streaming store: bypasses the cache hierarchy.
        return dram_.access(addr, size, true, TrafficClass::Framebuffer);
    }

    /** Miscellaneous DRAM traffic (command lists, state). */
    AccessResult
    otherAccess(Addr addr, unsigned size, bool write)
    {
        return dram_.access(addr, size, write, TrafficClass::Other);
    }

    /** Aggregate counters of every level. */
    MemorySystemStats stats() const;

    /** Zero all counters (cache/DRAM state is preserved). */
    void clearStats();

    AddressSpace &addressSpace() { return address_space_; }
    const MemorySystemConfig &config() const { return config_; }
    DramModel &dram() { return dram_; }

  private:
    MemorySystemConfig config_;
    AddressSpace address_space_;
    DramModel dram_;
    SetAssocCache l2_;
    SetAssocCache vertex_cache_;
    SetAssocCache tile_cache_;
    std::vector<std::unique_ptr<SetAssocCache>> texture_caches_;
};

} // namespace evrsim

#endif // EVRSIM_MEM_MEMORY_SYSTEM_HPP
