/**
 * @file
 * DRAM model implementation.
 */
#include "mem/dram.hpp"

#include "common/log.hpp"

namespace evrsim {

namespace {
constexpr std::uint64_t kNoOpenRow = ~0ull;
}

const char *
trafficClassName(TrafficClass c)
{
    switch (c) {
      case TrafficClass::VertexFetch:
        return "vertex";
      case TrafficClass::ParameterBuffer:
        return "parameter-buffer";
      case TrafficClass::Texture:
        return "texture";
      case TrafficClass::Framebuffer:
        return "framebuffer";
      case TrafficClass::Other:
        return "other";
      default:
        return "invalid";
    }
}

std::uint64_t
DramStats::totalReadBytes() const
{
    std::uint64_t sum = 0;
    for (auto b : read_bytes)
        sum += b;
    return sum;
}

std::uint64_t
DramStats::totalWriteBytes() const
{
    std::uint64_t sum = 0;
    for (auto b : write_bytes)
        sum += b;
    return sum;
}

std::uint64_t
DramStats::totalBytes() const
{
    return totalReadBytes() + totalWriteBytes();
}

void
DramStats::accumulate(const DramStats &other)
{
    for (int i = 0; i < kNumTrafficClasses; ++i) {
        read_bytes[i] += other.read_bytes[i];
        write_bytes[i] += other.write_bytes[i];
    }
    accesses += other.accesses;
    row_hits += other.row_hits;
    row_misses += other.row_misses;
    bus_busy_cycles += other.bus_busy_cycles;
}

DramModel::DramModel(const DramConfig &config)
    : config_(config)
{
    EVRSIM_ASSERT(config_.channels > 0 && config_.banks_per_channel > 0);
    EVRSIM_ASSERT(config_.bytes_per_cycle > 0 && config_.row_bytes > 0);
    open_rows_.assign(config_.channels * config_.banks_per_channel,
                      kNoOpenRow);
}

AccessResult
DramModel::access(Addr addr, unsigned size, bool write, TrafficClass cls)
{
    EVRSIM_ASSERT(size > 0);

    // Address mapping: channel-interleave at row granularity, then bank.
    std::uint64_t row_index = addr / config_.row_bytes;
    unsigned channel = row_index % config_.channels;
    unsigned bank = (row_index / config_.channels) % config_.banks_per_channel;
    std::uint64_t row = row_index / config_.channels /
                        config_.banks_per_channel;

    std::uint64_t &open = open_rows_[channel * config_.banks_per_channel +
                                     bank];
    Cycles latency;
    if (open == row) {
        latency = config_.row_hit_latency;
        ++stats_.row_hits;
    } else {
        latency = config_.row_miss_latency;
        ++stats_.row_misses;
        open = row;
    }

    Cycles transfer = (size + config_.bytes_per_cycle - 1) /
                      config_.bytes_per_cycle;
    stats_.bus_busy_cycles += transfer;
    ++stats_.accesses;

    auto idx = static_cast<int>(cls);
    if (write)
        stats_.write_bytes[idx] += size;
    else
        stats_.read_bytes[idx] += size;

    return {latency + transfer, false};
}

void
DramModel::clearStats()
{
    stats_ = DramStats{};
}

} // namespace evrsim
