/**
 * @file
 * MemorySystem implementation.
 */
#include "mem/memory_system.hpp"

#include "common/log.hpp"

namespace evrsim {

void
MemorySystemStats::accumulate(const MemorySystemStats &other)
{
    vertex_cache.accumulate(other.vertex_cache);
    texture_caches.accumulate(other.texture_caches);
    tile_cache.accumulate(other.tile_cache);
    l2_cache.accumulate(other.l2_cache);
    dram.accumulate(other.dram);
}

MemorySystem::MemorySystem(const MemorySystemConfig &config)
    : config_(config),
      dram_(config.dram),
      l2_(config.l2_cache, &dram_),
      vertex_cache_(config.vertex_cache, &l2_),
      tile_cache_(config.tile_cache, &l2_)
{
    EVRSIM_ASSERT(config.num_texture_caches > 0);
    for (unsigned i = 0; i < config.num_texture_caches; ++i) {
        texture_caches_.push_back(
            std::make_unique<SetAssocCache>(config.texture_cache, &l2_));
    }
}







MemorySystemStats
MemorySystem::stats() const
{
    MemorySystemStats s;
    s.vertex_cache = vertex_cache_.stats();
    for (const auto &tc : texture_caches_)
        s.texture_caches.accumulate(tc->stats());
    s.tile_cache = tile_cache_.stats();
    s.l2_cache = l2_.stats();
    s.dram = dram_.stats();
    return s;
}

void
MemorySystem::clearStats()
{
    vertex_cache_.clearStats();
    for (auto &tc : texture_caches_)
        tc->clearStats();
    tile_cache_.clearStats();
    l2_.clearStats();
    dram_.clearStats();
}

} // namespace evrsim
