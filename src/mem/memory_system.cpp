/**
 * @file
 * MemorySystem implementation.
 */
#include "mem/memory_system.hpp"

#include "common/log.hpp"

namespace evrsim {

void
MemorySystemStats::accumulate(const MemorySystemStats &other)
{
    vertex_cache.accumulate(other.vertex_cache);
    texture_caches.accumulate(other.texture_caches);
    tile_cache.accumulate(other.tile_cache);
    l2_cache.accumulate(other.l2_cache);
    dram.accumulate(other.dram);
}

MemorySystem::MemorySystem(const MemorySystemConfig &config)
    : config_(config),
      dram_(config.dram),
      l2_(config.l2_cache, &dram_),
      vertex_cache_(config.vertex_cache, &l2_),
      tile_cache_(config.tile_cache, &l2_)
{
    EVRSIM_ASSERT(config.num_texture_caches > 0);
    for (unsigned i = 0; i < config.num_texture_caches; ++i) {
        texture_caches_.push_back(
            std::make_unique<SetAssocCache>(config.texture_cache, &l2_));
    }
}

AccessResult
MemorySystem::vertexFetch(Addr addr, unsigned size)
{
    return vertex_cache_.access(addr, size, false,
                                TrafficClass::VertexFetch);
}

AccessResult
MemorySystem::parameterWrite(Addr addr, unsigned size)
{
    return tile_cache_.access(addr, size, true,
                              TrafficClass::ParameterBuffer);
}

AccessResult
MemorySystem::parameterRead(Addr addr, unsigned size)
{
    return tile_cache_.access(addr, size, false,
                              TrafficClass::ParameterBuffer);
}

AccessResult
MemorySystem::textureFetch(unsigned unit, Addr addr, unsigned size)
{
    EVRSIM_ASSERT(unit < texture_caches_.size());
    return texture_caches_[unit]->access(addr, size, false,
                                         TrafficClass::Texture);
}

AccessResult
MemorySystem::framebufferWrite(Addr addr, unsigned size)
{
    // Streaming store: bypasses the cache hierarchy.
    return dram_.access(addr, size, true, TrafficClass::Framebuffer);
}

AccessResult
MemorySystem::otherAccess(Addr addr, unsigned size, bool write)
{
    return dram_.access(addr, size, write, TrafficClass::Other);
}

MemorySystemStats
MemorySystem::stats() const
{
    MemorySystemStats s;
    s.vertex_cache = vertex_cache_.stats();
    for (const auto &tc : texture_caches_)
        s.texture_caches.accumulate(tc->stats());
    s.tile_cache = tile_cache_.stats();
    s.l2_cache = l2_.stats();
    s.dram = dram_.stats();
    return s;
}

void
MemorySystem::clearStats()
{
    vertex_cache_.clearStats();
    for (auto &tc : texture_caches_)
        tc->clearStats();
    tile_cache_.clearStats();
    l2_.clearStats();
    dram_.clearStats();
}

} // namespace evrsim
