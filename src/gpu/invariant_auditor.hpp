/**
 * @file
 * Pipeline invariant auditor (EVRSIM_VALIDATE).
 *
 * Cross-checks the claims the EVR/RE machinery is built on, while a
 * frame renders:
 *
 *  - binning containment: every display-list entry references a
 *    primitive that actually overlaps its tile, and the Second List
 *    holds only what Algorithm 1 may put there (predicted-occluded
 *    opaque WOZ primitives);
 *  - FVP conservativeness: the Z_far stored for a tile is at least the
 *    tile's true farthest depth (a too-near FVP would mispredict
 *    visible primitives as occluded wholesale);
 *  - misprediction poisoning: once a predicted-occluded primitive is
 *    seen contributing, the tile's signature really is poisoned
 *    (DESIGN.md section 4.1's soundness defense);
 *  - end-of-frame image identity: on a sampled subset of tiles, the
 *    produced pixels equal a submission-order reference render.
 *
 * The auditor only observes the pipeline through the generic hook
 * interfaces, so this stays a GPU-layer class with no EVR/RE linkage.
 * Violations are counted and described; permissive mode additionally
 * *degrades* the offending tile (poison its signature, invalidate its
 * FVP entry) so the run continues with EVR/RE disabled exactly where
 * they were caught lying, while strict mode turns the frame into a
 * failing Status.
 */
#ifndef EVRSIM_GPU_INVARIANT_AUDITOR_HPP
#define EVRSIM_GPU_INVARIANT_AUDITOR_HPP

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/rect.hpp"
#include "common/status.hpp"
#include "common/validate.hpp"
#include "gpu/gpu_config.hpp"
#include "gpu/parameter_buffer.hpp"
#include "gpu/pipeline_hooks.hpp"

namespace evrsim {

/** Frame-scoped invariant checker; owned by the simulator. */
class InvariantAuditor
{
  public:
    InvariantAuditor(const ValidationConfig &config, const GpuConfig &gpu);

    /** Wire the hooks to interrogate and degrade (either may be null). */
    void
    attach(SignatureUpdater *signature, TileVisibilityTracker *tracker)
    {
        signature_ = signature;
        tracker_ = tracker;
    }

    /**
     * Enable/disable the image-identity check. Configurations that
     * preload final depths (oracle-Z, Z-Prepass) resolve equal-depth
     * fragments differently from a submission-order render, so identity
     * against the reference is not an invariant for them.
     */
    void setIdentityEnabled(bool enabled) { identity_enabled_ = enabled; }
    bool identityEnabled() const { return identity_enabled_; }

    /** Begin a frame: clears the per-frame violation list. */
    void frameStart(std::uint64_t frame);

    /** Should the identity check run for @p tile this frame (sampled)? */
    bool shouldAuditTile(int tile) const;

    /**
     * Post-binning structural audit of every tile's display lists:
     * containment and Second List composition.
     */
    void checkBinning(const ParameterBuffer &pb, FrameStats &stats);

    /**
     * FVP conservativeness for a tile that just ended: the stored
     * prediction must be no nearer than the tile's true farthest depth.
     * Call after TileVisibilityTracker::tileEnd. Violations degrade the
     * tile's prediction.
     */
    void checkFvpConservative(int tile, const float *tile_depth,
                              int pixel_count, FrameStats &stats);

    /**
     * A misprediction was reported for @p tile (scenario D). Counts the
     * tile as degraded — its signature is out of service — and audits
     * that the poison actually took.
     */
    void checkMispredictionPoisoned(int tile, FrameStats &stats);

    /** Record an image-identity mismatch for @p tile. */
    void reportTileMismatch(int tile, FrameStats &stats);

    /**
     * Take @p tile out of the EVR/RE fast path: poison its signature
     * (no skip next frame) and invalidate its FVP prediction.
     */
    void degradeTile(int tile, FrameStats &stats);

    /** No violations so far this frame? */
    bool frameClean() const;

    /** Ok when clean; otherwise an InvariantViolation describing them. */
    Status frameStatus() const;

    /** Violations across the auditor's lifetime. */
    std::uint64_t totalViolations() const;

    /**
     * Retained violation descriptions (capped), ordered by
     * (pipeline phase, tile, arrival) — an order that is identical
     * whether tiles rendered serially or in parallel.
     */
    std::vector<std::string> frameViolations() const;

    const ValidationConfig &config() const { return config_; }

  private:
    /** Pipeline phase a violation was observed in; the primary sort
     *  key, so binning findings always precede raster findings. */
    enum class Phase { Binning = 0, Raster = 1 };

    /**
     * Record one violation. Thread-safe: concurrent tile workers append
     * under the mutex, and reads sort by (phase, tile, seq) so the
     * reported order never depends on thread interleaving.
     */
    void record(Phase phase, int tile, std::string message,
                FrameStats &stats);

    /** Pixel rectangle of @p tile (mirrors the raster pipeline). */
    RectI tileRect(int tile) const;

    /** Sorted, capped view of this frame's violations (mu_ held). */
    std::vector<std::string> sortedViolationsLocked() const;

    ValidationConfig config_;
    const GpuConfig &gpu_;
    SignatureUpdater *signature_ = nullptr;
    TileVisibilityTracker *tracker_ = nullptr;
    bool identity_enabled_ = true;

    std::uint64_t frame_ = 0;

    struct Pending {
        int phase;
        int tile;
        std::uint64_t seq; ///< arrival order (deterministic per tile)
        std::string msg;
    };
    mutable std::mutex mu_;
    std::vector<Pending> pending_;       ///< this frame's violations
    std::uint64_t next_seq_ = 0;         ///< guarded by mu_
    std::uint64_t frame_violation_count_ = 0; ///< uncapped, this frame
    std::uint64_t total_violations_ = 0; ///< guarded by mu_

    /** Cap on retained violation descriptions per frame. */
    static constexpr std::size_t kMaxStoredViolations = 8;
};

} // namespace evrsim

#endif // EVRSIM_GPU_INVARIANT_AUDITOR_HPP
