/**
 * @file
 * Post-geometry primitive representation stored in the Parameter Buffer.
 */
#ifndef EVRSIM_GPU_PRIMITIVE_HPP
#define EVRSIM_GPU_PRIMITIVE_HPP

#include <cstdint>

#include "common/vec.hpp"
#include "mem/mem_types.hpp"
#include "scene/draw_command.hpp"

namespace evrsim {

/** A vertex after the Geometry Pipeline (screen space). */
struct ShadedVertex {
    /** Screen-space position in pixels (x right, y down). */
    Vec2 screen;
    /** Depth in [0, 1], 0 = near plane. */
    float depth = 0.0f;
    /** 1/w_clip, used for perspective-correct interpolation. */
    float inv_w = 1.0f;
    Vec4 color;
    Vec2 uv;
};

/** A triangle ready for binning and rasterization. */
struct ShadedPrimitive {
    ShadedVertex v[3];
    RenderState state;
    /** Draw command this primitive belongs to (submission order). */
    std::uint32_t cmd_id = 0;
    /** Index of this primitive within the frame (Parameter Buffer slot). */
    std::uint32_t frame_index = 0;

    /** Depth of the closest vertex to the camera (the paper's Z_near). */
    float z_near = 1.0f;

    /** CRC32 of the primitive's attributes (Rendering Elimination). */
    std::uint32_t attr_crc = 0;
    /** Number of attribute bytes hashed into attr_crc. */
    std::uint32_t attr_bytes = 0;

    /** Simulated Parameter Buffer address of the attribute block. */
    Addr pb_addr = 0;

    /** Bytes this primitive's attribute block occupies in the PB. */
    static constexpr unsigned kAttrBytes =
        3 * (sizeof(ShadedVertex)) + 8; // vertices + packed state

    /** Recompute z_near from the vertices. */
    void
    updateZNear()
    {
        z_near = v[0].depth;
        if (v[1].depth < z_near)
            z_near = v[1].depth;
        if (v[2].depth < z_near)
            z_near = v[2].depth;
    }
};

/** One Display List entry: a primitive reference plus its tile layer. */
struct DisplayListEntry {
    std::uint32_t prim = 0; ///< index into the Parameter Buffer
    std::uint16_t layer = 0; ///< EVR layer identifier for this tile
    /** Prediction recorded for stats/casuistry (not used for rendering). */
    bool predicted_occluded = false;

    /** Simulated bytes of a baseline entry (pointer). */
    static constexpr unsigned kBaseBytes = 4;
    /** Extra bytes when EVR stores the layer id. */
    static constexpr unsigned kLayerBytes = 2;
};

} // namespace evrsim

#endif // EVRSIM_GPU_PRIMITIVE_HPP
