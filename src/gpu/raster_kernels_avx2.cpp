/**
 * @file
 * 8-wide AVX2 raster kernels (x86-64).
 *
 * Compiled with -mavx2 -ffp-contract=off when the compiler supports it
 * (see src/gpu/CMakeLists.txt); on other targets, or with a compiler
 * lacking AVX2 support, this translation unit compiles to a stub that
 * reports the tier as unavailable. FMA contraction is disabled and no
 * FMA intrinsics are used, so every lane performs exactly the mul, mul,
 * sub sequence of the scalar coverage test — bit-identical results are
 * a hard requirement, not an aspiration (the byte-identity property
 * test in tests/raster_pipeline_test.cpp enforces it).
 */
#include "gpu/raster_kernels.hpp"

#if defined(EVRSIM_BUILD_AVX2) && defined(__AVX2__)

#include <immintrin.h>

namespace evrsim {

namespace {

bool
rowCoverageAvx2(const EdgeSetup &s, int x0, int count, int y,
                std::uint8_t *mask, float *w0, float *w1, float *w2)
{
    const float py = static_cast<float>(y) + 0.5f;

    // Per-row constants, computed in scalar SSE exactly as the scalar
    // kernel computes them, then broadcast. For edge k the per-pixel
    // value is  tK - bK * (px - aKx): same mul/sub tree as coverPixel.
    const __m256 t0 = _mm256_set1_ps((s.p2x - s.p1x) * (py - s.p1y));
    const __m256 b0 = _mm256_set1_ps(s.p2y - s.p1y);
    const __m256 a0x = _mm256_set1_ps(s.p1x);
    const __m256 t1 = _mm256_set1_ps((s.p0x - s.p2x) * (py - s.p2y));
    const __m256 b1 = _mm256_set1_ps(s.p0y - s.p2y);
    const __m256 a1x = _mm256_set1_ps(s.p2x);
    const __m256 t2 = _mm256_set1_ps((s.p1x - s.p0x) * (py - s.p0y));
    const __m256 b2 = _mm256_set1_ps(s.p1y - s.p0y);
    const __m256 a2x = _mm256_set1_ps(s.p0x);

    const __m256 inv_area = _mm256_set1_ps(s.inv_area);
    const __m256 zero = _mm256_setzero_ps();
    const __m256 ones = _mm256_castsi256_ps(_mm256_set1_epi32(-1));
    const __m256 tl0 = s.tl0 ? ones : zero;
    const __m256 tl1 = s.tl1 ? ones : zero;
    const __m256 tl2 = s.tl2 ? ones : zero;
    const __m256 half = _mm256_set1_ps(0.5f);
    const __m256i lane = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);

    auto edge = [](__m256 t, __m256 b, __m256 ax, __m256 px) {
        return _mm256_sub_ps(t, _mm256_mul_ps(b, _mm256_sub_ps(px, ax)));
    };
    auto inside = [&](__m256 e, __m256 tl) {
        __m256 gt = _mm256_cmp_ps(e, zero, _CMP_GT_OQ);
        __m256 eq = _mm256_cmp_ps(e, zero, _CMP_EQ_OQ);
        return _mm256_or_ps(gt, _mm256_and_ps(eq, tl));
    };

    unsigned any = 0;
    int i = 0;
    for (; i + 8 <= count; i += 8) {
        __m256i xi = _mm256_add_epi32(_mm256_set1_epi32(x0 + i), lane);
        __m256 px = _mm256_add_ps(_mm256_cvtepi32_ps(xi), half);

        __m256 e0 = edge(t0, b0, a0x, px);
        __m256 e1 = edge(t1, b1, a1x, px);
        __m256 e2 = edge(t2, b2, a2x, px);

        __m256 in = _mm256_and_ps(
            inside(e0, tl0),
            _mm256_and_ps(inside(e1, tl1), inside(e2, tl2)));

        _mm256_storeu_ps(w0 + i, _mm256_mul_ps(e0, inv_area));
        _mm256_storeu_ps(w1 + i, _mm256_mul_ps(e1, inv_area));
        _mm256_storeu_ps(w2 + i, _mm256_mul_ps(e2, inv_area));

        auto bits =
            static_cast<unsigned>(_mm256_movemask_ps(in)) & 0xffu;
        any |= bits;
        for (int l = 0; l < 8; ++l)
            mask[i + l] = static_cast<std::uint8_t>((bits >> l) & 1u);
    }
    bool covered_any = any != 0;
    for (; i < count; ++i) {
        const float px = static_cast<float>(x0 + i) + 0.5f;
        const bool covered = coverPixel(s, px, py, w0[i], w1[i], w2[i]);
        mask[i] = covered ? 1 : 0;
        covered_any |= covered;
    }
    return covered_any;
}

float
maxFloatAvx2(const float *v, std::size_t count)
{
    // Accumulating from 0.0f reproduces the scalar "max(0, max(v))"
    // semantics; float max is associative, so lane order is immaterial.
    __m256 acc = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 8 <= count; i += 8)
        acc = _mm256_max_ps(acc, _mm256_loadu_ps(v + i));
    __m128 m = _mm_max_ps(_mm256_castps256_ps128(acc),
                          _mm256_extractf128_ps(acc, 1));
    m = _mm_max_ps(m, _mm_movehl_ps(m, m));
    m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 1));
    float best = _mm_cvtss_f32(m);
    for (; i < count; ++i)
        if (v[i] > best)
            best = v[i];
    return best;
}

constexpr RasterKernels kAvx2Kernels = {rowCoverageAvx2, maxFloatAvx2,
                                        SimdLevel::Avx2};

} // namespace

const RasterKernels *
rasterKernelsAvx2()
{
    return __builtin_cpu_supports("avx2") ? &kAvx2Kernels : nullptr;
}

} // namespace evrsim

#else // !EVRSIM_BUILD_AVX2

namespace evrsim {

const RasterKernels *
rasterKernelsAvx2()
{
    return nullptr;
}

} // namespace evrsim

#endif
