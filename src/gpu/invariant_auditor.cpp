/**
 * @file
 * InvariantAuditor implementation.
 */
#include "gpu/invariant_auditor.hpp"

#include "common/fault_injector.hpp"
#include "common/log.hpp"
#include "gpu/rasterizer.hpp"

namespace evrsim {

InvariantAuditor::InvariantAuditor(const ValidationConfig &config,
                                   const GpuConfig &gpu)
    : config_(config), gpu_(gpu)
{
}

void
InvariantAuditor::frameStart(std::uint64_t frame)
{
    frame_ = frame;
    frame_violations_.clear();
}

bool
InvariantAuditor::shouldAuditTile(int tile) const
{
    if (config_.tile_sample_rate <= 0.0)
        return false;
    if (config_.tile_sample_rate >= 1.0)
        return true;
    std::uint64_t h = mix64(config_.seed ^ mix64(frame_) ^
                            mix64(static_cast<std::uint64_t>(tile) +
                                  0x7461756469740ull));
    double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    return u < config_.tile_sample_rate;
}

RectI
InvariantAuditor::tileRect(int tile) const
{
    int ts = gpu_.tile_size;
    int tx = tile % gpu_.tilesX();
    int ty = tile / gpu_.tilesX();
    RectI rect = {tx * ts, ty * ts, (tx + 1) * ts, (ty + 1) * ts};
    return rect.intersect({0, 0, gpu_.screen_width, gpu_.screen_height});
}

void
InvariantAuditor::checkBinning(const ParameterBuffer &pb, FrameStats &stats)
{
    const int tiles = pb.tileCount();
    for (int tile = 0; tile < tiles; ++tile) {
        const RectI rect = tileRect(tile);

        for (const DisplayListEntry &e : pb.firstList(tile)) {
            const ShadedPrimitive &prim = pb.prim(e.prim);
            if (!Rasterizer::triangleOverlapsRect(prim, rect))
                record("binning: prim " + std::to_string(e.prim) +
                           " listed in tile " + std::to_string(tile) +
                           " it does not overlap",
                       stats);
        }
        for (const DisplayListEntry &e : pb.secondList(tile)) {
            const ShadedPrimitive &prim = pb.prim(e.prim);
            if (!Rasterizer::triangleOverlapsRect(prim, rect))
                record("binning: prim " + std::to_string(e.prim) +
                           " listed in tile " + std::to_string(tile) +
                           " it does not overlap",
                       stats);
            // Algorithm 1 defers only predicted-occluded opaque WOZ
            // primitives; anything else in the Second List would change
            // rendering semantics, not just order.
            if (!e.predicted_occluded || !prim.state.depth_write ||
                prim.state.blend != BlendMode::Opaque)
                record("ordering: tile " + std::to_string(tile) +
                           " Second List holds prim " +
                           std::to_string(e.prim) +
                           " that is not predicted-occluded opaque WOZ",
                       stats);
        }
    }
}

void
InvariantAuditor::checkFvpConservative(int tile, const float *tile_depth,
                                       int pixel_count, FrameStats &stats)
{
    if (!tracker_)
        return;
    float max_depth = 0.0f;
    for (int i = 0; i < pixel_count; ++i)
        if (tile_depth[i] > max_depth)
            max_depth = tile_depth[i];
    if (tracker_->fvpConservative(tile, max_depth))
        return;
    record("fvp: tile " + std::to_string(tile) +
               " stored a farthest-visible point nearer than its actual "
               "farthest depth",
           stats);
    // The prediction is unsound; forget it rather than let the next
    // frame exclude visible primitives with it.
    degradeTile(tile, stats);
}

void
InvariantAuditor::checkMispredictionPoisoned(int tile, FrameStats &stats)
{
    // A misprediction takes the tile's signature out of service for two
    // frames — that is the degradation the counters must surface.
    ++stats.degraded_tiles;
    if (!signature_ || signature_->mispredictionPoisoned(tile))
        return;
    record("re: tile " + std::to_string(tile) +
               " misprediction did not poison its signature",
           stats);
}

void
InvariantAuditor::reportTileMismatch(int tile, FrameStats &stats)
{
    record("identity: tile " + std::to_string(tile) +
               " pixels differ from the submission-order reference",
           stats);
}

void
InvariantAuditor::degradeTile(int tile, FrameStats &stats)
{
    ++stats.degraded_tiles;
    if (signature_)
        signature_->tileMispredicted(tile);
    if (tracker_)
        tracker_->invalidatePrediction(tile);
}

void
InvariantAuditor::record(std::string message, FrameStats &stats)
{
    ++total_violations_;
    ++stats.validate_violations;
    if (config_.strict())
        warn("invariant violation (frame %llu): %s",
             static_cast<unsigned long long>(frame_), message.c_str());
    if (frame_violations_.size() < kMaxStoredViolations)
        frame_violations_.push_back(std::move(message));
}

Status
InvariantAuditor::frameStatus() const
{
    if (frameClean())
        return {};
    std::string msg = frame_violations_.front();
    if (total_violations_ > 1 || frame_violations_.size() > 1)
        msg += " (+" +
               std::to_string(frame_violations_.size() - 1) +
               " more this frame)";
    return Status::invariantViolation(std::move(msg));
}

} // namespace evrsim
