/**
 * @file
 * InvariantAuditor implementation.
 */
#include "gpu/invariant_auditor.hpp"

#include <algorithm>

#include "common/fault_injector.hpp"
#include "common/log.hpp"
#include "gpu/raster_kernels.hpp"
#include "gpu/rasterizer.hpp"

namespace evrsim {

InvariantAuditor::InvariantAuditor(const ValidationConfig &config,
                                   const GpuConfig &gpu)
    : config_(config), gpu_(gpu)
{
}

void
InvariantAuditor::frameStart(std::uint64_t frame)
{
    frame_ = frame;
    std::lock_guard<std::mutex> lock(mu_);
    pending_.clear();
    next_seq_ = 0;
    frame_violation_count_ = 0;
}

bool
InvariantAuditor::shouldAuditTile(int tile) const
{
    if (config_.tile_sample_rate <= 0.0)
        return false;
    if (config_.tile_sample_rate >= 1.0)
        return true;
    std::uint64_t h = mix64(config_.seed ^ mix64(frame_) ^
                            mix64(static_cast<std::uint64_t>(tile) +
                                  0x7461756469740ull));
    double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    return u < config_.tile_sample_rate;
}

RectI
InvariantAuditor::tileRect(int tile) const
{
    int ts = gpu_.tile_size;
    int tx = tile % gpu_.tilesX();
    int ty = tile / gpu_.tilesX();
    RectI rect = {tx * ts, ty * ts, (tx + 1) * ts, (ty + 1) * ts};
    return rect.intersect({0, 0, gpu_.screen_width, gpu_.screen_height});
}

void
InvariantAuditor::checkBinning(const ParameterBuffer &pb, FrameStats &stats)
{
    const int tiles = pb.tileCount();
    for (int tile = 0; tile < tiles; ++tile) {
        const RectI rect = tileRect(tile);

        for (const DisplayListEntry &e : pb.firstList(tile)) {
            const ShadedPrimitive &prim = pb.prim(e.prim);
            if (!Rasterizer::triangleOverlapsRect(prim, rect))
                record(Phase::Binning, tile,
                       "binning: prim " + std::to_string(e.prim) +
                           " listed in tile " + std::to_string(tile) +
                           " it does not overlap",
                       stats);
        }
        for (const DisplayListEntry &e : pb.secondList(tile)) {
            const ShadedPrimitive &prim = pb.prim(e.prim);
            if (!Rasterizer::triangleOverlapsRect(prim, rect))
                record(Phase::Binning, tile,
                       "binning: prim " + std::to_string(e.prim) +
                           " listed in tile " + std::to_string(tile) +
                           " it does not overlap",
                       stats);
            // Algorithm 1 defers only predicted-occluded opaque WOZ
            // primitives; anything else in the Second List would change
            // rendering semantics, not just order.
            if (!e.predicted_occluded || !prim.state.depth_write ||
                prim.state.blend != BlendMode::Opaque)
                record(Phase::Binning, tile,
                       "ordering: tile " + std::to_string(tile) +
                           " Second List holds prim " +
                           std::to_string(e.prim) +
                           " that is not predicted-occluded opaque WOZ",
                       stats);
        }
    }
}

void
InvariantAuditor::checkFvpConservative(int tile, const float *tile_depth,
                                       int pixel_count, FrameStats &stats)
{
    if (!tracker_)
        return;
    // Vector max over the tile's depth buffer; the kernel reproduces
    // the scalar max-from-zero reduction exactly (max is associative).
    float max_depth = rasterKernels().max_float(
        tile_depth, static_cast<std::size_t>(pixel_count));
    if (tracker_->fvpConservative(tile, max_depth))
        return;
    record(Phase::Raster, tile,
           "fvp: tile " + std::to_string(tile) +
               " stored a farthest-visible point nearer than its actual "
               "farthest depth",
           stats);
    // The prediction is unsound; forget it rather than let the next
    // frame exclude visible primitives with it.
    degradeTile(tile, stats);
}

void
InvariantAuditor::checkMispredictionPoisoned(int tile, FrameStats &stats)
{
    // A misprediction takes the tile's signature out of service for two
    // frames — that is the degradation the counters must surface.
    ++stats.degraded_tiles;
    if (!signature_ || signature_->mispredictionPoisoned(tile))
        return;
    record(Phase::Raster, tile,
           "re: tile " + std::to_string(tile) +
               " misprediction did not poison its signature",
           stats);
}

void
InvariantAuditor::reportTileMismatch(int tile, FrameStats &stats)
{
    record(Phase::Raster, tile,
           "identity: tile " + std::to_string(tile) +
               " pixels differ from the submission-order reference",
           stats);
}

void
InvariantAuditor::degradeTile(int tile, FrameStats &stats)
{
    ++stats.degraded_tiles;
    if (signature_)
        signature_->tileMispredicted(tile);
    if (tracker_)
        tracker_->invalidatePrediction(tile);
}

void
InvariantAuditor::record(Phase phase, int tile, std::string message,
                         FrameStats &stats)
{
    ++stats.validate_violations;
    if (config_.strict())
        warn("invariant violation (frame %llu): %s",
             static_cast<unsigned long long>(frame_), message.c_str());
    std::lock_guard<std::mutex> lock(mu_);
    ++total_violations_;
    ++frame_violation_count_;
    // Keep every message until the frame is read out: the retention cap
    // is applied after the (phase, tile, seq) sort, so which messages
    // survive a violation storm never depends on thread interleaving.
    pending_.push_back(
        {static_cast<int>(phase), tile, next_seq_++, std::move(message)});
}

std::vector<std::string>
InvariantAuditor::sortedViolationsLocked() const
{
    std::vector<const Pending *> order;
    order.reserve(pending_.size());
    for (const Pending &p : pending_)
        order.push_back(&p);
    std::stable_sort(order.begin(), order.end(),
                     [](const Pending *a, const Pending *b) {
                         if (a->phase != b->phase)
                             return a->phase < b->phase;
                         if (a->tile != b->tile)
                             return a->tile < b->tile;
                         return a->seq < b->seq;
                     });
    std::vector<std::string> out;
    out.reserve(std::min(order.size(), kMaxStoredViolations));
    for (const Pending *p : order) {
        if (out.size() >= kMaxStoredViolations)
            break;
        out.push_back(p->msg);
    }
    return out;
}

bool
InvariantAuditor::frameClean() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return pending_.empty();
}

std::uint64_t
InvariantAuditor::totalViolations() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return total_violations_;
}

std::vector<std::string>
InvariantAuditor::frameViolations() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return sortedViolationsLocked();
}

Status
InvariantAuditor::frameStatus() const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (pending_.empty())
        return {};
    std::vector<std::string> stored = sortedViolationsLocked();
    std::string msg = stored.front();
    if (frame_violation_count_ > 1 || stored.size() > 1)
        msg += " (+" + std::to_string(stored.size() - 1) +
               " more this frame)";
    return Status::invariantViolation(std::move(msg));
}

} // namespace evrsim
