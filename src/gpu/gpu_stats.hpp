/**
 * @file
 * Event counters collected by the pipeline.
 *
 * Every number reported in the paper's figures is derived from these
 * counters (plus the memory-system counters), so the set is deliberately
 * wide. Counters are per-frame; FrameStats::accumulate() folds frames into
 * workload totals.
 */
#ifndef EVRSIM_GPU_GPU_STATS_HPP
#define EVRSIM_GPU_GPU_STATS_HPP

#include <cstdint>

#include "mem/memory_system.hpp"

namespace evrsim {

/** Table I visibility casuistry buckets. */
enum class Casuistry : std::uint8_t {
    VisibleVisible = 0,   ///< A: visible in frame i, visible in i+1
    VisibleOccluded,      ///< B
    OccludedOccluded,     ///< C: the case that improves over baseline RE
    OccludedVisible,      ///< D
    NumScenarios,
};

/** Counters for one simulated frame. */
struct FrameStats {
    // --- Geometry pipeline ---
    std::uint64_t draw_commands = 0;
    std::uint64_t vertices_fetched = 0;
    std::uint64_t vertices_shaded = 0;
    std::uint64_t vertex_shader_instrs = 0;
    std::uint64_t prims_submitted = 0;
    std::uint64_t prims_backface_culled = 0;
    std::uint64_t prims_clipped_away = 0;
    std::uint64_t prims_clip_split = 0; ///< extra tris from near-plane clip
    std::uint64_t prims_binned = 0;     ///< prims reaching the binner
    std::uint64_t bin_tile_pairs = 0;   ///< sum over prims of tiles touched
    std::uint64_t param_attr_bytes = 0; ///< Parameter Buffer attribute bytes
    std::uint64_t param_list_bytes = 0; ///< Display List pointer bytes
    std::uint64_t layer_param_bytes = 0; ///< EVR layer ids in the PB

    // --- Rendering Elimination ---
    std::uint64_t signature_updates = 0;  ///< Signature Buffer combines
    std::uint64_t signature_bytes_hashed = 0;
    /** Bytes shifted during per-tile combines (paper: the tile hash is
     *  shifted by the primitive's size before combining). */
    std::uint64_t signature_shift_bytes = 0;
    std::uint64_t signature_updates_skipped = 0; ///< EVR-excluded combines
    std::uint64_t signature_compares = 0;
    std::uint64_t tiles_skipped_re = 0;

    // --- EVR structures ---
    std::uint64_t lgt_accesses = 0;
    std::uint64_t fvp_table_accesses = 0;
    std::uint64_t layer_buffer_accesses = 0;
    std::uint64_t prims_predicted_occluded = 0; ///< per (prim, tile) pair
    std::uint64_t prims_predicted_visible = 0;
    std::uint64_t second_list_entries = 0;
    std::uint64_t second_list_flushes = 0;
    /** Table I scenario counts, per (prim, tile) pair. */
    std::uint64_t casuistry[4] = {0, 0, 0, 0};
    /** Prediction quality vs. ground truth (per prim-tile pair). */
    std::uint64_t pred_occluded_correct = 0;
    std::uint64_t pred_occluded_wrong = 0;

    // --- Raster pipeline ---
    std::uint64_t tiles_total = 0;
    std::uint64_t tiles_rendered = 0;
    std::uint64_t tiles_equal_oracle = 0; ///< ground-truth equal tiles
    std::uint64_t prim_tile_rasterized = 0;
    std::uint64_t raster_quads = 0;
    std::uint64_t fragments_generated = 0;
    std::uint64_t early_z_tests = 0;
    std::uint64_t early_z_kills = 0;
    std::uint64_t late_z_tests = 0;
    std::uint64_t late_z_kills = 0;
    std::uint64_t fragments_shaded = 0;
    std::uint64_t fragment_shader_instrs = 0;
    std::uint64_t texture_fetches = 0;
    std::uint64_t fragments_discarded_shader = 0;
    std::uint64_t blend_ops = 0;
    std::uint64_t color_buffer_accesses = 0;
    std::uint64_t depth_buffer_accesses = 0;
    std::uint64_t tile_flush_bytes = 0;

    // --- Validation / safe degradation (EVRSIM_VALIDATE) ---
    std::uint64_t validate_tile_checks = 0; ///< identity checks performed
    std::uint64_t validate_scene_issues = 0; ///< ingestion problems found
    std::uint64_t validate_commands_dropped = 0; ///< permissive sanitizer
    std::uint64_t validate_violations = 0; ///< invariant auditor failures
    /** Tiles whose EVR/RE state was repaired or disabled this frame. */
    std::uint64_t degraded_tiles = 0;
    /** Commands skipped by the pipeline itself (null/un-uploaded mesh). */
    std::uint64_t commands_rejected = 0;
    /** Primitives dropped for unusable render state (bad texture slot). */
    std::uint64_t prims_rejected = 0;

    // --- Memory latency sums (raw, before overlap factors) ---
    /** Sum of geometry-side memory access latencies. */
    std::uint64_t geom_mem_latency = 0;
    /** Sum of raster-side (texture/parameter) memory access latencies. */
    std::uint64_t raster_mem_latency = 0;

    // --- Timing (filled by the TimingModel) ---
    std::uint64_t geometry_cycles = 0;
    std::uint64_t raster_cycles = 0;

    // --- Memory hierarchy snapshot for this frame ---
    MemorySystemStats mem;

    std::uint64_t totalCycles() const { return geometry_cycles + raster_cycles; }

    /** Shaded fragments per screen pixel (Figure 8 metric). */
    double
    shadedFragmentsPerPixel(std::uint64_t screen_pixels) const
    {
        return screen_pixels == 0
                   ? 0.0
                   : static_cast<double>(fragments_shaded) / screen_pixels;
    }

    /** Fold another frame's counters into this one. */
    void accumulate(const FrameStats &other);
};

} // namespace evrsim

#endif // EVRSIM_GPU_GPU_STATS_HPP
