/**
 * @file
 * Reference tile renderer for the invariant auditor.
 *
 * Renders one tile's display list in pure submission order with the
 * standard depth/blend rules and no EVR/RE participation — the image any
 * correct configuration must produce. It is strictly functional: no
 * simulated memory traffic, no counters, no hook calls, so auditing a
 * tile cannot perturb the run being audited.
 */
#ifndef EVRSIM_GPU_REFERENCE_RASTER_HPP
#define EVRSIM_GPU_REFERENCE_RASTER_HPP

#include <vector>

#include "common/rect.hpp"
#include "gpu/parameter_buffer.hpp"
#include "scene/scene.hpp"

namespace evrsim {

/**
 * Functionally render the tile covering @p rect from @p pb's primitives.
 *
 * @param entries display-list entries of the tile, in any order; they
 *                are re-sorted into submission (Parameter Buffer) order
 *                so any EVR reordering is undone
 * @return rect.area() packed colors, row-major within @p rect
 */
std::vector<Rgba8>
renderTileReference(const Scene &scene, const ParameterBuffer &pb,
                    const RectI &rect,
                    std::vector<DisplayListEntry> entries);

} // namespace evrsim

#endif // EVRSIM_GPU_REFERENCE_RASTER_HPP
