/**
 * @file
 * Full-screen RGBA8 framebuffer living in simulated main memory.
 *
 * Under Tile-Based Rendering the framebuffer is only *written* (tile
 * flushes); tiles skipped by Rendering Elimination simply keep the colors
 * written in an earlier frame, which is exactly how the technique reuses
 * results. The class also provides the tile-granular color comparisons the
 * redundancy oracle and the correctness tests rely on.
 */
#ifndef EVRSIM_GPU_FRAMEBUFFER_HPP
#define EVRSIM_GPU_FRAMEBUFFER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/color.hpp"
#include "common/rect.hpp"

namespace evrsim {

/** Screen-sized array of packed RGBA8 pixels. */
class Framebuffer
{
  public:
    Framebuffer(int width, int height);

    int width() const { return width_; }
    int height() const { return height_; }

    Rgba8 pixel(int x, int y) const { return pixels_[index(x, y)]; }
    void setPixel(int x, int y, Rgba8 c) { pixels_[index(x, y)] = c; }

    /** Copy @p count pixels into the row starting at (@p x, @p y) —
     *  the tile-flush fast path (one memcpy per tile row). */
    void writeRow(int x, int y, const Rgba8 *src, int count);

    /** Fill the whole surface with one color. */
    void clear(Rgba8 c);

    /** Copy the rectangle @p rect from @p src (same dimensions required). */
    void copyRect(const Framebuffer &src, const RectI &rect);

    /** True if @p rect holds identical pixels in both framebuffers. */
    bool rectEquals(const Framebuffer &other, const RectI &rect) const;

    /** True if every pixel matches. */
    bool equals(const Framebuffer &other) const;

    /** Number of differing pixels (diagnostics for tests). */
    std::uint64_t diffCount(const Framebuffer &other) const;

    /** CRC32 of the full surface (compact golden-image checks). */
    std::uint32_t contentCrc() const;

    /**
     * Write the surface as a binary PPM (P6) image for visual
     * inspection; alpha is dropped.
     * @return false if the file could not be written.
     */
    bool writePpm(const std::string &path) const;

    const std::vector<Rgba8> &pixels() const { return pixels_; }

  private:
    std::size_t
    index(int x, int y) const
    {
        return static_cast<std::size_t>(y) * width_ + x;
    }

    int width_;
    int height_;
    std::vector<Rgba8> pixels_;
};

} // namespace evrsim

#endif // EVRSIM_GPU_FRAMEBUFFER_HPP
