/**
 * @file
 * The Parameter Buffer: per-frame primitive storage plus per-tile Display
 * Lists.
 *
 * The Polygon List Builder writes each primitive's attributes once and
 * appends a pointer entry to the Display List of every tile the primitive
 * overlaps. EVR splits each Display List in two: tiles are rendered by
 * draining the First List and then the Second List; Algorithm 1 steers
 * predicted-occluded WOZ primitives to the Second List and splices the
 * Second List back when an NWOZ primitive arrives (order preservation).
 *
 * Display-list entries occupy simulated memory in per-tile chunks so the
 * Tile Cache observes chunked-linked-list locality, as real hardware
 * parameter buffers produce.
 */
#ifndef EVRSIM_GPU_PARAMETER_BUFFER_HPP
#define EVRSIM_GPU_PARAMETER_BUFFER_HPP

#include <cstdint>
#include <vector>

#include "gpu/primitive.hpp"
#include "mem/address_space.hpp"

namespace evrsim {

/** Per-frame Parameter Buffer. */
class ParameterBuffer
{
  public:
    /** Simulated bytes per display-list chunk. */
    static constexpr unsigned kChunkBytes = 256;

    /** Reset for a new frame with @p tile_count tiles. */
    void beginFrame(int tile_count, AddressSpace &aspace);

    /**
     * Store a primitive's attributes; assigns frame_index and pb_addr.
     * @return the primitive's frame index.
     */
    std::uint32_t addPrimitive(ShadedPrimitive prim);

    /**
     * Append a display-list entry for @p tile.
     * @param second       append to the Second List (EVR reordering)
     * @param entry_bytes  simulated size of the entry (pointer [+ layer])
     * @return simulated address the entry was written to
     */
    Addr append(int tile, const DisplayListEntry &entry, bool second,
                unsigned entry_bytes);

    /**
     * Splice the Second List onto the end of the First List (pointer op).
     * @return true if anything was moved (the Second List was non-empty).
     */
    bool moveSecondToFirst(int tile);

    const std::vector<ShadedPrimitive> &prims() const { return prims_; }

    const ShadedPrimitive &
    prim(std::uint32_t index) const
    {
        return prims_[index];
    }

    const std::vector<DisplayListEntry> &
    firstList(int tile) const
    {
        return tiles_[tile].first;
    }

    const std::vector<DisplayListEntry> &
    secondList(int tile) const
    {
        return tiles_[tile].second;
    }

    /** Entries of both lists in render order (First then Second). */
    std::vector<DisplayListEntry> renderOrder(int tile) const;

    /**
     * renderOrder() into a caller-owned vector, reusing its capacity —
     * the raster pipeline's per-tile scratch calls this once per tile,
     * so the steady state allocates nothing. Returns @p out.
     */
    std::vector<DisplayListEntry> &
    renderOrderInto(int tile, std::vector<DisplayListEntry> &out) const;

    /** Simulated addresses of the entries, parallel to renderOrder(). */
    const std::vector<Addr> &entryAddrs(int tile) const
    {
        return tiles_[tile].entry_addrs;
    }

    int tileCount() const { return static_cast<int>(tiles_.size()); }

  private:
    struct TileLists {
        std::vector<DisplayListEntry> first;
        std::vector<DisplayListEntry> second;
        /** Addresses in append order (first-list then second-list order
         *  is re-derived by renderOrder()). */
        std::vector<Addr> entry_addrs;
        /** Remaining bytes in the tile's current display-list chunk. */
        unsigned chunk_left = 0;
        /** Next write address inside the current chunk. */
        Addr chunk_cursor = 0;
    };

    AddressSpace *aspace_ = nullptr;
    std::vector<ShadedPrimitive> prims_;
    std::vector<TileLists> tiles_;
};

} // namespace evrsim

#endif // EVRSIM_GPU_PARAMETER_BUFFER_HPP
