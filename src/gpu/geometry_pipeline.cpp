/**
 * @file
 * Geometry Pipeline implementation.
 */
#include "gpu/geometry_pipeline.hpp"

#include <cmath>

#include "common/crc32.hpp"
#include "common/log.hpp"
#include "gpu/rasterizer.hpp"
#include "gpu/shader.hpp"

namespace evrsim {

namespace {

/** Post-transform vertex cache: shaded vertices reused across triangles. */
constexpr unsigned kPostTransformEntries = 32;

} // namespace

GeometryPipeline::GeometryPipeline(const GpuConfig &config, MemorySystem &mem)
    : config_(config), mem_(mem)
{
}

GeometryPipeline::ClipVertex
GeometryPipeline::fetchAndShade(const Mesh &mesh, std::uint32_t index,
                                const Mat4 &mvp, const Vec4 &tint,
                                FrameStats &stats)
{
    AccessResult r = mem_.vertexFetch(mesh.vertexAddr(index), kVertexBytes);
    stats.geom_mem_latency += r.latency;
    ++stats.vertices_fetched;

    const Vertex &v = mesh.vertices[index];
    ClipVertex out;
    out.clip = mvp.transformPoint(v.position);
    out.color = {v.color.x * tint.x, v.color.y * tint.y, v.color.z * tint.z,
                 v.color.w * tint.w};
    out.uv = v.uv;

    ++stats.vertices_shaded;
    stats.vertex_shader_instrs += ShaderCore::kVertexShaderInstrs;
    return out;
}

ShadedVertex
GeometryPipeline::toScreen(const ClipVertex &v) const
{
    float inv_w = 1.0f / v.clip.w;
    float ndc_x = v.clip.x * inv_w;
    float ndc_y = v.clip.y * inv_w;
    float ndc_z = v.clip.z * inv_w;

    ShadedVertex out;
    out.screen = {(ndc_x + 1.0f) * 0.5f * config_.screen_width,
                  (1.0f - ndc_y) * 0.5f * config_.screen_height};
    out.depth = clampf((ndc_z + 1.0f) * 0.5f, 0.0f, 1.0f);
    out.inv_w = inv_w;
    out.color = v.color;
    out.uv = v.uv;
    return out;
}

int
GeometryPipeline::clipNear(const ClipVertex tri[3], ClipVertex out[2][3])
{
    // Signed distance to the near plane z = -w; >= 0 means inside.
    float d[3];
    int inside_count = 0;
    for (int i = 0; i < 3; ++i) {
        d[i] = tri[i].clip.z + tri[i].clip.w;
        if (d[i] >= 0.0f)
            ++inside_count;
    }

    if (inside_count == 3) {
        for (int i = 0; i < 3; ++i)
            out[0][i] = tri[i];
        return 1;
    }
    if (inside_count == 0)
        return 0;

    auto clip_lerp = [](const ClipVertex &a, const ClipVertex &b, float t) {
        ClipVertex r;
        r.clip = a.clip + (b.clip - a.clip) * t;
        r.color = a.color + (b.color - a.color) * t;
        r.uv = a.uv + (b.uv - a.uv) * t;
        return r;
    };

    // Walk the polygon, emitting inside vertices and edge crossings.
    ClipVertex poly[4];
    int n = 0;
    for (int i = 0; i < 3; ++i) {
        int j = (i + 1) % 3;
        bool in_i = d[i] >= 0.0f;
        bool in_j = d[j] >= 0.0f;
        if (in_i)
            poly[n++] = tri[i];
        if (in_i != in_j) {
            float t = d[i] / (d[i] - d[j]);
            poly[n++] = clip_lerp(tri[i], tri[j], t);
        }
    }

    EVRSIM_ASSERT(n == 3 || n == 4);
    for (int i = 0; i < 3; ++i)
        out[0][i] = poly[i];
    if (n == 4) {
        out[1][0] = poly[0];
        out[1][1] = poly[2];
        out[1][2] = poly[3];
        return 2;
    }
    return 1;
}

void
GeometryPipeline::emitTriangle(const ClipVertex tri[3], const DrawCommand &cmd,
                               const Scene &scene, ParameterBuffer &pb,
                               const GeometryHooks &hooks, FrameStats &stats)
{
    // Guard against degenerate w (can only happen with broken projections).
    for (int i = 0; i < 3; ++i) {
        if (tri[i].clip.w <= 1e-6f) {
            ++stats.prims_clipped_away;
            return;
        }
    }

    if (cmd.state.cull_backface) {
        // Orientation in NDC (y up): front faces are counter-clockwise.
        Vec2 a = {tri[0].clip.x / tri[0].clip.w, tri[0].clip.y / tri[0].clip.w};
        Vec2 b = {tri[1].clip.x / tri[1].clip.w, tri[1].clip.y / tri[1].clip.w};
        Vec2 c = {tri[2].clip.x / tri[2].clip.w, tri[2].clip.y / tri[2].clip.w};
        float area = Rasterizer::signedArea2(a, b, c);
        if (area <= 0.0f) {
            ++stats.prims_backface_culled;
            return;
        }
    }

    ShadedPrimitive prim;
    for (int i = 0; i < 3; ++i)
        prim.v[i] = toScreen(tri[i]);
    prim.state = cmd.state;
    prim.cmd_id = cmd.id;
    prim.updateZNear();

    // Viewport rejection: completely off-screen primitives are dropped.
    BBox2 bb = BBox2::ofTriangle(prim.v[0].screen, prim.v[1].screen,
                                 prim.v[2].screen);
    if (bb.max_x <= 0.0f || bb.max_y <= 0.0f ||
        bb.min_x >= config_.screen_width || bb.min_y >= config_.screen_height) {
        ++stats.prims_clipped_away;
        return;
    }

    // A texture slot that does not resolve to a bound texture would be
    // dereferenced here and again at shading: reject the primitive (the
    // raster pipeline must never see unusable render state).
    const bool samples =
        ShaderCore::fragmentTexFetches(prim.state.program) > 0;
    if ((samples && prim.state.texture < 0) ||
        (prim.state.texture >= 0 &&
         (prim.state.texture >= static_cast<int>(scene.textures.size()) ||
          scene.textures[prim.state.texture] == nullptr))) {
        ++stats.prims_rejected;
        if (!warned_bad_texture_) {
            warned_bad_texture_ = true;
            warn("command %u references texture slot %d with no bound "
                 "texture; dropping its primitives",
                 cmd.id, prim.state.texture);
        }
        return;
    }

    // Rendering Elimination signature: CRC32 of the primitive's
    // post-transform vertex attributes plus the state that affects its
    // colors. Computed once per primitive, combined per overlapped tile.
    Crc32 crc;
    static_assert(sizeof(ShadedVertex) == 40, "no padding expected");
    crc.update(prim.v, sizeof(prim.v));
    crc.updateValue(prim.state.depth_write);
    crc.updateValue(prim.state.depth_test);
    crc.updateValue(prim.state.blend);
    crc.updateValue(prim.state.program);
    if (prim.state.texture >= 0)
        crc.updateValue(scene.textures[prim.state.texture]->contentKey());
    prim.attr_crc = crc.value();
    prim.attr_bytes = static_cast<std::uint32_t>(crc.length());

    std::uint32_t index = pb.addPrimitive(prim);
    AccessResult w = mem_.parameterWrite(pb.prim(index).pb_addr,
                                         ShadedPrimitive::kAttrBytes);
    stats.geom_mem_latency += w.latency;
    stats.param_attr_bytes += ShadedPrimitive::kAttrBytes;
    ++stats.prims_binned;
    if (hooks.signature)
        stats.signature_bytes_hashed += prim.attr_bytes;

    binPrimitive(index, pb, hooks, stats);
}

void
GeometryPipeline::binPrimitive(std::uint32_t prim_index, ParameterBuffer &pb,
                               const GeometryHooks &hooks, FrameStats &stats)
{
    const ShadedPrimitive &prim = pb.prim(prim_index);
    const int ts = config_.tile_size;

    BBox2 bb = BBox2::ofTriangle(prim.v[0].screen, prim.v[1].screen,
                                 prim.v[2].screen);
    int tx0 = clampi(static_cast<int>(std::floor(bb.min_x / ts)), 0,
                     config_.tilesX() - 1);
    int ty0 = clampi(static_cast<int>(std::floor(bb.min_y / ts)), 0,
                     config_.tilesY() - 1);
    int tx1 = clampi(static_cast<int>(std::floor(bb.max_x / ts)), 0,
                     config_.tilesX() - 1);
    int ty1 = clampi(static_cast<int>(std::floor(bb.max_y / ts)), 0,
                     config_.tilesY() - 1);

    for (int ty = ty0; ty <= ty1; ++ty) {
        for (int tx = tx0; tx <= tx1; ++tx) {
            RectI tile_rect = {tx * ts, ty * ts, (tx + 1) * ts,
                               (ty + 1) * ts};
            if (!Rasterizer::triangleOverlapsRect(prim, tile_rect))
                continue;

            int tile = ty * config_.tilesX() + tx;
            ++stats.bin_tile_pairs;

            BinDecision d;
            if (hooks.scheduler)
                d = hooks.scheduler->onBin(prim, tile, stats);

            if (d.move_second_to_first && pb.moveSecondToFirst(tile))
                ++stats.second_list_flushes;

            DisplayListEntry entry;
            entry.prim = prim_index;
            entry.layer = d.layer;
            entry.predicted_occluded = d.predicted_occluded;

            unsigned entry_bytes = DisplayListEntry::kBaseBytes;
            if (hooks.store_layers)
                entry_bytes += DisplayListEntry::kLayerBytes;

            Addr addr = pb.append(tile, entry, d.to_second_list, entry_bytes);
            AccessResult w = mem_.parameterWrite(addr, entry_bytes);
            stats.geom_mem_latency += w.latency;
            stats.param_list_bytes += DisplayListEntry::kBaseBytes;
            if (hooks.store_layers)
                stats.layer_param_bytes += DisplayListEntry::kLayerBytes;
            if (d.to_second_list)
                ++stats.second_list_entries;

            if (hooks.signature) {
                bool exclude = hooks.filter_signature && d.predicted_occluded;
                hooks.signature->addPrimitive(tile, prim, exclude, stats);
            }
        }
    }
}

void
GeometryPipeline::run(const Scene &scene, ParameterBuffer &pb,
                      const GeometryHooks &hooks, FrameStats &stats)
{
    if (hooks.scheduler)
        hooks.scheduler->frameStart();
    if (hooks.signature)
        hooks.signature->frameStart();

    Mat4 view_proj = scene.viewProj();

    // Overlay projection for screen-space commands (HUDs): maps pixel
    // coordinates to clip space with depth passed through (see
    // setCamera2D for the same construction).
    Mat4 pixel_proj = Mat4::ortho(0.0f,
                                  static_cast<float>(config_.screen_width),
                                  static_cast<float>(config_.screen_height),
                                  0.0f, -1.0f, 1.0f);
    pixel_proj.m[2][2] = 2.0f;
    pixel_proj.m[3][2] = -1.0f;

    struct PtEntry {
        std::uint32_t index = 0;
        bool valid = false;
        ClipVertex v;
    };

    for (const DrawCommand &cmd : scene.commands) {
        ++stats.draw_commands;
        // A null or never-uploaded mesh is an application error, not a
        // simulator bug: skip the command (counted, warned once) rather
        // than killing the whole sweep process.
        if (cmd.mesh == nullptr || cmd.mesh->buffer_base == 0) {
            ++stats.commands_rejected;
            if (!warned_bad_command_) {
                warned_bad_command_ = true;
                warn("command %u has a %s mesh; skipping it (and any "
                     "later offender, silently)",
                     cmd.id,
                     cmd.mesh == nullptr ? "null" : "never-uploaded");
            }
            continue;
        }

        Mat4 mvp = (cmd.screen_space ? pixel_proj : view_proj) * cmd.model;

        // The post-transform cache is flushed between draw commands
        // (different commands may use different uniforms).
        PtEntry pt_cache[kPostTransformEntries];

        const Mesh &mesh = *cmd.mesh;
        std::size_t tri_count = mesh.triangleCount();
        for (std::size_t t = 0; t < tri_count; ++t) {
            ClipVertex tri[3];
            for (int k = 0; k < 3; ++k) {
                std::uint32_t idx = mesh.indices[t * 3 + k];
                PtEntry &slot = pt_cache[idx % kPostTransformEntries];
                if (slot.valid && slot.index == idx) {
                    tri[k] = slot.v;
                } else {
                    tri[k] = fetchAndShade(mesh, idx, mvp, cmd.tint, stats);
                    slot.index = idx;
                    slot.valid = true;
                    slot.v = tri[k];
                }
            }

            ++stats.prims_submitted;

            ClipVertex clipped[2][3];
            int n = clipNear(tri, clipped);
            if (n == 0) {
                ++stats.prims_clipped_away;
                continue;
            }
            if (n == 2)
                ++stats.prims_clip_split;
            for (int i = 0; i < n; ++i)
                emitTriangle(clipped[i], cmd, scene, pb, hooks, stats);
        }
    }
}

} // namespace evrsim
