/**
 * @file
 * Portable raster kernels and runtime SIMD dispatch.
 */
#include "gpu/raster_kernels.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace evrsim {

namespace {

bool
rowCoverageScalar(const EdgeSetup &s, int x0, int count, int y,
                  std::uint8_t *mask, float *w0, float *w1, float *w2)
{
    const float py = static_cast<float>(y) + 0.5f;
    bool any = false;
    for (int i = 0; i < count; ++i) {
        const float px = static_cast<float>(x0 + i) + 0.5f;
        const bool covered = coverPixel(s, px, py, w0[i], w1[i], w2[i]);
        mask[i] = covered ? 1 : 0;
        any |= covered;
    }
    return any;
}

float
maxFloatScalar(const float *v, std::size_t count)
{
    float best = 0.0f;
    for (std::size_t i = 0; i < count; ++i)
        if (v[i] > best)
            best = v[i];
    return best;
}

constexpr RasterKernels kScalarKernels = {rowCoverageScalar,
                                          maxFloatScalar,
                                          SimdLevel::Scalar};

const RasterKernels *
tableFor(SimdLevel level)
{
    switch (level) {
      case SimdLevel::Avx2:
        return rasterKernelsAvx2();
      case SimdLevel::Neon:
        return rasterKernelsNeon();
      case SimdLevel::Scalar:
        break;
    }
    return &kScalarKernels;
}

const RasterKernels *
bestTable()
{
    if (const RasterKernels *k = rasterKernelsAvx2())
        return k;
    if (const RasterKernels *k = rasterKernelsNeon())
        return k;
    return &kScalarKernels;
}

/** EVRSIM_SIMD=off pins scalar; anything else (or unset) means auto. */
const RasterKernels *
resolveFromEnv()
{
    if (const char *mode = std::getenv("EVRSIM_SIMD");
        mode && std::strcmp(mode, "off") == 0)
        return &kScalarKernels;
    return bestTable();
}

std::atomic<const RasterKernels *> g_active{nullptr};

} // namespace

const RasterKernels &
rasterKernels()
{
    const RasterKernels *k = g_active.load(std::memory_order_acquire);
    if (k == nullptr) {
        k = resolveFromEnv();
        // A concurrent first call resolves to the same table, so a lost
        // race publishes an identical pointer.
        g_active.store(k, std::memory_order_release);
    }
    return *k;
}

SimdLevel
bestSimdLevel()
{
    return bestTable()->level;
}

SimdLevel
forceSimdLevel(SimdLevel level)
{
    const RasterKernels *k = tableFor(level);
    if (k == nullptr)
        k = bestTable();
    g_active.store(k, std::memory_order_release);
    return k->level;
}

} // namespace evrsim
