/**
 * @file
 * Framebuffer implementation.
 */
#include "gpu/framebuffer.hpp"

#include <cstdio>
#include <cstring>

#include "common/crc32.hpp"
#include "common/log.hpp"

namespace evrsim {

Framebuffer::Framebuffer(int width, int height)
    : width_(width), height_(height)
{
    EVRSIM_ASSERT(width > 0 && height > 0);
    pixels_.assign(static_cast<std::size_t>(width) * height, Rgba8{});
}

void
Framebuffer::clear(Rgba8 c)
{
    for (auto &p : pixels_)
        p = c;
}

void
Framebuffer::writeRow(int x, int y, const Rgba8 *src, int count)
{
    // Rgba8 is trivially copyable and == is field-wise on uint8 fields,
    // so byte copies/compares are exact.
    std::memcpy(&pixels_[index(x, y)], src,
                static_cast<std::size_t>(count) * sizeof(Rgba8));
}

void
Framebuffer::copyRect(const Framebuffer &src, const RectI &rect)
{
    EVRSIM_ASSERT(src.width_ == width_ && src.height_ == height_);
    if (rect.empty())
        return;
    const std::size_t row_bytes =
        static_cast<std::size_t>(rect.width()) * sizeof(Rgba8);
    for (int y = rect.y0; y < rect.y1; ++y)
        std::memcpy(&pixels_[index(rect.x0, y)],
                    &src.pixels_[index(rect.x0, y)], row_bytes);
}

bool
Framebuffer::rectEquals(const Framebuffer &other, const RectI &rect) const
{
    EVRSIM_ASSERT(other.width_ == width_ && other.height_ == height_);
    if (rect.empty())
        return true;
    const std::size_t row_bytes =
        static_cast<std::size_t>(rect.width()) * sizeof(Rgba8);
    for (int y = rect.y0; y < rect.y1; ++y)
        if (std::memcmp(&pixels_[index(rect.x0, y)],
                        &other.pixels_[index(rect.x0, y)],
                        row_bytes) != 0)
            return false;
    return true;
}

bool
Framebuffer::equals(const Framebuffer &other) const
{
    return width_ == other.width_ && height_ == other.height_ &&
           pixels_ == other.pixels_;
}

std::uint64_t
Framebuffer::diffCount(const Framebuffer &other) const
{
    EVRSIM_ASSERT(other.width_ == width_ && other.height_ == height_);
    std::uint64_t diff = 0;
    for (std::size_t i = 0; i < pixels_.size(); ++i)
        if (pixels_[i] != other.pixels_[i])
            ++diff;
    return diff;
}

std::uint32_t
Framebuffer::contentCrc() const
{
    return Crc32::of(pixels_.data(), pixels_.size() * sizeof(Rgba8));
}

bool
Framebuffer::writePpm(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    std::fprintf(f, "P6\n%d %d\n255\n", width_, height_);
    for (const Rgba8 &p : pixels_) {
        unsigned char rgb[3] = {p.r, p.g, p.b};
        std::fwrite(rgb, 1, 3, f);
    }
    std::fclose(f);
    return true;
}

} // namespace evrsim
