/**
 * @file
 * 4-wide NEON raster kernels (AArch64, where NEON is baseline).
 *
 * Same bit-identity contract as the AVX2 kernels: per lane the exact
 * mul, mul, sub sequence of the scalar coverage test, no fused
 * multiply-add intrinsics (AArch64 NEON arithmetic is IEEE-compliant
 * by default, and intrinsics are never contracted).
 */
#include "gpu/raster_kernels.hpp"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace evrsim {

namespace {

bool
rowCoverageNeon(const EdgeSetup &s, int x0, int count, int y,
                std::uint8_t *mask, float *w0, float *w1, float *w2)
{
    const float py = static_cast<float>(y) + 0.5f;

    const float32x4_t t0 = vdupq_n_f32((s.p2x - s.p1x) * (py - s.p1y));
    const float32x4_t b0 = vdupq_n_f32(s.p2y - s.p1y);
    const float32x4_t a0x = vdupq_n_f32(s.p1x);
    const float32x4_t t1 = vdupq_n_f32((s.p0x - s.p2x) * (py - s.p2y));
    const float32x4_t b1 = vdupq_n_f32(s.p0y - s.p2y);
    const float32x4_t a1x = vdupq_n_f32(s.p2x);
    const float32x4_t t2 = vdupq_n_f32((s.p1x - s.p0x) * (py - s.p0y));
    const float32x4_t b2 = vdupq_n_f32(s.p1y - s.p0y);
    const float32x4_t a2x = vdupq_n_f32(s.p0x);

    const float32x4_t inv_area = vdupq_n_f32(s.inv_area);
    const float32x4_t zero = vdupq_n_f32(0.0f);
    const uint32x4_t tl0 = vdupq_n_u32(s.tl0 ? 0xffffffffu : 0u);
    const uint32x4_t tl1 = vdupq_n_u32(s.tl1 ? 0xffffffffu : 0u);
    const uint32x4_t tl2 = vdupq_n_u32(s.tl2 ? 0xffffffffu : 0u);
    const float32x4_t half = vdupq_n_f32(0.5f);
    const std::int32_t lane_init[4] = {0, 1, 2, 3};
    const int32x4_t lane = vld1q_s32(lane_init);

    bool covered_any = false;
    int i = 0;
    for (; i + 4 <= count; i += 4) {
        int32x4_t xi = vaddq_s32(vdupq_n_s32(x0 + i), lane);
        float32x4_t px = vaddq_f32(vcvtq_f32_s32(xi), half);

        float32x4_t e0 =
            vsubq_f32(t0, vmulq_f32(b0, vsubq_f32(px, a0x)));
        float32x4_t e1 =
            vsubq_f32(t1, vmulq_f32(b1, vsubq_f32(px, a1x)));
        float32x4_t e2 =
            vsubq_f32(t2, vmulq_f32(b2, vsubq_f32(px, a2x)));

        uint32x4_t in0 = vorrq_u32(
            vcgtq_f32(e0, zero), vandq_u32(vceqq_f32(e0, zero), tl0));
        uint32x4_t in1 = vorrq_u32(
            vcgtq_f32(e1, zero), vandq_u32(vceqq_f32(e1, zero), tl1));
        uint32x4_t in2 = vorrq_u32(
            vcgtq_f32(e2, zero), vandq_u32(vceqq_f32(e2, zero), tl2));
        uint32x4_t in = vandq_u32(in0, vandq_u32(in1, in2));

        vst1q_f32(w0 + i, vmulq_f32(e0, inv_area));
        vst1q_f32(w1 + i, vmulq_f32(e1, inv_area));
        vst1q_f32(w2 + i, vmulq_f32(e2, inv_area));

        std::uint32_t bits[4];
        vst1q_u32(bits, in);
        for (int l = 0; l < 4; ++l)
            mask[i + l] = bits[l] ? 1 : 0;
        covered_any |= vmaxvq_u32(in) != 0;
    }
    for (; i < count; ++i) {
        const float px = static_cast<float>(x0 + i) + 0.5f;
        const bool covered = coverPixel(s, px, py, w0[i], w1[i], w2[i]);
        mask[i] = covered ? 1 : 0;
        covered_any |= covered;
    }
    return covered_any;
}

float
maxFloatNeon(const float *v, std::size_t count)
{
    float32x4_t acc = vdupq_n_f32(0.0f);
    std::size_t i = 0;
    for (; i + 4 <= count; i += 4)
        acc = vmaxq_f32(acc, vld1q_f32(v + i));
    float best = vmaxvq_f32(acc);
    for (; i < count; ++i)
        if (v[i] > best)
            best = v[i];
    return best;
}

constexpr RasterKernels kNeonKernels = {rowCoverageNeon, maxFloatNeon,
                                        SimdLevel::Neon};

} // namespace

const RasterKernels *
rasterKernelsNeon()
{
    return &kNeonKernels;
}

} // namespace evrsim

#else // !__aarch64__

namespace evrsim {

const RasterKernels *
rasterKernelsNeon()
{
    return nullptr;
}

} // namespace evrsim

#endif
