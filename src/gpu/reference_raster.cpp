/**
 * @file
 * Reference tile renderer implementation.
 *
 * The fragment math here must stay in lockstep with
 * RasterPipeline::renderTile's non-preloaded path (plain less-than depth
 * test, same blend equations, same RGBA8 quantization points): the
 * auditor compares the two images byte for byte.
 */
#include "gpu/reference_raster.hpp"

#include <algorithm>

#include "gpu/rasterizer.hpp"
#include "gpu/shader.hpp"

namespace evrsim {

std::vector<Rgba8>
renderTileReference(const Scene &scene, const ParameterBuffer &pb,
                    const RectI &rect,
                    std::vector<DisplayListEntry> entries)
{
    const int w = rect.width();
    const auto npix = static_cast<std::size_t>(rect.area());

    std::vector<float> depth(npix, scene.clear_depth);
    std::vector<Rgba8> color(npix, scene.clear_color);

    // Parameter Buffer indices are assigned in submission order, so
    // sorting by them undoes Algorithm 1's two-list reordering.
    std::sort(entries.begin(), entries.end(),
              [](const DisplayListEntry &a, const DisplayListEntry &b) {
                  return a.prim < b.prim;
              });

    FrameStats scratch; // rasterizer wants counters; discarded
    for (const DisplayListEntry &e : entries) {
        const ShadedPrimitive &prim = pb.prim(e.prim);
        const RenderState &state = prim.state;
        const bool early_capable = state.depth_test &&
                                   !state.shaderDiscards();

        Rasterizer::rasterize(
            prim, rect, scratch, [&](const Fragment &frag) {
                std::size_t li =
                    static_cast<std::size_t>(frag.y - rect.y0) * w +
                    (frag.x - rect.x0);

                if (early_capable) {
                    if (!(frag.depth < depth[li]))
                        return;
                    if (state.depth_write)
                        depth[li] = frag.depth;
                }

                FragmentShadeResult res = ShaderCore::shadeFunctional(
                    state, frag.color, frag.uv, scene.textures);
                if (res.discarded)
                    return;

                if (!early_capable && state.depth_test) {
                    if (!(frag.depth < depth[li]))
                        return;
                    if (state.depth_write)
                        depth[li] = frag.depth;
                }

                Vec4 out;
                if (state.blend == BlendMode::Opaque) {
                    out = res.color;
                    out.w = 1.0f;
                } else {
                    Vec4 dst = toVec4(color[li]);
                    float a = clampf(res.color.w, 0.0f, 1.0f);
                    out = res.color * a + dst * (1.0f - a);
                    out.w = a + dst.w * (1.0f - a);
                }
                color[li] = toRgba8(out);
            });
    }
    return color;
}

} // namespace evrsim
