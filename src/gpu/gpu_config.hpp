/**
 * @file
 * Static GPU configuration (defaults reproduce Table II).
 */
#ifndef EVRSIM_GPU_GPU_CONFIG_HPP
#define EVRSIM_GPU_GPU_CONFIG_HPP

#include "common/log.hpp"
#include "common/status.hpp"
#include "mem/memory_system.hpp"

namespace evrsim {

/** Table II "Baseline GPU Parameters" plus the modelled throughputs. */
struct GpuConfig {
    // Tech specs.
    double clock_mhz = 400.0; ///< 400 MHz, 1 V, 32 nm

    // Screen / tiling.
    int screen_width = 1196;
    int screen_height = 768;
    int tile_size = 16; ///< 16x16 pixels

    // Programmable stages.
    int vertex_processors = 1;
    int fragment_processors = 4;

    // Non-programmable stage throughputs.
    /** Primitive assembly: triangles per cycle. */
    double assembly_tris_per_cycle = 1.0;
    /** Rasterizer: interpolated attributes per cycle. */
    double raster_attrs_per_cycle = 16.0;
    /** Early-Z: quad-fragments tested per cycle (32 in flight). */
    double early_z_quads_per_cycle = 1.0;
    /** Blending: fragments per cycle. */
    double blend_frags_per_cycle = 1.0;

    // Queue capacities (Table II; reported by the parameter dump).
    int vertex_queue_entries = 16;
    int vertex_queue_entry_bytes = 136;
    int triangle_queue_entries = 16;
    int triangle_queue_entry_bytes = 388;
    int fragment_queue_entries = 64;
    int fragment_queue_entry_bytes = 233;

    // Memory hierarchy (Table II caches + DRAM).
    MemorySystemConfig mem;

    int
    tilesX() const
    {
        return (screen_width + tile_size - 1) / tile_size;
    }

    int
    tilesY() const
    {
        return (screen_height + tile_size - 1) / tile_size;
    }

    int tileCount() const { return tilesX() * tilesY(); }

    /** Recoverable form of validate(): first problem as a Status. */
    Status
    checkValid() const
    {
        if (screen_width <= 0 || screen_height <= 0)
            return Status::invalidArgument(
                "screen dimensions must be positive");
        if (tile_size <= 0 || tile_size > 64)
            return Status::invalidArgument("tile size must be in (0, 64]");
        if (fragment_processors <= 0 || vertex_processors <= 0)
            return Status::invalidArgument(
                "processor counts must be positive");
        return {};
    }

    /** Process-boundary wrapper: exits on an invalid configuration. */
    void
    validate() const
    {
        Status s = checkValid();
        if (!s.ok())
            fatal("GpuConfig: %s", s.message().c_str());
    }
};

} // namespace evrsim

#endif // EVRSIM_GPU_GPU_CONFIG_HPP
