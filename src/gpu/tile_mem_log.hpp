/**
 * @file
 * Per-tile memory-access log for tile-parallel rasterization.
 *
 * The simulated memory hierarchy is a single stateful machine: the
 * latency of every access depends on the exact global order of all
 * accesses before it. Tiles, however, are *computed* independently —
 * texel values come straight from the texture (not from simulated
 * memory), and access latencies only accumulate into statistics, never
 * feeding back into rendering. That split is what makes tile-parallel
 * rendering bit-identical to serial: each tile worker renders purely and
 * records the ordered sequence of accesses it *would* have issued, and
 * a serial replay in tile order then drives the real MemorySystem with
 * exactly the access stream of the serial renderer — same cache states,
 * same latencies, same counters.
 */
#ifndef EVRSIM_GPU_TILE_MEM_LOG_HPP
#define EVRSIM_GPU_TILE_MEM_LOG_HPP

#include <cstdint>
#include <vector>

#include "mem/mem_types.hpp"

namespace evrsim {

/** One recorded access, replayed verbatim against the MemorySystem. */
struct TileMemAccess {
    enum class Kind : std::uint8_t {
        ParamRead,        ///< Tile Cache read (display list / attributes)
        TextureFetch,     ///< texture-cache fetch of one fragment unit
        FramebufferWrite, ///< Color Buffer flush row segment
    };

    Kind kind;
    std::uint8_t unit = 0; ///< fragment unit (TextureFetch only)
    std::uint16_t bytes = 0;
    Addr addr = 0;
};

/** Ordered access log of one tile's render. */
class TileMemLog
{
  public:
    void
    paramRead(Addr addr, unsigned bytes)
    {
        accesses_.push_back({TileMemAccess::Kind::ParamRead, 0,
                             static_cast<std::uint16_t>(bytes), addr});
    }

    void
    textureFetch(unsigned unit, Addr addr, unsigned bytes)
    {
        accesses_.push_back({TileMemAccess::Kind::TextureFetch,
                             static_cast<std::uint8_t>(unit),
                             static_cast<std::uint16_t>(bytes), addr});
    }

    void
    framebufferWrite(Addr addr, unsigned bytes)
    {
        accesses_.push_back({TileMemAccess::Kind::FramebufferWrite, 0,
                             static_cast<std::uint16_t>(bytes), addr});
    }

    const std::vector<TileMemAccess> &accesses() const { return accesses_; }

    void clear() { accesses_.clear(); }

  private:
    std::vector<TileMemAccess> accesses_;
};

} // namespace evrsim

#endif // EVRSIM_GPU_TILE_MEM_LOG_HPP
