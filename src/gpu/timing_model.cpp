/**
 * @file
 * Timing model implementation.
 */
#include "gpu/timing_model.hpp"

#include <algorithm>
#include <cmath>

#include "gpu/shader.hpp"

namespace evrsim {

TimingModel::TimingModel(const GpuConfig &config, const TimingParams &params)
    : config_(config), params_(params)
{
}

Cycles
TimingModel::geometryCycles(const FrameStats &f) const
{
    const TimingParams &p = params_;

    double vertex_stage =
        static_cast<double>(f.vertex_shader_instrs) /
        config_.vertex_processors;

    double assembly_stage =
        static_cast<double>(f.prims_submitted) /
        config_.assembly_tris_per_cycle;

    double pb_bytes = static_cast<double>(f.param_attr_bytes) +
                      f.param_list_bytes + f.layer_param_bytes;
    double binning_stage =
        f.bin_tile_pairs * p.bin_entry_cycles + pb_bytes / p.pb_bytes_per_cycle;

    // Rendering Elimination: per-primitive CRC plus per-(prim, tile)
    // combines, which stall the Polygon List Builder (paper section VII).
    double signature_stage =
        f.signature_updates * p.sig_combine_cycles +
        f.signature_shift_bytes / p.sig_shift_bytes_per_cycle +
        f.signature_bytes_hashed / p.crc_bytes_per_cycle;

    // EVR lookups also serialize with binning.
    double evr_stage =
        (f.lgt_accesses + f.fvp_table_accesses) * p.evr_lookup_cycles;

    double bottleneck = std::max(
        {vertex_stage, assembly_stage,
         binning_stage + signature_stage + evr_stage});

    double stalls = f.geom_mem_latency * p.geom_mem_overlap;
    return static_cast<Cycles>(std::llround(bottleneck + stalls));
}

Cycles
TimingModel::tileCycles(const FrameStats &t) const
{
    const TimingParams &p = params_;

    // Signature comparison happens whether or not the tile is skipped.
    double cycles = t.signature_compares * p.skip_check_cycles;

    if (t.tiles_rendered == 0) {
        // Skipped (or empty-schedule) tile: only the check above.
        return static_cast<Cycles>(std::llround(cycles));
    }

    double setup_stage =
        t.prim_tile_rasterized *
        std::ceil(p.attrs_per_prim / config_.raster_attrs_per_cycle);
    double raster_stage = setup_stage + static_cast<double>(t.raster_quads);

    double early_z_stage =
        static_cast<double>(t.early_z_tests) /
        (config_.early_z_quads_per_cycle * 4.0);

    double shading_stage =
        static_cast<double>(t.fragment_shader_instrs) /
        config_.fragment_processors;

    double blend_stage =
        static_cast<double>(t.blend_ops) / config_.blend_frags_per_cycle;

    double bottleneck = std::max(
        {raster_stage, early_z_stage, shading_stage, blend_stage});

    double flush =
        (static_cast<double>(t.tile_flush_bytes) /
         config_.mem.dram.bytes_per_cycle) *
        p.flush_overlap;

    double stalls = t.raster_mem_latency * p.raster_mem_overlap;

    cycles += bottleneck + flush + stalls + p.tile_fixed_cycles;
    return static_cast<Cycles>(std::llround(cycles));
}

} // namespace evrsim
