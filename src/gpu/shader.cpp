/**
 * @file
 * Shader core implementation.
 */
#include "gpu/shader.hpp"

#include <cmath>

#include "common/log.hpp"

namespace evrsim {

ShaderCore::ShaderCore(MemorySystem &mem)
    : mem_(mem), num_units_(mem.config().num_texture_caches)
{
    EVRSIM_ASSERT((num_units_ & (num_units_ - 1)) == 0);
}

void
ShaderCore::bindTextures(const std::vector<const Texture *> *textures)
{
    textures_ = textures;
}

unsigned
ShaderCore::fragmentInstrs(FragmentProgram program)
{
    switch (program) {
      case FragmentProgram::Flat:
        return 4;
      case FragmentProgram::Textured:
        return 8;
      case FragmentProgram::TexturedTint:
        return 12;
      case FragmentProgram::Procedural:
        return 32;
      case FragmentProgram::TexturedDiscard:
        return 10;
    }
    panic("invalid fragment program %d", static_cast<int>(program));
}

unsigned
ShaderCore::fragmentTexFetches(FragmentProgram program)
{
    switch (program) {
      case FragmentProgram::Flat:
      case FragmentProgram::Procedural:
        return 0;
      case FragmentProgram::Textured:
      case FragmentProgram::TexturedTint:
      case FragmentProgram::TexturedDiscard:
        return 1;
    }
    panic("invalid fragment program %d", static_cast<int>(program));
}

FragmentShadeResult
ShaderCore::shadeFragment(const RenderState &state, const Vec4 &color,
                          const Vec2 &uv, int px, int py, FrameStats &stats)
{
    stats.fragment_shader_instrs += fragmentInstrs(state.program);

    // Charge the simulated texture traffic; the color math itself is
    // shared with the stat-free functional path below.
    if (fragmentTexFetches(state.program) > 0) {
        EVRSIM_ASSERT(textures_ != nullptr);
        EVRSIM_ASSERT(state.texture >= 0 &&
                      state.texture <
                          static_cast<int>(textures_->size()));
        const Texture *tex =
            (*textures_)[static_cast<std::size_t>(state.texture)];
        AccessResult r = mem_.textureFetch(
            unitFor(px, py), tex->texelAddr(uv.x, uv.y), 4);
        stats.raster_mem_latency += r.latency;
        ++stats.texture_fetches;
    }

    static const std::vector<const Texture *> kNoTextures;
    FragmentShadeResult out = shadeFunctional(
        state, color, uv, textures_ ? *textures_ : kNoTextures);
    if (out.discarded)
        ++stats.fragments_discarded_shader;
    return out;
}

FragmentShadeResult
ShaderCore::shadeFunctional(const RenderState &state, const Vec4 &color,
                            const Vec2 &uv,
                            const std::vector<const Texture *> &textures)
{
    auto sample = [&](int slot) {
        EVRSIM_ASSERT(slot >= 0 &&
                      slot < static_cast<int>(textures.size()));
        return textures[static_cast<std::size_t>(slot)]->sample(uv.x,
                                                                uv.y);
    };

    FragmentShadeResult out;
    switch (state.program) {
      case FragmentProgram::Flat:
        out.color = color;
        break;

      case FragmentProgram::Textured:
        out.color = sample(state.texture);
        // Carry the vertex alpha so translucent textured sprites work.
        out.color.w *= color.w;
        break;

      case FragmentProgram::TexturedTint: {
        Vec4 t = sample(state.texture);
        out.color = {t.x * color.x, t.y * color.y, t.z * color.z,
                     t.w * color.w};
        break;
      }

      case FragmentProgram::Procedural: {
        // ALU-heavy deterministic pattern: two octaves of sine bands
        // modulating the interpolated color.
        float a = std::sin(uv.x * 37.0f) * std::sin(uv.y * 29.0f);
        float b = std::sin(uv.x * 11.0f + uv.y * 7.0f);
        float t = 0.5f + 0.25f * a + 0.25f * b;
        out.color = {color.x * t, color.y * t, color.z * t, color.w};
        break;
      }

      case FragmentProgram::TexturedDiscard: {
        Vec4 t = sample(state.texture);
        if (t.w * color.w < 0.5f) {
            out.discarded = true;
            return out;
        }
        out.color = {t.x * color.x, t.y * color.y, t.z * color.z, 1.0f};
        break;
      }
    }
    return out;
}

} // namespace evrsim
