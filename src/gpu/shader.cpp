/**
 * @file
 * Shader core implementation (cold parts; the per-fragment shading path
 * is inline in the header).
 */
#include "gpu/shader.hpp"

namespace evrsim {

ShaderCore::ShaderCore(MemorySystem &mem)
    : mem_(mem), num_units_(mem.config().num_texture_caches)
{
    EVRSIM_ASSERT((num_units_ & (num_units_ - 1)) == 0);
}

void
ShaderCore::bindTextures(const std::vector<const Texture *> *textures)
{
    textures_ = textures;
}

} // namespace evrsim
