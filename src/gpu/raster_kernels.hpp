/**
 * @file
 * SIMD-dispatched inner-loop kernels for the raster hot path.
 *
 * The rasterizer's per-pixel work — three edge functions, the top-left
 * coverage rule and the barycentric normalization — is data-parallel
 * across a row of pixel centers. This module exposes that work as a
 * row-granular kernel writing SoA outputs (coverage mask + w0/w1/w2
 * lanes), with three interchangeable implementations:
 *
 *  - a portable scalar kernel (always present, the reference);
 *  - an 8-wide AVX2 kernel (x86, selected when the CPU supports it);
 *  - a 4-wide NEON kernel (AArch64).
 *
 * Every implementation is bit-identical to `Rasterizer::coverage`: each
 * lane evaluates the *same expression tree in the same order* as the
 * scalar code (mul, mul, sub per edge — never an FMA; the AVX2
 * translation unit is compiled with -ffp-contract=off so the compiler
 * cannot contract the scalar tail either), so vector lanes produce the
 * exact floats the scalar path produces and the simulation's results do
 * not depend on which kernel ran. EVRSIM_SIMD=off pins the scalar
 * kernel; the default (auto) picks the best the CPU supports.
 */
#ifndef EVRSIM_GPU_RASTER_KERNELS_HPP
#define EVRSIM_GPU_RASTER_KERNELS_HPP

#include <cstddef>
#include <cstdint>

namespace evrsim {

/**
 * Per-triangle constants for the row kernels, derived from the
 * rasterizer's winding-normalized setup (plain scalars so SIMD
 * implementations broadcast them once per triangle).
 */
struct EdgeSetup {
    float p0x, p0y; ///< winding-normalized screen positions
    float p1x, p1y;
    float p2x, p2y;
    float inv_area;      ///< 1 / signedArea2(p0, p1, p2)
    bool tl0, tl1, tl2;  ///< top-left classification per edge
};

/**
 * Coverage + barycentrics for one pixel center (px, py); the shared
 * scalar body every kernel (and every vector kernel's tail) uses.
 * Mirrors Rasterizer::coverage expression-for-expression.
 */
inline bool
coverPixel(const EdgeSetup &s, float px, float py, float &w0, float &w1,
           float &w2)
{
    float e0 = (s.p2x - s.p1x) * (py - s.p1y) -
               (s.p2y - s.p1y) * (px - s.p1x);
    float e1 = (s.p0x - s.p2x) * (py - s.p2y) -
               (s.p0y - s.p2y) * (px - s.p2x);
    float e2 = (s.p1x - s.p0x) * (py - s.p0y) -
               (s.p1y - s.p0y) * (px - s.p0x);

    bool in0 = e0 > 0.0f || (e0 == 0.0f && s.tl0);
    bool in1 = e1 > 0.0f || (e1 == 0.0f && s.tl1);
    bool in2 = e2 > 0.0f || (e2 == 0.0f && s.tl2);
    if (!(in0 && in1 && in2))
        return false;

    w0 = e0 * s.inv_area;
    w1 = e1 * s.inv_area;
    w2 = e2 * s.inv_area;
    return true;
}

/**
 * Row coverage kernel: test pixel centers (x0+i+0.5, y+0.5) for
 * i in [0, count), writing mask[i] (1 = covered) and, for covered
 * lanes, the normalized barycentrics w0/w1/w2[i] (uncovered lanes
 * leave their w slots unspecified). Returns true iff any lane covered.
 */
using RowCoverageFn = bool (*)(const EdgeSetup &s, int x0, int count,
                               int y, std::uint8_t *mask, float *w0,
                               float *w1, float *w2);

/**
 * max(0.0f, max of @p count floats) — the depth-buffer reduction the
 * FVP conservativeness audit runs per tile. Matches the scalar
 * "keep v[i] when v[i] > best, starting from 0" loop exactly.
 */
using MaxFloatFn = float (*)(const float *v, std::size_t count);

/** Instruction-set tier a kernel table was built for. */
enum class SimdLevel { Scalar = 0, Avx2 = 1, Neon = 2 };

/** A coherent set of kernels, all of one SIMD tier. */
struct RasterKernels {
    RowCoverageFn row_coverage;
    MaxFloatFn max_float;
    SimdLevel level;
};

/**
 * The active kernel table. Resolved once on first use: the best tier
 * this CPU supports, unless EVRSIM_SIMD=off pinned the scalar tier or
 * forceSimdLevel() overrode the choice.
 */
const RasterKernels &rasterKernels();

/** Best tier the running CPU supports (Scalar when nothing better). */
SimdLevel bestSimdLevel();

/**
 * Test hook: pin the active table to @p level (falling back to the
 * best available tier when @p level is not supported on this CPU).
 * Returns the tier actually in effect. Call only while no simulation
 * is running.
 */
SimdLevel forceSimdLevel(SimdLevel level);

/**
 * Internal: per-ISA tables. Each returns null when the build or the
 * running CPU lacks the ISA, so dispatch needs no cross-TU macros.
 */
const RasterKernels *rasterKernelsAvx2();
const RasterKernels *rasterKernelsNeon();

} // namespace evrsim

#endif // EVRSIM_GPU_RASTER_KERNELS_HPP
