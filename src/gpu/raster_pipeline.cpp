/**
 * @file
 * Raster Pipeline implementation.
 */
#include "gpu/raster_pipeline.hpp"

#include <algorithm>

#include "common/crash_handler.hpp"
#include "common/log.hpp"
#include "common/trace.hpp"
#include "gpu/invariant_auditor.hpp"
#include "gpu/rasterizer.hpp"
#include "gpu/reference_raster.hpp"

namespace evrsim {

namespace {

/**
 * Per-thread tile-rendering scratch: the on-chip tile buffers plus the
 * rasterizer's SoA row buffers, reused across every tile a thread
 * renders so the steady-state hot path performs no heap allocation.
 * Thread-local (rather than per-pipeline) because tile jobs from
 * several concurrent simulations can share one JobPool worker; every
 * buffer is fully re-initialized per tile, so reuse cannot leak state
 * between tiles, frames or simulations.
 */
struct TileScratch {
    std::vector<float> depth;
    std::vector<Rgba8> color;
    std::vector<int> owner;
    std::vector<char> contributed;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> blend_journal;
    std::vector<DisplayListEntry> order;
    RasterScratch raster;
};

thread_local TileScratch t_scratch;

} // namespace

RasterPipeline::RasterPipeline(const GpuConfig &config, MemorySystem &mem,
                               ShaderCore &shader, const TimingModel &timing)
    : config_(config), mem_(mem), shader_(shader), timing_(timing)
{
}

RectI
RasterPipeline::tileRect(int tile) const
{
    int ts = config_.tile_size;
    int tx = tile % config_.tilesX();
    int ty = tile / config_.tilesX();
    RectI rect = {tx * ts, ty * ts, (tx + 1) * ts, (ty + 1) * ts};
    return rect.intersect({0, 0, config_.screen_width,
                           config_.screen_height});
}

void
RasterPipeline::depthPrepass(const RectI &rect, const Scene &scene,
                             const ParameterBuffer &pb,
                             const std::vector<DisplayListEntry> &order,
                             float clear_depth, std::vector<float> &depth,
                             FrameStats *charge, TileMemLog *log,
                             RasterScratch &scratch) const
{
    depth.assign(static_cast<std::size_t>(rect.area()), clear_depth);
    const int w = rect.width();

    // With charge == null this is Figure 8's idealization: it runs
    // functionally, costing no cycles, energy or memory traffic. With a
    // stats block it is the real Z-Prepass: rasterization, depth tests
    // and discard-shader evaluations are all paid a second time.
    FrameStats uncharged;
    FrameStats &ts = charge ? *charge : uncharged;

    for (const DisplayListEntry &e : order) {
        const ShadedPrimitive &prim = pb.prim(e.prim);
        if (!prim.state.depth_write)
            continue;
        if (charge)
            ++ts.prim_tile_rasterized;

        auto sink = [&](const Fragment &frag) {
                std::size_t li =
                    static_cast<std::size_t>(frag.y - rect.y0) * w +
                    (frag.x - rect.x0);
                if (prim.state.shaderDiscards()) {
                    // Discarding shaders must run even in a depth-only
                    // pass (the discard decides Z coverage).
                    float alpha = frag.color.w;
                    if (prim.state.texture >= 0) {
                        const Texture *tex =
                            scene.textures[prim.state.texture];
                        if (charge) {
                            ++ts.fragments_shaded;
                            FragmentShadeResult res = shader_.shadeFragment(
                                prim.state, frag.color, frag.uv, frag.x,
                                frag.y, ts, log);
                            alpha = res.discarded ? 0.0f : 1.0f;
                        } else {
                            alpha *= tex->sample(frag.uv.x, frag.uv.y).w;
                        }
                    }
                    if (alpha < 0.5f)
                        return;
                }
                if (prim.state.depth_test) {
                    if (charge) {
                        ++ts.early_z_tests;
                        ++ts.depth_buffer_accesses;
                    }
                    if (!(frag.depth < depth[li])) {
                        if (charge)
                            ++ts.early_z_kills;
                        return;
                    }
                }
                if (charge)
                    ++ts.depth_buffer_accesses;
                depth[li] = frag.depth;
        };
        if (reference_)
            Rasterizer::rasterize(prim, rect, ts, sink);
        else
            Rasterizer::rasterizeFast(prim, rect, ts, scratch, sink);
    }
}

void
RasterPipeline::renderTile(int tile, const Scene &scene,
                           const ParameterBuffer &pb, Framebuffer &fb,
                           const Framebuffer *prev_fb,
                           const RasterHooks &hooks, FrameStats &ts,
                           TileMemLog *log)
{
    ++ts.tiles_total;

    if (hooks.signature && hooks.signature->shouldSkipTile(tile, ts)) {
        // Rendering Elimination hit: the framebuffer already holds this
        // tile's colors from the previous frame.
        ++ts.tiles_skipped_re;
        if (hooks.tracker)
            hooks.tracker->tileSkipped(tile);
        if (prev_fb) {
            // A skipped tile is unchanged by construction.
            ++ts.tiles_equal_oracle;
        }
        // Audit the skip decision itself: the pixels left in place must
        // equal what rendering this frame's display list would produce.
        if (hooks.auditor && hooks.auditor->identityEnabled() &&
            hooks.auditor->shouldAuditTile(tile)) {
            ++ts.validate_tile_checks;
            RectI rect = tileRect(tile);
            std::vector<Rgba8> ref = renderTileReference(
                scene, pb, rect, pb.renderOrder(tile));
            bool same = true;
            for (int y = rect.y0; y < rect.y1 && same; ++y)
                for (int x = rect.x0; x < rect.x1; ++x)
                    if (fb.pixel(x, y) !=
                        ref[static_cast<std::size_t>(y - rect.y0) *
                                rect.width() +
                            (x - rect.x0)]) {
                        same = false;
                        break;
                    }
            if (!same) {
                hooks.auditor->reportTileMismatch(tile, ts);
                for (int y = rect.y0; y < rect.y1; ++y)
                    for (int x = rect.x0; x < rect.x1; ++x)
                        fb.setPixel(
                            x, y,
                            ref[static_cast<std::size_t>(y - rect.y0) *
                                    rect.width() +
                                (x - rect.x0)]);
                hooks.auditor->degradeTile(tile, ts);
            }
        }
        return;
    }
    ++ts.tiles_rendered;

    RectI rect = tileRect(tile);
    const int w = rect.width();
    const auto npix = static_cast<std::size_t>(rect.area());

    // Fetch the Display List through the Tile Cache.
    unsigned entry_bytes = DisplayListEntry::kBaseBytes;
    if (hooks.tracker)
        entry_bytes += DisplayListEntry::kLayerBytes;
    for (Addr addr : pb.entryAddrs(tile)) {
        if (log) {
            log->paramRead(addr, entry_bytes);
        } else {
            AccessResult r = mem_.parameterRead(addr, entry_bytes);
            ts.raster_mem_latency += r.latency;
        }
    }

    // On-chip tile buffers, from the thread's reusable scratch (every
    // one fully re-initialized here).
    const std::vector<DisplayListEntry> &order =
        pb.renderOrderInto(tile, t_scratch.order);

    std::vector<float> &depth = t_scratch.depth;
    if (hooks.oracle_z || hooks.z_prepass) {
        depthPrepass(rect, scene, pb, order, scene.clear_depth, depth,
                     hooks.z_prepass ? &ts : nullptr, log,
                     t_scratch.raster);
    } else {
        depth.assign(npix, scene.clear_depth);
    }
    std::vector<Rgba8> &color = t_scratch.color;
    color.assign(npix, scene.clear_color);
    /** Display-list position of the opaque fragment owning each pixel. */
    std::vector<int> &owner = t_scratch.owner;
    owner.assign(npix, -1);
    /** Ground-truth contribution per display-list position. */
    std::vector<char> &contributed = t_scratch.contributed;
    contributed.assign(order.size(), 0);
    /** Journal of translucent blends: (pixel, position). A translucent
     *  blend only reaches the final image if no opaque write follows at
     *  that pixel, resolved against the final owner at end of tile. */
    std::vector<std::pair<std::uint32_t, std::uint32_t>> &blend_journal =
        t_scratch.blend_journal;
    blend_journal.clear();

    if (hooks.tracker)
        hooks.tracker->tileStart(tile, w, rect.height(), ts);

    for (std::size_t pos = 0; pos < order.size(); ++pos) {
        const DisplayListEntry &e = order[pos];
        const ShadedPrimitive &prim = pb.prim(e.prim);

        if (log) {
            log->paramRead(prim.pb_addr, ShadedPrimitive::kAttrBytes);
        } else {
            AccessResult r = mem_.parameterRead(
                prim.pb_addr, ShadedPrimitive::kAttrBytes);
            ts.raster_mem_latency += r.latency;
        }
        ++ts.prim_tile_rasterized;

        const RenderState &state = prim.state;
        const bool is_woz = state.depth_write;
        const bool early_capable = state.depth_test &&
                                   !state.shaderDiscards();
        // Preloaded final depths (oracle or Z-Prepass): Z-writing
        // primitives must pass on equality or the surviving fragment
        // kills itself.
        const bool leq = (hooks.oracle_z || hooks.z_prepass) &&
                         state.depth_write;

        auto sink = [&](const Fragment &frag) {
            std::size_t li = static_cast<std::size_t>(frag.y - rect.y0) * w +
                             (frag.x - rect.x0);

            if (early_capable) {
                ++ts.early_z_tests;
                ++ts.depth_buffer_accesses;
                bool pass = leq ? frag.depth <= depth[li]
                                : frag.depth < depth[li];
                if (!pass) {
                    ++ts.early_z_kills;
                    return;
                }
                if (state.depth_write) {
                    depth[li] = frag.depth;
                    ++ts.depth_buffer_accesses;
                }
            }

            ++ts.fragments_shaded;
            FragmentShadeResult res = shader_.shadeFragment(
                state, frag.color, frag.uv, frag.x, frag.y, ts, log);
            if (res.discarded)
                return;

            if (!early_capable && state.depth_test) {
                // Late Depth Test (shader may have discarded fragments,
                // so the Z Buffer could not be updated early).
                ++ts.late_z_tests;
                ++ts.depth_buffer_accesses;
                bool pass = leq ? frag.depth <= depth[li]
                                : frag.depth < depth[li];
                if (!pass) {
                    ++ts.late_z_kills;
                    return;
                }
                if (state.depth_write) {
                    depth[li] = frag.depth;
                    ++ts.depth_buffer_accesses;
                }
            }

            // Blending.
            ++ts.blend_ops;
            Vec4 out;
            bool opaque;
            if (state.blend == BlendMode::Opaque) {
                out = res.color;
                out.w = 1.0f;
                opaque = true;
                ++ts.color_buffer_accesses; // write
            } else {
                Vec4 dst = toVec4(color[li]);
                float a = clampf(res.color.w, 0.0f, 1.0f);
                out = res.color * a + dst * (1.0f - a);
                out.w = a + dst.w * (1.0f - a);
                opaque = res.color.w >= 1.0f;
                ts.color_buffer_accesses += 2; // read + write
            }
            color[li] = toRgba8(out);

            if (opaque) {
                owner[li] = static_cast<int>(pos);
                if (hooks.tracker) {
                    hooks.tracker->onOpaqueWrite(tile, frag.x - rect.x0,
                                                 frag.y - rect.y0, e.layer,
                                                 is_woz, ts);
                }
            } else {
                blend_journal.emplace_back(static_cast<std::uint32_t>(li),
                                           static_cast<std::uint32_t>(pos));
            }
        };
        if (reference_)
            Rasterizer::rasterize(prim, rect, ts, sink);
        else
            Rasterizer::rasterizeFast(prim, rect, ts, t_scratch.raster,
                                      sink);
    }

    // Ground truth: a primitive contributed iff it owns a pixel's base
    // color or blended into the pixel after its final opaque write.
    for (std::size_t li = 0; li < npix; ++li) {
        if (owner[li] >= 0)
            contributed[static_cast<std::size_t>(owner[li])] = 1;
    }
    for (const auto &[li, pos] : blend_journal) {
        if (static_cast<int>(pos) > owner[li])
            contributed[pos] = 1;
    }

    if (hooks.tracker) {
        hooks.tracker->tileEnd(tile, depth.data(),
                               static_cast<int>(npix), ts);
        if (hooks.auditor)
            hooks.auditor->checkFvpConservative(
                tile, depth.data(), static_cast<int>(npix), ts);
    }

    // Report visible mispredictions: an excluded primitive that reached
    // the final pixels poisons the tile's signature (see DESIGN.md 4.1).
    if (hooks.signature) {
        for (std::size_t pos = 0; pos < order.size(); ++pos) {
            if (order[pos].predicted_occluded && contributed[pos]) {
                hooks.signature->tileMispredicted(tile);
                if (hooks.auditor)
                    hooks.auditor->checkMispredictionPoisoned(tile, ts);
                break;
            }
        }
    }

    // Sampled image-identity audit: the tile's pixels must match a
    // submission-order reference render. On mismatch the reference
    // pixels are shipped (and the tile's EVR/RE state degraded) so a
    // permissive run still produces the correct image.
    if (hooks.auditor && hooks.auditor->identityEnabled() &&
        hooks.auditor->shouldAuditTile(tile)) {
        ++ts.validate_tile_checks;
        std::vector<Rgba8> ref =
            renderTileReference(scene, pb, rect, order);
        if (ref != color) {
            hooks.auditor->reportTileMismatch(tile, ts);
            color = std::move(ref);
            hooks.auditor->degradeTile(tile, ts);
        }
    }

    // Table I casuistry and prediction quality, per (primitive, tile).
    for (std::size_t pos = 0; pos < order.size(); ++pos) {
        bool pred_occl = order[pos].predicted_occluded;
        bool act_occl = !contributed[pos];
        int scenario;
        if (!pred_occl && !act_occl)
            scenario = static_cast<int>(Casuistry::VisibleVisible);
        else if (!pred_occl && act_occl)
            scenario = static_cast<int>(Casuistry::VisibleOccluded);
        else if (pred_occl && act_occl)
            scenario = static_cast<int>(Casuistry::OccludedOccluded);
        else
            scenario = static_cast<int>(Casuistry::OccludedVisible);
        ++ts.casuistry[scenario];
        if (pred_occl) {
            if (act_occl)
                ++ts.pred_occluded_correct;
            else
                ++ts.pred_occluded_wrong;
        }
    }

    // Flush the Color Buffer to the framebuffer in main memory, one
    // cache-line-sized row segment at a time.
    for (int y = rect.y0; y < rect.y1; ++y) {
        Addr row_addr = AddressSpace::framebufferAddr(rect.x0, y,
                                                      config_.screen_width);
        if (log)
            log->framebufferWrite(row_addr, static_cast<unsigned>(w) * 4);
        else
            mem_.framebufferWrite(row_addr, static_cast<unsigned>(w) * 4);
    }
    ts.tile_flush_bytes += npix * 4;

    for (int y = rect.y0; y < rect.y1; ++y)
        fb.writeRow(rect.x0, y,
                    &color[static_cast<std::size_t>(y - rect.y0) * w], w);

    if (prev_fb && fb.rectEquals(*prev_fb, rect))
        ++ts.tiles_equal_oracle;
}

void
RasterPipeline::replayMemLog(const TileMemLog &log, FrameStats &ts)
{
    for (const TileMemAccess &a : log.accesses()) {
        switch (a.kind) {
          case TileMemAccess::Kind::ParamRead:
            ts.raster_mem_latency +=
                mem_.parameterRead(a.addr, a.bytes).latency;
            break;
          case TileMemAccess::Kind::TextureFetch:
            ts.raster_mem_latency +=
                mem_.textureFetch(a.unit, a.addr, a.bytes).latency;
            break;
          case TileMemAccess::Kind::FramebufferWrite:
            mem_.framebufferWrite(a.addr, a.bytes);
            break;
        }
    }
}

void
RasterPipeline::run(const Scene &scene, const ParameterBuffer &pb,
                    Framebuffer &fb, const Framebuffer *prev_fb,
                    const RasterHooks &hooks, FrameStats &stats)
{
    shader_.bindTextures(&scene.textures);

    int tiles = config_.tileCount();
    EVRSIM_ASSERT(pb.tileCount() == tiles);

    if (tile_pool_ == nullptr || tile_jobs_ <= 1) {
        // Serial reference path: tiles issue their memory accesses
        // directly, interleaved with rendering.
        for (int tile = 0; tile < tiles; ++tile) {
            crashContextSetTile(tile);
            // Per-tile span: the hottest category, so it honours the
            // EVRSIM_TRACE tile/N sampling filter (a disabled or
            // sampled-out span is one relaxed load + one branch).
            TraceSpan tile_span(TraceCat::Tile, "tile");
            tile_span.setValue(tile);
            FrameStats ts;
            renderTile(tile, scene, pb, fb, prev_fb, hooks, ts, nullptr);
            ts.raster_cycles = timing_.tileCycles(ts);
            stats.accumulate(ts);
        }
        crashContextSetTile(-1);
        return;
    }

    // Tile-parallel path. Phase 1: render tiles concurrently — the
    // compute is pure per tile (disjoint framebuffer rects, per-tile
    // hook state), with each tile recording the ordered memory accesses
    // it would have issued. Contiguous chunks keep some locality; a few
    // chunks per worker lets the pool load-balance uneven tiles.
    std::vector<FrameStats> tile_stats(static_cast<std::size_t>(tiles));
    std::vector<TileMemLog> logs(static_cast<std::size_t>(tiles));

    int chunks = std::min(tiles, tile_jobs_ * 4);
    int chunk_size = (tiles + chunks - 1) / chunks;
    std::vector<std::function<void()>> jobs;
    jobs.reserve(static_cast<std::size_t>(chunks));
    for (int begin = 0; begin < tiles; begin += chunk_size) {
        int end = std::min(begin + chunk_size, tiles);
        jobs.emplace_back([this, begin, end, &scene, &pb, &fb, prev_fb,
                           &hooks, &tile_stats, &logs] {
            for (int tile = begin; tile < end; ++tile) {
                crashContextSetTile(tile);
                TraceSpan tile_span(TraceCat::Tile, "tile");
                tile_span.setValue(tile);
                renderTile(tile, scene, pb, fb, prev_fb, hooks,
                           tile_stats[static_cast<std::size_t>(tile)],
                           &logs[static_cast<std::size_t>(tile)]);
            }
            crashContextSetTile(-1);
        });
    }
    tile_pool_->runBatch(std::move(jobs));
    crashContextSetTile(-1);

    // Phase 2: replay every tile's access log serially in tile order.
    // The MemorySystem sees exactly the serial renderer's global access
    // stream, so cache contents, hit rates and latencies all match;
    // per-tile stats then merge in tile order (raster_cycles only after
    // the replayed latencies landed).
    for (int tile = 0; tile < tiles; ++tile) {
        FrameStats &ts = tile_stats[static_cast<std::size_t>(tile)];
        replayMemLog(logs[static_cast<std::size_t>(tile)], ts);
        ts.raster_cycles = timing_.tileCycles(ts);
        stats.accumulate(ts);
    }
}

} // namespace evrsim
