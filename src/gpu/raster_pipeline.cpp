/**
 * @file
 * Raster Pipeline implementation.
 */
#include "gpu/raster_pipeline.hpp"

#include "common/crash_handler.hpp"
#include "common/log.hpp"
#include "common/trace.hpp"
#include "gpu/invariant_auditor.hpp"
#include "gpu/rasterizer.hpp"
#include "gpu/reference_raster.hpp"

namespace evrsim {

RasterPipeline::RasterPipeline(const GpuConfig &config, MemorySystem &mem,
                               ShaderCore &shader, const TimingModel &timing)
    : config_(config), mem_(mem), shader_(shader), timing_(timing)
{
}

RectI
RasterPipeline::tileRect(int tile) const
{
    int ts = config_.tile_size;
    int tx = tile % config_.tilesX();
    int ty = tile / config_.tilesX();
    RectI rect = {tx * ts, ty * ts, (tx + 1) * ts, (ty + 1) * ts};
    return rect.intersect({0, 0, config_.screen_width,
                           config_.screen_height});
}

void
RasterPipeline::depthPrepass(const RectI &rect, const Scene &scene,
                             const ParameterBuffer &pb,
                             const std::vector<DisplayListEntry> &order,
                             float clear_depth, std::vector<float> &depth,
                             FrameStats *charge) const
{
    depth.assign(static_cast<std::size_t>(rect.area()), clear_depth);
    const int w = rect.width();

    // With charge == null this is Figure 8's idealization: it runs
    // functionally, costing no cycles, energy or memory traffic. With a
    // stats block it is the real Z-Prepass: rasterization, depth tests
    // and discard-shader evaluations are all paid a second time.
    FrameStats scratch;
    FrameStats &ts = charge ? *charge : scratch;

    for (const DisplayListEntry &e : order) {
        const ShadedPrimitive &prim = pb.prim(e.prim);
        if (!prim.state.depth_write)
            continue;
        if (charge)
            ++ts.prim_tile_rasterized;

        Rasterizer::rasterize(
            prim, rect, ts, [&](const Fragment &frag) {
                std::size_t li =
                    static_cast<std::size_t>(frag.y - rect.y0) * w +
                    (frag.x - rect.x0);
                if (prim.state.shaderDiscards()) {
                    // Discarding shaders must run even in a depth-only
                    // pass (the discard decides Z coverage).
                    float alpha = frag.color.w;
                    if (prim.state.texture >= 0) {
                        const Texture *tex =
                            scene.textures[prim.state.texture];
                        if (charge) {
                            ++ts.fragments_shaded;
                            FragmentShadeResult res = shader_.shadeFragment(
                                prim.state, frag.color, frag.uv, frag.x,
                                frag.y, ts);
                            alpha = res.discarded ? 0.0f : 1.0f;
                        } else {
                            alpha *= tex->sample(frag.uv.x, frag.uv.y).w;
                        }
                    }
                    if (alpha < 0.5f)
                        return;
                }
                if (prim.state.depth_test) {
                    if (charge) {
                        ++ts.early_z_tests;
                        ++ts.depth_buffer_accesses;
                    }
                    if (!(frag.depth < depth[li])) {
                        if (charge)
                            ++ts.early_z_kills;
                        return;
                    }
                }
                if (charge)
                    ++ts.depth_buffer_accesses;
                depth[li] = frag.depth;
            });
    }
}

void
RasterPipeline::renderTile(int tile, const Scene &scene,
                           const ParameterBuffer &pb, Framebuffer &fb,
                           const Framebuffer *prev_fb,
                           const RasterHooks &hooks, FrameStats &ts)
{
    ++ts.tiles_total;

    if (hooks.signature && hooks.signature->shouldSkipTile(tile, ts)) {
        // Rendering Elimination hit: the framebuffer already holds this
        // tile's colors from the previous frame.
        ++ts.tiles_skipped_re;
        if (hooks.tracker)
            hooks.tracker->tileSkipped(tile);
        if (prev_fb) {
            // A skipped tile is unchanged by construction.
            ++ts.tiles_equal_oracle;
        }
        // Audit the skip decision itself: the pixels left in place must
        // equal what rendering this frame's display list would produce.
        if (hooks.auditor && hooks.auditor->identityEnabled() &&
            hooks.auditor->shouldAuditTile(tile)) {
            ++ts.validate_tile_checks;
            RectI rect = tileRect(tile);
            std::vector<Rgba8> ref = renderTileReference(
                scene, pb, rect, pb.renderOrder(tile));
            bool same = true;
            for (int y = rect.y0; y < rect.y1 && same; ++y)
                for (int x = rect.x0; x < rect.x1; ++x)
                    if (fb.pixel(x, y) !=
                        ref[static_cast<std::size_t>(y - rect.y0) *
                                rect.width() +
                            (x - rect.x0)]) {
                        same = false;
                        break;
                    }
            if (!same) {
                hooks.auditor->reportTileMismatch(tile, ts);
                for (int y = rect.y0; y < rect.y1; ++y)
                    for (int x = rect.x0; x < rect.x1; ++x)
                        fb.setPixel(
                            x, y,
                            ref[static_cast<std::size_t>(y - rect.y0) *
                                    rect.width() +
                                (x - rect.x0)]);
                hooks.auditor->degradeTile(tile, ts);
            }
        }
        return;
    }
    ++ts.tiles_rendered;

    RectI rect = tileRect(tile);
    const int w = rect.width();
    const auto npix = static_cast<std::size_t>(rect.area());

    // Fetch the Display List through the Tile Cache.
    unsigned entry_bytes = DisplayListEntry::kBaseBytes;
    if (hooks.tracker)
        entry_bytes += DisplayListEntry::kLayerBytes;
    for (Addr addr : pb.entryAddrs(tile)) {
        AccessResult r = mem_.parameterRead(addr, entry_bytes);
        ts.raster_mem_latency += r.latency;
    }

    std::vector<DisplayListEntry> order = pb.renderOrder(tile);

    // On-chip tile buffers.
    std::vector<float> depth;
    if (hooks.oracle_z || hooks.z_prepass) {
        depthPrepass(rect, scene, pb, order, scene.clear_depth, depth,
                     hooks.z_prepass ? &ts : nullptr);
    } else {
        depth.assign(npix, scene.clear_depth);
    }
    std::vector<Rgba8> color(npix, scene.clear_color);
    /** Display-list position of the opaque fragment owning each pixel. */
    std::vector<int> owner(npix, -1);
    /** Ground-truth contribution per display-list position. */
    std::vector<char> contributed(order.size(), 0);
    /** Journal of translucent blends: (pixel, position). A translucent
     *  blend only reaches the final image if no opaque write follows at
     *  that pixel, resolved against the final owner at end of tile. */
    std::vector<std::pair<std::uint32_t, std::uint32_t>> blend_journal;

    if (hooks.tracker)
        hooks.tracker->tileStart(tile, w, rect.height(), ts);

    for (std::size_t pos = 0; pos < order.size(); ++pos) {
        const DisplayListEntry &e = order[pos];
        const ShadedPrimitive &prim = pb.prim(e.prim);

        AccessResult r = mem_.parameterRead(prim.pb_addr,
                                            ShadedPrimitive::kAttrBytes);
        ts.raster_mem_latency += r.latency;
        ++ts.prim_tile_rasterized;

        const RenderState &state = prim.state;
        const bool is_woz = state.depth_write;
        const bool early_capable = state.depth_test &&
                                   !state.shaderDiscards();
        // Preloaded final depths (oracle or Z-Prepass): Z-writing
        // primitives must pass on equality or the surviving fragment
        // kills itself.
        const bool leq = (hooks.oracle_z || hooks.z_prepass) &&
                         state.depth_write;

        Rasterizer::rasterize(prim, rect, ts, [&](const Fragment &frag) {
            std::size_t li = static_cast<std::size_t>(frag.y - rect.y0) * w +
                             (frag.x - rect.x0);

            if (early_capable) {
                ++ts.early_z_tests;
                ++ts.depth_buffer_accesses;
                bool pass = leq ? frag.depth <= depth[li]
                                : frag.depth < depth[li];
                if (!pass) {
                    ++ts.early_z_kills;
                    return;
                }
                if (state.depth_write) {
                    depth[li] = frag.depth;
                    ++ts.depth_buffer_accesses;
                }
            }

            ++ts.fragments_shaded;
            FragmentShadeResult res = shader_.shadeFragment(
                state, frag.color, frag.uv, frag.x, frag.y, ts);
            if (res.discarded)
                return;

            if (!early_capable && state.depth_test) {
                // Late Depth Test (shader may have discarded fragments,
                // so the Z Buffer could not be updated early).
                ++ts.late_z_tests;
                ++ts.depth_buffer_accesses;
                bool pass = leq ? frag.depth <= depth[li]
                                : frag.depth < depth[li];
                if (!pass) {
                    ++ts.late_z_kills;
                    return;
                }
                if (state.depth_write) {
                    depth[li] = frag.depth;
                    ++ts.depth_buffer_accesses;
                }
            }

            // Blending.
            ++ts.blend_ops;
            Vec4 out;
            bool opaque;
            if (state.blend == BlendMode::Opaque) {
                out = res.color;
                out.w = 1.0f;
                opaque = true;
                ++ts.color_buffer_accesses; // write
            } else {
                Vec4 dst = toVec4(color[li]);
                float a = clampf(res.color.w, 0.0f, 1.0f);
                out = res.color * a + dst * (1.0f - a);
                out.w = a + dst.w * (1.0f - a);
                opaque = res.color.w >= 1.0f;
                ts.color_buffer_accesses += 2; // read + write
            }
            color[li] = toRgba8(out);

            if (opaque) {
                owner[li] = static_cast<int>(pos);
                if (hooks.tracker) {
                    hooks.tracker->onOpaqueWrite(frag.x - rect.x0,
                                                 frag.y - rect.y0, e.layer,
                                                 is_woz, ts);
                }
            } else {
                blend_journal.emplace_back(static_cast<std::uint32_t>(li),
                                           static_cast<std::uint32_t>(pos));
            }
        });
    }

    // Ground truth: a primitive contributed iff it owns a pixel's base
    // color or blended into the pixel after its final opaque write.
    for (std::size_t li = 0; li < npix; ++li) {
        if (owner[li] >= 0)
            contributed[static_cast<std::size_t>(owner[li])] = 1;
    }
    for (const auto &[li, pos] : blend_journal) {
        if (static_cast<int>(pos) > owner[li])
            contributed[pos] = 1;
    }

    if (hooks.tracker) {
        hooks.tracker->tileEnd(tile, depth.data(),
                               static_cast<int>(npix), ts);
        if (hooks.auditor)
            hooks.auditor->checkFvpConservative(
                tile, depth.data(), static_cast<int>(npix), ts);
    }

    // Report visible mispredictions: an excluded primitive that reached
    // the final pixels poisons the tile's signature (see DESIGN.md 4.1).
    if (hooks.signature) {
        for (std::size_t pos = 0; pos < order.size(); ++pos) {
            if (order[pos].predicted_occluded && contributed[pos]) {
                hooks.signature->tileMispredicted(tile);
                if (hooks.auditor)
                    hooks.auditor->checkMispredictionPoisoned(tile, ts);
                break;
            }
        }
    }

    // Sampled image-identity audit: the tile's pixels must match a
    // submission-order reference render. On mismatch the reference
    // pixels are shipped (and the tile's EVR/RE state degraded) so a
    // permissive run still produces the correct image.
    if (hooks.auditor && hooks.auditor->identityEnabled() &&
        hooks.auditor->shouldAuditTile(tile)) {
        ++ts.validate_tile_checks;
        std::vector<Rgba8> ref =
            renderTileReference(scene, pb, rect, order);
        if (ref != color) {
            hooks.auditor->reportTileMismatch(tile, ts);
            color = std::move(ref);
            hooks.auditor->degradeTile(tile, ts);
        }
    }

    // Table I casuistry and prediction quality, per (primitive, tile).
    for (std::size_t pos = 0; pos < order.size(); ++pos) {
        bool pred_occl = order[pos].predicted_occluded;
        bool act_occl = !contributed[pos];
        int scenario;
        if (!pred_occl && !act_occl)
            scenario = static_cast<int>(Casuistry::VisibleVisible);
        else if (!pred_occl && act_occl)
            scenario = static_cast<int>(Casuistry::VisibleOccluded);
        else if (pred_occl && act_occl)
            scenario = static_cast<int>(Casuistry::OccludedOccluded);
        else
            scenario = static_cast<int>(Casuistry::OccludedVisible);
        ++ts.casuistry[scenario];
        if (pred_occl) {
            if (act_occl)
                ++ts.pred_occluded_correct;
            else
                ++ts.pred_occluded_wrong;
        }
    }

    // Flush the Color Buffer to the framebuffer in main memory, one
    // cache-line-sized row segment at a time.
    for (int y = rect.y0; y < rect.y1; ++y) {
        mem_.framebufferWrite(
            AddressSpace::framebufferAddr(rect.x0, y, config_.screen_width),
            static_cast<unsigned>(w) * 4);
    }
    ts.tile_flush_bytes += npix * 4;

    for (int y = rect.y0; y < rect.y1; ++y)
        for (int x = rect.x0; x < rect.x1; ++x)
            fb.setPixel(x, y, color[static_cast<std::size_t>(y - rect.y0) *
                                        w +
                                    (x - rect.x0)]);

    if (prev_fb && fb.rectEquals(*prev_fb, rect))
        ++ts.tiles_equal_oracle;
}

void
RasterPipeline::run(const Scene &scene, const ParameterBuffer &pb,
                    Framebuffer &fb, const Framebuffer *prev_fb,
                    const RasterHooks &hooks, FrameStats &stats)
{
    shader_.bindTextures(&scene.textures);

    int tiles = config_.tileCount();
    EVRSIM_ASSERT(pb.tileCount() == tiles);

    for (int tile = 0; tile < tiles; ++tile) {
        crashContextSetTile(tile);
        // Per-tile span: the hottest category, so it honours the
        // EVRSIM_TRACE tile/N sampling filter (a disabled or sampled-out
        // span is one relaxed load + one branch).
        TraceSpan tile_span(TraceCat::Tile, "tile");
        tile_span.setValue(tile);
        FrameStats ts;
        renderTile(tile, scene, pb, fb, prev_fb, hooks, ts);
        ts.raster_cycles = timing_.tileCycles(ts);
        stats.accumulate(ts);
    }
    crashContextSetTile(-1);
}

} // namespace evrsim
