/**
 * @file
 * Shader cores: the programmable stages of the pipeline.
 *
 * The simulator ships a fixed set of fragment programs (Table III's
 * workloads are built from flat-shaded, textured and procedural
 * materials). Each program has a functional evaluation (producing the
 * color) and a cost (ALU instructions, texture fetches) used by the
 * timing and energy models. Texture fetches go through the fragment
 * processor's texture cache, so shading cost depends on real locality.
 */
#ifndef EVRSIM_GPU_SHADER_HPP
#define EVRSIM_GPU_SHADER_HPP

#include <cmath>
#include <vector>

#include "common/log.hpp"
#include "gpu/gpu_stats.hpp"
#include "gpu/tile_mem_log.hpp"
#include "mem/memory_system.hpp"
#include "scene/draw_command.hpp"
#include "scene/texture.hpp"

namespace evrsim {

/** Result of shading one fragment. */
struct FragmentShadeResult {
    Vec4 color;
    /** Fragment killed by a shader discard (TexturedDiscard only). */
    bool discarded = false;
};

/**
 * Executes vertex and fragment programs and charges their cost.
 */
class ShaderCore
{
  public:
    explicit ShaderCore(MemorySystem &mem);

    /** Bind this frame's texture table (owned by the scene/workload). */
    void bindTextures(const std::vector<const Texture *> *textures);

    /** ALU instructions of the standard transform vertex shader. */
    static constexpr unsigned kVertexShaderInstrs = 20;

    // The per-fragment functions below are inline: they run once per
    // generated fragment (tens of millions of times per sweep) and the
    // build has no LTO to inline them across translation units.

    /** ALU instruction cost of a fragment program. */
    static unsigned
    fragmentInstrs(FragmentProgram program)
    {
        switch (program) {
          case FragmentProgram::Flat:
            return 4;
          case FragmentProgram::Textured:
            return 8;
          case FragmentProgram::TexturedTint:
            return 12;
          case FragmentProgram::Procedural:
            return 32;
          case FragmentProgram::TexturedDiscard:
            return 10;
        }
        panic("invalid fragment program %d", static_cast<int>(program));
    }

    /** Texture fetches a fragment program performs. */
    static unsigned
    fragmentTexFetches(FragmentProgram program)
    {
        switch (program) {
          case FragmentProgram::Flat:
          case FragmentProgram::Procedural:
            return 0;
          case FragmentProgram::Textured:
          case FragmentProgram::TexturedTint:
          case FragmentProgram::TexturedDiscard:
            return 1;
        }
        panic("invalid fragment program %d", static_cast<int>(program));
    }

    /**
     * Shade one fragment.
     *
     * @param state  render state of the owning primitive
     * @param color  perspective-interpolated vertex color
     * @param uv     perspective-interpolated texture coordinates
     * @param px,py  screen pixel (selects the fragment processor / texture
     *               cache and thus the locality the cache observes)
     * @param stats  instruction/texture counters are charged here
     * @param log    when non-null, the texture fetch is recorded there
     *               instead of touching the MemorySystem (its latency is
     *               charged later, when the log is replayed in tile
     *               order); all pure counters are charged as usual
     */
    FragmentShadeResult
    shadeFragment(const RenderState &state, const Vec4 &color,
                  const Vec2 &uv, int px, int py, FrameStats &stats,
                  TileMemLog *log = nullptr)
    {
        stats.fragment_shader_instrs += fragmentInstrs(state.program);

        if (fragmentTexFetches(state.program) > 0) {
            EVRSIM_ASSERT(textures_ != nullptr);
            EVRSIM_ASSERT(state.texture >= 0 &&
                          state.texture <
                              static_cast<int>(textures_->size()));
            const Texture *tex =
                (*textures_)[static_cast<std::size_t>(state.texture)];
            // Fused texel path: wrap the UV once and reuse the texel
            // coordinates for both the simulated fetch address and the
            // color lookup. The color math must mirror shadeFunctional
            // exactly — the invariant auditor's reference rasterizer
            // shades through shadeFunctional and compares pixels.
            int tx, ty;
            tex->toTexel(uv.x, uv.y, tx, ty);
            if (log) {
                // Record mode: the fetch's latency is charged at replay.
                log->textureFetch(unitFor(px, py),
                                  tex->texelAddrAt(tx, ty), 4);
            } else {
                AccessResult r = mem_.textureFetch(
                    unitFor(px, py), tex->texelAddrAt(tx, ty), 4);
                stats.raster_mem_latency += r.latency;
            }
            ++stats.texture_fetches;

            Vec4 t = tex->texelAt(tx, ty);
            FragmentShadeResult out;
            switch (state.program) {
              case FragmentProgram::Textured:
                out.color = t;
                // Carry the vertex alpha so translucent textured
                // sprites work.
                out.color.w *= color.w;
                break;
              case FragmentProgram::TexturedTint:
                out.color = {t.x * color.x, t.y * color.y, t.z * color.z,
                             t.w * color.w};
                break;
              case FragmentProgram::TexturedDiscard:
                if (t.w * color.w < 0.5f) {
                    out.discarded = true;
                    ++stats.fragments_discarded_shader;
                    return out;
                }
                out.color = {t.x * color.x, t.y * color.y, t.z * color.z,
                             1.0f};
                break;
              default:
                panic("fragment program %d charges texture fetches but "
                      "has no fused shading path",
                      static_cast<int>(state.program));
            }
            return out;
        }

        static const std::vector<const Texture *> kNoTextures;
        FragmentShadeResult out = shadeFunctional(
            state, color, uv, textures_ ? *textures_ : kNoTextures);
        if (out.discarded)
            ++stats.fragments_discarded_shader;
        return out;
    }

    /**
     * Pure color math of shadeFragment: no cost charged, no simulated
     * memory touched. The invariant auditor's reference rasterizer uses
     * this so an audited run's caches and counters stay bit-identical to
     * an unaudited one.
     */
    static FragmentShadeResult
    shadeFunctional(const RenderState &state, const Vec4 &color,
                    const Vec2 &uv,
                    const std::vector<const Texture *> &textures)
    {
        auto sample = [&](int slot) {
            EVRSIM_ASSERT(slot >= 0 &&
                          slot < static_cast<int>(textures.size()));
            return textures[static_cast<std::size_t>(slot)]->sample(uv.x,
                                                                    uv.y);
        };

        FragmentShadeResult out;
        switch (state.program) {
          case FragmentProgram::Flat:
            out.color = color;
            break;

          case FragmentProgram::Textured:
            out.color = sample(state.texture);
            // Carry the vertex alpha so translucent textured sprites work.
            out.color.w *= color.w;
            break;

          case FragmentProgram::TexturedTint: {
            Vec4 t = sample(state.texture);
            out.color = {t.x * color.x, t.y * color.y, t.z * color.z,
                         t.w * color.w};
            break;
          }

          case FragmentProgram::Procedural: {
            // ALU-heavy deterministic pattern: two octaves of sine bands
            // modulating the interpolated color.
            float a = std::sin(uv.x * 37.0f) * std::sin(uv.y * 29.0f);
            float b = std::sin(uv.x * 11.0f + uv.y * 7.0f);
            float t = 0.5f + 0.25f * a + 0.25f * b;
            out.color = {color.x * t, color.y * t, color.z * t, color.w};
            break;
          }

          case FragmentProgram::TexturedDiscard: {
            Vec4 t = sample(state.texture);
            if (t.w * color.w < 0.5f) {
                out.discarded = true;
                return out;
            }
            out.color = {t.x * color.x, t.y * color.y, t.z * color.z,
                         1.0f};
            break;
          }
        }
        return out;
    }

  private:
    /** Fragment processor (and texture cache) a pixel's quad maps to. */
    unsigned
    unitFor(int px, int py) const
    {
        return (static_cast<unsigned>(px >> 1) +
                static_cast<unsigned>(py >> 1)) &
               (num_units_ - 1);
    }

    MemorySystem &mem_;
    const std::vector<const Texture *> *textures_ = nullptr;
    unsigned num_units_;
};

} // namespace evrsim

#endif // EVRSIM_GPU_SHADER_HPP
