/**
 * @file
 * Shader cores: the programmable stages of the pipeline.
 *
 * The simulator ships a fixed set of fragment programs (Table III's
 * workloads are built from flat-shaded, textured and procedural
 * materials). Each program has a functional evaluation (producing the
 * color) and a cost (ALU instructions, texture fetches) used by the
 * timing and energy models. Texture fetches go through the fragment
 * processor's texture cache, so shading cost depends on real locality.
 */
#ifndef EVRSIM_GPU_SHADER_HPP
#define EVRSIM_GPU_SHADER_HPP

#include <vector>

#include "gpu/gpu_stats.hpp"
#include "mem/memory_system.hpp"
#include "scene/draw_command.hpp"
#include "scene/texture.hpp"

namespace evrsim {

/** Result of shading one fragment. */
struct FragmentShadeResult {
    Vec4 color;
    /** Fragment killed by a shader discard (TexturedDiscard only). */
    bool discarded = false;
};

/**
 * Executes vertex and fragment programs and charges their cost.
 */
class ShaderCore
{
  public:
    explicit ShaderCore(MemorySystem &mem);

    /** Bind this frame's texture table (owned by the scene/workload). */
    void bindTextures(const std::vector<const Texture *> *textures);

    /** ALU instructions of the standard transform vertex shader. */
    static constexpr unsigned kVertexShaderInstrs = 20;

    /** ALU instruction cost of a fragment program. */
    static unsigned fragmentInstrs(FragmentProgram program);

    /** Texture fetches a fragment program performs. */
    static unsigned fragmentTexFetches(FragmentProgram program);

    /**
     * Shade one fragment.
     *
     * @param state  render state of the owning primitive
     * @param color  perspective-interpolated vertex color
     * @param uv     perspective-interpolated texture coordinates
     * @param px,py  screen pixel (selects the fragment processor / texture
     *               cache and thus the locality the cache observes)
     * @param stats  instruction/texture counters are charged here
     */
    FragmentShadeResult shadeFragment(const RenderState &state,
                                      const Vec4 &color, const Vec2 &uv,
                                      int px, int py, FrameStats &stats);

    /**
     * Pure color math of shadeFragment: no cost charged, no simulated
     * memory touched. The invariant auditor's reference rasterizer uses
     * this so an audited run's caches and counters stay bit-identical to
     * an unaudited one.
     */
    static FragmentShadeResult
    shadeFunctional(const RenderState &state, const Vec4 &color,
                    const Vec2 &uv,
                    const std::vector<const Texture *> &textures);

  private:
    /** Fragment processor (and texture cache) a pixel's quad maps to. */
    unsigned
    unitFor(int px, int py) const
    {
        return (static_cast<unsigned>(px >> 1) +
                static_cast<unsigned>(py >> 1)) &
               (num_units_ - 1);
    }

    MemorySystem &mem_;
    const std::vector<const Texture *> *textures_ = nullptr;
    unsigned num_units_;
};

} // namespace evrsim

#endif // EVRSIM_GPU_SHADER_HPP
