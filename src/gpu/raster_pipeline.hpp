/**
 * @file
 * The Raster Pipeline: sequential per-tile rendering over on-chip
 * buffers, with Early/Late Depth Test, fragment shading, blending and
 * Color Buffer flush — plus the hooks where Rendering Elimination skips
 * tiles and EVR tracks per-tile visibility.
 */
#ifndef EVRSIM_GPU_RASTER_PIPELINE_HPP
#define EVRSIM_GPU_RASTER_PIPELINE_HPP

#include <vector>

#include "common/job_pool.hpp"
#include "gpu/framebuffer.hpp"
#include "gpu/gpu_config.hpp"
#include "gpu/parameter_buffer.hpp"
#include "gpu/pipeline_hooks.hpp"
#include "gpu/rasterizer.hpp"
#include "gpu/shader.hpp"
#include "gpu/tile_mem_log.hpp"
#include "gpu/timing_model.hpp"
#include "scene/scene.hpp"

namespace evrsim {

class InvariantAuditor;

/** Optional attachments for one frame's raster pass. */
struct RasterHooks {
    SignatureUpdater *signature = nullptr;   ///< RE tile-skip decisions
    TileVisibilityTracker *tracker = nullptr; ///< EVR Layer Buffer / FVP
    InvariantAuditor *auditor = nullptr;      ///< EVRSIM_VALIDATE checks
    /**
     * Oracle mode of Figure 8: before rendering a tile, its final depth
     * values are computed and preloaded into the Z Buffer, so the Early
     * Depth Test has perfect visibility information (an idealized
     * Z-prepass with no cost attributed to the prepass itself).
     */
    bool oracle_z = false;

    /**
     * Real Z-Prepass (the software/hardware alternative the paper
     * contrasts EVR with): the same depth preload as oracle_z, but the
     * prepass's rasterization, depth tests and discard-shader
     * evaluations are charged to the tile — "the overhead of the
     * additional render pass is very high and often offsets its
     * potential benefits".
     */
    bool z_prepass = false;
};

/**
 * Renders all tiles of a frame.
 */
class RasterPipeline
{
  public:
    RasterPipeline(const GpuConfig &config, MemorySystem &mem,
                   ShaderCore &shader, const TimingModel &timing);

    /**
     * Render the frame described by @p pb into @p fb.
     *
     * @param prev_fb previous frame's framebuffer, used only to compute
     *                the ground-truth "equal tiles" oracle statistic
     *                (may be null)
     */
    void run(const Scene &scene, const ParameterBuffer &pb, Framebuffer &fb,
             const Framebuffer *prev_fb, const RasterHooks &hooks,
             FrameStats &stats);

    /**
     * Enable tile-parallel rendering (EVRSIM_TILE_JOBS): tiles are
     * computed concurrently on @p pool via JobPool::runBatch, each
     * recording its memory accesses in a TileMemLog, then the logs are
     * replayed serially in tile order against the MemorySystem — so
     * stats, cache behavior and pixels stay byte-identical to the
     * serial path (see DESIGN.md section 12).
     *
     * @param pool      shared pool to run tile jobs on (null or
     *                  tile_jobs <= 1 restores the serial path)
     * @param tile_jobs parallelism the tile batch is sized for
     */
    void
    setTileExecution(JobPool *pool, int tile_jobs)
    {
        tile_pool_ = tile_jobs > 1 ? pool : nullptr;
        tile_jobs_ = tile_jobs;
    }

    /**
     * Rasterize with the scalar reference path (Rasterizer::rasterize)
     * instead of the SoA/SIMD fast path. The two are bit-identical by
     * construction; the reference path exists so tests and the
     * --bench-speed scalar leg can measure/compare against it.
     */
    void setReferenceRaster(bool on) { reference_ = on; }

  private:
    /**
     * Render (or skip) one tile, accumulating into @p tile_stats.
     *
     * @param log when non-null the tile's memory accesses are recorded
     *            there (in issue order) instead of touching mem_;
     *            latency stats are then charged at replay
     */
    void renderTile(int tile, const Scene &scene, const ParameterBuffer &pb,
                    Framebuffer &fb, const Framebuffer *prev_fb,
                    const RasterHooks &hooks, FrameStats &tile_stats,
                    TileMemLog *log);

    /**
     * Depth prepass: compute the tile's final depth values by running
     * every Z-writing primitive depth-only (including shader-discard
     * effects).
     *
     * @param charge if non-null, the prepass's rasterization, depth
     *               tests and discard-shader work are charged there
     *               (the real Z-Prepass); null runs it as the free
     *               Figure 8 oracle.
     */
    void depthPrepass(const RectI &rect, const Scene &scene,
                      const ParameterBuffer &pb,
                      const std::vector<DisplayListEntry> &order,
                      float clear_depth, std::vector<float> &depth,
                      FrameStats *charge, TileMemLog *log,
                      RasterScratch &scratch) const;

    /** Tile pixel rectangle, clipped to the screen for edge tiles. */
    RectI tileRect(int tile) const;

    /** Replay one tile's recorded accesses against the MemorySystem. */
    void replayMemLog(const TileMemLog &log, FrameStats &tile_stats);

    const GpuConfig &config_;
    MemorySystem &mem_;
    ShaderCore &shader_;
    const TimingModel &timing_;
    JobPool *tile_pool_ = nullptr;
    int tile_jobs_ = 1;
    bool reference_ = false;
};

} // namespace evrsim

#endif // EVRSIM_GPU_RASTER_PIPELINE_HPP
