/**
 * @file
 * The Raster Pipeline: sequential per-tile rendering over on-chip
 * buffers, with Early/Late Depth Test, fragment shading, blending and
 * Color Buffer flush — plus the hooks where Rendering Elimination skips
 * tiles and EVR tracks per-tile visibility.
 */
#ifndef EVRSIM_GPU_RASTER_PIPELINE_HPP
#define EVRSIM_GPU_RASTER_PIPELINE_HPP

#include <vector>

#include "gpu/framebuffer.hpp"
#include "gpu/gpu_config.hpp"
#include "gpu/parameter_buffer.hpp"
#include "gpu/pipeline_hooks.hpp"
#include "gpu/shader.hpp"
#include "gpu/timing_model.hpp"
#include "scene/scene.hpp"

namespace evrsim {

class InvariantAuditor;

/** Optional attachments for one frame's raster pass. */
struct RasterHooks {
    SignatureUpdater *signature = nullptr;   ///< RE tile-skip decisions
    TileVisibilityTracker *tracker = nullptr; ///< EVR Layer Buffer / FVP
    InvariantAuditor *auditor = nullptr;      ///< EVRSIM_VALIDATE checks
    /**
     * Oracle mode of Figure 8: before rendering a tile, its final depth
     * values are computed and preloaded into the Z Buffer, so the Early
     * Depth Test has perfect visibility information (an idealized
     * Z-prepass with no cost attributed to the prepass itself).
     */
    bool oracle_z = false;

    /**
     * Real Z-Prepass (the software/hardware alternative the paper
     * contrasts EVR with): the same depth preload as oracle_z, but the
     * prepass's rasterization, depth tests and discard-shader
     * evaluations are charged to the tile — "the overhead of the
     * additional render pass is very high and often offsets its
     * potential benefits".
     */
    bool z_prepass = false;
};

/**
 * Renders all tiles of a frame.
 */
class RasterPipeline
{
  public:
    RasterPipeline(const GpuConfig &config, MemorySystem &mem,
                   ShaderCore &shader, const TimingModel &timing);

    /**
     * Render the frame described by @p pb into @p fb.
     *
     * @param prev_fb previous frame's framebuffer, used only to compute
     *                the ground-truth "equal tiles" oracle statistic
     *                (may be null)
     */
    void run(const Scene &scene, const ParameterBuffer &pb, Framebuffer &fb,
             const Framebuffer *prev_fb, const RasterHooks &hooks,
             FrameStats &stats);

  private:
    /** Render (or skip) one tile, accumulating into @p tile_stats. */
    void renderTile(int tile, const Scene &scene, const ParameterBuffer &pb,
                    Framebuffer &fb, const Framebuffer *prev_fb,
                    const RasterHooks &hooks, FrameStats &tile_stats);

    /**
     * Depth prepass: compute the tile's final depth values by running
     * every Z-writing primitive depth-only (including shader-discard
     * effects).
     *
     * @param charge if non-null, the prepass's rasterization, depth
     *               tests and discard-shader work are charged there
     *               (the real Z-Prepass); null runs it as the free
     *               Figure 8 oracle.
     */
    void depthPrepass(const RectI &rect, const Scene &scene,
                      const ParameterBuffer &pb,
                      const std::vector<DisplayListEntry> &order,
                      float clear_depth, std::vector<float> &depth,
                      FrameStats *charge) const;

    /** Tile pixel rectangle, clipped to the screen for edge tiles. */
    RectI tileRect(int tile) const;

    const GpuConfig &config_;
    MemorySystem &mem_;
    ShaderCore &shader_;
    const TimingModel &timing_;
};

} // namespace evrsim

#endif // EVRSIM_GPU_RASTER_PIPELINE_HPP
