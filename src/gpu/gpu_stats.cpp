/**
 * @file
 * FrameStats accumulation.
 */
#include "gpu/gpu_stats.hpp"

namespace evrsim {

void
FrameStats::accumulate(const FrameStats &other)
{
    draw_commands += other.draw_commands;
    vertices_fetched += other.vertices_fetched;
    vertices_shaded += other.vertices_shaded;
    vertex_shader_instrs += other.vertex_shader_instrs;
    prims_submitted += other.prims_submitted;
    prims_backface_culled += other.prims_backface_culled;
    prims_clipped_away += other.prims_clipped_away;
    prims_clip_split += other.prims_clip_split;
    prims_binned += other.prims_binned;
    bin_tile_pairs += other.bin_tile_pairs;
    param_attr_bytes += other.param_attr_bytes;
    param_list_bytes += other.param_list_bytes;
    layer_param_bytes += other.layer_param_bytes;

    signature_updates += other.signature_updates;
    signature_bytes_hashed += other.signature_bytes_hashed;
    signature_shift_bytes += other.signature_shift_bytes;
    signature_updates_skipped += other.signature_updates_skipped;
    signature_compares += other.signature_compares;
    tiles_skipped_re += other.tiles_skipped_re;

    lgt_accesses += other.lgt_accesses;
    fvp_table_accesses += other.fvp_table_accesses;
    layer_buffer_accesses += other.layer_buffer_accesses;
    prims_predicted_occluded += other.prims_predicted_occluded;
    prims_predicted_visible += other.prims_predicted_visible;
    second_list_entries += other.second_list_entries;
    second_list_flushes += other.second_list_flushes;
    for (int i = 0; i < 4; ++i)
        casuistry[i] += other.casuistry[i];
    pred_occluded_correct += other.pred_occluded_correct;
    pred_occluded_wrong += other.pred_occluded_wrong;

    tiles_total += other.tiles_total;
    tiles_rendered += other.tiles_rendered;
    tiles_equal_oracle += other.tiles_equal_oracle;
    prim_tile_rasterized += other.prim_tile_rasterized;
    raster_quads += other.raster_quads;
    fragments_generated += other.fragments_generated;
    early_z_tests += other.early_z_tests;
    early_z_kills += other.early_z_kills;
    late_z_tests += other.late_z_tests;
    late_z_kills += other.late_z_kills;
    fragments_shaded += other.fragments_shaded;
    fragment_shader_instrs += other.fragment_shader_instrs;
    texture_fetches += other.texture_fetches;
    fragments_discarded_shader += other.fragments_discarded_shader;
    blend_ops += other.blend_ops;
    color_buffer_accesses += other.color_buffer_accesses;
    depth_buffer_accesses += other.depth_buffer_accesses;
    tile_flush_bytes += other.tile_flush_bytes;

    validate_tile_checks += other.validate_tile_checks;
    validate_scene_issues += other.validate_scene_issues;
    validate_commands_dropped += other.validate_commands_dropped;
    validate_violations += other.validate_violations;
    degraded_tiles += other.degraded_tiles;
    commands_rejected += other.commands_rejected;
    prims_rejected += other.prims_rejected;

    geom_mem_latency += other.geom_mem_latency;
    raster_mem_latency += other.raster_mem_latency;

    geometry_cycles += other.geometry_cycles;
    raster_cycles += other.raster_cycles;

    mem.accumulate(other.mem);
}

} // namespace evrsim
