/**
 * @file
 * Interfaces through which Rendering Elimination and EVR plug into the
 * baseline pipeline.
 *
 * The GPU libraries know nothing about RE or EVR beyond these hooks, which
 * mirror where the paper's hardware sits:
 *  - PrimitiveScheduler: consulted by the Polygon List Builder for every
 *    (primitive, tile) pair. EVR's implementation assigns layer ids via
 *    the Layer Generator Table, predicts visibility via the FVP Table and
 *    drives the two-list reordering of Algorithm 1.
 *  - SignatureUpdater: RE's Signature Buffer. Updated at binning, queried
 *    at raster start (skip decision), rotated at frame end.
 *  - TileVisibilityTracker: EVR's raster-side state (Layer Buffer and ZR
 *    register) plus FVP Table update at end of tile.
 */
#ifndef EVRSIM_GPU_PIPELINE_HOOKS_HPP
#define EVRSIM_GPU_PIPELINE_HOOKS_HPP

#include <cstdint>

#include "gpu/gpu_stats.hpp"
#include "gpu/primitive.hpp"

namespace evrsim {

/** What the scheduler decided for one (primitive, tile) pair. */
struct BinDecision {
    /** Layer identifier assigned to the primitive for this tile. */
    std::uint16_t layer = 0;
    /** True if the primitive was predicted occluded in this tile. */
    bool predicted_occluded = false;
    /** Append to the tile's Second List instead of the First List. */
    bool to_second_list = false;
    /** Splice the Second List onto the First List before appending. */
    bool move_second_to_first = false;
};

/** Geometry-side EVR hook (Layer Generator Table + FVP prediction). */
class PrimitiveScheduler
{
  public:
    virtual ~PrimitiveScheduler() = default;

    /** Reset per-frame state (layer counters). */
    virtual void frameStart() = 0;

    /**
     * Decide placement of @p prim in @p tile's display lists.
     * Called once per (primitive, tile) pair, in submission order.
     */
    virtual BinDecision onBin(const ShadedPrimitive &prim, int tile,
                              FrameStats &stats) = 0;
};

/** Rendering Elimination hook (Signature Buffer). */
class SignatureUpdater
{
  public:
    virtual ~SignatureUpdater() = default;

    /** Reset the in-progress signatures for a new frame. */
    virtual void frameStart() = 0;

    /**
     * Fold @p prim into @p tile's in-progress signature.
     * @param excluded true when EVR predicted the primitive occluded in
     *                 this tile, in which case the combine is skipped
     *                 (the Signature Buffer entry is not updated).
     */
    virtual void addPrimitive(int tile, const ShadedPrimitive &prim,
                              bool excluded, FrameStats &stats) = 0;

    /**
     * Raster-side query: does @p tile produce the same colors as in the
     * previous frame? True = skip rendering it.
     */
    virtual bool shouldSkipTile(int tile, FrameStats &stats) = 0;

    /**
     * Raster-side report: a primitive that was excluded from @p tile's
     * signature (predicted occluded) actually contributed to the tile's
     * final pixels. The tile's surface is then not fully described by
     * its signature, so the signature must not be used as a skip
     * reference — neither this frame nor the next.
     */
    virtual void tileMispredicted(int tile) = 0;

    /** Promote current-frame signatures to previous-frame. */
    virtual void frameEnd() = 0;

    /**
     * Audit query: after tileMispredicted(@p tile) this frame, is the
     * tile's in-progress signature actually poisoned? Defaults to true
     * so implementations without a poison bit are not flagged.
     */
    virtual bool mispredictionPoisoned(int tile) const
    {
        (void)tile;
        return true;
    }
};

/** Raster-side EVR hook (Layer Buffer, ZR register, FVP Table update). */
class TileVisibilityTracker
{
  public:
    virtual ~TileVisibilityTracker() = default;

    /**
     * A tile starts rendering: clear the Layer Buffer and ZR.
     * @param width,height pixel dimensions of this tile (screen-edge
     *                     tiles may be smaller than the nominal size)
     */
    virtual void tileStart(int tile, int width, int height,
                           FrameStats &stats) = 0;

    /**
     * An opaque fragment (alpha == 1) was written to the Color Buffer at
     * tile-local pixel (x, y) of @p tile.
     *
     * @param tile   tile being rendered (tile-parallel rasterization may
     *               have several tiles between tileStart and tileEnd at
     *               once, so per-tile state must be keyed by it)
     * @param layer  layer identifier carried by the fragment
     * @param is_woz fragment belongs to a WOZ primitive (updates ZR)
     */
    virtual void onOpaqueWrite(int tile, int x, int y, std::uint16_t layer,
                               bool is_woz, FrameStats &stats) = 0;

    /**
     * The tile finished rendering: derive L_far from the Layer Buffer,
     * resolve the FVP type against ZR and the tile's depth buffer, and
     * update the FVP Table.
     *
     * @param tile_depth tile-local Z Buffer, row-major, @p pixel_count
     *                   entries (clear-depth where never written)
     */
    virtual void tileEnd(int tile, const float *tile_depth, int pixel_count,
                         FrameStats &stats) = 0;

    /**
     * The tile was skipped by Rendering Elimination; its contents are
     * unchanged, so its FVP Table entry is left as-is.
     */
    virtual void tileSkipped(int tile) = 0;

    /**
     * Audit query: is the FVP entry stored for @p tile conservative
     * against the tile's true farthest depth @p max_depth (FVP >= it)?
     * Implementations without a prediction (or with an invalid entry)
     * return true.
     */
    virtual bool fvpConservative(int tile, float max_depth) const
    {
        (void)tile;
        (void)max_depth;
        return true;
    }

    /**
     * Safe degradation: forget @p tile's stored prediction so the next
     * frame treats every primitive there as predicted visible.
     */
    virtual void invalidatePrediction(int tile) { (void)tile; }
};

} // namespace evrsim

#endif // EVRSIM_GPU_PIPELINE_HOOKS_HPP
