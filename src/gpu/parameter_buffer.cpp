/**
 * @file
 * Parameter Buffer implementation.
 */
#include "gpu/parameter_buffer.hpp"

#include "common/log.hpp"

namespace evrsim {

void
ParameterBuffer::beginFrame(int tile_count, AddressSpace &aspace)
{
    aspace_ = &aspace;
    aspace_->resetParameter();
    prims_.clear();
    tiles_.assign(static_cast<std::size_t>(tile_count), TileLists{});
}

std::uint32_t
ParameterBuffer::addPrimitive(ShadedPrimitive prim)
{
    EVRSIM_ASSERT(aspace_ != nullptr);
    auto index = static_cast<std::uint32_t>(prims_.size());
    prim.frame_index = index;
    prim.pb_addr = aspace_->allocParameter(ShadedPrimitive::kAttrBytes);
    prims_.push_back(prim);
    return index;
}

Addr
ParameterBuffer::append(int tile, const DisplayListEntry &entry, bool second,
                        unsigned entry_bytes)
{
    EVRSIM_ASSERT(tile >= 0 && tile < tileCount());
    TileLists &t = tiles_[tile];

    if (t.chunk_left < entry_bytes) {
        t.chunk_cursor = aspace_->allocParameter(kChunkBytes);
        t.chunk_left = kChunkBytes;
    }
    Addr addr = t.chunk_cursor;
    t.chunk_cursor += entry_bytes;
    t.chunk_left -= entry_bytes;

    if (second)
        t.second.push_back(entry);
    else
        t.first.push_back(entry);
    t.entry_addrs.push_back(addr);
    return addr;
}

bool
ParameterBuffer::moveSecondToFirst(int tile)
{
    TileLists &t = tiles_[tile];
    if (t.second.empty())
        return false;
    t.first.insert(t.first.end(), t.second.begin(), t.second.end());
    t.second.clear();
    return true;
}

std::vector<DisplayListEntry>
ParameterBuffer::renderOrder(int tile) const
{
    std::vector<DisplayListEntry> order;
    renderOrderInto(tile, order);
    return order;
}

std::vector<DisplayListEntry> &
ParameterBuffer::renderOrderInto(int tile,
                                 std::vector<DisplayListEntry> &out) const
{
    const TileLists &t = tiles_[tile];
    out.clear();
    out.reserve(t.first.size() + t.second.size());
    out.insert(out.end(), t.first.begin(), t.first.end());
    out.insert(out.end(), t.second.begin(), t.second.end());
    return out;
}

} // namespace evrsim
