/**
 * @file
 * Analytic timing model (the Teapot cycle-accurate simulator substitution).
 *
 * Cycles are derived from counted events and the Table II throughputs.
 * Each pipeline is modelled as its bottleneck stage plus partially
 * overlapped memory stalls:
 *
 *  Geometry (per frame):
 *     max(vertex shading, primitive assembly, binning + signatures + EVR
 *     lookups) + overlap_factor * memory latency
 *
 *  Raster (per *tile*, summed over tiles — tiles are rendered
 *  sequentially on this GPU class):
 *     max(setup + rasterization, Early-Z, fragment shading, blending)
 *     + partially-overlapped Color Buffer flush + memory stalls
 *
 * Modelling rationale: EVR/RE change *event counts* (shaded fragments,
 * skipped tiles, signature combines); keeping stage throughputs constant
 * between configurations makes the relative execution times (Figures 7
 * and 11) a faithful function of those event-count changes.
 */
#ifndef EVRSIM_GPU_TIMING_MODEL_HPP
#define EVRSIM_GPU_TIMING_MODEL_HPP

#include "gpu/gpu_config.hpp"
#include "gpu/gpu_stats.hpp"

namespace evrsim {

/** Tunable coefficients of the analytic model. */
struct TimingParams {
    /** Cycles to append one display-list entry (LUT + pointer write). */
    double bin_entry_cycles = 2.0;
    /** Parameter Buffer write port width in bytes/cycle. */
    double pb_bytes_per_cycle = 8.0;
    /** Fixed cycles of one Signature Buffer combine. The buffer is a
     *  single-ported SRAM: read entry, shift, xor, write back serialize
     *  (the stall the paper attributes to signature updates). */
    double sig_combine_cycles = 4.0;
    /** Bytes/cycle of the signature shifter. */
    double sig_shift_bytes_per_cycle = 32.0;
    /** Bytes/cycle of the per-primitive CRC32 unit. */
    double crc_bytes_per_cycle = 8.0;
    /** Cycles per Layer Generator Table / FVP Table lookup. The two
     *  tables are independent SRAMs read in parallel during binning, so
     *  each lookup costs half a cycle of the shared pipeline slot. */
    double evr_lookup_cycles = 0.5;
    /** Fraction of raw memory latency that is NOT hidden (geometry). */
    double geom_mem_overlap = 0.30;
    /** Fraction of raw memory latency that is NOT hidden (raster). */
    double raster_mem_overlap = 0.25;
    /** Fraction of the tile flush that is NOT overlapped with the next
     *  tile's processing. */
    double flush_overlap = 0.5;
    /** Fixed per-rendered-tile cycles (scheduling, buffer clears). */
    double tile_fixed_cycles = 32.0;
    /** Cycles for one tile-skip signature comparison. */
    double skip_check_cycles = 2.0;
    /** Interpolated attributes per primitive (pos+z+w+rgba+uv, 3 verts). */
    double attrs_per_prim = 27.0;
};

/** Converts event counters into pipeline cycles. */
class TimingModel
{
  public:
    TimingModel(const GpuConfig &config, const TimingParams &params = {});

    /**
     * Geometry Pipeline cycles for a whole frame, from the frame's
     * geometry-side counters.
     */
    Cycles geometryCycles(const FrameStats &frame) const;

    /**
     * Raster Pipeline cycles for one tile, from that tile's counters
     * (the raster pipeline accumulates per-tile FrameStats deltas).
     */
    Cycles tileCycles(const FrameStats &tile) const;

    const TimingParams &params() const { return params_; }

  private:
    const GpuConfig &config_;
    TimingParams params_;
};

} // namespace evrsim

#endif // EVRSIM_GPU_TIMING_MODEL_HPP
