/**
 * @file
 * Rasterizer implementation (non-template parts).
 */
#include "gpu/rasterizer.hpp"

#include <cmath>

namespace evrsim {

bool
Rasterizer::setup(const ShadedPrimitive &prim, Setup &s)
{
    Vec2 a = prim.v[0].screen;
    Vec2 b = prim.v[1].screen;
    Vec2 c = prim.v[2].screen;

    float area = signedArea2(a, b, c);
    if (area == 0.0f)
        return false;

    if (area > 0.0f) {
        s.p0 = a;
        s.p1 = b;
        s.p2 = c;
        s.i0 = 0;
        s.i1 = 1;
        s.i2 = 2;
    } else {
        // Normalize winding so the interior is on the positive side of
        // every edge; remember the vertex permutation for interpolation.
        s.p0 = a;
        s.p1 = c;
        s.p2 = b;
        s.i0 = 0;
        s.i1 = 2;
        s.i2 = 1;
        area = -area;
    }
    s.inv_area = 1.0f / area;

    // Top-left rule (y grows downwards): an edge a->b is "top" when it is
    // horizontal with the interior below (b.x > a.x), and "left" when it
    // goes upwards (b.y < a.y). Fragments on top/left edges are included,
    // on bottom/right edges excluded, so shared edges shade exactly once.
    auto top_left = [](const Vec2 &ea, const Vec2 &eb) {
        return (ea.y == eb.y && eb.x > ea.x) || (eb.y < ea.y);
    };
    s.tl0 = top_left(s.p1, s.p2);
    s.tl1 = top_left(s.p2, s.p0);
    s.tl2 = top_left(s.p0, s.p1);
    return true;
}

void
Rasterizer::interpolate(const ShadedPrimitive &prim, const Setup &s, int x,
                        int y, float w0, float w1, float w2, Fragment &frag)
{
    const ShadedVertex &v0 = prim.v[s.i0];
    const ShadedVertex &v1 = prim.v[s.i1];
    const ShadedVertex &v2 = prim.v[s.i2];

    frag.x = x;
    frag.y = y;

    // Depth interpolates affinely in screen space (post-projection z).
    frag.depth = w0 * v0.depth + w1 * v1.depth + w2 * v2.depth;

    // Attributes interpolate perspective-correct: lerp attr/w and 1/w.
    float iw = w0 * v0.inv_w + w1 * v1.inv_w + w2 * v2.inv_w;
    float rw = 1.0f / iw;

    frag.color = (v0.color * (w0 * v0.inv_w) + v1.color * (w1 * v1.inv_w) +
                  v2.color * (w2 * v2.inv_w)) *
                 rw;
    Vec2 uv = {(v0.uv.x * v0.inv_w) * w0 + (v1.uv.x * v1.inv_w) * w1 +
                   (v2.uv.x * v2.inv_w) * w2,
               (v0.uv.y * v0.inv_w) * w0 + (v1.uv.y * v1.inv_w) * w1 +
                   (v2.uv.y * v2.inv_w) * w2};
    frag.uv = {uv.x * rw, uv.y * rw};
}

bool
Rasterizer::triangleOverlapsRect(const ShadedPrimitive &prim,
                                 const RectI &rect)
{
    Vec2 a = prim.v[0].screen;
    Vec2 b = prim.v[1].screen;
    Vec2 c = prim.v[2].screen;

    // Reject on bounding boxes first.
    BBox2 bb = BBox2::ofTriangle(a, b, c);
    auto rx0 = static_cast<float>(rect.x0);
    auto ry0 = static_cast<float>(rect.y0);
    auto rx1 = static_cast<float>(rect.x1);
    auto ry1 = static_cast<float>(rect.y1);
    if (bb.min_x >= rx1 || bb.max_x <= rx0 || bb.min_y >= ry1 ||
        bb.max_y <= ry0)
        return false;

    float area = signedArea2(a, b, c);
    if (area == 0.0f)
        return true; // degenerate: be conservative, keep the bbox result
    if (area < 0.0f)
        std::swap(b, c);

    // Separating-edge test: if all four rect corners lie strictly outside
    // one triangle edge, there is no intersection.
    const Vec2 corners[4] = {{rx0, ry0}, {rx1, ry0}, {rx0, ry1}, {rx1, ry1}};
    const Vec2 edges[3][2] = {{a, b}, {b, c}, {c, a}};
    for (const auto &e : edges) {
        bool all_outside = true;
        for (const auto &corner : corners) {
            if (signedArea2(e[0], e[1], corner) > 0.0f) {
                all_outside = false;
                break;
            }
        }
        if (all_outside)
            return false;
    }
    return true;
}

} // namespace evrsim
