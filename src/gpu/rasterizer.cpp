/**
 * @file
 * Rasterizer implementation (non-template parts).
 */
#include "gpu/rasterizer.hpp"

#include <cmath>

namespace evrsim {

bool
Rasterizer::setup(const ShadedPrimitive &prim, Setup &s)
{
    Vec2 a = prim.v[0].screen;
    Vec2 b = prim.v[1].screen;
    Vec2 c = prim.v[2].screen;

    float area = signedArea2(a, b, c);
    if (area == 0.0f)
        return false;

    if (area > 0.0f) {
        s.p0 = a;
        s.p1 = b;
        s.p2 = c;
        s.i0 = 0;
        s.i1 = 1;
        s.i2 = 2;
    } else {
        // Normalize winding so the interior is on the positive side of
        // every edge; remember the vertex permutation for interpolation.
        s.p0 = a;
        s.p1 = c;
        s.p2 = b;
        s.i0 = 0;
        s.i1 = 2;
        s.i2 = 1;
        area = -area;
    }
    s.inv_area = 1.0f / area;

    // Top-left rule (y grows downwards): an edge a->b is "top" when it is
    // horizontal with the interior below (b.x > a.x), and "left" when it
    // goes upwards (b.y < a.y). Fragments on top/left edges are included,
    // on bottom/right edges excluded, so shared edges shade exactly once.
    auto top_left = [](const Vec2 &ea, const Vec2 &eb) {
        return (ea.y == eb.y && eb.x > ea.x) || (eb.y < ea.y);
    };
    s.tl0 = top_left(s.p1, s.p2);
    s.tl1 = top_left(s.p2, s.p0);
    s.tl2 = top_left(s.p0, s.p1);
    return true;
}

bool
Rasterizer::triangleOverlapsRect(const ShadedPrimitive &prim,
                                 const RectI &rect)
{
    Vec2 a = prim.v[0].screen;
    Vec2 b = prim.v[1].screen;
    Vec2 c = prim.v[2].screen;

    // Reject on bounding boxes first.
    BBox2 bb = BBox2::ofTriangle(a, b, c);
    auto rx0 = static_cast<float>(rect.x0);
    auto ry0 = static_cast<float>(rect.y0);
    auto rx1 = static_cast<float>(rect.x1);
    auto ry1 = static_cast<float>(rect.y1);
    if (bb.min_x >= rx1 || bb.max_x <= rx0 || bb.min_y >= ry1 ||
        bb.max_y <= ry0)
        return false;

    float area = signedArea2(a, b, c);
    if (area == 0.0f)
        return true; // degenerate: be conservative, keep the bbox result
    if (area < 0.0f)
        std::swap(b, c);

    // Separating-edge test: if all four rect corners lie strictly outside
    // one triangle edge, there is no intersection.
    const Vec2 corners[4] = {{rx0, ry0}, {rx1, ry0}, {rx0, ry1}, {rx1, ry1}};
    const Vec2 edges[3][2] = {{a, b}, {b, c}, {c, a}};
    for (const auto &e : edges) {
        bool all_outside = true;
        for (const auto &corner : corners) {
            if (signedArea2(e[0], e[1], corner) > 0.0f) {
                all_outside = false;
                break;
            }
        }
        if (all_outside)
            return false;
    }
    return true;
}

} // namespace evrsim
