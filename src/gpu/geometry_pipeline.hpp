/**
 * @file
 * The Geometry Pipeline: vertex fetch and shading, primitive assembly
 * (near-plane clipping, culling, viewport transform) and the Polygon List
 * Builder, which bins primitives into per-tile Display Lists in the
 * Parameter Buffer.
 *
 * EVR and Rendering Elimination attach here through the hook interfaces:
 * the scheduler is consulted per (primitive, tile) pair — that is where
 * layers are assigned, visibility is predicted and Algorithm 1 reorders —
 * and the signature updater folds primitives into per-tile CRCs.
 */
#ifndef EVRSIM_GPU_GEOMETRY_PIPELINE_HPP
#define EVRSIM_GPU_GEOMETRY_PIPELINE_HPP

#include "gpu/gpu_config.hpp"
#include "gpu/parameter_buffer.hpp"
#include "gpu/pipeline_hooks.hpp"
#include "mem/memory_system.hpp"
#include "scene/scene.hpp"

namespace evrsim {

/** Optional attachments for one frame's geometry pass. */
struct GeometryHooks {
    PrimitiveScheduler *scheduler = nullptr; ///< EVR layer/predict/reorder
    SignatureUpdater *signature = nullptr;   ///< Rendering Elimination
    /** Store layer identifiers in the Parameter Buffer (EVR enabled). */
    bool store_layers = false;
    /** Exclude predicted-occluded primitives from tile signatures. */
    bool filter_signature = false;
};

/**
 * Runs the geometry half of the frame.
 */
class GeometryPipeline
{
  public:
    GeometryPipeline(const GpuConfig &config, MemorySystem &mem);

    /**
     * Process every draw command of @p scene into @p pb.
     * @p pb must already be beginFrame()'d for this frame.
     */
    void run(const Scene &scene, ParameterBuffer &pb,
             const GeometryHooks &hooks, FrameStats &stats);

  private:
    /** Vertex after the vertex shader, before the perspective divide. */
    struct ClipVertex {
        Vec4 clip;
        Vec4 color;
        Vec2 uv;
    };

    /** Fetch (through the vertex cache) and shade one vertex. */
    ClipVertex fetchAndShade(const Mesh &mesh, std::uint32_t index,
                             const Mat4 &mvp, const Vec4 &tint,
                             FrameStats &stats);

    /** Perspective divide + viewport transform. */
    ShadedVertex toScreen(const ClipVertex &v) const;

    /**
     * Clip a triangle against the near plane (clip.z >= -clip.w).
     * Appends 0..2 triangles to @p out.
     */
    static int clipNear(const ClipVertex tri[3],
                        ClipVertex out[2][3]);

    /** Assemble, cull and bin one screen-space triangle. */
    void emitTriangle(const ClipVertex tri[3], const DrawCommand &cmd,
                      const Scene &scene, ParameterBuffer &pb,
                      const GeometryHooks &hooks, FrameStats &stats);

    /** Polygon List Builder: sort one primitive into the tiles it overlaps. */
    void binPrimitive(std::uint32_t prim_index, ParameterBuffer &pb,
                      const GeometryHooks &hooks, FrameStats &stats);

    const GpuConfig &config_;
    MemorySystem &mem_;
    /** One warning per reject class per pipeline, not per occurrence. */
    bool warned_bad_command_ = false;
    bool warned_bad_texture_ = false;
};

} // namespace evrsim

#endif // EVRSIM_GPU_GEOMETRY_PIPELINE_HPP
