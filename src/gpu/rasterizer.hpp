/**
 * @file
 * Edge-function triangle rasterizer with top-left fill rule and
 * perspective-correct attribute interpolation.
 *
 * Rasterization is restricted to a caller-supplied rectangle (the tile
 * being rendered), walks pixels in 2x2 quads — the granularity fragment
 * processors and the Early-Z unit operate at — and emits one Fragment per
 * covered pixel center. The same code path runs for every configuration,
 * so Baseline/RE/EVR produce bit-identical coverage and interpolants,
 * which the correctness property tests rely on.
 */
#ifndef EVRSIM_GPU_RASTERIZER_HPP
#define EVRSIM_GPU_RASTERIZER_HPP

#include <vector>

#include "common/rect.hpp"
#include "gpu/gpu_stats.hpp"
#include "gpu/primitive.hpp"
#include "gpu/raster_kernels.hpp"

namespace evrsim {

/** One rasterized fragment (pixel-sized piece of a primitive). */
struct Fragment {
    int x = 0; ///< screen pixel x
    int y = 0; ///< screen pixel y
    float depth = 0.0f;
    Vec4 color;
    Vec2 uv;
};

/**
 * Reusable SoA row-pair buffers for Rasterizer::rasterizeFast: coverage
 * masks and barycentric lanes for the two rows of the quad pair being
 * walked. One instance per tile render, reused across all of the tile's
 * primitives, keeps the hot loop allocation-free.
 */
struct RasterScratch {
    std::vector<std::uint8_t> mask[2];
    std::vector<float> w0[2];
    std::vector<float> w1[2];
    std::vector<float> w2[2];

    /** Grow the row buffers to hold at least @p width lanes. */
    void
    ensure(std::size_t width)
    {
        if (mask[0].size() >= width)
            return;
        for (int r = 0; r < 2; ++r) {
            mask[r].resize(width);
            w0[r].resize(width);
            w1[r].resize(width);
            w2[r].resize(width);
        }
    }
};

/** Stateless rasterization routines. */
class Rasterizer
{
  public:
    /**
     * Rasterize @p prim inside @p bounds, invoking @p sink for each
     * covered pixel. @p stats receives quad/fragment counts.
     *
     * @tparam Sink callable as void(const Fragment &)
     */
    template <typename Sink>
    static void
    rasterize(const ShadedPrimitive &prim, const RectI &bounds,
              FrameStats &stats, Sink &&sink)
    {
        Setup s;
        if (!setup(prim, s))
            return;

        // Clip the iteration range to the triangle's bounding box.
        BBox2 bb = BBox2::ofTriangle(s.p0, s.p1, s.p2);
        RectI range = bounds.intersect(
            {static_cast<int>(std::floor(bb.min_x)),
             static_cast<int>(std::floor(bb.min_y)),
             static_cast<int>(std::floor(bb.max_x)) + 1,
             static_cast<int>(std::floor(bb.max_y)) + 1});
        if (range.empty())
            return;

        // Align the quad walk to even coordinates.
        int qx0 = range.x0 & ~1;
        int qy0 = range.y0 & ~1;

        Fragment frag;
        for (int qy = qy0; qy < range.y1; qy += 2) {
            for (int qx = qx0; qx < range.x1; qx += 2) {
                bool quad_covered = false;
                for (int dy = 0; dy < 2; ++dy) {
                    int y = qy + dy;
                    if (y < range.y0 || y >= range.y1)
                        continue;
                    for (int dx = 0; dx < 2; ++dx) {
                        int x = qx + dx;
                        if (x < range.x0 || x >= range.x1)
                            continue;
                        float w0, w1, w2;
                        if (!coverage(s, x, y, w0, w1, w2))
                            continue;
                        quad_covered = true;
                        interpolate(prim, s, x, y, w0, w1, w2, frag);
                        ++stats.fragments_generated;
                        sink(static_cast<const Fragment &>(frag));
                    }
                }
                if (quad_covered)
                    ++stats.raster_quads;
            }
        }
    }

    /**
     * SIMD-accelerated rasterize: identical fragments, in the identical
     * canonical quad-walk order (qy+=2, qx+=2, dy, dx), with identical
     * quad/fragment counts — only faster. Coverage and barycentrics for
     * a row pair are computed into @p scratch by the active SIMD kernel
     * (see raster_kernels.hpp for the bit-identity argument), then
     * fragments are emitted scalar from the SoA buffers; entirely
     * uncovered row pairs are skipped wholesale.
     *
     * rasterize() above is the scalar reference this path is tested
     * against; production callers (the raster pipeline) use this one.
     */
    template <typename Sink>
    static void
    rasterizeFast(const ShadedPrimitive &prim, const RectI &bounds,
                  FrameStats &stats, RasterScratch &scratch, Sink &&sink)
    {
        Setup s;
        if (!setup(prim, s))
            return;

        BBox2 bb = BBox2::ofTriangle(s.p0, s.p1, s.p2);
        RectI range = bounds.intersect(
            {static_cast<int>(std::floor(bb.min_x)),
             static_cast<int>(std::floor(bb.min_y)),
             static_cast<int>(std::floor(bb.max_x)) + 1,
             static_cast<int>(std::floor(bb.max_y)) + 1});
        if (range.empty())
            return;

        const RasterKernels &kernels = rasterKernels();
        const EdgeSetup es = {s.p0.x, s.p0.y, s.p1.x,     s.p1.y,
                              s.p2.x, s.p2.y, s.inv_area, s.tl0,
                              s.tl1,  s.tl2};
        const int width = range.x1 - range.x0;
        scratch.ensure(static_cast<std::size_t>(width));

        int qx0 = range.x0 & ~1;
        int qy0 = range.y0 & ~1;

        Fragment frag;
        for (int qy = qy0; qy < range.y1; qy += 2) {
            bool row_valid[2];
            bool any = false;
            for (int dy = 0; dy < 2; ++dy) {
                int y = qy + dy;
                row_valid[dy] = y >= range.y0 && y < range.y1;
                if (row_valid[dy])
                    any |= kernels.row_coverage(
                        es, range.x0, width, y, scratch.mask[dy].data(),
                        scratch.w0[dy].data(), scratch.w1[dy].data(),
                        scratch.w2[dy].data());
            }
            // Nothing in either row: skipping the quad walk is
            // stats-neutral (empty quads never count).
            if (!any)
                continue;
            for (int qx = qx0; qx < range.x1; qx += 2) {
                bool quad_covered = false;
                for (int dy = 0; dy < 2; ++dy) {
                    if (!row_valid[dy])
                        continue;
                    int y = qy + dy;
                    for (int dx = 0; dx < 2; ++dx) {
                        int x = qx + dx;
                        if (x < range.x0 || x >= range.x1)
                            continue;
                        std::size_t i =
                            static_cast<std::size_t>(x - range.x0);
                        if (!scratch.mask[dy][i])
                            continue;
                        quad_covered = true;
                        interpolate(prim, s, x, y, scratch.w0[dy][i],
                                    scratch.w1[dy][i], scratch.w2[dy][i],
                                    frag);
                        ++stats.fragments_generated;
                        sink(static_cast<const Fragment &>(frag));
                    }
                }
                if (quad_covered)
                    ++stats.raster_quads;
            }
        }
    }

    /**
     * Conservative-exact triangle/rectangle overlap test used by the
     * Polygon List Builder: true iff the triangle intersects the pixel
     * rectangle [x0, x1) x [y0, y1).
     */
    static bool triangleOverlapsRect(const ShadedPrimitive &prim,
                                     const RectI &rect);

    /** Twice the signed screen-space area (y-down coordinates). */
    static float
    signedArea2(const Vec2 &a, const Vec2 &b, const Vec2 &c)
    {
        return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
    }

  private:
    /** Precomputed per-triangle rasterization state. */
    struct Setup {
        Vec2 p0, p1, p2;     ///< winding-normalized screen positions
        int i0, i1, i2;      ///< indices into prim.v after normalization
        float inv_area = 0;  ///< 1 / signedArea2(p0, p1, p2)
        bool tl0, tl1, tl2;  ///< top-left classification per edge
    };

    /** Prepare @p s; returns false for degenerate triangles. */
    static bool setup(const ShadedPrimitive &prim, Setup &s);

    /**
     * Coverage test at pixel center (x+0.5, y+0.5) with the top-left
     * rule; outputs normalized barycentrics on success.
     */
    static bool
    coverage(const Setup &s, int x, int y, float &w0, float &w1, float &w2)
    {
        Vec2 p{x + 0.5f, y + 0.5f};
        float e0 = signedArea2(s.p1, s.p2, p);
        float e1 = signedArea2(s.p2, s.p0, p);
        float e2 = signedArea2(s.p0, s.p1, p);

        bool in0 = e0 > 0.0f || (e0 == 0.0f && s.tl0);
        bool in1 = e1 > 0.0f || (e1 == 0.0f && s.tl1);
        bool in2 = e2 > 0.0f || (e2 == 0.0f && s.tl2);
        if (!(in0 && in1 && in2))
            return false;

        w0 = e0 * s.inv_area;
        w1 = e1 * s.inv_area;
        w2 = e2 * s.inv_area;
        return true;
    }

    /**
     * Perspective-correct interpolation into @p frag. Lives in the
     * header because it runs once per fragment — tens of millions of
     * times per sweep — and the build has no LTO to inline it across
     * translation units.
     */
    static void
    interpolate(const ShadedPrimitive &prim, const Setup &s, int x, int y,
                float w0, float w1, float w2, Fragment &frag)
    {
        const ShadedVertex &v0 = prim.v[s.i0];
        const ShadedVertex &v1 = prim.v[s.i1];
        const ShadedVertex &v2 = prim.v[s.i2];

        frag.x = x;
        frag.y = y;

        // Depth interpolates affinely in screen space (post-projection z).
        frag.depth = w0 * v0.depth + w1 * v1.depth + w2 * v2.depth;

        // Attributes interpolate perspective-correct: lerp attr/w and 1/w.
        float iw = w0 * v0.inv_w + w1 * v1.inv_w + w2 * v2.inv_w;
        float rw = 1.0f / iw;

        frag.color = (v0.color * (w0 * v0.inv_w) +
                      v1.color * (w1 * v1.inv_w) +
                      v2.color * (w2 * v2.inv_w)) *
                     rw;
        Vec2 uv = {(v0.uv.x * v0.inv_w) * w0 + (v1.uv.x * v1.inv_w) * w1 +
                       (v2.uv.x * v2.inv_w) * w2,
                   (v0.uv.y * v0.inv_w) * w0 + (v1.uv.y * v1.inv_w) * w1 +
                       (v2.uv.y * v2.inv_w) * w2};
        frag.uv = {uv.x * rw, uv.y * rw};
    }
};

} // namespace evrsim

#endif // EVRSIM_GPU_RASTERIZER_HPP
