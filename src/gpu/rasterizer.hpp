/**
 * @file
 * Edge-function triangle rasterizer with top-left fill rule and
 * perspective-correct attribute interpolation.
 *
 * Rasterization is restricted to a caller-supplied rectangle (the tile
 * being rendered), walks pixels in 2x2 quads — the granularity fragment
 * processors and the Early-Z unit operate at — and emits one Fragment per
 * covered pixel center. The same code path runs for every configuration,
 * so Baseline/RE/EVR produce bit-identical coverage and interpolants,
 * which the correctness property tests rely on.
 */
#ifndef EVRSIM_GPU_RASTERIZER_HPP
#define EVRSIM_GPU_RASTERIZER_HPP

#include "common/rect.hpp"
#include "gpu/gpu_stats.hpp"
#include "gpu/primitive.hpp"

namespace evrsim {

/** One rasterized fragment (pixel-sized piece of a primitive). */
struct Fragment {
    int x = 0; ///< screen pixel x
    int y = 0; ///< screen pixel y
    float depth = 0.0f;
    Vec4 color;
    Vec2 uv;
};

/** Stateless rasterization routines. */
class Rasterizer
{
  public:
    /**
     * Rasterize @p prim inside @p bounds, invoking @p sink for each
     * covered pixel. @p stats receives quad/fragment counts.
     *
     * @tparam Sink callable as void(const Fragment &)
     */
    template <typename Sink>
    static void
    rasterize(const ShadedPrimitive &prim, const RectI &bounds,
              FrameStats &stats, Sink &&sink)
    {
        Setup s;
        if (!setup(prim, s))
            return;

        // Clip the iteration range to the triangle's bounding box.
        BBox2 bb = BBox2::ofTriangle(s.p0, s.p1, s.p2);
        RectI range = bounds.intersect(
            {static_cast<int>(std::floor(bb.min_x)),
             static_cast<int>(std::floor(bb.min_y)),
             static_cast<int>(std::floor(bb.max_x)) + 1,
             static_cast<int>(std::floor(bb.max_y)) + 1});
        if (range.empty())
            return;

        // Align the quad walk to even coordinates.
        int qx0 = range.x0 & ~1;
        int qy0 = range.y0 & ~1;

        Fragment frag;
        for (int qy = qy0; qy < range.y1; qy += 2) {
            for (int qx = qx0; qx < range.x1; qx += 2) {
                bool quad_covered = false;
                for (int dy = 0; dy < 2; ++dy) {
                    int y = qy + dy;
                    if (y < range.y0 || y >= range.y1)
                        continue;
                    for (int dx = 0; dx < 2; ++dx) {
                        int x = qx + dx;
                        if (x < range.x0 || x >= range.x1)
                            continue;
                        float w0, w1, w2;
                        if (!coverage(s, x, y, w0, w1, w2))
                            continue;
                        quad_covered = true;
                        interpolate(prim, s, x, y, w0, w1, w2, frag);
                        ++stats.fragments_generated;
                        sink(static_cast<const Fragment &>(frag));
                    }
                }
                if (quad_covered)
                    ++stats.raster_quads;
            }
        }
    }

    /**
     * Conservative-exact triangle/rectangle overlap test used by the
     * Polygon List Builder: true iff the triangle intersects the pixel
     * rectangle [x0, x1) x [y0, y1).
     */
    static bool triangleOverlapsRect(const ShadedPrimitive &prim,
                                     const RectI &rect);

    /** Twice the signed screen-space area (y-down coordinates). */
    static float
    signedArea2(const Vec2 &a, const Vec2 &b, const Vec2 &c)
    {
        return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
    }

  private:
    /** Precomputed per-triangle rasterization state. */
    struct Setup {
        Vec2 p0, p1, p2;     ///< winding-normalized screen positions
        int i0, i1, i2;      ///< indices into prim.v after normalization
        float inv_area = 0;  ///< 1 / signedArea2(p0, p1, p2)
        bool tl0, tl1, tl2;  ///< top-left classification per edge
    };

    /** Prepare @p s; returns false for degenerate triangles. */
    static bool setup(const ShadedPrimitive &prim, Setup &s);

    /**
     * Coverage test at pixel center (x+0.5, y+0.5) with the top-left
     * rule; outputs normalized barycentrics on success.
     */
    static bool
    coverage(const Setup &s, int x, int y, float &w0, float &w1, float &w2)
    {
        Vec2 p{x + 0.5f, y + 0.5f};
        float e0 = signedArea2(s.p1, s.p2, p);
        float e1 = signedArea2(s.p2, s.p0, p);
        float e2 = signedArea2(s.p0, s.p1, p);

        bool in0 = e0 > 0.0f || (e0 == 0.0f && s.tl0);
        bool in1 = e1 > 0.0f || (e1 == 0.0f && s.tl1);
        bool in2 = e2 > 0.0f || (e2 == 0.0f && s.tl2);
        if (!(in0 && in1 && in2))
            return false;

        w0 = e0 * s.inv_area;
        w1 = e1 * s.inv_area;
        w2 = e2 * s.inv_area;
        return true;
    }

    /** Perspective-correct interpolation into @p frag. */
    static void interpolate(const ShadedPrimitive &prim, const Setup &s,
                            int x, int y, float w0, float w1, float w2,
                            Fragment &frag);
};

} // namespace evrsim

#endif // EVRSIM_GPU_RASTERIZER_HPP
